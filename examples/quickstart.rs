//! Quickstart: post receives, match a block of messages in parallel, look
//! at the engine's conflict statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use mpi_matching::{MsgHandle, PostResult, RecvHandle};
use otm::OtmEngine;
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};

fn main() {
    // The paper's prototype configuration: 1024 in-flight receives, hash
    // tables at twice that, 32 block threads (§VI).
    let mut engine = OtmEngine::new(MatchConfig::default()).expect("valid config");

    // The host posts receives through the command path (§IV-E): two exact
    // ones, one MPI_ANY_SOURCE, and a run of compatible receives that the
    // fast path can shift across.
    engine
        .post(ReceivePattern::exact(Rank(1), Tag(100)), RecvHandle(0))
        .unwrap();
    engine
        .post(ReceivePattern::exact(Rank(2), Tag(100)), RecvHandle(1))
        .unwrap();
    engine
        .post(ReceivePattern::any_source(Tag(200)), RecvHandle(2))
        .unwrap();
    for i in 0..8 {
        engine
            .post(ReceivePattern::exact(Rank(7), Tag(7)), RecvHandle(10 + i))
            .unwrap();
    }

    // A block of incoming messages is matched optimistically in parallel.
    let block: Vec<(Envelope, MsgHandle)> = vec![
        (Envelope::world(Rank(2), Tag(100)), MsgHandle(0)),
        (Envelope::world(Rank(9), Tag(200)), MsgHandle(1)), // ANY_SOURCE match
        (Envelope::world(Rank(7), Tag(7)), MsgHandle(2)),   // compatible run...
        (Envelope::world(Rank(7), Tag(7)), MsgHandle(3)),
        (Envelope::world(Rank(7), Tag(7)), MsgHandle(4)),
        (Envelope::world(Rank(5), Tag(5)), MsgHandle(5)), // nobody wants this one
    ];
    let deliveries = engine.process_block(&block).expect("block processed");

    println!("deliveries:");
    for d in &deliveries {
        println!("  {d:?}");
    }

    // An unexpected message is consumed by a later receive post (Fig. 1a).
    match engine
        .post(ReceivePattern::exact(Rank(5), Tag(5)), RecvHandle(99))
        .unwrap()
    {
        PostResult::Matched(msg) => println!("late receive matched unexpected message {msg:?}"),
        PostResult::Posted => println!("late receive is pending"),
    }

    let stats = engine.stats();
    println!(
        "\nstats: {} messages in {} blocks | optimistic-ok {} | fast-path {} | slow-path {} | \
         mean search depth {:.2}",
        stats.messages,
        stats.blocks,
        stats.optimistic_ok,
        stats.fast_path,
        stats.slow_path,
        stats.mean_search_depth(),
    );
}
