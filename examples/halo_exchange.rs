//! A receiver-side view of a 3-D halo exchange — the workload class that
//! dominates the paper's application analysis (§V).
//!
//! One rank of a 4×4×4 job receives ghost-cell messages from its 26
//! neighbors over several timesteps. Receives are pre-posted per step with
//! per-direction tags; neighbors' messages arrive out of order. The example
//! prints how the optimistic engine's search depth compares between a
//! 1-bin ("traditional") configuration and the paper's binned layout.
//!
//! Run with: `cargo run --release --example halo_exchange`

use mpi_matching::{MsgHandle, RecvHandle};
use otm::OtmEngine;
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};

const NEIGHBORS: usize = 26;
const STEPS: u64 = 50;

fn run(bins: usize) -> (f64, u64) {
    let config = MatchConfig::default()
        .with_bins(bins)
        .with_block_threads(32);
    let mut engine = OtmEngine::new(config).expect("valid config");
    let mut next_recv = 0u64;
    let mut next_msg = 0u64;
    for step in 0..STEPS {
        // Pre-post one receive per neighbor, tagged by direction.
        for d in 0..NEIGHBORS {
            let pattern = ReceivePattern::exact(Rank(d as u32), Tag((step as u32) << 5 | d as u32));
            engine.post(pattern, RecvHandle(next_recv)).unwrap();
            next_recv += 1;
        }
        // Neighbors send in a scrambled order (they stagger their send
        // loops); the block engine matches them in parallel.
        let mut order: Vec<usize> = (0..NEIGHBORS).collect();
        order.sort_by_key(|&d| otm_base::hash::mix64(step ^ ((d as u64) << 7)));
        let block: Vec<(Envelope, MsgHandle)> = order
            .iter()
            .map(|&d| {
                let m = MsgHandle(next_msg);
                next_msg += 1;
                (
                    Envelope::world(Rank(d as u32), Tag((step as u32) << 5 | d as u32)),
                    m,
                )
            })
            .collect();
        let deliveries = engine.process_stream(&block).unwrap();
        assert!(
            deliveries.iter().all(|d| d.matched().is_some()),
            "halo fully matched"
        );
    }
    let stats = engine.stats();
    (stats.mean_search_depth(), stats.search_depth_max)
}

fn main() {
    println!("26-neighbor halo exchange, {STEPS} steps, out-of-order arrivals\n");
    for bins in [1usize, 32, 128] {
        let (mean, max) = run(bins);
        println!("bins = {bins:>3}: mean search depth {mean:>6.2}, max {max:>3}");
    }
    println!(
        "\nWith one bin every pending receive shares a list (traditional matching);\n\
         binning spreads the 26 (src, tag) keys so most searches hit immediately —\n\
         the effect behind Fig. 7 of the paper."
    );
}
