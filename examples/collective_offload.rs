//! Collectives on top of offloaded matching — the §VII motivation: "in
//! order to be executed, the incoming message needs to be matched ...
//! offloading tag matching is a necessary step to be able to offload the
//! full chain of actions."
//!
//! An 8-node simulated cluster (full mesh, one optimistic matching service
//! per node) runs a binomial-tree broadcast and an allreduce; every tree
//! hop crosses the complete receive path: wire → bounce buffer → CQ →
//! optimistic matching → eager/rendezvous protocol.
//!
//! Run with: `cargo run --release --example collective_offload`

use dpa_sim::collectives::{allreduce_sum, broadcast};
use dpa_sim::{Cluster, ClusterBackend};
use otm_base::{MatchConfig, Tag};

fn main() {
    let n = 8;
    let config = MatchConfig::default()
        .with_max_receives(256)
        .with_max_unexpected(256)
        .with_bins(64);
    let mut cluster = Cluster::new(n, ClusterBackend::Offloaded, config);
    println!(
        "{n}-node cluster, per-node backend: {}",
        cluster.node_mut(0).backend_name()
    );

    // Broadcast a model snapshot from rank 0.
    let payload = b"model weights v17".to_vec();
    let copies = broadcast(&mut cluster, 0, payload.clone(), Tag(1)).expect("broadcast");
    assert!(copies.iter().all(|c| c == &payload));
    println!(
        "broadcast: {} bytes delivered to all {n} nodes",
        payload.len()
    );

    // Allreduce the per-node gradients.
    let values: Vec<Vec<u64>> = (0..n)
        .map(|r| vec![r as u64 + 1, 10 * (r as u64 + 1)])
        .collect();
    let sums = allreduce_sum(&mut cluster, &values, Tag(2)).expect("allreduce");
    println!("allreduce: every node holds {:?}", sums[0]);
    assert!(sums.iter().all(|s| s == &sums[0]));

    // Every match happened on the simulated NIC, none on the "host".
    println!("\nper-node offloaded matching activity:");
    for i in 0..n {
        let stats = cluster
            .node_mut(i)
            .engine_stats()
            .expect("offloaded nodes have stats");
        println!(
            "  node {i}: matched {:>2} | unexpected {:>2} | mean search depth {:.2}",
            stats.matched,
            stats.unexpected,
            stats.mean_search_depth()
        );
    }
}
