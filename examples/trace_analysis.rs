//! The paper's trace-analyzer flow (§V) end to end: generate a DOE
//! mini-app workload, write it out as DUMPI text, parse it back (through
//! the binary cache), and replay it at several bin counts.
//!
//! Run with: `cargo run --release --example trace_analysis [app-name]`
//! (default app: "BoxLib CNS"; pass e.g. "LULESH" or "MOCFE").

use otm_trace::report::{fig6_row, fig7_cell};
use otm_trace::{cache, dumpi, replay, ReplayConfig};

fn main() {
    let app_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BoxLib CNS".to_string());
    let spec = otm_workloads::catalog()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(&app_name))
        .unwrap_or_else(|| {
            eprintln!("unknown app '{app_name}'; available:");
            for a in otm_workloads::catalog() {
                eprintln!("  {}", a.name);
            }
            std::process::exit(1);
        });

    println!("generating {} ({} processes)...", spec.name, spec.processes);
    let trace = (spec.generate)(42);

    // Round-trip through the DUMPI text format and the binary cache, the
    // way the analyzer ingests real traces.
    let dir = std::env::temp_dir().join(format!("otm-trace-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for rank in &trace.ranks {
        std::fs::write(
            dir.join(format!("dumpi-{}.txt", rank.rank.0)),
            dumpi::write_rank_text(&rank.ops),
        )
        .unwrap();
    }
    let cache_path = dir.join("trace.otmcache");
    let t0 = std::time::Instant::now();
    let parsed = cache::load_or_parse(&dir, &cache_path, spec.name).expect("parse");
    let cold = t0.elapsed();
    let t1 = std::time::Instant::now();
    let _again = cache::load_or_parse(&dir, &cache_path, spec.name).expect("cached load");
    let warm = t1.elapsed();
    println!(
        "parsed {} ops from {} rank files in {cold:?} (cached reload: {warm:?})\n",
        parsed.total_ops(),
        parsed.processes()
    );

    // Fig. 6 row: the application's call-type distribution.
    let base = replay(&parsed, &ReplayConfig { bins: 1 });
    println!("{}", fig6_row(&base));
    println!(
        "tags: {} distinct, {} (src, tag) pairs, {:.1}% wildcard receives\n",
        base.tag_usage.distinct_tags,
        base.tag_usage.distinct_src_tag_pairs,
        100.0 * base.tag_usage.wildcard_recv_fraction
    );

    // Fig. 7 sweep: queue depth vs bin count.
    for bins in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let report = replay(&parsed, &ReplayConfig { bins });
        println!("{}", fig7_cell(&report));
    }

    std::fs::remove_dir_all(&dir).ok();
}
