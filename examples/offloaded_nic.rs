//! End-to-end offloaded matching on the simulated SmartNIC (§IV): RDMA
//! transport, bounce buffers, completion queue, the optimistic engine, and
//! eager/rendezvous protocol handling — plus the §IV-E software fallback
//! when the DPA memory budget is exhausted.
//!
//! Run with: `cargo run --release --example offloaded_nic`

use dpa_sim::bounce::BouncePool;
use dpa_sim::nic::RecvNic;
use dpa_sim::rdma::{connected_pair, eager_packet, rendezvous_packet, RdmaDomain};
use dpa_sim::{DeviceMemory, MatchingService};
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};

fn main() {
    // Wire up a sender endpoint and a receive-side NIC with 64 bounce
    // buffers in NIC memory.
    let (sender, receiver) = connected_pair();
    let domain = RdmaDomain::new();
    let nic = RecvNic::new(receiver, BouncePool::new(64, 4096));

    // Offload matching onto the DPA, charging the BlueField-3 L3 budget.
    let mut budget = DeviceMemory::bluefield3_l3();
    let mut service = MatchingService::offloaded(
        nic,
        domain.clone(),
        MatchConfig::default().with_block_threads(16),
        &mut budget,
    )
    .expect("prototype tables fit the DPA");
    println!(
        "offloaded matching on {} ({} B of DPA memory in use)",
        service.backend_name(),
        budget.used()
    );

    // Pre-post two receives, then let one eager and one rendezvous message
    // arrive.
    let r_small = service
        .post_recv(ReceivePattern::exact(Rank(0), Tag(1)))
        .unwrap();
    let r_big = service
        .post_recv(ReceivePattern::exact(Rank(0), Tag(2)))
        .unwrap();

    sender
        .send(eager_packet(
            Envelope::world(Rank(0), Tag(1)),
            b"hello, eager".to_vec(),
        ))
        .unwrap();
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let (rts, rkey) = rendezvous_packet(&domain, Envelope::world(Rank(0), Tag(2)), payload, 64);
    sender.send(rts).unwrap();

    service.progress().unwrap();
    for done in service.take_completed() {
        let preview = String::from_utf8_lossy(&done.data[..done.data.len().min(12)]).into_owned();
        println!(
            "completed {:?} from {}: {} bytes (head: {:?})",
            done.recv,
            done.env,
            done.data.len(),
            preview
        );
        assert!(done.recv == r_small || done.recv == r_big);
    }
    domain.deregister(rkey);

    // An unexpected message: no receive yet, so it parks in the unexpected
    // store; the late post completes it (Fig. 1a).
    sender
        .send(eager_packet(Envelope::world(Rank(3), Tag(9)), vec![42; 8]))
        .unwrap();
    service.progress().unwrap();
    println!("unexpected messages waiting: {}", service.unexpected_len());
    service
        .post_recv(ReceivePattern::any_source(Tag(9)))
        .unwrap();
    let done = service.take_completed();
    println!("late post completed with {} bytes", done[0].data.len());

    // §IV-E: a communicator whose tables do not fit falls back to software
    // tag matching on the host.
    let (fallback_tx, fb_receiver) = connected_pair();
    let mut tiny = DeviceMemory::new(4 * 1024);
    let (fb, offloaded) = MatchingService::offloaded_or_fallback(
        RecvNic::new(fb_receiver, BouncePool::new(4, 256)),
        RdmaDomain::new(),
        MatchConfig::default(),
        &mut tiny,
    );
    println!(
        "tiny DPA budget: offloaded = {offloaded}, backend = {}",
        fb.backend_name()
    );
    drop(fallback_tx);
}
