//! Regression tests for the loss-free software fallback: nothing a backend
//! ever accepted — applied matching state *or* commands still sitting in
//! the submission queue — may be dropped by the offload→software migration.
//!
//! Before the total-fallback fix, `OtmEngine::drain_for_fallback` silently
//! discarded the submission queue and the service called it without
//! draining first: a fallback under load lost posted receives and arrived
//! messages. The first three tests pin that bug end to end (they fail at
//! the pre-fix revision); the seeded oracle is the deterministic companion
//! of the `fallback_with_pending_queue_equals_drain_then_fallback` property
//! in `tests/properties.rs`.

mod support;

use dpa_sim::bounce::BouncePool;
use dpa_sim::nic::RecvNic;
use dpa_sim::rdma::{connected_pair, eager_packet, RdmaDomain};
use dpa_sim::{DeviceMemory, MatchingService};
use mpi_matching::binned::BinnedMatcher;
use mpi_matching::oracle::MatchEvent;
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::{Assignment, MatchingBackend, MsgHandle, RecvHandle};
use otm::{Command, OtmEngine, SequentialOtm};
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use otm_trace::emul::FourIndexMatcher;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use support::{drain_then_fallback, fallback_oracle_config, fallback_with_queue, replay_snapshot};

fn env(src: u32, tag: u32) -> Envelope {
    Envelope::world(Rank(src), Tag(tag))
}

/// The lost-command bug, engine level: commands still in the submission
/// queue must ride along in the fallback snapshot, in submission order,
/// next to the applied state.
#[test]
fn queued_commands_survive_the_fallback_snapshot() {
    let mut engine = OtmEngine::new(fallback_oracle_config()).unwrap();
    // Applied state: one pending receive, one parked unexpected message.
    engine
        .post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
        .unwrap();
    engine.process_block(&[(env(5, 5), MsgHandle(0))]).unwrap();
    // Undrained queue: a receive and an arrival the host already handed
    // over but the device never applied.
    let queued_post = Command::Post {
        pattern: ReceivePattern::exact(Rank(1), Tag(1)),
        handle: RecvHandle(1),
    };
    let queued_arrival = Command::Arrival {
        env: env(1, 1),
        msg: MsgHandle(1),
    };
    engine.submit(queued_post).unwrap();
    engine.submit(queued_arrival).unwrap();

    let state = engine.drain_for_fallback();
    assert_eq!(
        state.receives,
        vec![(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))]
    );
    assert_eq!(state.unexpected, vec![(env(5, 5), MsgHandle(0))]);
    assert_eq!(
        state.pending,
        vec![queued_post, queued_arrival],
        "the submission queue must survive the fallback drain, in order"
    );
}

/// Replaying the snapshot the way the service migrates must deliver the
/// queued work: the queued arrival finds the queued receive, and nothing is
/// left dangling that should have matched.
#[test]
fn fallback_replay_delivers_queued_work() {
    let mut engine = OtmEngine::new(fallback_oracle_config()).unwrap();
    engine
        .post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
        .unwrap();
    // Queued: an arrival for the applied receive, then a fresh receive and
    // its arrival — two pairs that only form during the pending replay.
    engine
        .submit(Command::Arrival {
            env: env(0, 0),
            msg: MsgHandle(0),
        })
        .unwrap();
    engine
        .submit(Command::Post {
            pattern: ReceivePattern::exact(Rank(1), Tag(1)),
            handle: RecvHandle(1),
        })
        .unwrap();
    engine
        .submit(Command::Arrival {
            env: env(1, 1),
            msg: MsgHandle(1),
        })
        .unwrap();

    let mut asg = Assignment::default();
    let m = replay_snapshot(engine.drain_for_fallback(), &mut asg);
    assert_eq!(asg.msg_to_recv[&MsgHandle(0)], Some(RecvHandle(0)));
    assert_eq!(asg.msg_to_recv[&MsgHandle(1)], Some(RecvHandle(1)));
    assert!(m.pending_receives().is_empty());
    assert!(m.waiting_messages().is_empty());
}

/// The lost-arrival bug, end to end: arrivals are sitting in the engine's
/// submission queue when store pressure forces the software fallback. Every
/// payload must survive the migration and land on its receive in arrival
/// order.
#[test]
fn service_fallback_with_queued_arrivals_loses_nothing() {
    let (tx, rx) = connected_pair();
    let domain = RdmaDomain::new();
    let nic = RecvNic::new(rx, BouncePool::new(64, 256));
    let mut budget = DeviceMemory::bluefield3_l3();
    let config = MatchConfig::small()
        .with_max_unexpected(2)
        .with_block_threads(2);
    let mut svc = MatchingService::offloaded(nic, domain, config, &mut budget).unwrap();
    svc.enable_command_queue().unwrap();

    // Five unmatched messages against a 2-slot device store: the drain
    // trips UnexpectedStoreFull with arrivals still queued.
    for i in 0..5u32 {
        tx.send(eager_packet(env(1, i), vec![i as u8])).unwrap();
    }
    assert_eq!(svc.progress().unwrap(), 0);
    assert!(svc.fell_back(), "store pressure must trigger the fallback");
    assert_eq!(
        svc.unexpected_len(),
        5,
        "every queued arrival must survive the migration"
    );
    let mut posted = Vec::new();
    for _ in 0..5 {
        posted.push(svc.post_recv(ReceivePattern::any_tag(Rank(1))).unwrap());
    }
    let done = svc.take_completed();
    assert_eq!(done.len(), 5);
    for (i, d) in done.iter().enumerate() {
        assert_eq!(d.recv, posted[i], "C1/C2 across the migration");
        assert_eq!(d.data, vec![i as u8], "payload {i} intact");
    }
}

/// A random single-communicator event over a small (rank, tag) space.
fn random_event(rng: &mut SmallRng) -> MatchEvent {
    let src = Rank(rng.gen_range(0..3));
    let tag = Tag(rng.gen_range(0..3));
    match rng.gen_range(0..10) {
        0..=3 => MatchEvent::Arrive(Envelope::world(src, tag)),
        4..=6 => MatchEvent::Post(ReceivePattern::exact(src, tag)),
        7 => MatchEvent::Post(ReceivePattern::any_source(tag)),
        8 => MatchEvent::Post(ReceivePattern::any_tag(src)),
        _ => MatchEvent::Post(ReceivePattern::any_any()),
    }
}

/// Seeded deterministic companion of the proptest fallback oracle: for
/// every drainable backend, fallback-with-queued-commands ≡
/// drain-then-fallback on reproducible random workloads and split points.
#[test]
fn seeded_fallback_oracle_queued_equals_drained() {
    let factories: Vec<(&'static str, fn() -> Box<dyn MatchingBackend>)> = vec![
        ("traditional", || Box::new(TraditionalMatcher::new())),
        ("binned", || Box::new(BinnedMatcher::new(16))),
        ("four-index", || Box::new(FourIndexMatcher::new(16))),
        ("optimistic-seq", || {
            Box::new(SequentialOtm::new(fallback_oracle_config()).unwrap())
        }),
        ("optimistic-dpa", || {
            Box::new(OtmEngine::new(fallback_oracle_config()).unwrap())
        }),
    ];
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0xFA11BAC ^ seed);
        let len = rng.gen_range(1..80);
        let events: Vec<MatchEvent> = (0..len).map(|_| random_event(&mut rng)).collect();
        let cut = rng.gen_range(0..=len);
        for &(name, make) in &factories {
            let queued = fallback_with_queue(make(), &events, cut);
            let drained = drain_then_fallback(make(), &events, cut);
            assert_eq!(
                queued, drained,
                "{name} diverged on seed {seed} (cut {cut}/{len})"
            );
        }
    }
}
