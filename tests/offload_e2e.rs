//! End-to-end offload pipeline tests: the offloaded optimistic service and
//! the host-CPU baseline must deliver identical (receive, payload) pairings
//! for identical traffic, across eager and rendezvous protocols.

use dpa_sim::bounce::BouncePool;
use dpa_sim::nic::RecvNic;
use dpa_sim::rdma::{connected_pair, eager_packet, rendezvous_packet, QueuePair, RdmaDomain};
use dpa_sim::service::{CompletedReceive, MatchingService};
use dpa_sim::DeviceMemory;
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Harness {
    tx: QueuePair,
    domain: RdmaDomain,
    service: MatchingService,
}

fn offloaded_harness(block_threads: usize) -> Harness {
    let (tx, rx) = connected_pair();
    let domain = RdmaDomain::new();
    let nic = RecvNic::new(rx, BouncePool::new(512, 1024));
    let mut budget = DeviceMemory::bluefield3_l3();
    let config = MatchConfig::default()
        .with_block_threads(block_threads)
        .with_max_receives(4096)
        .with_max_unexpected(4096);
    let service = MatchingService::offloaded(nic, domain.clone(), config, &mut budget).unwrap();
    Harness {
        tx,
        domain,
        service,
    }
}

fn cpu_harness() -> Harness {
    let (tx, rx) = connected_pair();
    let domain = RdmaDomain::new();
    let nic = RecvNic::new(rx, BouncePool::new(512, 1024));
    let service = MatchingService::mpi_cpu(nic, domain.clone());
    Harness {
        tx,
        domain,
        service,
    }
}

/// A randomized traffic script: (post pattern | message envelope+payload).
#[derive(Clone)]
enum Step {
    Post(ReceivePattern),
    Eager(Envelope, Vec<u8>),
    Rendezvous(Envelope, Vec<u8>),
}

fn random_script(seed: u64, len: usize) -> Vec<Step> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let src = Rank(rng.gen_range(0..3));
            let tag = Tag(rng.gen_range(0..3));
            match rng.gen_range(0..8) {
                0..=2 => Step::Post(ReceivePattern::exact(src, tag)),
                3 => Step::Post(ReceivePattern::any_source(tag)),
                4 | 5 => Step::Eager(Envelope::world(src, tag), vec![i as u8; 16]),
                _ => Step::Rendezvous(
                    Envelope::world(src, tag),
                    (0..64u32).map(|j| (i as u32 + j) as u8).collect(),
                ),
            }
        })
        .collect()
}

fn run_script(h: &mut Harness, script: &[Step]) -> Vec<CompletedReceive> {
    let mut done = Vec::new();
    for step in script {
        match step {
            Step::Post(p) => {
                h.service.post_recv(*p).unwrap();
            }
            Step::Eager(env, data) => {
                h.tx.send(eager_packet(*env, data.clone())).unwrap();
            }
            Step::Rendezvous(env, data) => {
                let (pkt, _rkey) = rendezvous_packet(&h.domain, *env, data.clone(), 8);
                h.tx.send(pkt).unwrap();
            }
        }
        h.service.progress().unwrap();
        done.extend(h.service.take_completed());
    }
    done
}

#[test]
fn offloaded_and_cpu_backends_deliver_identical_pairings() {
    for seed in 0..4 {
        let script = random_script(seed, 120);
        let mut offloaded = offloaded_harness(8);
        let mut cpu = cpu_harness();
        let a = run_script(&mut offloaded, &script);
        let b = run_script(&mut cpu, &script);
        assert_eq!(a.len(), b.len(), "seed {seed}: completion counts differ");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.recv, y.recv, "seed {seed}");
            assert_eq!(x.env, y.env, "seed {seed}");
            assert_eq!(
                x.data, y.data,
                "seed {seed}: payloads must match byte-for-byte"
            );
        }
    }
}

#[test]
fn burst_traffic_matches_in_parallel_blocks_with_identical_results() {
    // Post everything, then deliver a large burst at once so the offloaded
    // service matches multi-lane blocks (conflicts included), and compare
    // against the sequential CPU service.
    let n = 64usize;
    let mut offloaded = offloaded_harness(32);
    let mut cpu = cpu_harness();
    for h in [&mut offloaded, &mut cpu] {
        for i in 0..n {
            // Half the receives share one hot (src, tag); half are unique.
            let p = if i % 2 == 0 {
                ReceivePattern::exact(Rank(0), Tag(0))
            } else {
                ReceivePattern::exact(Rank(0), Tag(i as u32))
            };
            h.service.post_recv(p).unwrap();
        }
    }
    for h in [&mut offloaded, &mut cpu] {
        for i in 0..n {
            let tag = if i % 2 == 0 { Tag(0) } else { Tag(i as u32) };
            h.tx.send(eager_packet(Envelope::world(Rank(0), tag), vec![i as u8]))
                .unwrap();
        }
        assert_eq!(h.service.progress().unwrap(), n);
    }
    let mut a = offloaded.service.take_completed();
    let mut b = cpu.service.take_completed();
    a.sort_by_key(|c| c.recv);
    b.sort_by_key(|c| c.recv);
    assert_eq!(a.len(), n);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.recv, &x.data), (y.recv, &y.data));
    }
    let stats = offloaded.service.engine_stats().unwrap();
    assert!(stats.blocks >= 2, "burst must span blocks: {stats:?}");
}

#[test]
fn rendezvous_payloads_survive_the_unexpected_path_identically() {
    let mut offloaded = offloaded_harness(4);
    let payload: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
    let (pkt, _rkey) = rendezvous_packet(
        &offloaded.domain,
        Envelope::world(Rank(1), Tag(9)),
        payload.clone(),
        32,
    );
    offloaded.tx.send(pkt).unwrap();
    offloaded.service.progress().unwrap();
    assert_eq!(offloaded.service.unexpected_len(), 1);
    offloaded
        .service
        .post_recv(ReceivePattern::any_any())
        .unwrap();
    let done = offloaded.service.take_completed();
    assert_eq!(done[0].data, payload);
}
