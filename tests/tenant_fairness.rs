//! matchd contract tests: admission control, deficit-round-robin fairness
//! and the loss-free fallback under multitenancy.
//!
//! The deterministic companions of the `matchd_*` properties in
//! `tests/properties.rs`:
//!
//! * a flooding tenant is answered with [`Admission::Backpressured`] at its
//!   own bounded ingress and cannot push a well-behaved neighbour below
//!   half of its solo throughput at the same virtual time;
//! * `retry_after` is the documented function of overflow and quantum, and
//!   a backpressured submission really does succeed after that many ticks;
//! * per-tenant FIFO survives the fair drain — completions come back in
//!   handle-mint order;
//! * the software fallback, triggered mid-tick with several tenants'
//!   ingress queues non-empty, loses nothing for anyone.

use dpa_sim::bounce::BouncePool;
use dpa_sim::nic::RecvNic;
use dpa_sim::rdma::{connected_pair, RdmaDomain};
use dpa_sim::{
    Admission, DeviceMemory, MatchServer, MatchdConfig, MatchingService, TenantConfig,
    TenantSession,
};
use otm_base::envelope::TagSel;
use otm_base::{CommId, MatchConfig, PackingPolicy, Rank, ReceivePattern, Tag};

/// An engine large enough that only admission — never table pressure —
/// shapes the runs, with cross-communicator packing and a per-lane quota so
/// both fairness layers are in play.
fn roomy_config() -> MatchConfig {
    MatchConfig::default()
        .with_block_threads(4)
        .with_max_receives(1 << 14)
        .with_max_unexpected(1 << 14)
        .with_bins(16)
        .with_packing(PackingPolicy::CrossComm)
        .with_lane_quota(Some(8))
}

fn server(match_config: MatchConfig, deficit_cap_quanta: u64) -> MatchServer {
    MatchServer::new(
        match_config,
        MatchdConfig {
            tenant: TenantConfig::default(),
            deficit_cap_quanta,
            ..MatchdConfig::default()
        },
    )
    .expect("standalone matchd server")
}

/// One well-behaved submission step: `pairs` (post, self-send) pairs on the
/// session's communicator, exact-matched so every post has its message.
fn submit_pairs(session: &TenantSession, pairs: usize, round: u64) -> usize {
    let src = Rank(session.tenant().0 as u32);
    let comm = session.comm().expect("fairness tenants are pinned");
    let mut admitted = 0;
    for i in 0..pairs {
        let tag = Tag((round as u32 * 97 + i as u32) % 13);
        if session
            .submit_post(ReceivePattern::new(src, tag, comm))
            .is_admitted()
        {
            admitted += 1;
        }
        if session.submit_send(tag, vec![i as u8]).is_admitted() {
            admitted += 1;
        }
    }
    admitted
}

/// Runs the well-behaved workload alone for `ticks` rounds and returns the
/// completions it reaches by that virtual time.
fn solo_throughput(ticks: u64, pairs_per_tick: usize) -> u64 {
    let mut server = server(roomy_config(), 4);
    let session = server.open_tenant_with(TenantConfig {
        capacity: 1024,
        quantum: 64,
        comm: Some(CommId(1)),
    });
    for round in 0..ticks {
        submit_pairs(&session, pairs_per_tick, round);
        server.tick().expect("tick");
    }
    session.stats().completed
}

/// The headline fairness run: three well-behaved tenants plus one flooder
/// on a shared server. The flooder must be backpressured at admission, and
/// every well-behaved tenant must keep at least half of its solo
/// throughput at the same tick count.
#[test]
fn flooder_is_backpressured_and_cannot_starve_neighbours() {
    const TICKS: u64 = 60;
    const PAIRS: usize = 8;
    let solo = solo_throughput(TICKS, PAIRS);
    assert!(solo > 0, "the solo run must make progress");

    let mut server = server(roomy_config(), 4);
    // Tenant 0 floods through a small ingress; 1..=3 are well behaved.
    let flooder = server.open_tenant_with(TenantConfig {
        capacity: 64,
        quantum: 16,
        comm: Some(CommId(1)),
    });
    let good: Vec<TenantSession> = (2..5)
        .map(|c| {
            server.open_tenant_with(TenantConfig {
                capacity: 1024,
                quantum: 64,
                comm: Some(CommId(c)),
            })
        })
        .collect();

    let mut backpressured_submissions = 0u64;
    for round in 0..TICKS {
        // The flooder tries to push two hundred pairs a tick — far beyond
        // both its ingress bound and its drain quantum.
        for i in 0..200u32 {
            let tag = Tag(i % 7);
            let src = Rank(flooder.tenant().0 as u32);
            let comm = flooder.comm().unwrap();
            match flooder.submit_post(ReceivePattern::new(src, tag, comm)) {
                Admission::Admitted(_) => match flooder.submit_send(tag, vec![i as u8]) {
                    Admission::Admitted(()) => {}
                    Admission::Backpressured { .. } => backpressured_submissions += 1,
                    Admission::Rejected { reason } => panic!("flooder send rejected: {reason}"),
                },
                Admission::Backpressured { retry_after } => {
                    assert!(retry_after >= 1, "retry hints are at least one tick");
                    backpressured_submissions += 1;
                }
                Admission::Rejected { reason } => panic!("flooder rejected: {reason}"),
            }
        }
        for session in &good {
            submit_pairs(session, PAIRS, round);
        }
        server.tick().expect("tick");
    }

    assert!(
        backpressured_submissions > 0,
        "a 200-pairs-per-tick flooder over a 64-slot ingress must hit backpressure"
    );
    let fstats = flooder.stats();
    assert_eq!(fstats.backpressured, backpressured_submissions);
    assert!(fstats.completed > 0, "backpressure throttles, not starves");
    for session in &good {
        let stats = session.stats();
        assert!(
            stats.backpressured == 0,
            "well-behaved tenant {} was backpressured",
            session.tenant()
        );
        assert!(
            stats.completed * 2 >= solo,
            "tenant {} kept {}/{} of its solo throughput (need >= 50%)",
            session.tenant(),
            stats.completed,
            solo
        );
    }
    assert!(
        !server.service().fell_back(),
        "the fairness run must stay on the offloaded path"
    );
}

/// The `retry_after` contract: with the ingress exactly full, the hint is
/// `ceil(overflow / quantum)` (>= 1), and one drain round at the tenant's
/// quantum really does open the promised slots.
#[test]
fn backpressure_retry_hint_matches_the_drain_rate() {
    let mut server = server(roomy_config(), 1);
    let session = server.open_tenant_with(TenantConfig {
        capacity: 8,
        quantum: 4,
        comm: Some(CommId(1)),
    });
    let src = Rank(session.tenant().0 as u32);
    let comm = session.comm().unwrap();
    let pattern = |i: u32| ReceivePattern::new(src, Tag(i), comm);

    for i in 0..8 {
        session
            .submit_post(pattern(i))
            .expect_admitted("fills the ingress");
    }
    match session.submit_post(pattern(8)) {
        Admission::Backpressured { retry_after } => {
            assert_eq!(retry_after, 1, "overflow 1 at quantum 4 is one round")
        }
        other => panic!("expected backpressure on a full ingress, got {other:?}"),
    }
    assert_eq!(session.stats().ingress_depth, 8);

    // One tick drains one quantum: four slots open, four posts fit again.
    server.tick().expect("tick");
    assert_eq!(session.stats().ingress_depth, 4);
    for i in 0..4 {
        session
            .submit_post(pattern(100 + i))
            .expect_admitted("the promised slots are open");
    }
    assert!(
        !session.submit_post(pattern(200)).is_admitted(),
        "the ninth slot never existed"
    );
}

/// Per-tenant FIFO through the fair drain: each tenant's completions come
/// back in the order its handles were minted, regardless of how the DRR
/// rounds interleave tenants.
#[test]
fn completions_preserve_per_tenant_handle_order() {
    let mut server = server(roomy_config(), 4);
    let sessions: Vec<TenantSession> = (1..4)
        .map(|c| {
            server.open_tenant_with(TenantConfig {
                capacity: 1024,
                quantum: 8,
                comm: Some(CommId(c)),
            })
        })
        .collect();
    for round in 0..20 {
        for session in &sessions {
            submit_pairs(session, 5, round);
        }
        server.tick().expect("tick");
    }
    server.run_ticks(30).expect("settle");
    for session in &sessions {
        let stats = session.stats();
        assert_eq!(stats.completed, 100, "every posted receive completes");
        assert_eq!(stats.ingress_depth, 0, "the settle ticks drain everything");
        let done = session.take_completions();
        let seqs: Vec<u64> = done.iter().map(|d| d.recv.0 & ((1 << 48) - 1)).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(
            seqs,
            sorted,
            "tenant {} completions out of mint order",
            session.tenant()
        );
    }
}

/// The loss-free fallback under multitenancy: tenant 0 floods unmatched
/// messages into a 2-slot unexpected store while tenants 1 and 2 still have
/// most of their admitted work sitting in their ingress queues. The
/// migration fires mid-tick; afterwards every tenant's work — applied,
/// queued in the engine, or still in an ingress — must complete intact.
#[test]
fn fallback_mid_tick_loses_nothing_for_any_tenant() {
    let (tx, rx) = connected_pair();
    let nic = RecvNic::new(rx, BouncePool::new(64, 256));
    let mut budget = DeviceMemory::bluefield3_l3();
    let config = MatchConfig::small()
        .with_max_unexpected(2)
        .with_block_threads(2);
    let mut service =
        MatchingService::offloaded(nic, RdmaDomain::new(), config, &mut budget).unwrap();
    service.enable_command_queue().unwrap();
    let mut server = MatchServer::with_service(service, Some(tx), MatchdConfig::default());

    let storm = server.open_tenant_with(TenantConfig {
        capacity: 64,
        quantum: 64,
        comm: Some(CommId(1)),
    });
    let victims: Vec<TenantSession> = (2..4)
        .map(|c| {
            server.open_tenant_with(TenantConfig {
                capacity: 64,
                quantum: 2,
                comm: Some(CommId(c)),
            })
        })
        .collect();

    // Five unmatched sends against a 2-slot device store: the first
    // progress call trips UnexpectedStoreFull and migrates to software.
    for i in 0..5u32 {
        storm
            .submit_send(Tag(i), vec![0x50 + i as u8])
            .expect_admitted("storm send");
    }
    // The victims admit six pairs each but may only drain one quantum (two
    // requests) before the storm forces the fallback.
    for session in &victims {
        submit_pairs(session, 6, 0);
        assert_eq!(session.stats().ingress_depth, 12);
    }

    server
        .tick()
        .expect("the fallback tick itself must succeed");
    assert!(
        server.service().fell_back(),
        "store pressure must trigger the software fallback"
    );
    for session in &victims {
        assert!(
            session.stats().ingress_depth > 0,
            "the fallback must fire while this tenant's ingress is non-empty"
        );
    }

    // Life goes on, on the software path: the queued work drains and
    // completes, and the storm's parked messages land on late receives.
    server.run_ticks(10).expect("post-fallback ticks");
    for session in &victims {
        let stats = session.stats();
        assert_eq!(stats.completed, 6, "every victim pair survives");
        assert_eq!(stats.ingress_depth, 0);
        for done in session.take_completions() {
            assert_eq!(done.data.len(), 1, "payloads ride the migration intact");
        }
    }
    let src = Rank(storm.tenant().0 as u32);
    let comm = storm.comm().unwrap();
    for _ in 0..5 {
        storm
            .submit_post(ReceivePattern::new(src, TagSel::Any, comm))
            .expect_admitted("late receive for a parked message");
    }
    server.run_ticks(3).expect("late matches");
    let done = storm.take_completions();
    assert_eq!(done.len(), 5, "every parked message survives the migration");
    let mut payloads: Vec<u8> = done.iter().map(|d| d.data[0]).collect();
    payloads.sort_unstable();
    assert_eq!(payloads, vec![0x50, 0x51, 0x52, 0x53, 0x54]);
}

/// Sessions refuse what they must: cross-communicator posts, submissions
/// after close, sends on a wireless server.
#[test]
fn rejections_are_terminal_not_backpressure() {
    let mut server = server(roomy_config(), 4);
    let session = server.open_tenant_with(TenantConfig {
        capacity: 8,
        quantum: 4,
        comm: Some(CommId(1)),
    });
    let foreign = ReceivePattern::new(Rank(0), Tag(0), CommId(9));
    assert!(matches!(
        session.submit_post(foreign),
        Admission::Rejected { .. }
    ));
    session.close();
    assert!(matches!(
        session.submit_post(ReceivePattern::new(Rank(0), Tag(0), CommId(1))),
        Admission::Rejected { .. }
    ));
    assert_eq!(session.stats().rejected, 2);
}

/// Per-tenant observability: the labeled matchd instruments show up in the
/// live Prometheus exposition, and the finished series artifact carries one
/// section per tenant next to the global one.
#[cfg(feature = "metrics")]
#[test]
fn per_tenant_metrics_reach_prometheus_and_series() {
    let mut server = server(roomy_config(), 4);
    server.attach_series(2);
    let sessions: Vec<TenantSession> = (1..3)
        .map(|c| {
            server.open_tenant_with(TenantConfig {
                capacity: 4,
                quantum: 2,
                comm: Some(CommId(c)),
            })
        })
        .collect();
    for round in 0..6 {
        for session in &sessions {
            submit_pairs(session, 3, round);
        }
        server.tick().expect("tick");
    }
    let prom = server.prometheus().expect("metrics feature is on");
    for label in ["tenant=\"0\"", "tenant=\"1\""] {
        assert!(
            prom.contains(&format!("matchd_admitted_total{{{label}}}")),
            "missing admitted counter for {label} in:\n{prom}"
        );
        assert!(
            prom.contains(&format!("matchd_ingress_depth{{{label}}}")),
            "missing ingress gauge for {label}"
        );
    }
    assert!(
        prom.contains("matchd_backpressured_total{tenant=\"0\"}"),
        "the tight ingress must have backpressured tenant 0"
    );
    let series = server.finish_series().expect("series were attached");
    assert!(series.contains("\"global\""));
    assert!(series.contains("\"tenants\""));
    assert!(series.contains("\"0\"") && series.contains("\"1\""));
}

/// A submission ring much smaller than the DRR batch: the fair drain hits
/// `SubmissionRingFull` mid-batch, requeues the bounced posts at the front
/// of the tenant's ingress (credit refunded), and works the backlog off
/// ring-capacity-at-a-time across ticks — no error, no loss, no reorder.
#[test]
fn tiny_engine_ring_requeues_the_drain_batch_instead_of_failing_the_tick() {
    let mut server = server(roomy_config().with_ring_capacity(4), 4);
    let session = server.open_tenant_with(TenantConfig {
        capacity: 1024,
        quantum: 64,
        comm: Some(CommId(1)),
    });
    let n = 32u32;
    let mut handles = Vec::new();
    for i in 0..n {
        handles.push(
            session
                .submit_post(ReceivePattern::new(Rank(0), Tag(i), CommId(1)))
                .expect_admitted("roomy ingress"),
        );
    }

    // First round: the 4-slot ring bounds what one tick can move into the
    // engine; the rest is requeued, not dropped and not an error.
    let report = server.tick().expect("ring-full must not fail the tick");
    assert_eq!(
        report.drained, 4,
        "one tick drains exactly the ring capacity under a post flood"
    );
    assert_eq!(session.stats().drained, 4);
    assert_eq!(
        session.stats().ingress_depth,
        n as usize - 4,
        "bounced posts return to the ingress"
    );

    // The backlog drains ring-capacity-at-a-time; every post gets through.
    server.run_ticks(12).expect("backlog ticks");
    assert_eq!(session.stats().drained, u64::from(n));
    assert_eq!(session.stats().ingress_depth, 0);

    // Now the matching half: every post completes, in handle-mint order.
    for i in 0..n {
        session
            .submit_send(Tag(i), vec![i as u8])
            .expect_admitted("roomy ingress");
    }
    server.run_ticks(4).expect("send ticks");
    let done = session.take_completions();
    assert_eq!(
        done.len(),
        n as usize,
        "no post may be lost to backpressure"
    );
    for (i, d) in done.iter().enumerate() {
        assert_eq!(d.recv, handles[i], "per-tenant FIFO across the requeue");
        assert_eq!(d.data, vec![i as u8]);
    }
}
