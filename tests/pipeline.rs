//! Cross-crate integration: workload generation → DUMPI text → parser →
//! binary cache → replay, and the coherence of the statistics along the
//! way.

use otm_trace::{cache, dumpi, replay, ReplayConfig};

/// The full §V-A pipeline must be lossless: generating a trace, writing it
/// as DUMPI text, parsing it back and caching it must all yield the same
/// replay statistics as replaying the in-memory trace directly.
#[test]
fn dumpi_round_trip_preserves_replay_statistics() {
    let spec = otm_workloads::catalog()
        .into_iter()
        .find(|a| a.name == "AMG")
        .expect("AMG in catalog");
    let trace = (spec.generate)(3);

    let dir = std::env::temp_dir().join(format!("otm-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for rank in &trace.ranks {
        std::fs::write(
            dir.join(format!("dumpi-{}.txt", rank.rank.0)),
            dumpi::write_rank_text(&rank.ops),
        )
        .unwrap();
    }
    let cache_path = dir.join("amg.otmcache");
    let parsed = cache::load_or_parse(&dir, &cache_path, "AMG").unwrap();
    assert_eq!(parsed, trace, "text round trip must be lossless");

    let cached = cache::load(&cache_path).unwrap();
    assert_eq!(cached, trace, "binary cache must be lossless");

    for bins in [1usize, 32, 128] {
        let direct = replay(&trace, &ReplayConfig { bins });
        let roundtrip = replay(&parsed, &ReplayConfig { bins });
        assert_eq!(direct.match_stats, roundtrip.match_stats, "bins={bins}");
        assert_eq!(direct.call_dist, roundtrip.call_dist, "bins={bins}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Every Table II generator must replay cleanly at every Fig. 7 bin count:
/// queue depths must be monotonically non-increasing as bins grow, and the
/// matching totals must be bin-independent (binning changes cost, never
/// outcomes).
#[test]
fn all_apps_replay_consistently_across_bin_counts() {
    for spec in otm_workloads::catalog() {
        let trace = (spec.generate)(42);
        let reports: Vec<_> = [1usize, 32, 128]
            .iter()
            .map(|&bins| replay(&trace, &ReplayConfig { bins }))
            .collect();
        for pair in reports.windows(2) {
            assert!(
                pair[1].mean_queue_depth <= pair[0].mean_queue_depth + 1e-9,
                "{}: depth must not grow with bins ({} -> {})",
                spec.name,
                pair[0].mean_queue_depth,
                pair[1].mean_queue_depth
            );
        }
        let matched: Vec<u64> = reports
            .iter()
            .map(|r| r.match_stats.matched_on_arrival)
            .collect();
        assert!(
            matched.windows(2).all(|w| w[0] == w[1]),
            "{}: outcome changed",
            spec.name
        );
        let unexpected: Vec<u64> = reports.iter().map(|r| r.match_stats.unexpected).collect();
        assert!(
            unexpected.windows(2).all(|w| w[0] == w[1]),
            "{}: outcome changed",
            spec.name
        );
    }
}

/// Fig. 6 sanity over the whole catalog: the paper observes that most
/// applications rely primarily on p2p, exactly three use p2p exclusively,
/// two (the HILO pair) are collectives-only, and none use one-sided
/// operations.
#[test]
fn catalog_reproduces_figure_6_structure() {
    let reports: Vec<_> = otm_workloads::catalog()
        .into_iter()
        .map(|spec| replay(&(spec.generate)(42), &ReplayConfig { bins: 32 }))
        .collect();
    let p2p_only = reports
        .iter()
        .filter(|r| r.call_dist.p2p_fraction() == 1.0)
        .count();
    let collectives_only = reports
        .iter()
        .filter(|r| r.call_dist.collective_fraction() == 1.0)
        .count();
    let one_sided: u64 = reports.iter().map(|r| r.call_dist.one_sided).sum();
    let p2p_majority = reports
        .iter()
        .filter(|r| r.call_dist.p2p_fraction() > 0.5)
        .count();

    assert_eq!(p2p_only, 3, "three p2p-exclusive applications");
    assert_eq!(collectives_only, 2, "the two HILO variants");
    assert_eq!(one_sided, 0, "no one-sided traffic anywhere");
    assert!(
        p2p_majority >= 10,
        "most applications are p2p-dominated (got {p2p_majority})"
    );
}

/// The Fig. 7 headline: binning collapses queue depth. Across the whole
/// catalog the average must drop by well over half at 32 bins and further
/// at 128.
#[test]
fn bin_sweep_collapses_average_queue_depth() {
    let mut avg = [0.0f64; 3];
    let catalog = otm_workloads::catalog();
    for spec in &catalog {
        let trace = (spec.generate)(42);
        for (i, &bins) in [1usize, 32, 128].iter().enumerate() {
            avg[i] += replay(&trace, &ReplayConfig { bins }).mean_queue_depth;
        }
    }
    for a in &mut avg {
        *a /= catalog.len() as f64;
    }
    assert!(
        avg[0] > 1.0,
        "1-bin average should be substantial, got {}",
        avg[0]
    );
    assert!(
        avg[1] < 0.2 * avg[0],
        "32 bins must cut depth by >80% ({} -> {})",
        avg[0],
        avg[1]
    );
    assert!(
        avg[2] < avg[1] + 1e-12,
        "128 bins must not be worse than 32"
    );
}

/// The BoxLib CNS anchor numbers from §V-B: maximum queue depth around 25
/// at one bin, collapsing to a handful at 32 bins and near one at 128.
#[test]
fn boxlib_cns_max_depth_matches_the_paper_shape() {
    let spec = otm_workloads::catalog()
        .into_iter()
        .find(|a| a.name == "BoxLib CNS")
        .unwrap();
    let trace = (spec.generate)(42);
    let d1 = replay(&trace, &ReplayConfig { bins: 1 }).max_queue_depth;
    let d32 = replay(&trace, &ReplayConfig { bins: 32 }).max_queue_depth;
    let d128 = replay(&trace, &ReplayConfig { bins: 128 }).max_queue_depth;
    assert!((20..=30).contains(&d1), "paper: 25, got {d1}");
    assert!(d32 <= 8, "paper: 3, got {d32}");
    assert!(d128 <= 4, "paper: 1, got {d128}");
}
