//! Property-based tests (proptest): randomized workloads over every engine,
//! asserting oracle equivalence and structural invariants.

use mpi_matching::binned::BinnedMatcher;
use mpi_matching::oracle::{MatchEvent, Oracle};
use mpi_matching::rank_based::RankBasedMatcher;
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::Matcher;
use otm::OtmEngine;
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use otm_trace::emul::FourIndexMatcher;
use proptest::prelude::*;

/// Strategy: one matching event over a small (rank, tag) space — small so
/// wildcards and duplicates collide often.
fn event_strategy() -> impl Strategy<Value = MatchEvent> {
    let src = 0u32..3;
    let tag = 0u32..3;
    prop_oneof![
        4 => (src.clone(), tag.clone())
            .prop_map(|(s, t)| MatchEvent::Arrive(Envelope::world(Rank(s), Tag(t)))),
        3 => (src.clone(), tag.clone())
            .prop_map(|(s, t)| MatchEvent::Post(ReceivePattern::exact(Rank(s), Tag(t)))),
        1 => tag.clone().prop_map(|t| MatchEvent::Post(ReceivePattern::any_source(Tag(t)))),
        1 => src.prop_map(|s| MatchEvent::Post(ReceivePattern::any_tag(Rank(s)))),
        1 => Just(MatchEvent::Post(ReceivePattern::any_any())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All sequential engines equal the oracle on arbitrary event streams.
    #[test]
    fn sequential_engines_equal_oracle(events in prop::collection::vec(event_strategy(), 0..200)) {
        let expect = Oracle::run(&events);
        let mut engines: Vec<Box<dyn Matcher>> = vec![
            Box::new(TraditionalMatcher::new()),
            Box::new(BinnedMatcher::new(1)),
            Box::new(BinnedMatcher::new(16)),
            Box::new(RankBasedMatcher::new()),
            Box::new(FourIndexMatcher::new(1)),
            Box::new(FourIndexMatcher::new(16)),
        ];
        for engine in &mut engines {
            let got = Oracle::drive(engine.as_mut(), &events).unwrap();
            prop_assert_eq!(&got, &expect, "{} diverged", engine.strategy_name());
            prop_assert!(got.is_consistent());
        }
    }

    /// The parallel engine equals the oracle when arrivals are chunked into
    /// blocks of arbitrary size at arbitrary post boundaries.
    #[test]
    fn parallel_engine_equals_oracle(
        events in prop::collection::vec(event_strategy(), 0..120),
        block in 1usize..9,
    ) {
        let expect = Oracle::run(&events);
        let config = MatchConfig::default()
            .with_block_threads(block)
            .with_max_receives(1024)
            .with_max_unexpected(1024)
            .with_bins(16);
        let mut engine = OtmEngine::new(config).unwrap();
        let mut asg = mpi_matching::Assignment::default();
        let mut next_recv = 0u64;
        let mut next_msg = 0u64;
        let mut pending: Vec<(Envelope, mpi_matching::MsgHandle)> = Vec::new();
        let flush = |engine: &mut OtmEngine,
                         pending: &mut Vec<(Envelope, mpi_matching::MsgHandle)>,
                         asg: &mut mpi_matching::Assignment| {
            for d in engine.process_stream(pending).unwrap() {
                match d {
                    otm::Delivery::Matched { msg, recv } => {
                        asg.msg_to_recv.insert(msg, Some(recv));
                        asg.recv_to_msg.insert(recv, Some(msg));
                    }
                    otm::Delivery::Unexpected { msg } => {
                        asg.msg_to_recv.insert(msg, None);
                    }
                }
            }
            pending.clear();
        };
        for ev in &events {
            match *ev {
                MatchEvent::Post(p) => {
                    // Posts drain the pending arrivals first (QP ordering).
                    flush(&mut engine, &mut pending, &mut asg);
                    let h = mpi_matching::RecvHandle(next_recv);
                    next_recv += 1;
                    match engine.post(p, h).unwrap() {
                        mpi_matching::PostResult::Matched(m) => {
                            asg.recv_to_msg.insert(h, Some(m));
                            asg.msg_to_recv.insert(m, Some(h));
                        }
                        mpi_matching::PostResult::Posted => {
                            asg.recv_to_msg.insert(h, None);
                        }
                    }
                }
                MatchEvent::Arrive(env) => {
                    pending.push((env, mpi_matching::MsgHandle(next_msg)));
                    next_msg += 1;
                }
            }
        }
        flush(&mut engine, &mut pending, &mut asg);
        prop_assert_eq!(&asg, &expect);
        prop_assert!(asg.is_consistent());
    }

    /// Queue-length invariant: posts+arrivals conserve — every event is
    /// matched exactly once or sits in exactly one queue.
    #[test]
    fn conservation_of_events(events in prop::collection::vec(event_strategy(), 0..200)) {
        let mut m = TraditionalMatcher::new();
        let asg = Oracle::drive(&mut m, &events).unwrap();
        let posts = events.iter().filter(|e| matches!(e, MatchEvent::Post(_))).count();
        let arrivals = events.len() - posts;
        let pairs = asg.pairs();
        prop_assert_eq!(m.prq_len(), posts - pairs);
        prop_assert_eq!(m.umq_len(), arrivals - pairs);
        let stats = m.stats();
        prop_assert_eq!(stats.matched_on_arrival + stats.matched_on_post, pairs as u64);
    }

    /// The analyzer's four-index matcher records depth samples for every
    /// event and its outcome counters always sum up.
    #[test]
    fn four_index_stats_are_complete(
        events in prop::collection::vec(event_strategy(), 0..150),
        bins in 1usize..64,
    ) {
        let mut m = FourIndexMatcher::new(bins);
        Oracle::drive(&mut m, &events).unwrap();
        let stats = m.stats();
        let posts = events.iter().filter(|e| matches!(e, MatchEvent::Post(_))).count() as u64;
        let arrivals = events.len() as u64 - posts;
        prop_assert_eq!(stats.umq_search.count, posts);
        prop_assert_eq!(stats.prq_search.count, arrivals);
        prop_assert_eq!(stats.matched_on_post + stats.posted, posts);
        prop_assert_eq!(stats.matched_on_arrival + stats.unexpected, arrivals);
    }
}
