//! Property-based tests (proptest): randomized workloads over every engine,
//! asserting oracle equivalence and structural invariants.

mod support;

use mpi_matching::binned::BinnedMatcher;
use mpi_matching::oracle::{MatchEvent, Oracle};
use mpi_matching::rank_based::RankBasedMatcher;
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::{Matcher, MatchingBackend};
use otm::{Command, CommandOutcome, OtmEngine, SequentialOtm};
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{CommId, Envelope, MatchConfig, PackingPolicy, Rank, ReceivePattern, Tag};
use otm_trace::emul::FourIndexMatcher;
use proptest::prelude::*;
use support::{
    assert_drain_failure_contract, assert_packing_equivalence, assert_ring_equivalence,
    drain_then_fallback, fallback_oracle_config, fallback_with_queue, to_command,
};

/// Strategy: one matching event over a small (rank, tag) space — small so
/// wildcards and duplicates collide often.
fn event_strategy() -> impl Strategy<Value = MatchEvent> {
    let src = 0u32..3;
    let tag = 0u32..3;
    prop_oneof![
        4 => (src.clone(), tag.clone())
            .prop_map(|(s, t)| MatchEvent::Arrive(Envelope::world(Rank(s), Tag(t)))),
        3 => (src.clone(), tag.clone())
            .prop_map(|(s, t)| MatchEvent::Post(ReceivePattern::exact(Rank(s), Tag(t)))),
        1 => tag.clone().prop_map(|t| MatchEvent::Post(ReceivePattern::any_source(Tag(t)))),
        1 => src.prop_map(|s| MatchEvent::Post(ReceivePattern::any_tag(Rank(s)))),
        1 => Just(MatchEvent::Post(ReceivePattern::any_any())),
    ]
}

/// Strategy: one event tagged with its communicator shard — an interleaved
/// multi-communicator stream for the command-queue property.
fn comm_event_strategy() -> impl Strategy<Value = (u16, MatchEvent)> {
    let comm = 0u16..3;
    let src = 0u32..3;
    let tag = 0u32..3;
    (comm, src, tag, 0u8..10).prop_map(|(c, s, t, kind)| {
        let comm = CommId(c + 1);
        let ev = match kind {
            0..=3 => MatchEvent::Arrive(Envelope::new(Rank(s), Tag(t), comm)),
            4..=6 => MatchEvent::Post(ReceivePattern::new(Rank(s), Tag(t), comm)),
            7 => MatchEvent::Post(ReceivePattern::new(SourceSel::Any, Tag(t), comm)),
            8 => MatchEvent::Post(ReceivePattern::new(Rank(s), TagSel::Any, comm)),
            _ => MatchEvent::Post(ReceivePattern::new(SourceSel::Any, TagSel::Any, comm)),
        };
        (c, ev)
    })
}

/// Strategy: an arbitrary engine-stats snapshot with fields bounded to 32
/// bits, so `merge`'s component-wise sums can never overflow.
fn stats_snapshot_strategy() -> impl Strategy<Value = otm::StatsSnapshot> {
    proptest::collection::vec(0u64..(1 << 32), 16).prop_map(|v| otm::StatsSnapshot {
        blocks: v[0],
        messages: v[1],
        matched: v[2],
        unexpected: v[3],
        optimistic_ok: v[4],
        direct_conflicts: v[5],
        induced_resolutions: v[6],
        fast_path: v[7],
        slow_path: v[8],
        search_depth_sum: v[9],
        search_count: v[10],
        search_depth_max: v[11],
        matched_on_post: v[12],
        posted: v[13],
        umq_depth_sum: v[14],
        umq_search_count: v[15],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All sequential engines equal the oracle on arbitrary event streams.
    #[test]
    fn sequential_engines_equal_oracle(events in prop::collection::vec(event_strategy(), 0..200)) {
        let expect = Oracle::run(&events);
        let mut engines: Vec<Box<dyn Matcher>> = vec![
            Box::new(TraditionalMatcher::new()),
            Box::new(BinnedMatcher::new(1)),
            Box::new(BinnedMatcher::new(16)),
            Box::new(RankBasedMatcher::new()),
            Box::new(FourIndexMatcher::new(1)),
            Box::new(FourIndexMatcher::new(16)),
        ];
        for engine in &mut engines {
            let got = Oracle::drive(engine.as_mut(), &events).unwrap();
            prop_assert_eq!(&got, &expect, "{} diverged", engine.strategy_name());
            prop_assert!(got.is_consistent());
        }
    }

    /// The parallel engine equals the oracle when arrivals are chunked into
    /// blocks of arbitrary size at arbitrary post boundaries.
    #[test]
    fn parallel_engine_equals_oracle(
        events in prop::collection::vec(event_strategy(), 0..120),
        block in 1usize..9,
    ) {
        let expect = Oracle::run(&events);
        let config = MatchConfig::default()
            .with_block_threads(block)
            .with_max_receives(1024)
            .with_max_unexpected(1024)
            .with_bins(16);
        let mut engine = OtmEngine::new(config).unwrap();
        let mut asg = mpi_matching::Assignment::default();
        let mut next_recv = 0u64;
        let mut next_msg = 0u64;
        let mut pending: Vec<(Envelope, mpi_matching::MsgHandle)> = Vec::new();
        let flush = |engine: &mut OtmEngine,
                         pending: &mut Vec<(Envelope, mpi_matching::MsgHandle)>,
                         asg: &mut mpi_matching::Assignment| {
            for d in engine.process_stream(pending).unwrap() {
                match d {
                    otm::Delivery::Matched { msg, recv } => {
                        asg.msg_to_recv.insert(msg, Some(recv));
                        asg.recv_to_msg.insert(recv, Some(msg));
                    }
                    otm::Delivery::Unexpected { msg } => {
                        asg.msg_to_recv.insert(msg, None);
                    }
                }
            }
            pending.clear();
        };
        for ev in &events {
            match *ev {
                MatchEvent::Post(p) => {
                    // Posts drain the pending arrivals first (QP ordering).
                    flush(&mut engine, &mut pending, &mut asg);
                    let h = mpi_matching::RecvHandle(next_recv);
                    next_recv += 1;
                    match engine.post(p, h).unwrap() {
                        mpi_matching::PostResult::Matched(m) => {
                            asg.recv_to_msg.insert(h, Some(m));
                            asg.msg_to_recv.insert(m, Some(h));
                        }
                        mpi_matching::PostResult::Posted => {
                            asg.recv_to_msg.insert(h, None);
                        }
                    }
                }
                MatchEvent::Arrive(env) => {
                    pending.push((env, mpi_matching::MsgHandle(next_msg)));
                    next_msg += 1;
                }
            }
        }
        flush(&mut engine, &mut pending, &mut asg);
        prop_assert_eq!(&asg, &expect);
        prop_assert!(asg.is_consistent());
    }

    /// Queue-length invariant: posts+arrivals conserve — every event is
    /// matched exactly once or sits in exactly one queue.
    #[test]
    fn conservation_of_events(events in prop::collection::vec(event_strategy(), 0..200)) {
        let mut m = TraditionalMatcher::new();
        let asg = Oracle::drive(&mut m, &events).unwrap();
        let posts = events.iter().filter(|e| matches!(e, MatchEvent::Post(_))).count();
        let arrivals = events.len() - posts;
        let pairs = asg.pairs();
        prop_assert_eq!(m.prq_len(), posts - pairs);
        prop_assert_eq!(m.umq_len(), arrivals - pairs);
        let stats = m.stats();
        prop_assert_eq!(stats.matched_on_arrival + stats.matched_on_post, pairs as u64);
    }

    /// Interleaved multi-communicator posts and arrivals pushed through the
    /// engine's command queue and drained in blocks produce, for every
    /// communicator, exactly the serialized oracle's match set: matching is
    /// communicator-local and the queue preserves per-communicator order.
    #[test]
    fn command_queue_interleavings_equal_serialized_oracle(
        events in prop::collection::vec(comm_event_strategy(), 0..160),
    ) {
        use mpi_matching::{Assignment, MsgHandle, PostResult, RecvHandle};
        const COMMS: usize = 3;
        const BASE: u64 = 1_000_000;
        let config = MatchConfig::default()
            .with_block_threads(4)
            .with_max_receives(1024)
            .with_max_unexpected(1024)
            .with_bins(16);
        let engine = OtmEngine::new(config).unwrap();

        // Submit everything in the generated global interleaving.
        let mut next_recv = [0u64; COMMS];
        let mut next_msg = [0u64; COMMS];
        let mut submitted: Vec<(u16, Command)> = Vec::new();
        for &(c, ev) in &events {
            let base = c as u64 * BASE;
            let cmd = match ev {
                MatchEvent::Post(pattern) => {
                    let handle = RecvHandle(base + next_recv[c as usize]);
                    next_recv[c as usize] += 1;
                    Command::Post { pattern, handle }
                }
                MatchEvent::Arrive(env) => {
                    let msg = MsgHandle(base + next_msg[c as usize]);
                    next_msg[c as usize] += 1;
                    Command::Arrival { env, msg }
                }
            };
            engine.submit(cmd).unwrap();
            submitted.push((c, cmd));
        }
        let report = engine.drain();
        prop_assert!(report.error.is_none(), "drain failed: {:?}", report.error);
        prop_assert_eq!(report.outcomes.len(), submitted.len());

        // Outcomes come back in submission order; rebuild each
        // communicator's observed assignment from the pairing.
        let mut observed: Vec<Assignment> = (0..COMMS).map(|_| Assignment::default()).collect();
        for (&(c, cmd), outcome) in submitted.iter().zip(&report.outcomes) {
            let asg = &mut observed[c as usize];
            match (cmd, outcome) {
                (
                    Command::Post { handle, .. },
                    CommandOutcome::Post {
                        handle: out,
                        result: PostResult::Matched(m),
                    },
                ) => {
                    prop_assert_eq!(*out, handle, "outcome echoes the wrong handle");
                    asg.recv_to_msg.insert(handle, Some(*m));
                    asg.msg_to_recv.insert(*m, Some(handle));
                }
                (
                    Command::Post { handle, .. },
                    CommandOutcome::Post {
                        handle: out,
                        result: PostResult::Posted,
                    },
                ) => {
                    prop_assert_eq!(*out, handle, "outcome echoes the wrong handle");
                    asg.recv_to_msg.entry(handle).or_insert(None);
                }
                (Command::Arrival { msg, .. }, CommandOutcome::Delivery(d)) => match *d {
                    otm::Delivery::Matched { recv, .. } => {
                        asg.msg_to_recv.insert(msg, Some(recv));
                        asg.recv_to_msg.insert(recv, Some(msg));
                    }
                    otm::Delivery::Unexpected { .. } => {
                        asg.msg_to_recv.entry(msg).or_insert(None);
                    }
                },
                _ => prop_assert!(false, "outcome kind does not match its command"),
            }
        }

        // Per communicator, the serialized oracle over that communicator's
        // subsequence (translated into its handle range) must agree.
        for c in 0..COMMS {
            let sub: Vec<MatchEvent> = events
                .iter()
                .filter(|&&(cc, _)| cc as usize == c)
                .map(|&(_, ev)| ev)
                .collect();
            let dense = Oracle::run(&sub);
            let base = c as u64 * BASE;
            let mut expect = Assignment::default();
            for (r, m) in dense.recv_to_msg {
                expect
                    .recv_to_msg
                    .insert(RecvHandle(r.0 + base), m.map(|m| MsgHandle(m.0 + base)));
            }
            for (m, r) in dense.msg_to_recv {
                expect
                    .msg_to_recv
                    .insert(MsgHandle(m.0 + base), r.map(|r| RecvHandle(r.0 + base)));
            }
            prop_assert!(observed[c].is_consistent());
            prop_assert_eq!(&observed[c], &expect, "communicator {} diverged", c);
        }
    }

    /// The loss-free fallback oracle: for every drainable backend, falling
    /// back with commands still sitting in the submission queue is
    /// equivalent to draining the queue first and falling back afterwards.
    /// Both paths replay their [`FallbackState`] into a fresh software
    /// matcher the way the service migrates (state first — which must not
    /// match — then pending commands, which may); the resulting match
    /// assignment and residual queues must be identical. Synchronous
    /// backends take the same path with an empty pending tail, pinning the
    /// snapshot-totality contract across the whole fleet.
    #[test]
    fn fallback_with_pending_queue_equals_drain_then_fallback(
        events in prop::collection::vec(event_strategy(), 1..80),
        cut_pct in 0usize..100,
    ) {
        let cut = events.len() * cut_pct / 100;
        let factories: Vec<(&'static str, fn() -> Box<dyn MatchingBackend>)> = vec![
            ("traditional", || Box::new(TraditionalMatcher::new())),
            ("binned", || Box::new(BinnedMatcher::new(16))),
            ("four-index", || Box::new(FourIndexMatcher::new(16))),
            ("optimistic-seq", || {
                Box::new(SequentialOtm::new(fallback_oracle_config()).unwrap())
            }),
            ("optimistic-dpa", || {
                Box::new(OtmEngine::new(fallback_oracle_config()).unwrap())
            }),
        ];
        for (name, make) in factories {
            let queued = fallback_with_queue(make(), &events, cut);
            let drained = drain_then_fallback(make(), &events, cut);
            prop_assert_eq!(queued, drained, "{} diverged", name);
        }
    }

    /// The packing-equivalence property: draining the same interleaved
    /// multi-communicator stream under the cross-communicator scheduler
    /// produces exactly the consecutive drain's outcomes, command for
    /// command — the block-filling reordering is invisible to MPI matching
    /// semantics. (`tests/packing_equivalence.rs` is the seeded
    /// deterministic companion.)
    #[test]
    fn packed_drain_equals_consecutive_drain(
        events in prop::collection::vec(comm_event_strategy(), 0..160),
    ) {
        let (mut next_recv, mut next_msg) = (0u64, 0u64);
        let cmds: Vec<mpi_matching::PendingCommand> = events
            .iter()
            .map(|(_, ev)| to_command(ev, &mut next_recv, &mut next_msg))
            .collect();
        assert_packing_equivalence(fallback_oracle_config(), &cmds);
    }

    /// The bounded-ring property: lane rotation, per-lane quotas and
    /// capacity-bounded submission rings composed together still satisfy
    /// packed≡consecutive — the same stream pushed through tiny rings,
    /// draining inline on every `SubmissionRingFull` bounce, equals the
    /// unbounded mutex-path oracle under either packing policy. The helper
    /// also asserts no-livelock: every forced inline drain consumes at
    /// least one pending command, so the submit-retry loop always makes
    /// progress. (`tests/packing_equivalence.rs` has the seeded
    /// deterministic companion that runs in the nightly TSan job.)
    #[test]
    fn bounded_rings_with_rotation_and_quota_preserve_equivalence(
        events in prop::collection::vec(comm_event_strategy(), 0..160),
        quota in 1usize..5,
        capacity in 2usize..17,
    ) {
        let (mut next_recv, mut next_msg) = (0u64, 0u64);
        let cmds: Vec<mpi_matching::PendingCommand> = events
            .iter()
            .map(|(_, ev)| to_command(ev, &mut next_recv, &mut next_msg))
            .collect();
        let config = fallback_oracle_config()
            .with_ring_capacity(capacity)
            .with_lane_quota(Some(quota));
        assert_ring_equivalence(config, &cmds);
    }

    /// Injected-failure companion: with tables sized to overflow
    /// mid-stream, both packing policies keep the `DrainReport` contract —
    /// outcomes plus the requeued/unapplied tail partition the stream,
    /// both keep submission order, and each communicator's applied
    /// commands are a prefix of its subsequence.
    #[test]
    fn packed_drain_failure_contract(
        events in prop::collection::vec(comm_event_strategy(), 1..160),
    ) {
        let config = MatchConfig::default()
            .with_block_threads(4)
            .with_max_receives(8)
            .with_max_unexpected(8)
            .with_bins(4);
        let (mut next_recv, mut next_msg) = (0u64, 0u64);
        let cmds: Vec<mpi_matching::PendingCommand> = events
            .iter()
            .map(|(_, ev)| to_command(ev, &mut next_recv, &mut next_msg))
            .collect();
        for packing in [PackingPolicy::Consecutive, PackingPolicy::CrossComm] {
            assert_drain_failure_contract(config.clone(), packing, &cmds);
        }
    }

    /// The analyzer's four-index matcher records depth samples for every
    /// event and its outcome counters always sum up.
    #[test]
    fn four_index_stats_are_complete(
        events in prop::collection::vec(event_strategy(), 0..150),
        bins in 1usize..64,
    ) {
        let mut m = FourIndexMatcher::new(bins);
        Oracle::drive(&mut m, &events).unwrap();
        let stats = m.stats();
        let posts = events.iter().filter(|e| matches!(e, MatchEvent::Post(_))).count() as u64;
        let arrivals = events.len() as u64 - posts;
        prop_assert_eq!(stats.umq_search.count, posts);
        prop_assert_eq!(stats.prq_search.count, arrivals);
        prop_assert_eq!(stats.matched_on_post + stats.posted, posts);
        prop_assert_eq!(stats.matched_on_arrival + stats.unexpected, arrivals);
    }

    /// The chaos oracle over random seeds: a hostile wire (drops,
    /// duplicates, reorders and delays at 10%+ each, recovered by the
    /// reliability protocol) never changes a matched (receive, message)
    /// pair relative to the fault-free run — on the synchronous path and
    /// through the command-queue drain alike, under go-back-N and under
    /// selective repeat, across sender window sizes, and with the reorder
    /// rate cranked far above the drop rate (the regime where the staging
    /// buffer does the most work). A fault budget keeps every case live;
    /// past it the wire is perfect.
    #[test]
    fn chaos_faulty_wire_preserves_matched_pairs(
        workload_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        queued in any::<bool>(),
        selective in any::<bool>(),
        reorder_heavy in any::<bool>(),
        window in prop::option::of(4usize..48),
    ) {
        let reorder = if reorder_heavy { 350 } else { 120 };
        let plan = otm_base::FaultPlan::new(fault_seed)
            .with_drop_permille(120)
            .with_duplicate_permille(120)
            .with_reorder_permille(reorder)
            .with_delay_permille(100)
            .with_max_faults(300);
        let mode = if selective {
            otm_base::ReliabilityMode::SelectiveRepeat
        } else {
            otm_base::ReliabilityMode::GoBackN
        };
        support::chaos::assert_chaos_equivalence_mode(
            workload_seed, plan, 3, 16, queued, mode, window,
        );
    }

    /// `StatsSnapshot::merge` followed by `delta` recovers the merged-in
    /// contribution exactly: the algebra behind interval measurement
    /// (flight-recorder deltas) and per-rank aggregation. The search-depth
    /// high-water mark is the one non-counter field — `delta` keeps the
    /// current (merged) maximum rather than subtracting.
    #[test]
    fn stats_merge_then_delta_roundtrips(
        a in stats_snapshot_strategy(),
        b in stats_snapshot_strategy(),
    ) {
        let merged = a.merge(&b);
        let recovered = merged.delta(&a);
        let expected = otm::StatsSnapshot {
            search_depth_max: a.search_depth_max.max(b.search_depth_max),
            ..b.clone()
        };
        prop_assert_eq!(recovered, expected);
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        // Delta against itself zeroes every counter; the high-water mark
        // stays (it upper-bounds the empty interval's maximum).
        let self_delta = a.delta(&a);
        let zeroed = otm::StatsSnapshot {
            search_depth_max: a.search_depth_max,
            ..Default::default()
        };
        prop_assert_eq!(self_delta, zeroed);
    }

    /// The matchd fairness property (deterministic companion:
    /// `tests/tenant_fairness.rs`): arbitrary multi-tenant submission
    /// schedules with arbitrary per-tenant quanta, pushed through the fair
    /// drain, (a) never let one tenant drain more than its deficit cap in a
    /// single round, (b) lose nothing — every admitted pair completes once
    /// the schedule settles — and (c) keep per-tenant FIFO: completions
    /// come back in handle-mint order.
    #[test]
    fn matchd_fair_drain_is_bounded_lossless_and_fifo(
        rounds in prop::collection::vec(prop::collection::vec(0usize..5, 3), 1..25),
        quanta in prop::collection::vec(1usize..9, 3),
    ) {
        use dpa_sim::{MatchServer, MatchdConfig, TenantConfig};
        const CAPACITY: usize = 32;
        const CAP_QUANTA: u64 = 4;
        let config = MatchConfig::default()
            .with_block_threads(4)
            .with_max_receives(1 << 14)
            .with_max_unexpected(1 << 14)
            .with_bins(16)
            .with_packing(PackingPolicy::CrossComm)
            .with_lane_quota(Some(4));
        let mut server = MatchServer::new(
            config,
            MatchdConfig {
                tenant: TenantConfig::default(),
                deficit_cap_quanta: CAP_QUANTA,
                ..MatchdConfig::default()
            },
        )
        .unwrap();
        let sessions: Vec<dpa_sim::TenantSession> = quanta
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                server.open_tenant_with(TenantConfig {
                    capacity: CAPACITY,
                    quantum: q,
                    comm: Some(CommId(i as u16 + 1)),
                })
            })
            .collect();
        let mut admitted = vec![0u64; sessions.len()];
        let mut drained_before = vec![0u64; sessions.len()];
        for (r, round) in rounds.iter().enumerate() {
            for (i, (&pairs, session)) in round.iter().zip(&sessions).enumerate() {
                for p in 0..pairs {
                    // Pairs are admitted atomically: skip when the ingress
                    // cannot hold both halves, so every admitted post has
                    // its message and "lossless" means `completed == admitted`.
                    if session.stats().ingress_depth + 2 > CAPACITY {
                        break;
                    }
                    let tag = Tag(((r * 31 + p) % 11) as u32);
                    let src = Rank(session.tenant().0 as u32);
                    let pattern = ReceivePattern::new(src, tag, session.comm().unwrap());
                    prop_assert!(session.submit_post(pattern).is_admitted());
                    prop_assert!(session.submit_send(tag, vec![p as u8]).is_admitted());
                    admitted[i] += 1;
                }
            }
            server.tick().unwrap();
            for (i, session) in sessions.iter().enumerate() {
                let drained = session.stats().drained;
                prop_assert!(
                    drained - drained_before[i] <= quanta[i] as u64 * CAP_QUANTA,
                    "tenant {} drained {} in one round (quantum {}, cap {})",
                    i, drained - drained_before[i], quanta[i], CAP_QUANTA
                );
                drained_before[i] = drained;
            }
        }
        for _ in 0..200 {
            if sessions.iter().all(|s| s.stats().ingress_depth == 0) {
                break;
            }
            server.tick().unwrap();
        }
        server.run_ticks(2).unwrap();
        for (i, session) in sessions.iter().enumerate() {
            let stats = session.stats();
            prop_assert_eq!(stats.ingress_depth, 0, "tenant {} never settled", i);
            prop_assert_eq!(stats.completed, admitted[i], "tenant {} lost work", i);
            let seqs: Vec<u64> = session
                .take_completions()
                .iter()
                .map(|d| d.recv.0 & ((1u64 << 48) - 1))
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(seqs, sorted, "tenant {} completions out of mint order", i);
        }
    }
}
