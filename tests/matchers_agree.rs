//! Every matching engine in the workspace — the traditional list, the
//! bin-based and rank-based baselines, the analyzer's four-index emulation,
//! and the parallel optimistic engine — must compute the same
//! post/arrival pairing as the sequential oracle, because MPI matching is a
//! deterministic function of the event sequence.

use mpi_matching::binned::BinnedMatcher;
use mpi_matching::oracle::{MatchEvent, Oracle};
use mpi_matching::rank_based::RankBasedMatcher;
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::Matcher;
use otm::SequentialOtm;
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use otm_trace::emul::FourIndexMatcher;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_events(rng: &mut SmallRng, len: usize, ranks: u32, tags: u32) -> Vec<MatchEvent> {
    (0..len)
        .map(|_| {
            let src = Rank(rng.gen_range(0..ranks));
            let tag = Tag(rng.gen_range(0..tags));
            match rng.gen_range(0..9) {
                0..=3 => MatchEvent::Arrive(Envelope::world(src, tag)),
                4..=6 => MatchEvent::Post(ReceivePattern::exact(src, tag)),
                7 => MatchEvent::Post(ReceivePattern::any_source(tag)),
                _ => MatchEvent::Post(ReceivePattern::any_tag(src)),
            }
        })
        .collect()
}

fn engines() -> Vec<Box<dyn Matcher>> {
    vec![
        Box::new(TraditionalMatcher::new()),
        Box::new(BinnedMatcher::new(1)),
        Box::new(BinnedMatcher::new(32)),
        Box::new(BinnedMatcher::new(128)),
        Box::new(RankBasedMatcher::new()),
        Box::new(FourIndexMatcher::new(1)),
        Box::new(FourIndexMatcher::new(64)),
        Box::new(
            SequentialOtm::new(
                MatchConfig::default()
                    .with_max_receives(4096)
                    .with_max_unexpected(4096),
            )
            .expect("engine"),
        ),
    ]
}

#[test]
fn all_engines_agree_with_the_oracle_on_random_workloads() {
    let mut rng = SmallRng::seed_from_u64(2024);
    for case in 0..8 {
        let events = random_events(&mut rng, 300, 3, 3);
        let expect = Oracle::run(&events);
        for mut engine in engines() {
            let got = Oracle::drive(engine.as_mut(), &events).unwrap();
            assert_eq!(
                got,
                expect,
                "case {case}: {} diverged from the oracle",
                engine.strategy_name()
            );
        }
    }
}

#[test]
fn all_engines_agree_on_wildcard_heavy_workloads() {
    let mut rng = SmallRng::seed_from_u64(99);
    let events: Vec<MatchEvent> = (0..400)
        .map(|_| {
            let src = Rank(rng.gen_range(0..2));
            let tag = Tag(rng.gen_range(0..2));
            match rng.gen_range(0..6) {
                0 | 1 => MatchEvent::Arrive(Envelope::world(src, tag)),
                2 => MatchEvent::Post(ReceivePattern::exact(src, tag)),
                3 => MatchEvent::Post(ReceivePattern::any_source(tag)),
                4 => MatchEvent::Post(ReceivePattern::any_tag(src)),
                _ => MatchEvent::Post(ReceivePattern::any_any()),
            }
        })
        .collect();
    let expect = Oracle::run(&events);
    for mut engine in engines() {
        let got = Oracle::drive(engine.as_mut(), &events).unwrap();
        assert_eq!(got, expect, "{} diverged", engine.strategy_name());
    }
}

#[test]
fn queue_lengths_agree_across_engines() {
    // Outcomes determine queue lengths, so every engine must report the
    // same PRQ/UMQ sizes after the same workload.
    let mut rng = SmallRng::seed_from_u64(5);
    let events = random_events(&mut rng, 250, 4, 4);
    let mut oracle = Oracle::new();
    Oracle::drive(&mut oracle, &events).unwrap();
    for mut engine in engines() {
        Oracle::drive(engine.as_mut(), &events).unwrap();
        assert_eq!(
            engine.prq_len(),
            oracle.prq_len(),
            "{}",
            engine.strategy_name()
        );
        assert_eq!(
            engine.umq_len(),
            oracle.umq_len(),
            "{}",
            engine.strategy_name()
        );
    }
}

#[test]
fn probe_agrees_with_the_oracle_after_every_event() {
    // MPI_Iprobe semantics: the oldest matching unexpected message. Since
    // outcomes are deterministic, every engine's probe must agree with the
    // oracle's at every point of the run, for several probe patterns.
    let mut rng = SmallRng::seed_from_u64(31);
    let events = random_events(&mut rng, 150, 3, 3);
    let probes = [
        ReceivePattern::exact(Rank(0), Tag(0)),
        ReceivePattern::any_source(Tag(1)),
        ReceivePattern::any_tag(Rank(2)),
        ReceivePattern::any_any(),
    ];
    let mut oracle = Oracle::new();
    let mut others = engines();
    for (i, ev) in events.iter().enumerate() {
        Oracle::drive(&mut oracle, std::slice::from_ref(ev)).unwrap();
        for engine in &mut others {
            Oracle::drive(engine.as_mut(), std::slice::from_ref(ev)).unwrap();
        }
        for p in &probes {
            let expect = oracle.probe(p);
            for engine in &others {
                assert_eq!(
                    engine.probe(p),
                    expect,
                    "event {i}: {} probe({p}) diverged",
                    engine.strategy_name()
                );
            }
        }
    }
}

#[test]
fn strategy_names_are_distinct() {
    let names: Vec<&str> = engines().iter().map(|e| e.strategy_name()).collect();
    let mut unique: Vec<&str> = names.clone();
    unique.dedup();
    // binned/four-index appear at several bin counts; collapse those first.
    let mut set: std::collections::HashSet<&str> = names.iter().copied().collect();
    set.insert("oracle");
    assert!(
        set.len() >= 5,
        "expected at least five distinct strategies, got {set:?}"
    );
}
