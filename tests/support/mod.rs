//! Shared harness for the loss-free fallback oracle, used by both the
//! proptest property (`tests/properties.rs`) and its seeded deterministic
//! companion (`tests/fallback_total.rs`).
//!
//! The oracle: for every drainable backend, *falling back with commands
//! still sitting in the submission queue* must be equivalent to *draining
//! the queue first and falling back afterwards*. Both paths replay their
//! [`FallbackState`] into a fresh software matcher exactly the way the
//! service migrates — applied state first (which must not match), then the
//! pending commands in submission order (which may) — and must end with the
//! same match assignment and the same residual queues.

#![allow(dead_code)]

pub mod chaos;

use mpi_matching::backend::DrainReport;
use mpi_matching::oracle::MatchEvent;
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::{
    ArriveResult, Assignment, FallbackState, Matcher, MatchingBackend, MsgHandle, PendingCommand,
    PostResult, RecvHandle,
};
use otm::{CommandOutcome, OtmEngine};
use otm_base::{CommId, MatchConfig, MatchError, PackingPolicy, SubmissionPath};
use std::collections::{HashMap, HashSet};

/// An engine configuration for the fallback oracle: parallel blocks, tables
/// big enough that the oracle never trips resource exhaustion.
pub fn fallback_oracle_config() -> MatchConfig {
    MatchConfig::default()
        .with_block_threads(4)
        .with_max_receives(1024)
        .with_max_unexpected(1024)
        .with_bins(16)
}

/// What a fallback path leaves behind: the match assignment accumulated
/// across the run plus the replayed software matcher's residual queues.
pub type FallbackOutcome = (Assignment, Vec<RecvHandle>, Vec<MsgHandle>);

/// Applies one event synchronously through the backend trait, recording the
/// outcome into `asg`.
pub fn apply_event(
    b: &mut dyn MatchingBackend,
    ev: &MatchEvent,
    next_recv: &mut u64,
    next_msg: &mut u64,
    asg: &mut Assignment,
) {
    match *ev {
        MatchEvent::Post(pattern) => {
            let handle = RecvHandle(*next_recv);
            *next_recv += 1;
            match b.post(pattern, handle).expect("tables sized for the run") {
                PostResult::Matched(m) => {
                    asg.recv_to_msg.insert(handle, Some(m));
                    asg.msg_to_recv.insert(m, Some(handle));
                }
                PostResult::Posted => {
                    asg.recv_to_msg.insert(handle, None);
                }
            }
        }
        MatchEvent::Arrive(env) => {
            let msg = MsgHandle(*next_msg);
            *next_msg += 1;
            match b
                .arrive_block(&[(env, msg)])
                .expect("tables sized for the run")[0]
            {
                otm::Delivery::Matched { recv, .. } => {
                    asg.msg_to_recv.insert(msg, Some(recv));
                    asg.recv_to_msg.insert(recv, Some(msg));
                }
                otm::Delivery::Unexpected { .. } => {
                    asg.msg_to_recv.insert(msg, None);
                }
            }
        }
    }
}

/// Translates one event into the command it would be submitted as.
pub fn to_command(ev: &MatchEvent, next_recv: &mut u64, next_msg: &mut u64) -> PendingCommand {
    match *ev {
        MatchEvent::Post(pattern) => {
            let handle = RecvHandle(*next_recv);
            *next_recv += 1;
            PendingCommand::Post { pattern, handle }
        }
        MatchEvent::Arrive(env) => {
            let msg = MsgHandle(*next_msg);
            *next_msg += 1;
            PendingCommand::Arrival { env, msg }
        }
    }
}

/// Records one drained command outcome into `asg`.
pub fn record_outcome(cmd: &PendingCommand, outcome: &CommandOutcome, asg: &mut Assignment) {
    match (*cmd, outcome) {
        (
            PendingCommand::Post { handle, .. },
            CommandOutcome::Post {
                handle: out,
                result: PostResult::Matched(m),
            },
        ) => {
            assert_eq!(*out, handle, "outcome echoes the wrong handle");
            asg.recv_to_msg.insert(handle, Some(*m));
            asg.msg_to_recv.insert(*m, Some(handle));
        }
        (
            PendingCommand::Post { handle, .. },
            CommandOutcome::Post {
                handle: out,
                result: PostResult::Posted,
            },
        ) => {
            assert_eq!(*out, handle, "outcome echoes the wrong handle");
            asg.recv_to_msg.insert(handle, None);
        }
        (PendingCommand::Arrival { msg, .. }, CommandOutcome::Delivery(d)) => match *d {
            otm::Delivery::Matched { recv, .. } => {
                asg.msg_to_recv.insert(msg, Some(recv));
                asg.recv_to_msg.insert(recv, Some(msg));
            }
            otm::Delivery::Unexpected { .. } => {
                asg.msg_to_recv.insert(msg, None);
            }
        },
        _ => panic!("outcome kind does not match its command"),
    }
}

/// Replays a fallback snapshot into a fresh software matcher exactly as the
/// service migrates: unexpected messages and receives first (both must
/// replay without matching — they were mutually checked when recorded),
/// then the pending commands in submission order (which may legitimately
/// match). Newly formed pairs land in `asg`.
pub fn replay_snapshot(state: FallbackState, asg: &mut Assignment) -> TraditionalMatcher {
    let mut m = TraditionalMatcher::new();
    for (env, msg) in state.unexpected {
        assert_eq!(
            Matcher::arrive(&mut m, env, msg).expect("software matcher is unbounded"),
            ArriveResult::Unexpected,
            "drained message {msg:?} matched during state replay"
        );
    }
    for (pattern, recv) in state.receives {
        assert_eq!(
            Matcher::post(&mut m, pattern, recv).expect("software matcher is unbounded"),
            PostResult::Posted,
            "drained receive {recv:?} matched during state replay"
        );
    }
    for cmd in state.pending {
        match cmd {
            PendingCommand::Post { pattern, handle } => {
                match Matcher::post(&mut m, pattern, handle).expect("unbounded") {
                    PostResult::Matched(msg) => {
                        asg.recv_to_msg.insert(handle, Some(msg));
                        asg.msg_to_recv.insert(msg, Some(handle));
                    }
                    PostResult::Posted => {
                        asg.recv_to_msg.insert(handle, None);
                    }
                }
            }
            PendingCommand::Arrival { env, msg } => {
                match Matcher::arrive(&mut m, env, msg).expect("unbounded") {
                    ArriveResult::Matched(recv) => {
                        asg.msg_to_recv.insert(msg, Some(recv));
                        asg.recv_to_msg.insert(recv, Some(msg));
                    }
                    ArriveResult::Unexpected => {
                        asg.msg_to_recv.insert(msg, None);
                    }
                }
            }
        }
    }
    m
}

/// Path A of the fallback oracle: apply the prefix, leave the suffix in the
/// submission queue (queue-capable backends) or apply it synchronously,
/// then fall back directly — the snapshot must carry the queue.
pub fn fallback_with_queue(
    mut b: Box<dyn MatchingBackend>,
    events: &[MatchEvent],
    cut: usize,
) -> FallbackOutcome {
    let mut asg = Assignment::default();
    let (mut next_recv, mut next_msg) = (0u64, 0u64);
    for ev in &events[..cut] {
        apply_event(b.as_mut(), ev, &mut next_recv, &mut next_msg, &mut asg);
    }
    let queued = b.supports_command_queue();
    for ev in &events[cut..] {
        if queued {
            let cmd = to_command(ev, &mut next_recv, &mut next_msg);
            b.submit_command(cmd).expect("engine running");
        } else {
            apply_event(b.as_mut(), ev, &mut next_recv, &mut next_msg, &mut asg);
        }
    }
    let state = b.drain_for_fallback().expect("drainable backend");
    let m = replay_snapshot(state, &mut asg);
    (asg, m.pending_receives(), m.waiting_messages())
}

/// Path B of the fallback oracle: same prefix and suffix, but the queue is
/// drained (outcomes applied) before the fallback — the snapshot's pending
/// tail must then be empty.
pub fn drain_then_fallback(
    mut b: Box<dyn MatchingBackend>,
    events: &[MatchEvent],
    cut: usize,
) -> FallbackOutcome {
    let mut asg = Assignment::default();
    let (mut next_recv, mut next_msg) = (0u64, 0u64);
    for ev in &events[..cut] {
        apply_event(b.as_mut(), ev, &mut next_recv, &mut next_msg, &mut asg);
    }
    if b.supports_command_queue() {
        let mut cmds = Vec::new();
        for ev in &events[cut..] {
            let cmd = to_command(ev, &mut next_recv, &mut next_msg);
            b.submit_command(cmd).expect("engine running");
            cmds.push(cmd);
        }
        let report = b.drain_commands();
        assert!(report.error.is_none(), "drain failed: {:?}", report.error);
        assert!(report.unapplied.is_empty());
        assert_eq!(report.outcomes.len(), cmds.len());
        for (cmd, outcome) in cmds.iter().zip(&report.outcomes) {
            record_outcome(cmd, outcome, &mut asg);
        }
    } else {
        for ev in &events[cut..] {
            apply_event(b.as_mut(), ev, &mut next_recv, &mut next_msg, &mut asg);
        }
    }
    let state = b.drain_for_fallback().expect("drainable backend");
    assert!(
        state.pending.is_empty(),
        "a drained backend has no pending commands left"
    );
    let m = replay_snapshot(state, &mut asg);
    (asg, m.pending_receives(), m.waiting_messages())
}

// ---------------------------------------------------------------------------
// Packing-equivalence oracle (the cross-communicator drain scheduler)
// ---------------------------------------------------------------------------

/// Builds a fresh engine under `packing`, submits `cmds`, and drains once.
pub fn drain_under_policy(
    config: MatchConfig,
    packing: PackingPolicy,
    cmds: &[PendingCommand],
) -> (OtmEngine, DrainReport) {
    let engine = OtmEngine::new(config.with_packing(packing)).expect("valid test config");
    for &cmd in cmds {
        engine.submit(cmd).expect("engine running");
    }
    let report = engine.drain();
    (engine, report)
}

/// The packing-equivalence oracle, success path: the same submitted stream
/// drained under either packing policy produces identical outcomes, command
/// for command. Matching is communicator-local and both policies preserve
/// per-communicator command order, so not just each communicator's match
/// set but the full outcome vector (reported in submission order) must
/// agree.
pub fn assert_packing_equivalence(config: MatchConfig, cmds: &[PendingCommand]) {
    let (_, a) = drain_under_policy(config.clone(), PackingPolicy::Consecutive, cmds);
    let (_, b) = drain_under_policy(config, PackingPolicy::CrossComm, cmds);
    assert!(a.error.is_none(), "consecutive drain failed: {:?}", a.error);
    assert!(b.error.is_none(), "cross-comm drain failed: {:?}", b.error);
    assert!(a.unapplied.is_empty() && b.unapplied.is_empty());
    assert_eq!(a.outcomes.len(), cmds.len(), "every command must drain");
    assert_eq!(
        a.outcomes, b.outcomes,
        "drain outcomes must be packing-policy-independent"
    );
}

/// Ring-backpressure companion of [`assert_packing_equivalence`]: the same
/// stream pushed through capacity-bounded per-communicator rings — draining
/// inline whenever a push bounces with `SubmissionRingFull`, exactly as a
/// caller honoring the backpressure contract would — must produce, under
/// *either* packing policy, the outcome vector of the unbounded one-shot
/// mutex-path drain. Along the way every forced inline drain must consume
/// at least one pending command (a full ring implies pending work, so a
/// drain that applies nothing would livelock the retry loop).
pub fn assert_ring_equivalence(config: MatchConfig, cmds: &[PendingCommand]) {
    let (_, oracle) = drain_under_policy(
        config.clone().with_submission(SubmissionPath::Mutex),
        PackingPolicy::Consecutive,
        cmds,
    );
    assert!(oracle.error.is_none(), "oracle drain failed: {:?}", oracle.error);
    assert_eq!(oracle.outcomes.len(), cmds.len(), "oracle must drain everything");

    for packing in [PackingPolicy::Consecutive, PackingPolicy::CrossComm] {
        let engine = OtmEngine::new(
            config
                .clone()
                .with_submission(SubmissionPath::Ring)
                .with_packing(packing),
        )
        .expect("valid test config");
        let mut outcomes = Vec::new();
        for &cmd in cmds {
            loop {
                match engine.submit(cmd) {
                    Ok(()) => break,
                    Err(MatchError::SubmissionRingFull { .. }) => {
                        assert!(
                            engine.pending_commands() > 0,
                            "a full ring implies pending work"
                        );
                        let report = engine.drain();
                        assert!(
                            report.error.is_none(),
                            "inline drain failed under {packing:?}: {:?}",
                            report.error
                        );
                        assert!(
                            !report.outcomes.is_empty(),
                            "no-livelock: a drain with pending work must consume commands"
                        );
                        outcomes.extend(report.outcomes);
                    }
                    Err(e) => panic!("engine running: {e}"),
                }
            }
        }
        let report = engine.drain();
        assert!(
            report.error.is_none(),
            "final drain failed under {packing:?}: {:?}",
            report.error
        );
        assert!(report.unapplied.is_empty());
        outcomes.extend(report.outcomes);
        assert_eq!(outcomes.len(), cmds.len(), "every command must drain");
        assert_eq!(
            outcomes, oracle.outcomes,
            "bounded-ring drain under {packing:?} must equal the unbounded oracle"
        );
    }
}

/// Identity of a command within one test stream: posts by receive handle,
/// arrivals by message handle (each unique on its side).
fn command_key(cmd: &PendingCommand) -> (bool, u64) {
    match *cmd {
        PendingCommand::Post { handle, .. } => (true, handle.0),
        PendingCommand::Arrival { msg, .. } => (false, msg.0),
    }
}

/// The same identity recovered from a drained outcome.
fn outcome_key(outcome: &CommandOutcome) -> (bool, u64) {
    match *outcome {
        CommandOutcome::Post { handle, .. } => (true, handle.0),
        CommandOutcome::Delivery(d) => (false, d.msg().0),
    }
}

fn command_comm(cmd: &PendingCommand) -> CommId {
    match cmd {
        PendingCommand::Post { pattern, .. } => pattern.comm,
        PendingCommand::Arrival { env, .. } => env.comm,
    }
}

/// The failure-contract oracle: drained under `packing` (typically with
/// tables sized to trip resource exhaustion mid-stream), the [`DrainReport`]
/// must satisfy the error contract regardless of policy:
///
/// * the reported outcomes and the leftover commands (the requeued tail on
///   a retryable error, [`DrainReport::unapplied`] on a terminal one)
///   partition the submitted stream exactly;
/// * outcomes and leftovers each keep submission order;
/// * per communicator, the applied commands are a prefix of that
///   communicator's submitted subsequence — the FIFO oracle even under
///   cross-communicator reordering.
pub fn assert_drain_failure_contract(
    config: MatchConfig,
    packing: PackingPolicy,
    cmds: &[PendingCommand],
) {
    let (engine, report) = drain_under_policy(config, packing, cmds);
    let leftover: Vec<PendingCommand> = match &report.error {
        Some(e) if e.is_retryable() => {
            assert!(
                report.unapplied.is_empty(),
                "retryable errors requeue instead of surfacing unapplied"
            );
            engine.drain_for_fallback().pending
        }
        Some(_) => report.unapplied.clone(),
        None => {
            assert!(report.unapplied.is_empty());
            Vec::new()
        }
    };

    let applied: Vec<(bool, u64)> = report.outcomes.iter().map(outcome_key).collect();
    let applied_set: HashSet<(bool, u64)> = applied.iter().copied().collect();
    assert_eq!(
        applied_set.len(),
        applied.len(),
        "an outcome was reported twice"
    );
    let left: Vec<(bool, u64)> = leftover.iter().map(command_key).collect();
    assert_eq!(
        applied.len() + left.len(),
        cmds.len(),
        "outcomes and leftovers must partition the submitted stream"
    );
    for k in &left {
        assert!(
            !applied_set.contains(k),
            "command both applied and left over"
        );
    }

    let order: HashMap<(bool, u64), usize> = cmds
        .iter()
        .enumerate()
        .map(|(i, c)| (command_key(c), i))
        .collect();
    let position = |k: &(bool, u64)| -> usize {
        *order.get(k).expect("outcome refers to a submitted command")
    };
    assert!(
        applied
            .windows(2)
            .all(|w| position(&w[0]) < position(&w[1])),
        "outcomes must be reported in submission order"
    );
    assert!(
        left.windows(2).all(|w| position(&w[0]) < position(&w[1])),
        "leftovers must keep submission order"
    );

    // Per-communicator FIFO: once one of a communicator's commands is left
    // unapplied, every later command of that communicator must be too.
    let mut cut: HashSet<CommId> = HashSet::new();
    for cmd in cmds {
        let comm = command_comm(cmd);
        if applied_set.contains(&command_key(cmd)) {
            assert!(
                !cut.contains(&comm),
                "{comm:?} applied a command after an unapplied one"
            );
        } else {
            cut.insert(comm);
        }
    }
}
