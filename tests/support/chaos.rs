//! Shared harness for the fault-injection chaos oracle, used by the seeded
//! deterministic tests (`tests/fault_chaos.rs`) and the proptest property
//! (`tests/properties.rs`).
//!
//! The oracle: running a random multi-communicator post/send stream over a
//! hostile wire (drops, duplicates, reorders, delays — recovered by the
//! reliability protocol in either mode, go-back-N or selective repeat)
//! must produce *exactly* the matched (receive, message) pairs of the same
//! stream over a perfect wire, plus the same residual unexpected-store
//! population. Under selective repeat the receive NIC's staging buffer
//! holds out-of-order packets but delivery to the engine stays strictly
//! in-sequence, so the invariant holds by construction — these tests are
//! the proof.
//!
//! The stream is phased: each phase posts a batch of receives, then sends a
//! batch of messages, then drains the wire to quiescence. Posts of a phase
//! precede its arrivals in both runs (faults can only delay packets, never
//! deliver them early, and the quiescence barrier keeps a phase's traffic
//! out of the next phase), so the matcher observes the same post/arrival
//! order in both runs — which is what makes pair-for-pair equality a fair
//! oracle rather than an MPI-legal-race coin flip.

use dpa_sim::bounce::BouncePool;
use dpa_sim::nic::RecvNic;
use dpa_sim::rdma::{connected_pair, eager_packet, RdmaDomain};
use dpa_sim::{DeviceMemory, MatchingService, ReliableSender};
use otm_base::envelope::SourceSel;
use otm_base::{
    CommId, Envelope, FaultPlan, FaultRng, MatchConfig, Rank, ReceivePattern, ReliabilityMode, Tag,
};

/// One phase of the chaos workload: receives posted first, messages sent
/// after.
pub struct Phase {
    pub posts: Vec<ReceivePattern>,
    pub sends: Vec<(Envelope, Vec<u8>)>,
}

/// What one run of the workload observed — the oracle compares these
/// between the faulty and the fault-free run.
#[derive(Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Every completed receive as (receive id, matched envelope, payload),
    /// in completion order. Payloads encode the message index, so equality
    /// here is matched-*pair* equality, not just equal counts.
    pub completed: Vec<(u64, Envelope, Vec<u8>)>,
    /// Messages left in the unexpected store when the wire quiesced.
    pub unexpected: usize,
}

/// Counters proving the faulty run actually was faulty.
pub struct ChaosEvidence {
    pub injected_faults: u64,
    pub retransmits: u64,
    /// Out-of-order packets parked in the receive NIC's staging buffer
    /// over the run — nonzero proves selective repeat actually staged
    /// (always zero under go-back-N, which discards gaps).
    pub staged_out_of_order: u64,
    /// Flight-recorder loss counters summed across the run:
    /// `otm_trace_dropped_total` + `dpa_trace_dropped_total` plus the span
    /// equivalents. The chaos workloads are sized well inside the ring
    /// capacities, so a nonzero value means the recorder lost events it
    /// should have retained.
    pub trace_dropped: u64,
}

/// Generates a deterministic phased workload: `phases` phases of
/// `per_phase` messages each, over 3 communicators, a 4-rank source space
/// and an 8-value tag space (small, so duplicates and wildcard conflicts
/// are common). Every message gets one receive that matches it — mostly
/// exact, one in four `MPI_ANY_SOURCE` — posted in shuffled order, so some
/// messages strand in the unexpected store until a later phase's wildcard
/// frees them (or never, which the oracle also compares).
pub fn workload(seed: u64, phases: usize, per_phase: usize) -> Vec<Phase> {
    let mut rng = FaultRng::new(seed);
    let mut msg_index = 0u32;
    (0..phases)
        .map(|_| {
            let mut posts = Vec::new();
            let mut sends = Vec::new();
            for _ in 0..per_phase {
                let comm = CommId(rng.below(3) as u16);
                let src = Rank(rng.below(4) as u32);
                let tag = Tag(rng.below(8) as u32);
                let pattern = if rng.chance(250) {
                    ReceivePattern::new(SourceSel::Any, tag, comm)
                } else {
                    ReceivePattern::new(src, tag, comm)
                };
                posts.push(pattern);
                sends.push((
                    Envelope::new(src, tag, comm),
                    msg_index.to_le_bytes().to_vec(),
                ));
                msg_index += 1;
            }
            // Shuffle the posts (Fisher–Yates on the deterministic stream)
            // so a message's receive is generally *not* posted at the
            // matching position of the send batch.
            for k in (1..posts.len()).rev() {
                let j = rng.below(k as u64 + 1) as usize;
                posts.swap(k, j);
            }
            Phase { posts, sends }
        })
        .collect()
}

/// Runs the workload through one service over one (possibly faulty) wire
/// and returns the observed outcome plus the fault/recovery evidence.
///
/// `faults` installs the plan on the receiving NIC; the sender always goes
/// through the [`ReliableSender`] so both runs stamp identical sequence
/// numbers. `queued` routes arrivals through the backend's command queue
/// (the packing-scheduler path) instead of synchronous block matching.
pub fn run_chaos(
    phases: &[Phase],
    faults: Option<FaultPlan>,
    queued: bool,
) -> (RunOutcome, ChaosEvidence) {
    run_chaos_mode(phases, faults, queued, ReliabilityMode::default(), None)
}

/// [`run_chaos`] with an explicit reliability mode and (optionally) a
/// sender window cap — the knobs the PR 9 oracle sweeps. Both ends are
/// switched together; mode-mismatched deployments are exercised by the
/// unit tests in `dpa-sim`, not by the oracle.
pub fn run_chaos_mode(
    phases: &[Phase],
    faults: Option<FaultPlan>,
    queued: bool,
    mode: ReliabilityMode,
    window: Option<usize>,
) -> (RunOutcome, ChaosEvidence) {
    let (tx, rx) = connected_pair();
    let domain = RdmaDomain::new();
    let mut nic = RecvNic::new(rx, BouncePool::new(64, 256));
    nic.set_reliability_mode(mode);
    if let Some(plan) = &faults {
        nic.set_faults(plan.clone());
    }
    let mut budget = DeviceMemory::bluefield3_l3();
    let config = MatchConfig::small()
        .with_max_receives(1024)
        .with_max_unexpected(1024)
        .with_bins(32);
    let mut svc = MatchingService::offloaded(nic, domain, config, &mut budget)
        .expect("chaos config fits the budget");
    if queued {
        svc.enable_command_queue().expect("engine has a queue");
    }
    let mut sender = ReliableSender::new(tx).with_mode(mode);
    if let Some(cap) = window {
        sender.set_window_limit(cap);
    }

    for phase in phases {
        for pattern in &phase.posts {
            svc.post_recv_queued(*pattern).expect("tables are large");
        }
        for (env, data) in &phase.sends {
            sender
                .send(eager_packet(*env, data.clone()))
                .expect("wire up");
        }
        // Quiescence barrier: every sequenced packet of this phase must be
        // accepted (acked) before the next phase posts. The service's poll
        // generates the acks the sender's poll consumes; faults bound the
        // number of rounds this can take via the sender's retry budget.
        let mut rounds = 0u32;
        while sender.unacked() > 0 {
            svc.progress().expect("progress under faults");
            sender.poll().expect("retry budget holds");
            rounds += 1;
            assert!(rounds < 1_000_000, "wire failed to quiesce");
        }
        // Flush packets the fault layer still holds (reorder/delay slots
        // are due within a bounded number of ticks once acks stop moving).
        for _ in 0..32 {
            svc.progress().expect("progress under faults");
            sender.poll().expect("retry budget holds");
        }
    }

    let injected = svc.nic().wire_fault_stats().map(|s| s.total()).unwrap_or(0);
    let snap = svc.observability_snapshot();
    let dropped_of = |key: &str| snap.counters.get(key).copied().unwrap_or(0);
    let trace_dropped = dropped_of("otm_trace_dropped_total")
        + dropped_of("dpa_trace_dropped_total")
        + dropped_of("otm_span_dropped_total")
        + dropped_of("dpa_span_dropped_total");
    let outcome = RunOutcome {
        completed: svc
            .take_completed()
            .into_iter()
            .map(|c| (c.recv.0, c.env, c.data))
            .collect(),
        unexpected: svc.unexpected_len(),
    };
    let evidence = ChaosEvidence {
        injected_faults: injected,
        retransmits: sender.stats().retransmits,
        staged_out_of_order: svc.nic().rx_stats().staged_out_of_order,
        trace_dropped,
    };
    (outcome, evidence)
}

/// The full oracle: faulty run == fault-free run, and the faulty run must
/// actually have injected faults. Returns the evidence for extra
/// assertions (e.g. that drops forced retransmissions).
pub fn assert_chaos_equivalence(
    seed: u64,
    plan: FaultPlan,
    phases: usize,
    per_phase: usize,
    queued: bool,
) -> ChaosEvidence {
    assert_chaos_equivalence_mode(
        seed,
        plan,
        phases,
        per_phase,
        queued,
        ReliabilityMode::default(),
        None,
    )
}

/// [`assert_chaos_equivalence`] with an explicit reliability mode and
/// sender window cap, applied identically to the faulty and the clean run.
#[allow(clippy::too_many_arguments)]
pub fn assert_chaos_equivalence_mode(
    seed: u64,
    plan: FaultPlan,
    phases: usize,
    per_phase: usize,
    queued: bool,
    mode: ReliabilityMode,
    window: Option<usize>,
) -> ChaosEvidence {
    let workload = workload(seed, phases, per_phase);
    let (clean, _) = run_chaos_mode(&workload, None, queued, mode, window);
    let (faulty, evidence) = run_chaos_mode(&workload, Some(plan), queued, mode, window);
    assert!(
        !clean.completed.is_empty(),
        "the workload must complete something for the oracle to bite"
    );
    assert_eq!(
        faulty, clean,
        "matched (receive, message) pairs must be identical to the fault-free run"
    );
    assert_eq!(
        evidence.trace_dropped, 0,
        "flight-recorder rings must not drop events at chaos-test scale"
    );
    evidence
}
