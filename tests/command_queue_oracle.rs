//! Deterministic companion to the `command_queue_interleavings_equal_
//! serialized_oracle` property in `tests/properties.rs`: seeded random
//! interleavings of multi-communicator posts and arrivals are pushed
//! through the engine's command queue and drained in blocks, and every
//! communicator's match set must equal its serialized oracle. The proptest
//! version explores the space; this one pins a reproducible sample of it.

use mpi_matching::oracle::{MatchEvent, Oracle};
use mpi_matching::{Assignment, MsgHandle, PostResult, RecvHandle};
use otm::{Command, CommandOutcome, OtmEngine};
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{CommId, Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const COMMS: usize = 3;
const BASE: u64 = 1_000_000;

/// A random comm-tagged event over a small (rank, tag) space.
fn comm_event(rng: &mut SmallRng) -> (u16, MatchEvent) {
    let c = rng.gen_range(0..COMMS as u16);
    let comm = CommId(c + 1);
    let src = Rank(rng.gen_range(0..3));
    let tag = Tag(rng.gen_range(0..3));
    let ev = match rng.gen_range(0..10) {
        0..=3 => MatchEvent::Arrive(Envelope::new(src, tag, comm)),
        4..=6 => MatchEvent::Post(ReceivePattern::new(src, tag, comm)),
        7 => MatchEvent::Post(ReceivePattern::new(SourceSel::Any, tag, comm)),
        8 => MatchEvent::Post(ReceivePattern::new(src, TagSel::Any, comm)),
        _ => MatchEvent::Post(ReceivePattern::new(SourceSel::Any, TagSel::Any, comm)),
    };
    (c, ev)
}

fn check_interleaving(events: &[(u16, MatchEvent)]) {
    let config = MatchConfig::default()
        .with_block_threads(4)
        .with_max_receives(1024)
        .with_max_unexpected(1024)
        .with_bins(16);
    let engine = OtmEngine::new(config).unwrap();

    // Submit everything in the generated global interleaving.
    let mut next_recv = [0u64; COMMS];
    let mut next_msg = [0u64; COMMS];
    let mut submitted: Vec<(u16, Command)> = Vec::new();
    for &(c, ev) in events {
        let base = c as u64 * BASE;
        let cmd = match ev {
            MatchEvent::Post(pattern) => {
                let handle = RecvHandle(base + next_recv[c as usize]);
                next_recv[c as usize] += 1;
                Command::Post { pattern, handle }
            }
            MatchEvent::Arrive(env) => {
                let msg = MsgHandle(base + next_msg[c as usize]);
                next_msg[c as usize] += 1;
                Command::Arrival { env, msg }
            }
        };
        engine.submit(cmd).unwrap();
        submitted.push((c, cmd));
    }
    let report = engine.drain();
    assert!(report.error.is_none(), "drain failed: {:?}", report.error);
    assert_eq!(report.outcomes.len(), submitted.len());

    // Outcomes come back in submission order; rebuild each communicator's
    // observed assignment from the pairing.
    let mut observed: Vec<Assignment> = (0..COMMS).map(|_| Assignment::default()).collect();
    for (&(c, cmd), outcome) in submitted.iter().zip(&report.outcomes) {
        let asg = &mut observed[c as usize];
        match (cmd, outcome) {
            (
                Command::Post { handle, .. },
                CommandOutcome::Post {
                    handle: out,
                    result: PostResult::Matched(m),
                },
            ) => {
                assert_eq!(*out, handle, "outcome echoes the wrong handle");
                asg.recv_to_msg.insert(handle, Some(*m));
                asg.msg_to_recv.insert(*m, Some(handle));
            }
            (
                Command::Post { handle, .. },
                CommandOutcome::Post {
                    handle: out,
                    result: PostResult::Posted,
                },
            ) => {
                assert_eq!(*out, handle, "outcome echoes the wrong handle");
                asg.recv_to_msg.entry(handle).or_insert(None);
            }
            (Command::Arrival { msg, .. }, CommandOutcome::Delivery(d)) => match *d {
                otm::Delivery::Matched { recv, .. } => {
                    asg.msg_to_recv.insert(msg, Some(recv));
                    asg.recv_to_msg.insert(recv, Some(msg));
                }
                otm::Delivery::Unexpected { .. } => {
                    asg.msg_to_recv.entry(msg).or_insert(None);
                }
            },
            _ => panic!("outcome kind does not match its command"),
        }
    }

    // Per communicator, the serialized oracle over that communicator's
    // subsequence (translated into its handle range) must agree.
    for c in 0..COMMS {
        let sub: Vec<MatchEvent> = events
            .iter()
            .filter(|&&(cc, _)| cc as usize == c)
            .map(|&(_, ev)| ev)
            .collect();
        let dense = Oracle::run(&sub);
        let base = c as u64 * BASE;
        let mut expect = Assignment::default();
        for (r, m) in dense.recv_to_msg {
            expect
                .recv_to_msg
                .insert(RecvHandle(r.0 + base), m.map(|m| MsgHandle(m.0 + base)));
        }
        for (m, r) in dense.msg_to_recv {
            expect
                .msg_to_recv
                .insert(MsgHandle(m.0 + base), r.map(|r| RecvHandle(r.0 + base)));
        }
        assert!(observed[c].is_consistent());
        assert_eq!(
            observed[c], expect,
            "communicator {c} diverged from its serialized oracle"
        );
    }
}

#[test]
fn seeded_interleavings_equal_their_serialized_oracles() {
    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0x0DDC0DE ^ seed);
        let len = rng.gen_range(0..160);
        let events: Vec<(u16, MatchEvent)> = (0..len).map(|_| comm_event(&mut rng)).collect();
        check_interleaving(&events);
    }
}

#[test]
fn all_posts_then_all_arrivals_round_trip() {
    let mut events = Vec::new();
    for c in 0..COMMS as u16 {
        for i in 0..8u32 {
            events.push((
                c,
                MatchEvent::Post(ReceivePattern::new(Rank(i % 3), Tag(i % 3), CommId(c + 1))),
            ));
        }
    }
    for c in 0..COMMS as u16 {
        for i in 0..8u32 {
            events.push((
                c,
                MatchEvent::Arrive(Envelope::new(Rank(i % 3), Tag(i % 3), CommId(c + 1))),
            ));
        }
    }
    check_interleaving(&events);
}
