//! Seeded chaos-oracle tests: a hostile wire (drops, duplicates, reorders,
//! delays — all at or above the 10% the acceptance bar demands) under a
//! random multi-communicator workload must not change a single matched
//! (receive, message) pair relative to the fault-free run.
//!
//! Determinism does the heavy lifting: the fault plan is seeded, the
//! workload is seeded, and virtual time is the poll counter, so every run
//! of these tests injects exactly the same faults at exactly the same
//! points. The proptest companion in `tests/properties.rs` explores random
//! seeds; these tests pin seeds so failures reproduce byte-for-byte.

mod support;

use otm_base::{FaultPlan, ReliabilityMode};
use support::chaos::{assert_chaos_equivalence, assert_chaos_equivalence_mode};

/// 15% drop + 15% duplicate + 15% reorder + 10% delay.
fn hostile_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drop_permille(150)
        .with_duplicate_permille(150)
        .with_reorder_permille(150)
        .with_delay_permille(100)
}

#[test]
fn chaos_direct_path_matches_fault_free_run() {
    let evidence = assert_chaos_equivalence(0x0dd5_eed, hostile_plan(0xfa01), 6, 24, false);
    assert!(
        evidence.injected_faults > 0,
        "the wire must have misbehaved"
    );
    assert!(
        evidence.retransmits > 0,
        "drops must have forced retransmissions"
    );
}

#[test]
fn chaos_command_queue_path_matches_fault_free_run() {
    // Same oracle through the packing scheduler's command-queue drain: the
    // cross-communicator reordering must stay invisible under faults too.
    let evidence = assert_chaos_equivalence(0x0dd5_eed, hostile_plan(0xfa01), 6, 24, true);
    assert!(
        evidence.injected_faults > 0,
        "the wire must have misbehaved"
    );
    assert!(evidence.retransmits > 0);
}

#[test]
fn chaos_holds_across_seeds() {
    // A small sweep of workload/fault seed pairs — cheap insurance that the
    // pinned seeds above aren't a lucky pocket.
    for (ws, fs) in [(1u64, 2u64), (3, 4), (5, 6), (0xbeef, 0xcafe)] {
        assert_chaos_equivalence(ws, hostile_plan(fs), 4, 16, false);
        assert_chaos_equivalence(ws, hostile_plan(fs), 4, 16, true);
    }
}

#[test]
fn chaos_with_bounded_fault_budget_quiesces() {
    // A fault budget caps the chaos: after `max_faults` injections the wire
    // is perfect, so even extreme rates (50% drop) terminate. This is the
    // liveness knob the property tests rely on.
    let plan = FaultPlan::new(99)
        .with_drop_permille(500)
        .with_duplicate_permille(200)
        .with_reorder_permille(200)
        .with_max_faults(200);
    let evidence = assert_chaos_equivalence(7, plan, 4, 16, true);
    assert!(evidence.injected_faults > 0);
    assert!(evidence.injected_faults <= 200, "the budget is a hard cap");
}

#[test]
fn chaos_holds_in_both_reliability_modes_and_sr_retransmits_less() {
    // The same pinned seeds under both ARQ modes: matched pairs must be
    // identical to the fault-free run either way, and selective repeat —
    // which resends only holes instead of the whole window — must recover
    // from the identical fault schedule with strictly fewer retransmits.
    let gbn = assert_chaos_equivalence_mode(
        0x0dd5_eed,
        hostile_plan(0xfa01),
        6,
        24,
        true,
        ReliabilityMode::GoBackN,
        None,
    );
    let sr = assert_chaos_equivalence_mode(
        0x0dd5_eed,
        hostile_plan(0xfa01),
        6,
        24,
        true,
        ReliabilityMode::SelectiveRepeat,
        None,
    );
    assert!(gbn.injected_faults > 0 && sr.injected_faults > 0);
    assert_eq!(
        gbn.staged_out_of_order, 0,
        "go-back-N never stages out-of-order packets"
    );
    assert!(
        sr.staged_out_of_order > 0,
        "selective repeat must have exercised the staging buffer"
    );
    assert!(
        sr.retransmits < gbn.retransmits,
        "selective repeat must retransmit less than go-back-N on the same \
         fault schedule ({} !< {})",
        sr.retransmits,
        gbn.retransmits
    );
}

#[test]
fn chaos_staging_buffer_survives_reorder_heavy_wire_across_windows() {
    // Reorder-dominated faults (35% reorder, drops comparatively rare) are
    // the staging buffer's worst case: long out-of-order runs park in the
    // BTreeMap and drain in bursts when a hole fills. Sweep sender window
    // caps so the buffer sees shallow and deep in-flight ranges; the
    // matched pairs must stay identical in every configuration.
    let plan = FaultPlan::new(0x5eed_0d3)
        .with_drop_permille(60)
        .with_duplicate_permille(100)
        .with_reorder_permille(350)
        .with_delay_permille(150);
    for window in [4usize, 8, 16, 48] {
        let evidence = assert_chaos_equivalence_mode(
            0xc0ffee,
            plan.clone(),
            5,
            20,
            true,
            ReliabilityMode::SelectiveRepeat,
            Some(window),
        );
        assert!(
            evidence.staged_out_of_order > 0,
            "window {window}: the reorder-heavy wire must stage packets"
        );
    }
}
