//! Full-stack application runs: Table II workloads driven through the
//! simulated cluster — every message crosses the wire, is staged in a
//! bounce buffer, matched by a per-node optimistic engine and delivered by
//! the protocol stage — and the outcome totals are cross-checked against
//! the trace analyzer's replay of the same trace.

use dpa_sim::{Cluster, ClusterBackend};
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{MatchConfig, ReceivePattern, Tag};
use otm_trace::model::MpiOp;
use otm_trace::{replay, AppTrace, ReplayConfig};

/// Drives a trace through a cluster, returning (completions, final
/// unexpected messages summed over nodes).
fn run_trace_through_cluster(trace: &AppTrace, backend: ClusterBackend) -> (u64, usize) {
    let n = trace.processes();
    let config = MatchConfig::default()
        .with_max_receives(512)
        .with_max_unexpected(512)
        .with_bins(128);
    let mut cluster = Cluster::new(n, backend, config);
    let mut completions = 0u64;
    for (rank, op) in trace.merged_ops() {
        match op.op {
            MpiOp::Irecv { src, tag, comm, .. } | MpiOp::Recv { src, tag, comm, .. } => {
                cluster
                    .node_mut(rank.0 as usize)
                    .post_recv(ReceivePattern { src, tag, comm })
                    .expect("post");
                // A post can complete immediately against a parked
                // unexpected message.
                completions += cluster
                    .node_mut(rank.0 as usize)
                    .progress()
                    .expect("progress")
                    .len() as u64;
            }
            MpiOp::Isend {
                dest, tag, count, ..
            }
            | MpiOp::Send {
                dest, tag, count, ..
            } if (dest.0 as usize) < n => {
                // Payload bytes proportional to the trace's count field
                // (capped to keep eager staging cheap).
                let payload = vec![0xABu8; (count as usize).min(64)];
                cluster
                    .node_mut(rank.0 as usize)
                    .send(dest.0 as usize, tag, payload)
                    .expect("send");
                completions += cluster
                    .node_mut(dest.0 as usize)
                    .progress()
                    .expect("progress")
                    .len() as u64;
            }
            _ => {}
        }
    }
    // Drain any straggling completions.
    for i in 0..n {
        completions += cluster
            .node_mut(i)
            .progress()
            .expect("final progress")
            .len() as u64;
    }
    let unexpected: usize = (0..n)
        .map(|i| {
            // unexpected_len is on the service; expose through a final probe of
            // node state via engine stats where available.
            cluster
                .node_mut(i)
                .engine_stats()
                .map(|s| (s.unexpected - s.matched_on_post) as usize)
                .unwrap_or(0)
        })
        .sum();
    (completions, unexpected)
}

/// The small- and mid-scale Table II applications (full meshes above ~100
/// ranks make the in-process QP mesh needlessly heavy for a test).
fn testable_apps() -> Vec<&'static str> {
    vec![
        "AMG",
        "LULESH",
        "MOCFE",
        "Nekbone",
        "CrystalRouter",
        "BoxLib CNS",
    ]
}

#[test]
fn applications_run_through_the_offloaded_cluster() {
    for name in testable_apps() {
        let spec = otm_workloads::catalog()
            .into_iter()
            .find(|a| a.name == name)
            .unwrap();
        let trace = (spec.generate)(42);
        let report = replay(&trace, &ReplayConfig { bins: 128 });
        let expected_pairs =
            report.match_stats.matched_on_arrival + report.match_stats.matched_on_post;

        let (completions, leftover_unexpected) =
            run_trace_through_cluster(&trace, ClusterBackend::Offloaded);

        assert_eq!(
            completions, expected_pairs,
            "{name}: cluster completions must equal the analyzer's match count"
        );
        assert_eq!(
            leftover_unexpected, report.final_umq,
            "{name}: leftover unexpected messages must agree with the analyzer"
        );
    }
}

#[test]
fn offloaded_and_cpu_clusters_agree_on_application_traffic() {
    for name in ["AMG", "MOCFE"] {
        let spec = otm_workloads::catalog()
            .into_iter()
            .find(|a| a.name == name)
            .unwrap();
        let trace = (spec.generate)(7);
        let (a, ua) = run_trace_through_cluster(&trace, ClusterBackend::Offloaded);
        let (b, _ub) = run_trace_through_cluster(&trace, ClusterBackend::MpiCpu);
        assert_eq!(
            a, b,
            "{name}: backends must complete the same number of receives"
        );
        let _ = ua;
    }
}

/// Wildcards cross the full stack too: MOCFE's ANY_SOURCE gather receives
/// must complete through the cluster.
#[test]
fn wildcard_receives_complete_through_the_cluster() {
    let spec = otm_workloads::catalog()
        .into_iter()
        .find(|a| a.name == "MOCFE")
        .unwrap();
    let trace = (spec.generate)(42);
    let wildcard_recvs = trace
        .ranks
        .iter()
        .flat_map(|r| &r.ops)
        .filter(|t| {
            matches!(
                t.op,
                MpiOp::Irecv {
                    src: SourceSel::Any,
                    ..
                } | MpiOp::Irecv {
                    tag: TagSel::Any,
                    ..
                }
            )
        })
        .count();
    assert!(wildcard_recvs > 0, "MOCFE exercises wildcards");
    let (completions, _) = run_trace_through_cluster(&trace, ClusterBackend::Offloaded);
    let report = replay(&trace, &ReplayConfig { bins: 128 });
    assert_eq!(
        completions,
        report.match_stats.matched_on_arrival + report.match_stats.matched_on_post
    );
    let _ = Tag(0);
}
