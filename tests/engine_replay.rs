//! The strongest cross-crate check in the workspace: replaying every
//! Table II application through the *real* optimistic engine
//! (`otm::SequentialOtm`, descriptor table + booking machinery included)
//! must produce exactly the same outcomes — and, because engine and
//! analyzer implement the same §III-B organization with the same hash
//! function, exactly the same search depths — as the analyzer's
//! lightweight emulation.

use otm_trace::{replay, replay::replay_engine, ReplayConfig};

#[test]
fn engine_replay_matches_emulation_for_every_application() {
    for spec in otm_workloads::catalog() {
        let trace = (spec.generate)(42);
        for bins in [1usize, 32] {
            let config = ReplayConfig { bins };
            let emul = replay(&trace, &config);
            let engine = replay_engine(&trace, &config);

            // Outcomes must be identical (matching is deterministic).
            assert_eq!(
                emul.match_stats.matched_on_arrival, engine.match_stats.matched_on_arrival,
                "{} bins={bins}: matched-on-arrival",
                spec.name
            );
            assert_eq!(
                emul.match_stats.unexpected, engine.match_stats.unexpected,
                "{} bins={bins}: unexpected",
                spec.name
            );
            assert_eq!(
                emul.match_stats.matched_on_post, engine.match_stats.matched_on_post,
                "{} bins={bins}: matched-on-post",
                spec.name
            );
            assert_eq!(
                emul.final_prq, engine.final_prq,
                "{} bins={bins}",
                spec.name
            );
            assert_eq!(
                emul.final_umq, engine.final_umq,
                "{} bins={bins}",
                spec.name
            );

            // Same data structures, same hash, same bins — same depths.
            assert_eq!(
                emul.match_stats.prq_search, engine.match_stats.prq_search,
                "{} bins={bins}: PRQ search depths",
                spec.name
            );
            assert_eq!(
                emul.match_stats.umq_search, engine.match_stats.umq_search,
                "{} bins={bins}: UMQ search depths",
                spec.name
            );

            // And the call distribution is a property of the trace alone.
            assert_eq!(
                emul.call_dist, engine.call_dist,
                "{} bins={bins}",
                spec.name
            );
        }
    }
}
