//! End-to-end application replay equivalence (the PR 10 oracle).
//!
//! Drives Table II application traces through the **complete** production
//! path — per-source-rank queue pairs under the sender reliability
//! protocol, the receive NIC's bounded staging and cross-QP total-order
//! gate, the service's command queue, per-communicator submission rings,
//! cross-communicator packing, the sharded engine and the eager/rendezvous
//! payload protocol — and asserts the matched (receive, message) pairs are
//! *identical* to the engine-direct replay of the same trace, which never
//! touches a wire.
//!
//! The hostile-wire variants repeat the check with ≥10% drop plus
//! duplicate/reorder faults in both ARQ modes: the wire may change how
//! often packets cross, never what matches. All seeds are pinned, so every
//! run (including the nightly TSan pass) replays the same packets.

use dpa_sim::app_replay::{engine_direct_pairs, replay_app, AppReplayConfig};
use otm_base::{FaultPlan, ReliabilityMode};
use otm_trace::AppTrace;

const TRACE_SEED: u64 = 42;
const BINS: usize = 128;

/// ≥10% drop, plus duplication and reordering — the ISSUE's fault floor.
fn hostile_plan() -> FaultPlan {
    FaultPlan::new(0x10a)
        .with_drop_permille(120)
        .with_duplicate_permille(100)
        .with_reorder_permille(100)
        .with_reorder_window(4)
}

fn app(name: &str) -> AppTrace {
    let spec = otm_workloads::catalog()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("{name} not in the Table II catalog"));
    (spec.generate)(TRACE_SEED)
}

fn assert_equivalent(trace: &AppTrace, cfg: &AppReplayConfig) {
    let oracle = engine_direct_pairs(trace, BINS);
    let out = replay_app(trace, cfg).expect("end-to-end replay completes");
    assert_eq!(
        out.matched_pairs, oracle,
        "{}: end-to-end matched pairs diverged (mode {}, faulty {})",
        trace.name, out.report.mode, out.report.faulty
    );
    assert_eq!(out.report.completed as usize, oracle.len());
    // Every arrival must actually have crossed the total-order gate — the
    // proof this test exercised the full wire path, not a shortcut.
    assert_eq!(
        out.report.gate_released, out.report.messages,
        "{}: not every message crossed the gate",
        trace.name
    );
}

#[test]
fn amg_clean_wire_matches_engine_direct_in_both_modes() {
    let trace = app("AMG");
    for mode in [ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat] {
        assert_equivalent(
            &trace,
            &AppReplayConfig::default().with_mode(mode).with_bins(BINS),
        );
    }
}

#[test]
fn mocfe_wildcard_heavy_clean_wire_matches_engine_direct() {
    // MOCFE's ANY_SOURCE gather receives make matching order-sensitive:
    // without the total-order gate, two sources racing the same wildcard
    // would match in wire order, not trace order.
    assert_equivalent(&app("MOCFE"), &AppReplayConfig::default().with_bins(BINS));
}

#[test]
fn crystal_router_rendezvous_clean_wire_matches_engine_direct() {
    // CrystalRouter's 256-element payloads take the rendezvous RTS +
    // RDMA-READ path end to end.
    let trace = app("CrystalRouter");
    let oracle = engine_direct_pairs(&trace, BINS);
    let out = replay_app(&trace, &AppReplayConfig::default().with_bins(BINS))
        .expect("end-to-end replay completes");
    assert_eq!(out.matched_pairs, oracle);
    assert_eq!(
        out.report.rendezvous_messages, out.report.messages,
        "every CrystalRouter payload is rendezvous-sized"
    );
}

#[test]
fn mocfe_hostile_wire_matches_engine_direct_in_both_modes() {
    let trace = app("MOCFE");
    for mode in [ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat] {
        let cfg = AppReplayConfig::default()
            .with_mode(mode)
            .with_bins(BINS)
            .with_faults(hostile_plan());
        let oracle = engine_direct_pairs(&trace, BINS);
        let out = replay_app(&trace, &cfg).expect("reliability recovers the hostile wire");
        assert_eq!(out.matched_pairs, oracle, "mode {mode:?}");
        assert!(
            out.report.wire_drops > 0 && out.report.retransmits > 0,
            "mode {mode:?}: the fault plan never fired (drops {}, retransmits {})",
            out.report.wire_drops,
            out.report.retransmits
        );
    }
}

#[test]
fn amg_hostile_wire_matches_engine_direct_in_both_modes() {
    let trace = app("AMG");
    for mode in [ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat] {
        let cfg = AppReplayConfig::default()
            .with_mode(mode)
            .with_bins(BINS)
            .with_faults(hostile_plan());
        assert_equivalent(&trace, &cfg);
    }
}

#[test]
#[ignore = "minutes-long full sweep; appbench and CI smoke cover the catalog"]
fn full_catalog_clean_wire_matches_engine_direct() {
    for spec in otm_workloads::catalog() {
        let trace = (spec.generate)(TRACE_SEED);
        assert_equivalent(&trace, &AppReplayConfig::default().with_bins(BINS));
    }
}
