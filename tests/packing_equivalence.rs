//! Seeded deterministic companion to the packing-equivalence property
//! (`tests/properties.rs`): the cross-communicator drain scheduler must be
//! outcome-identical to the strict consecutive drain on every stream, and
//! both policies must honor the `DrainReport` failure contract when the
//! engine's tables overflow mid-queue. Runs without proptest so it works
//! under plain `cargo test` everywhere — including the nightly
//! ThreadSanitizer job.

mod support;

use mpi_matching::{MsgHandle, PendingCommand, RecvHandle};
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{CommId, Envelope, MatchConfig, PackingPolicy, Rank, ReceivePattern, Tag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use support::{
    assert_drain_failure_contract, assert_packing_equivalence, assert_ring_equivalence,
    drain_under_policy, fallback_oracle_config,
};

/// One random interleaved multi-communicator command stream, mirroring the
/// proptest strategy: 3 communicators, a small (rank, tag) space so
/// wildcards and duplicates collide often, ~40% arrivals.
fn random_stream(rng: &mut SmallRng, len: usize) -> Vec<PendingCommand> {
    let (mut next_recv, mut next_msg) = (0u64, 0u64);
    (0..len)
        .map(|_| {
            let comm = CommId(rng.gen_range(1..=3u16));
            let src = Rank(rng.gen_range(0..3u32));
            let tag = Tag(rng.gen_range(0..3u32));
            match rng.gen_range(0..10u8) {
                0..=3 => {
                    let msg = MsgHandle(next_msg);
                    next_msg += 1;
                    PendingCommand::Arrival {
                        env: Envelope::new(src, tag, comm),
                        msg,
                    }
                }
                kind => {
                    let pattern = match kind {
                        4..=6 => ReceivePattern::new(src, tag, comm),
                        7 => ReceivePattern::new(SourceSel::Any, tag, comm),
                        8 => ReceivePattern::new(src, TagSel::Any, comm),
                        _ => ReceivePattern::new(SourceSel::Any, TagSel::Any, comm),
                    };
                    let handle = RecvHandle(next_recv);
                    next_recv += 1;
                    PendingCommand::Post { pattern, handle }
                }
            }
        })
        .collect()
}

/// Success path: identical outcomes, command for command, on streams of
/// growing length.
#[test]
fn packed_drain_equals_consecutive_drain_seeded() {
    let mut rng = SmallRng::seed_from_u64(0x0DDC0DE);
    for round in 0usize..48 {
        let len = 1 + (round * 7) % 160;
        let cmds = random_stream(&mut rng, len);
        assert_packing_equivalence(fallback_oracle_config(), &cmds);
    }
}

/// Bounded-ring path, seeded: tiny per-communicator rings force inline
/// drains mid-stream (the backpressure contract), rotation cursors and
/// per-lane quotas chop the lanes into many small blocks — and the outcome
/// vector must still equal the unbounded mutex-path oracle under either
/// packing policy, with every forced drain consuming pending work.
#[test]
fn bounded_ring_drain_equals_unbounded_oracle_seeded() {
    let mut rng = SmallRng::seed_from_u64(0x0DDC0DE ^ 0x51A6);
    for round in 0usize..32 {
        let len = 1 + (round * 9) % 160;
        let cmds = random_stream(&mut rng, len);
        let config = fallback_oracle_config()
            .with_ring_capacity(2 + round % 7)
            .with_lane_quota(Some(1 + round % 4));
        assert_ring_equivalence(config, &cmds);
    }
}

/// Failure path: with tables sized to overflow mid-stream, both policies
/// keep the partition / ordering / per-communicator-prefix contract.
#[test]
fn drain_failure_contract_holds_for_both_policies() {
    let mut rng = SmallRng::seed_from_u64(0x0DDC0DE ^ 0xF00D);
    let config = MatchConfig::default()
        .with_block_threads(4)
        .with_max_receives(8)
        .with_max_unexpected(8)
        .with_bins(4);
    for _ in 0..48 {
        let cmds = random_stream(&mut rng, 120);
        for packing in [PackingPolicy::Consecutive, PackingPolicy::CrossComm] {
            assert_drain_failure_contract(config.clone(), packing, &cmds);
        }
    }
}

/// The perf mechanism itself, pinned deterministically: on a post-riddled
/// interleaved stream the cross-communicator scheduler executes the same
/// arrivals in strictly fewer, fuller blocks than the consecutive packer.
#[test]
fn cross_comm_packs_fewer_fuller_blocks() {
    // Round-robin over 3 communicators; communicator c posts whenever
    // (i + c) % 3 == 2, so the post positions are staggered across lanes
    // and the *global* stream has a post roughly every third command.
    let mut cmds = Vec::new();
    let (mut next_recv, mut next_msg) = (0u64, 0u64);
    for i in 0u32..120 {
        for c in 0u16..3 {
            let comm = CommId(c + 1);
            if (i + c as u32) % 3 == 2 {
                let handle = RecvHandle(next_recv);
                next_recv += 1;
                cmds.push(PendingCommand::Post {
                    pattern: ReceivePattern::new(Rank(0), Tag(next_recv as u32), comm),
                    handle,
                });
            } else {
                let msg = MsgHandle(next_msg);
                next_msg += 1;
                cmds.push(PendingCommand::Arrival {
                    env: Envelope::new(Rank(0), Tag(next_msg as u32), comm),
                    msg,
                });
            }
        }
    }
    let config = fallback_oracle_config().with_block_threads(8);
    let (consec, a) = drain_under_policy(config.clone(), PackingPolicy::Consecutive, &cmds);
    let (cross, b) = drain_under_policy(config, PackingPolicy::CrossComm, &cmds);
    assert!(a.error.is_none() && b.error.is_none());
    assert_eq!(a.outcomes, b.outcomes, "same outcomes either way");
    let (sa, sb) = (consec.stats(), cross.stats());
    assert_eq!(sa.messages, sb.messages, "same arrivals matched");
    assert!(
        sb.blocks * 2 <= sa.blocks,
        "cross-comm must at least halve the block count on this stream \
         (consecutive {} vs cross-comm {})",
        sa.blocks,
        sb.blocks
    );
}
