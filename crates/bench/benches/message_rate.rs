//! Criterion benches behind Fig. 8: match throughput of the optimistic
//! engine against the host baselines, per scenario.
//!
//! These measure the matching core directly (post + block processing),
//! complementing the full transport-included harness in
//! `src/bin/fig8_message_rate.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::{Matcher, MsgHandle, RecvHandle};
use otm::OtmEngine;
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};

const K: usize = 100; // messages per sequence, as in §VI

fn engine_config(fast_path: bool) -> MatchConfig {
    MatchConfig::default()
        .with_max_receives(1024)
        .with_max_unexpected(1024)
        .with_bins(2048)
        .with_block_threads(32)
        .with_fast_path(fast_path)
}

/// Posts the sequence's receives and matches the k-message burst once.
fn otm_sequence(engine: &mut OtmEngine, wc: bool) {
    for i in 0..K {
        let tag = if wc { Tag(0) } else { Tag(i as u32) };
        engine
            .post(ReceivePattern::exact(Rank(0), tag), RecvHandle(i as u64))
            .unwrap();
    }
    let msgs: Vec<(Envelope, MsgHandle)> = (0..K)
        .map(|i| {
            let tag = if wc { Tag(0) } else { Tag(i as u32) };
            (Envelope::world(Rank(0), tag), MsgHandle(i as u64))
        })
        .collect();
    let out = engine.process_stream(&msgs).unwrap();
    assert_eq!(out.len(), K);
}

fn cpu_sequence(matcher: &mut TraditionalMatcher, wc: bool) {
    for i in 0..K {
        let tag = if wc { Tag(0) } else { Tag(i as u32) };
        matcher
            .post(ReceivePattern::exact(Rank(0), tag), RecvHandle(i as u64))
            .unwrap();
    }
    for i in 0..K {
        let tag = if wc { Tag(0) } else { Tag(i as u32) };
        matcher
            .arrive(Envelope::world(Rank(0), tag), MsgHandle(i as u64))
            .unwrap();
    }
}

fn bench_message_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_match_throughput");
    group.throughput(Throughput::Elements(K as u64));

    for (label, fast_path, wc) in [
        ("Optimistic NC", true, false),
        ("Optimistic WC-FP", true, true),
        ("Optimistic WC-SP", false, true),
    ] {
        let mut engine = OtmEngine::new(engine_config(fast_path)).unwrap();
        group.bench_function(BenchmarkId::new("sequence", label), |b| {
            b.iter(|| otm_sequence(&mut engine, wc))
        });
    }

    for (label, wc) in [("MPI-CPU NC", false), ("MPI-CPU WC", true)] {
        let mut matcher = TraditionalMatcher::new();
        group.bench_function(BenchmarkId::new("sequence", label), |b| {
            b.iter(|| cpu_sequence(&mut matcher, wc))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_message_rate);
criterion_main!(benches);
