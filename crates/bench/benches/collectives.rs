//! Criterion benches for the §VII extension: tree collectives running on
//! matched point-to-point messages, offloaded vs host matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpa_sim::collectives::{allreduce_sum, broadcast};
use dpa_sim::{Cluster, ClusterBackend};
use otm_base::{MatchConfig, Tag};

fn config() -> MatchConfig {
    MatchConfig::default()
        .with_max_receives(512)
        .with_max_unexpected(512)
        .with_bins(64)
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("collective_broadcast");
    group.sample_size(20);
    for &nodes in &[4usize, 8, 16] {
        group.throughput(Throughput::Elements(nodes as u64));
        for backend in [ClusterBackend::Offloaded, ClusterBackend::MpiCpu] {
            let label = match backend {
                ClusterBackend::Offloaded => "offloaded",
                ClusterBackend::MpiCpu => "mpi-cpu",
            };
            let mut cluster = Cluster::new(nodes, backend, config());
            let payload = vec![7u8; 256];
            let mut tag = 0u32;
            group.bench_function(BenchmarkId::new(label, nodes), |b| {
                b.iter(|| {
                    // A fresh tag per iteration keeps receives unambiguous.
                    tag = tag.wrapping_add(1);
                    broadcast(&mut cluster, 0, payload.clone(), Tag(tag)).expect("broadcast")
                })
            });
        }
    }
    group.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("collective_allreduce");
    group.sample_size(20);
    let nodes = 8usize;
    group.throughput(Throughput::Elements(nodes as u64));
    for backend in [ClusterBackend::Offloaded, ClusterBackend::MpiCpu] {
        let label = match backend {
            ClusterBackend::Offloaded => "offloaded",
            ClusterBackend::MpiCpu => "mpi-cpu",
        };
        let mut cluster = Cluster::new(nodes, backend, config());
        let values: Vec<Vec<u64>> = (0..nodes).map(|r| vec![r as u64; 16]).collect();
        let mut tag = 0u32;
        group.bench_function(BenchmarkId::new(label, nodes), |b| {
            b.iter(|| {
                tag = tag.wrapping_add(2);
                allreduce_sum(&mut cluster, &values, Tag(tag)).expect("allreduce")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast, bench_allreduce);
criterion_main!(benches);
