//! Criterion A/B bench over the reliability protocol: go-back-N vs
//! selective repeat, on a clean wire and on a seeded 10%-drop wire.
//!
//! The measured unit is one complete reliable transfer: N eager packets
//! pushed through a [`ReliableSender`], over a [`RecvNic`] running the
//! matching acceptance mode, until every packet is delivered exactly once
//! and every ack has settled. On the clean wire the two modes should be
//! indistinguishable (the selective-repeat machinery must be free when
//! nothing is lost); under drops the go-back-N blanket resends pay the
//! retransmit amplification the fault sweep quantifies, and selective
//! repeat's hole-only recovery should win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpa_sim::bounce::BouncePool;
use dpa_sim::nic::RecvNic;
use dpa_sim::rdma::{connected_pair, eager_packet};
use dpa_sim::ReliableSender;
use otm_base::{Envelope, FaultPlan, Rank, ReliabilityMode, Tag};

const MESSAGES: usize = 512;

/// Drives one full reliable transfer and returns the completions counted —
/// the return value keeps the optimizer honest.
fn transfer(mode: ReliabilityMode, plan: Option<&FaultPlan>) -> usize {
    let (tx, rx) = connected_pair();
    let mut nic = RecvNic::new(rx, BouncePool::new(MESSAGES, 64));
    nic.set_reliability_mode(mode);
    if let Some(plan) = plan {
        nic.set_faults(plan.clone());
    }
    let mut sender = ReliableSender::new(tx).with_mode(mode);
    let mut sent = 0usize;
    let mut delivered = 0usize;
    while delivered < MESSAGES {
        while sent < MESSAGES && sender.can_send() {
            let env = Envelope::world(Rank(sent as u32 % 8), Tag(sent as u32 % 64));
            sender
                .send(eager_packet(env, (sent as u32).to_le_bytes().to_vec()))
                .expect("wire up");
            sent += 1;
        }
        delivered += nic.poll().expect("bounce pool sized for the budget");
        sender.poll().expect("retry budget covers a 10% drop wire");
        // Free the bounce buffers so the pool never throttles the bench.
        for completion in nic.take_block(MESSAGES) {
            nic.release(completion.bounce);
        }
    }
    while sender.unacked() > 0 {
        nic.poll().expect("bounce pool sized for the budget");
        sender.poll().expect("retry budget covers a 10% drop wire");
    }
    delivered
}

fn bench_reliability(c: &mut Criterion) {
    let drop_plan = FaultPlan::new(0xbe9c)
        .with_drop_permille(100)
        .with_duplicate_permille(50)
        .with_reorder_permille(100);
    let mut group = c.benchmark_group("reliability_path_512");
    group.throughput(Throughput::Elements(MESSAGES as u64));
    for mode in [ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat] {
        group.bench_function(BenchmarkId::new("clean-wire", mode.label()), |b| {
            b.iter(|| transfer(mode, None))
        });
        group.bench_function(BenchmarkId::new("hostile-wire", mode.label()), |b| {
            b.iter(|| transfer(mode, Some(&drop_plan)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reliability);
criterion_main!(benches);
