//! Criterion benches over the sequential matching strategies: the cost
//! story behind Table I and the Fig. 7 bin sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpi_matching::binned::BinnedMatcher;
use mpi_matching::rank_based::RankBasedMatcher;
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::{Matcher, MsgHandle, RecvHandle};
use otm_base::{Envelope, Rank, ReceivePattern, Tag};
use otm_trace::emul::FourIndexMatcher;

const N: u32 = 256;

/// Post N receives with distinct tags, then deliver the N matching
/// messages in reverse order — the classic matching-misery pattern.
fn misery<M: Matcher>(m: &mut M) {
    for t in 0..N {
        m.post(
            ReceivePattern::exact(Rank(0), Tag(t)),
            RecvHandle(u64::from(t)),
        )
        .unwrap();
    }
    for t in (0..N).rev() {
        m.arrive(Envelope::world(Rank(0), Tag(t)), MsgHandle(u64::from(t)))
            .unwrap();
    }
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_misery_256");
    group.throughput(Throughput::Elements(u64::from(2 * N)));
    group.bench_function("traditional", |b| {
        b.iter(|| misery(&mut TraditionalMatcher::new()))
    });
    group.bench_function("rank-based", |b| {
        b.iter(|| misery(&mut RankBasedMatcher::new()))
    });
    for bins in [1usize, 32, 128] {
        group.bench_function(BenchmarkId::new("bin-based", bins), |b| {
            b.iter(|| misery(&mut BinnedMatcher::new(bins)))
        });
        group.bench_function(BenchmarkId::new("optimistic-indexes", bins), |b| {
            b.iter(|| misery(&mut FourIndexMatcher::new(bins)))
        });
    }
    group.finish();
}

/// The Fig. 7 replay path itself: how fast the analyzer chews through an
/// application trace at different bin counts.
fn bench_replay(c: &mut Criterion) {
    let spec = otm_workloads::catalog()
        .into_iter()
        .find(|a| a.name == "BoxLib CNS")
        .unwrap();
    let trace = (spec.generate)(42);
    let ops = trace.total_ops() as u64;
    let mut group = c.benchmark_group("trace_replay_cns");
    group.throughput(Throughput::Elements(ops));
    group.sample_size(20);
    for bins in [1usize, 32, 128] {
        group.bench_function(BenchmarkId::from_parameter(bins), |b| {
            b.iter(|| otm_trace::replay(&trace, &otm_trace::ReplayConfig { bins }))
        });
    }
    group.finish();
}

/// The unexpected-message side of the coin (§II-A: "unexpected messages
/// require temporary memory allocation while being received, increasing
/// latency"): N messages arrive before any receive is posted, then the
/// receives drain the UMQ in reverse arrival order.
fn umq_misery<M: Matcher>(m: &mut M) {
    for t in 0..N {
        m.arrive(Envelope::world(Rank(0), Tag(t)), MsgHandle(u64::from(t)))
            .unwrap();
    }
    for t in (0..N).rev() {
        m.post(
            ReceivePattern::exact(Rank(0), Tag(t)),
            RecvHandle(u64::from(t)),
        )
        .unwrap();
    }
}

fn bench_unexpected(c: &mut Criterion) {
    let mut group = c.benchmark_group("unexpected_misery_256");
    group.throughput(Throughput::Elements(u64::from(2 * N)));
    group.bench_function("traditional", |b| {
        b.iter(|| umq_misery(&mut TraditionalMatcher::new()))
    });
    group.bench_function("rank-based", |b| {
        b.iter(|| umq_misery(&mut RankBasedMatcher::new()))
    });
    for bins in [1usize, 128] {
        group.bench_function(BenchmarkId::new("bin-based", bins), |b| {
            b.iter(|| umq_misery(&mut BinnedMatcher::new(bins)))
        });
        group.bench_function(BenchmarkId::new("optimistic-indexes", bins), |b| {
            b.iter(|| umq_misery(&mut FourIndexMatcher::new(bins)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_replay, bench_unexpected);
criterion_main!(benches);
