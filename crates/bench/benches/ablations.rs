//! Ablation benches for the design choices DESIGN.md calls out: fast path,
//! early-booking check, lazy removal, and block size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpi_matching::{MsgHandle, RecvHandle};
use otm::OtmEngine;
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};

const K: usize = 128;

fn config() -> MatchConfig {
    MatchConfig::default()
        .with_max_receives(1024)
        .with_max_unexpected(1024)
        .with_bins(2048)
}

/// The all-conflicts sequence: every receive and message identical.
fn wc_sequence(engine: &mut OtmEngine) {
    for i in 0..K {
        engine
            .post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(i as u64))
            .unwrap();
    }
    let msgs: Vec<(Envelope, MsgHandle)> = (0..K)
        .map(|i| (Envelope::world(Rank(0), Tag(0)), MsgHandle(i as u64)))
        .collect();
    engine.process_stream(&msgs).unwrap();
}

/// The no-conflict sequence: distinct tags.
fn nc_sequence(engine: &mut OtmEngine) {
    for i in 0..K {
        engine
            .post(
                ReceivePattern::exact(Rank(0), Tag(i as u32)),
                RecvHandle(i as u64),
            )
            .unwrap();
    }
    let msgs: Vec<(Envelope, MsgHandle)> = (0..K)
        .map(|i| (Envelope::world(Rank(0), Tag(i as u32)), MsgHandle(i as u64)))
        .collect();
    engine.process_stream(&msgs).unwrap();
}

fn bench_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fast_path_wc");
    group.throughput(Throughput::Elements(K as u64));
    for fast_path in [true, false] {
        let mut engine = OtmEngine::new(config().with_fast_path(fast_path)).unwrap();
        group.bench_function(BenchmarkId::from_parameter(fast_path), |b| {
            b.iter(|| wc_sequence(&mut engine))
        });
    }
    group.finish();
}

fn bench_early_booking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_early_booking_wc");
    group.throughput(Throughput::Elements(K as u64));
    for ebc in [false, true] {
        let mut engine = OtmEngine::new(config().with_early_booking_check(ebc)).unwrap();
        group.bench_function(BenchmarkId::from_parameter(ebc), |b| {
            b.iter(|| wc_sequence(&mut engine))
        });
    }
    group.finish();
}

fn bench_lazy_removal(c: &mut Criterion) {
    // Removal costs show up when consumers share chains: the WC scenario
    // serializes eager unlinkers on the bin lock (§IV-D).
    let mut group = c.benchmark_group("ablation_lazy_removal_wc");
    group.throughput(Throughput::Elements(K as u64));
    for lazy in [true, false] {
        let mut engine = OtmEngine::new(config().with_lazy_removal(lazy)).unwrap();
        group.bench_function(BenchmarkId::from_parameter(lazy), |b| {
            b.iter(|| wc_sequence(&mut engine))
        });
    }
    group.finish();
}

fn bench_block_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_block_threads_nc");
    group.throughput(Throughput::Elements(K as u64));
    group.sample_size(30);
    for n in [1usize, 4, 8, 16, 32, 64] {
        let mut engine = OtmEngine::new(config().with_block_threads(n)).unwrap();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| nc_sequence(&mut engine))
        });
    }
    group.finish();
}

fn bench_comm_hints(c: &mut Criterion) {
    // §VII: `mpi_assert_allow_overtaking` waives the ordering machinery —
    // the relaxed lane just searches and CAS-consumes. Measured on the WC
    // storm, where the strict engine pays full conflict resolution.
    use otm_base::{CommHints, CommId};
    let mut group = c.benchmark_group("ablation_comm_hints_wc");
    group.throughput(Throughput::Elements(K as u64));
    for (label, hints) in [
        ("strict", CommHints::NONE),
        (
            "allow_overtaking",
            CommHints {
                allow_overtaking: true,
                ..Default::default()
            },
        ),
    ] {
        let comm = CommId(9);
        let mut engine = OtmEngine::new(config()).unwrap();
        engine.declare_comm(comm, hints).unwrap();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                for i in 0..K {
                    engine
                        .post(
                            ReceivePattern::new(Rank(0), Tag(0), comm),
                            RecvHandle(i as u64),
                        )
                        .unwrap();
                }
                let msgs: Vec<(Envelope, MsgHandle)> = (0..K)
                    .map(|i| (Envelope::new(Rank(0), Tag(0), comm), MsgHandle(i as u64)))
                    .collect();
                engine.process_stream(&msgs).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fast_path,
    bench_early_booking,
    bench_lazy_removal,
    bench_block_size,
    bench_comm_hints
);
criterion_main!(benches);
