//! Shared helpers for the figure/table harness binaries.
//!
//! Each binary regenerates one element of the paper's evaluation (see
//! DESIGN.md §3 for the index) and, besides the human-readable rows, drops
//! a JSON artifact under `target/experiments/` so EXPERIMENTS.md numbers
//! have machine-readable provenance.
//!
//! Since the observability PR every binary emits the same [`BenchReport`]
//! envelope: the bench-specific rows under `results`, plus — when the
//! instrumented crates are compiled with their default `metrics` feature —
//! an `observability` object holding parsed `otm-metrics` registry
//! snapshots (counters, queue-depth gauges, histogram quantiles). Command
//! lines are parsed by the shared [`CommonArgs`] so every harness accepts
//! the same `--quick` / `--full` / `--messages N` / `--repeats N` /
//! `--out PATH` vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;

/// Command-line vocabulary shared by all harness binaries.
///
/// Unrecognized tokens are ignored so individual binaries can layer their
/// own flags on top without re-implementing the scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommonArgs {
    /// `--quick`: shrink the workload for smoke testing.
    pub quick: bool,
    /// `--full`: extend the workload to the paper's full sweep.
    pub full: bool,
    /// `--messages N`: target message volume (harness-specific meaning;
    /// fig8 divides it by the per-sequence k to derive the repeat count).
    pub messages: Option<u64>,
    /// `--repeats N`: explicit repeat count, overriding `--quick` presets.
    pub repeats: Option<u64>,
    /// `--out PATH`: write the JSON artifact here instead of
    /// `target/experiments/<bench>.json`.
    pub out: Option<PathBuf>,
    /// `--shards N`: communicator shards for the concurrent command-queue
    /// benchmark (fig8); defaults to the harness preset.
    pub shards: Option<usize>,
    /// `--threads N`: poster threads feeding the shards; defaults to one
    /// thread per shard.
    pub threads: Option<usize>,
    /// `--packing {consecutive,cross-comm}`: restrict the fig8 mixed-traffic
    /// comparison to one drain packing policy (default: run both).
    pub packing: Option<String>,
    /// `--post-mix PCT`: percentage of posts interleaved into the mixed
    /// command stream (fig8; default 30).
    pub post_mix: Option<u32>,
    /// `--faults`: run the fault-injection sweep (fig8) — the same message
    /// stream over a perfect and a seeded-hostile wire, recovered by the
    /// go-back-N reliability protocol — and write the `fig8_faults.json`
    /// artifact.
    pub faults: bool,
    /// `--fault-seed N`: seed for the fault plan of the `--faults` sweep
    /// (default `0xf8`). Equal seeds inject identical faults.
    pub fault_seed: Option<u64>,
    /// `--series PATH`: write the flight recorder's rolling time-series
    /// artifact (columnar JSON; fig8 samples the mixed-traffic drain per
    /// round and the `--faults` service per poll) to PATH.
    pub series: Option<PathBuf>,
    /// `--spans PATH`: write per-message lifecycle span dumps — JSONL plus a
    /// Chrome `trace_event` file Perfetto opens directly — using PATH as the
    /// stem (`PATH.<section>.jsonl`, `PATH.<section>.trace.json`). Requires
    /// building with `--features trace-events`; otherwise the harness prints
    /// a warning and skips the dump.
    pub spans: Option<PathBuf>,
    /// `--tenants N`: run the multi-tenant matchd fairness section (fig8)
    /// with N tenant sessions on one matching server, and write the
    /// `fig8_tenants.json` artifact.
    pub tenants: Option<usize>,
    /// `--flood-tenant I`: make tenant I of the `--tenants` section a
    /// flooder — it submits far past its ingress bound every tick, so the
    /// admission path answers with backpressure while the fair drain
    /// protects the other tenants' throughput.
    pub flood_tenant: Option<usize>,
    /// `--ring-capacity N`: per-communicator submission-ring slots for the
    /// sharded fig8 section (default: the engine's config default). The
    /// sharded run reports the wait-free ring path against the legacy mutex
    /// queue A/B-style.
    pub ring_capacity: Option<usize>,
}

impl CommonArgs {
    /// Parses the process's command line (flag values that fail to parse
    /// are ignored, like unknown flags).
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (testable form of [`Self::parse`]).
    /// Not `FromIterator`: this is fallible-flag parsing, not collection.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut args = CommonArgs::default();
        let mut it = tokens.into_iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--quick" => args.quick = true,
                "--full" => args.full = true,
                "--messages" => args.messages = it.next().and_then(|v| v.parse().ok()),
                "--repeats" => args.repeats = it.next().and_then(|v| v.parse().ok()),
                "--out" => args.out = it.next().map(PathBuf::from),
                "--shards" => args.shards = it.next().and_then(|v| v.parse().ok()),
                "--threads" => args.threads = it.next().and_then(|v| v.parse().ok()),
                "--packing" => args.packing = it.next(),
                "--post-mix" => args.post_mix = it.next().and_then(|v| v.parse().ok()),
                "--faults" => args.faults = true,
                "--fault-seed" => args.fault_seed = it.next().and_then(|v| v.parse().ok()),
                "--series" => args.series = it.next().map(PathBuf::from),
                "--spans" => args.spans = it.next().map(PathBuf::from),
                "--tenants" => args.tenants = it.next().and_then(|v| v.parse().ok()),
                "--flood-tenant" => args.flood_tenant = it.next().and_then(|v| v.parse().ok()),
                "--ring-capacity" => args.ring_capacity = it.next().and_then(|v| v.parse().ok()),
                _ => {}
            }
        }
        args
    }

    /// The effective repeat count: explicit `--repeats` wins, then the
    /// quick/full preset split.
    pub fn repeats_or(&self, full: usize, quick: usize) -> usize {
        match self.repeats {
            Some(r) => r.max(1) as usize,
            None => {
                if self.quick {
                    quick
                } else {
                    full
                }
            }
        }
    }
}

/// The common machine-readable envelope every harness binary writes.
///
/// `results` carries the bench-specific rows (unchanged from the
/// pre-envelope artifacts, one level down); `observability` carries parsed
/// `otm-metrics` registry snapshots — per-path resolution counters,
/// queue-depth gauges, histogram quantiles — when the run captured any.
#[derive(Debug, Serialize)]
pub struct BenchReport<T: Serialize, O: Serialize = ()> {
    /// Harness name; also the default artifact file stem.
    pub bench: &'static str,
    /// True when `--quick` (or a small `--messages`) trimmed the workload,
    /// flagging the numbers as smoke-test-scale.
    pub quick: bool,
    /// Bench-specific result rows.
    pub results: T,
    /// Parsed observability payload, if the run captured one.
    pub observability: Option<O>,
}

impl<T: Serialize> BenchReport<T, ()> {
    /// An envelope with no observability payload.
    pub fn new(bench: &'static str, quick: bool, results: T) -> Self {
        BenchReport {
            bench,
            quick,
            results,
            observability: None,
        }
    }
}

impl<T: Serialize, O: Serialize> BenchReport<T, O> {
    /// An envelope carrying an observability payload.
    pub fn with_observability(
        bench: &'static str,
        quick: bool,
        results: T,
        observability: Option<O>,
    ) -> Self {
        BenchReport {
            bench,
            quick,
            results,
            observability,
        }
    }
}

/// Parses an `otm-metrics` registry-snapshot JSON string (as returned by
/// `RegistrySnapshot::to_json` or `MatchingService::observability_json`)
/// into a JSON value for embedding in a [`BenchReport`].
pub fn observability_value(json: Option<&str>) -> Option<serde_json::Value> {
    json.and_then(|s| serde_json::from_str(s).ok())
}

/// Directory where harness binaries drop their JSON artifacts.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes a [`BenchReport`] to `--out` (if given) or
/// `target/experiments/<bench>.json`, and returns the path.
pub fn write_report<T: Serialize, O: Serialize>(
    args: &CommonArgs,
    report: &BenchReport<T, O>,
) -> PathBuf {
    let path = match &args.out {
        Some(p) => {
            if let Some(parent) = p.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).expect("create --out directory");
                }
            }
            p.clone()
        }
        None => experiments_dir().join(format!("{}.json", report.bench)),
    };
    std::fs::write(
        &path,
        serde_json::to_string_pretty(report).expect("serializable"),
    )
    .expect("write experiment artifact");
    path
}

/// Serializes `value` to `target/experiments/<name>.json` and returns the
/// path.
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    )
    .expect("write experiment artifact");
    path
}

/// Writes a hand-serialized flight-recorder artifact (series JSON, span
/// JSONL/Chrome trace) to `path`, creating parent directories, and returns
/// the path. Kept separate from [`write_report`] because these artifacts are
/// rendered by `otm-metrics`' dependency-free writers, not serde.
pub fn write_text_artifact(path: &std::path::Path, contents: &str) -> PathBuf {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create artifact directory");
        }
    }
    std::fs::write(path, contents).expect("write flight-recorder artifact");
    path.to_path_buf()
}

/// Derives a sibling path from a `--spans` stem: `stem.<section>.<ext>`
/// (e.g. `fig8_spans` → `fig8_spans.mixed.jsonl`), preserving the stem's
/// directory.
pub fn spans_sibling(stem: &std::path::Path, section: &str, ext: &str) -> PathBuf {
    let mut name = stem
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "spans".to_string());
    name.push('.');
    name.push_str(section);
    name.push('.');
    name.push_str(ext);
    stem.with_file_name(name)
}

/// Prints a section header in a consistent style.
pub fn header(title: &str) {
    println!("{}", "=".repeat(title.len().max(8)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(8)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_json_writes_readable_artifacts() {
        let path = dump_json("selftest", &vec![1, 2, 3]);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<i32> = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, vec![1, 2, 3]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn common_args_parse_the_shared_vocabulary() {
        let args = CommonArgs::from_iter(
            ["--quick", "--messages", "1000", "--out", "/tmp/x.json"]
                .into_iter()
                .map(String::from),
        );
        assert!(args.quick);
        assert!(!args.full);
        assert_eq!(args.messages, Some(1000));
        assert_eq!(args.repeats, None);
        assert_eq!(
            args.out.as_deref(),
            Some(std::path::Path::new("/tmp/x.json"))
        );
    }

    #[test]
    fn common_args_parse_shard_and_thread_knobs() {
        let args = CommonArgs::from_iter(
            ["--shards", "8", "--threads", "4"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(args.shards, Some(8));
        assert_eq!(args.threads, Some(4));
        let bad = CommonArgs::from_iter(["--shards", "zero"].into_iter().map(String::from));
        assert_eq!(bad.shards, None);
    }

    #[test]
    fn common_args_parse_packing_and_post_mix() {
        let args = CommonArgs::from_iter(
            ["--packing", "cross-comm", "--post-mix", "30"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(args.packing.as_deref(), Some("cross-comm"));
        assert_eq!(args.post_mix, Some(30));
        let default = CommonArgs::from_iter(std::iter::empty());
        assert_eq!(default.packing, None);
        assert_eq!(default.post_mix, None);
        let bad = CommonArgs::from_iter(["--post-mix", "lots"].into_iter().map(String::from));
        assert_eq!(bad.post_mix, None);
    }

    #[test]
    fn common_args_parse_ring_capacity() {
        let args = CommonArgs::from_iter(
            ["--ring-capacity", "256"].into_iter().map(String::from),
        );
        assert_eq!(args.ring_capacity, Some(256));
        let default = CommonArgs::from_iter(std::iter::empty());
        assert_eq!(default.ring_capacity, None);
        let bad =
            CommonArgs::from_iter(["--ring-capacity", "many"].into_iter().map(String::from));
        assert_eq!(bad.ring_capacity, None);
    }

    #[test]
    fn common_args_parse_fault_knobs() {
        let args = CommonArgs::from_iter(
            ["--faults", "--fault-seed", "248"]
                .into_iter()
                .map(String::from),
        );
        assert!(args.faults);
        assert_eq!(args.fault_seed, Some(248));
        let default = CommonArgs::from_iter(std::iter::empty());
        assert!(!default.faults);
        assert_eq!(default.fault_seed, None);
    }

    #[test]
    fn common_args_parse_flight_recorder_paths() {
        let args = CommonArgs::from_iter(
            ["--series", "out/series.json", "--spans", "out/spans"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(
            args.series.as_deref(),
            Some(std::path::Path::new("out/series.json"))
        );
        assert_eq!(
            args.spans.as_deref(),
            Some(std::path::Path::new("out/spans"))
        );
        let default = CommonArgs::from_iter(std::iter::empty());
        assert_eq!(default.series, None);
        assert_eq!(default.spans, None);
    }

    #[test]
    fn spans_sibling_derives_sectioned_names() {
        let stem = std::path::Path::new("experiments/fig8_spans");
        assert_eq!(
            spans_sibling(stem, "mixed", "jsonl"),
            std::path::Path::new("experiments/fig8_spans.mixed.jsonl")
        );
        assert_eq!(
            spans_sibling(stem, "faults", "trace.json"),
            std::path::Path::new("experiments/fig8_spans.faults.trace.json")
        );
    }

    #[test]
    fn common_args_ignore_unknown_flags_and_bad_values() {
        let args = CommonArgs::from_iter(
            ["--frobnicate", "--repeats", "abc", "--full"]
                .into_iter()
                .map(String::from),
        );
        assert!(args.full);
        assert_eq!(args.repeats, None);
    }

    #[test]
    fn repeats_precedence_is_explicit_then_preset() {
        let explicit = CommonArgs {
            repeats: Some(7),
            quick: true,
            ..Default::default()
        };
        assert_eq!(explicit.repeats_or(500, 50), 7);
        let quick = CommonArgs {
            quick: true,
            ..Default::default()
        };
        assert_eq!(quick.repeats_or(500, 50), 50);
        assert_eq!(CommonArgs::default().repeats_or(500, 50), 500);
    }

    #[test]
    fn write_report_honors_out_path() {
        let dir = experiments_dir().join("selftest-report");
        let out = dir.join("custom.json");
        let args = CommonArgs {
            out: Some(out.clone()),
            ..Default::default()
        };
        let report = BenchReport::new("selftest_report", true, vec![1u64, 2]);
        let path = write_report(&args, &report);
        assert_eq!(path, out);
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["bench"], "selftest_report");
        assert_eq!(v["quick"], true);
        std::fs::remove_dir_all(dir).ok();
    }
}
