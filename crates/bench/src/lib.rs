//! Shared helpers for the figure/table harness binaries.
//!
//! Each binary regenerates one element of the paper's evaluation (see
//! DESIGN.md §3 for the index) and, besides the human-readable rows, drops
//! a JSON artifact under `target/experiments/` so EXPERIMENTS.md numbers
//! have machine-readable provenance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;

/// Directory where harness binaries drop their JSON artifacts.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Serializes `value` to `target/experiments/<name>.json` and returns the
/// path.
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    )
    .expect("write experiment artifact");
    path
}

/// Prints a section header in a consistent style.
pub fn header(title: &str) {
    println!("{}", "=".repeat(title.len().max(8)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(8)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_json_writes_readable_artifacts() {
        let path = dump_json("selftest", &vec![1, 2, 3]);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<i32> = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, vec![1, 2, 3]);
        std::fs::remove_file(path).ok();
    }
}
