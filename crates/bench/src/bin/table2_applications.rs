//! **Table II** — the application traces analyzed.
//!
//! Regenerates the application inventory: name, description and process
//! count, plus the size of the synthetic trace this reproduction generates
//! for each (the NERSC DUMPI originals are not redistributable; see
//! DESIGN.md §1).
//!
//! Run with: `cargo run --release -p otm-bench --bin table2_applications`
//! (`--out PATH` redirects the JSON report).

use otm_bench::{header, write_report, BenchReport, CommonArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    description: String,
    processes: usize,
    total_ops: usize,
}

fn main() {
    let args = CommonArgs::parse();
    header("Table II: application traces analyzed, sorted by name");
    println!(
        "{:<18} {:>6}  {:>9}  description",
        "application", "procs", "ops"
    );
    let mut rows = Vec::new();
    for spec in otm_workloads::catalog() {
        let trace = (spec.generate)(42);
        println!(
            "{:<18} {:>6}  {:>9}  {}",
            spec.name,
            spec.processes,
            trace.total_ops(),
            spec.description
        );
        rows.push(Row {
            name: spec.name.to_string(),
            description: spec.description.to_string(),
            processes: spec.processes,
            total_ops: trace.total_ops(),
        });
    }
    let report = BenchReport::new("table2_applications", false, rows);
    let path = write_report(&args, &report);
    println!("\nJSON artifact: {}", path.display());
}
