//! **§IV-E memory footprint** — the analytic DPA memory model.
//!
//! Regenerates the paper's arithmetic: 20 B per bin (4 B remove lock + two
//! 8 B chain pointers), 7.5 KiB for the three 128-bin index tables, 64 B
//! per receive descriptor, ~520 KiB for 8 K simultaneous receives — against
//! the BlueField-3 DPA caches (L2 1.5 MiB, L3 3 MiB).
//!
//! Run with: `cargo run --release -p otm-bench --bin memory_footprint`
//! (`--out PATH` redirects the JSON report).

use otm_base::memory::{Footprint, BIN_BYTES, DESCRIPTOR_BYTES, DPA_L2_BYTES, DPA_L3_BYTES};
use otm_bench::{header, write_report, BenchReport, CommonArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bins: usize,
    max_receives: usize,
    total_bytes: u64,
    fits_l2: bool,
    fits_l3: bool,
}

fn main() {
    let args = CommonArgs::parse();
    header("Section IV-E: DPA memory footprint model");
    println!("bin entry: {BIN_BYTES} B, receive descriptor: {DESCRIPTOR_BYTES} B");
    println!(
        "DPA caches: L2 {} KiB, L3 {} KiB\n",
        DPA_L2_BYTES / 1024,
        DPA_L3_BYTES / 1024
    );

    let configs = [
        (128usize, 0usize, "paper: 3 index tables at 128 bins"),
        (128, 8 * 1024, "paper: + 8K simultaneous receives"),
        (2048, 1024, "Fig. 8 prototype (2x1024 bins, 1024 receives)"),
        (2048, 8 * 1024, "scaled prototype"),
        (4096, 32 * 1024, "beyond-L2 configuration"),
    ];
    let mut rows = Vec::new();
    for (bins, receives, label) in configs {
        let fp = Footprint::compute(bins, receives);
        println!(
            "{label:<46} {fp}   L2:{} L3:{}",
            if fp.fits_l2() { "fits" } else { "SPILLS" },
            if fp.fits_l3() { "fits" } else { "SPILLS" }
        );
        rows.push(Row {
            bins,
            max_receives: receives,
            total_bytes: fp.total(),
            fits_l2: fp.fits_l2(),
            fits_l3: fp.fits_l3(),
        });
    }

    println!("\npaper anchors: 7.5 KiB for 128 bins x 3 tables; ~520 KiB for 8K receives.");
    let report = BenchReport::new("memory_footprint", false, rows);
    let path = write_report(&args, &report);
    println!("JSON artifact: {}", path.display());
}
