//! **Fig. 6/7-style application replay** — every Table II app end to end
//! through the full protocol stack.
//!
//! Where `table2_applications` inventories the traces and `fig7_queue_depth`
//! replays them matcher-direct, this harness drives each application's
//! generated trace through the complete production path —
//! `ReliableSender` → (optionally faulty) `RecvNic` with the cross-QP
//! total-order gate → command queue → per-communicator submission rings →
//! cross-comm packing → sharded `OtmEngine` → eager/rendezvous payload
//! protocol — via [`dpa_sim::app_replay::replay_app`], and checks the
//! matched pairs against the engine-direct oracle
//! ([`dpa_sim::app_replay::engine_direct_pairs`]).
//!
//! Run with: `cargo run --release -p otm-bench --bin appbench`
//!
//! * `--app SUBSTR` — only apps whose name contains SUBSTR (case-insensitive);
//! * `--mode {goback-n,selective-repeat,both}` — reliability mode(s), default
//!   `selective-repeat`;
//! * `--faults` — add a hostile-wire run per mode (seeded by `--fault-seed`,
//!   default `0xa99`: 10% drop, 8% duplicate, 8% reorder);
//! * `--quick` — skip apps above 256 processes (CI smoke scale);
//! * `--seed N` — trace generator seed (default 42);
//! * `--bins N` — engine/oracle bin count (default 128);
//! * `--out DIR` — write the per-app artifacts under DIR instead of
//!   `target/experiments/` (unlike single-artifact harnesses, `--out`
//!   names a directory here — one file per app is produced).
//!
//! Each app writes `target/experiments/app_replay_<slug>.json`: trace
//! metadata, the engine-direct baseline, one row per run (wire and
//! reliability counters, NC/WC-FP/WC-SP path distribution, retransmit
//! amplification, an embedded queue-depth series for the busiest
//! destination) and the oracle verdict.

use dpa_sim::app_replay::{engine_direct_pairs, replay_app, AppReplayConfig};
use otm_base::{FaultPlan, ReliabilityMode};
use otm_bench::{experiments_dir, header, write_text_artifact, CommonArgs};
use std::time::Instant;

/// `appbench`-specific flags layered over [`CommonArgs`] (which ignores
/// unknown tokens).
struct AppArgs {
    common: CommonArgs,
    app_filter: Option<String>,
    modes: Vec<ReliabilityMode>,
    seed: u64,
    bins: usize,
}

fn parse_args() -> AppArgs {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let common = CommonArgs::from_iter(tokens.clone());
    let mut app_filter = None;
    let mut modes = vec![ReliabilityMode::SelectiveRepeat];
    let mut seed = 42u64;
    let mut bins = 128usize;
    let mut it = tokens.into_iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--app" => app_filter = it.next(),
            "--mode" => match it.next().as_deref() {
                Some("goback-n" | "go-back-n") => modes = vec![ReliabilityMode::GoBackN],
                Some("selective-repeat") => modes = vec![ReliabilityMode::SelectiveRepeat],
                Some("both") => {
                    modes = vec![ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat];
                }
                other => panic!("unknown --mode {other:?}"),
            },
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--bins" => bins = it.next().and_then(|v| v.parse().ok()).unwrap_or(bins),
            _ => {}
        }
    }
    AppArgs {
        common,
        app_filter,
        modes,
        seed,
        bins,
    }
}

/// Artifact file stem for an app name: lowercase, non-alphanumerics → `_`.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    header("Application replay: Table II end to end through the full stack");
    let plan = args.common.faults.then(|| {
        FaultPlan::new(args.common.fault_seed.unwrap_or(0xa99))
            .with_drop_permille(100)
            .with_duplicate_permille(80)
            .with_reorder_permille(80)
            .with_reorder_window(4)
    });
    println!(
        "{:<18} {:<16} {:>7} {:>9} {:>9} {:>11} {:>8} {:>7}  oracle",
        "application", "run", "msgs", "matched", "rdv", "e2e msg/s", "retx", "parked"
    );

    let mut all_equal = true;
    let mut ran = 0usize;
    for spec in otm_workloads::catalog() {
        if let Some(f) = &args.app_filter {
            if !spec.name.to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        if args.common.quick && spec.processes > 256 {
            continue;
        }
        ran += 1;
        let trace = (spec.generate)(args.seed);
        let arrivals: u64 = trace
            .ranks
            .iter()
            .flat_map(|r| r.ops.iter())
            .filter(|op| {
                matches!(
                    op.op,
                    otm_trace::model::MpiOp::Send { .. } | otm_trace::model::MpiOp::Isend { .. }
                )
            })
            .count() as u64;

        // Engine-direct baseline: the same event streams, no wire.
        let t0 = Instant::now();
        let oracle = engine_direct_pairs(&trace, args.bins);
        let direct_secs = t0.elapsed().as_secs_f64();
        let direct_rate = arrivals as f64 / direct_secs.max(f64::EPSILON);

        let mut runs: Vec<String> = Vec::new();
        let mut first_series: Option<String> = None;
        for mode in &args.modes {
            for fault_plan in std::iter::once(None).chain(plan.as_ref().map(Some)) {
                let mut cfg = AppReplayConfig::default()
                    .with_mode(*mode)
                    .with_bins(args.bins)
                    .with_series_cadence((arrivals / 512).max(1));
                if let Some(p) = fault_plan {
                    cfg = cfg.with_faults(p.clone());
                }
                let out = replay_app(&trace, &cfg).expect("replay within configured capacity");
                let equal = out.matched_pairs == oracle;
                all_equal &= equal;
                let label = format!(
                    "{}{}",
                    mode.label(),
                    if fault_plan.is_some() { "+faults" } else { "" }
                );
                println!(
                    "{:<18} {:<16} {:>7} {:>9} {:>9} {:>11.0} {:>8} {:>7}  {}",
                    spec.name,
                    label,
                    out.report.messages,
                    out.report.completed,
                    out.report.rendezvous_messages,
                    out.report.msgs_per_sec,
                    out.report.retransmits,
                    out.report.gate_parked,
                    if equal { "ok" } else { "MISMATCH" },
                );
                if first_series.is_none() {
                    first_series = out.report.series_json.clone();
                }
                runs.push(format!(
                    "{{\"oracle_equal\":{equal},\"report\":{}}}",
                    out.report.to_json()
                ));
            }
        }

        let artifact = format!(
            concat!(
                "{{\"bench\":\"app_replay\",\"app\":\"{}\",\"slug\":\"{}\",",
                "\"processes\":{},\"seed\":{},\"bins\":{},\"trace_sends\":{},",
                "\"engine_direct\":{{\"elapsed_secs\":{:.6},\"msgs_per_sec\":{:.1},",
                "\"matched\":{}}},\"runs\":[{}]}}"
            ),
            spec.name,
            slug(spec.name),
            spec.processes,
            args.seed,
            args.bins,
            arrivals,
            direct_secs,
            direct_rate,
            oracle.len(),
            runs.join(","),
        );
        let path = match &args.common.out {
            Some(dir) => dir.join(format!("app_replay_{}.json", slug(spec.name))),
            None => experiments_dir().join(format!("app_replay_{}.json", slug(spec.name))),
        };
        write_text_artifact(&path, &artifact);
        println!("  artifact: {}", path.display());
        if let (Some(series_path), Some(series)) = (&args.common.series, &first_series) {
            let p = series_path.with_file_name(format!(
                "{}_{}.json",
                series_path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "series".into()),
                slug(spec.name)
            ));
            write_text_artifact(&p, series);
            println!("  series:   {}", p.display());
        }
    }
    assert!(ran > 0, "no application matched --app filter");
    assert!(
        all_equal,
        "end-to-end matched pairs diverged from the engine-direct oracle"
    );
    println!("\nall runs matched the engine-direct oracle");
}
