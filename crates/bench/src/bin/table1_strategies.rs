//! **Table I** — the matching-strategy landscape, operationalized.
//!
//! The paper's Table I surveys the literature's strategies (traditional
//! lists, rank-based, bin-based). This harness runs our implementations of
//! those strategies — plus the optimistic four-index organization — over
//! three adversarial workload shapes and reports the search depths, showing
//! *why* each strategy exists:
//!
//! * many-to-one (Gatherv-style fan-in): rank-based shines, traditional
//!   degrades;
//! * one-sender-many-tags: bin-based shines, rank-based degrades;
//! * wildcard-heavy: everything serializes, as the standard requires.
//!
//! Run with: `cargo run --release -p otm-bench --bin table1_strategies`
//! (`--out PATH` redirects the JSON report).

use mpi_matching::binned::BinnedMatcher;
use mpi_matching::oracle::{MatchEvent, Oracle};
use mpi_matching::rank_based::RankBasedMatcher;
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::{MatchStats, MatchingBackend};
use otm::SequentialOtm;
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use otm_bench::{header, write_report, BenchReport, CommonArgs};
use otm_trace::emul::FourIndexMatcher;
use serde::Serialize;

fn many_to_one(n: u32) -> Vec<MatchEvent> {
    let mut ev = Vec::new();
    for s in 0..n {
        ev.push(MatchEvent::Post(ReceivePattern::exact(Rank(s), Tag(0))));
    }
    for s in (0..n).rev() {
        ev.push(MatchEvent::Arrive(Envelope::world(Rank(s), Tag(0))));
    }
    ev
}

fn many_tags(n: u32) -> Vec<MatchEvent> {
    let mut ev = Vec::new();
    for t in 0..n {
        ev.push(MatchEvent::Post(ReceivePattern::exact(Rank(0), Tag(t))));
    }
    for t in (0..n).rev() {
        ev.push(MatchEvent::Arrive(Envelope::world(Rank(0), Tag(t))));
    }
    ev
}

fn wildcard_heavy(n: u32) -> Vec<MatchEvent> {
    let mut ev = Vec::new();
    for _ in 0..n {
        ev.push(MatchEvent::Post(ReceivePattern::any_any()));
    }
    for s in 0..n {
        ev.push(MatchEvent::Arrive(Envelope::world(Rank(s % 7), Tag(s % 5))));
    }
    ev
}

#[derive(Serialize)]
struct Row {
    strategy: String,
    workload: &'static str,
    mean_depth: f64,
    max_depth: u64,
}

fn main() {
    let args = CommonArgs::parse();
    header("Table I (operationalized): matching strategies under adversarial workloads");
    let n = 128u32;
    let workloads: Vec<(&'static str, Vec<MatchEvent>)> = vec![
        ("many-to-one", many_to_one(n)),
        ("many-tags", many_tags(n)),
        ("wildcards", wildcard_heavy(n)),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (wname, events) in &workloads {
        let expect = Oracle::run(events);
        // Every strategy is constructed and driven uniformly through the
        // `MatchingBackend` trait — the same dispatch surface dpa-sim's
        // service and the trace replayer use.
        let seq_config = MatchConfig::default().with_bins(128).with_block_threads(1);
        let mut engines: Vec<(String, Box<dyn MatchingBackend>)> = vec![
            (
                "traditional (list)".into(),
                Box::new(TraditionalMatcher::new()),
            ),
            ("rank-based".into(), Box::new(RankBasedMatcher::new())),
            ("bin-based b=128".into(), Box::new(BinnedMatcher::new(128))),
            (
                "optimistic idx b=128".into(),
                Box::new(FourIndexMatcher::new(128)),
            ),
            (
                "optimistic engine".into(),
                Box::new(SequentialOtm::new(seq_config).expect("table1 engine configuration")),
            ),
        ];
        println!("\nworkload: {wname} (n = {n})");
        for (name, engine) in &mut engines {
            let got = Oracle::drive_backend(engine.as_mut(), events).expect("unbounded engines");
            assert_eq!(&got, &expect, "{name} must still be MPI-correct");
            let mut stats = MatchStats::default();
            engine.merge_stats(&mut stats);
            println!(
                "  {name:<22} mean depth {:>8.3} | max depth {:>4}  [{}]",
                stats.mean_depth(),
                stats.max_depth(),
                engine.backend_name()
            );
            rows.push(Row {
                strategy: name.clone(),
                workload: wname,
                mean_depth: stats.mean_depth(),
                max_depth: stats.max_depth(),
            });
        }
    }

    println!("\nreading: rank-based flattens many-to-one but degenerates on many-tags;");
    println!("bin-based and the optimistic indexes flatten both; wildcards serialize everyone,");
    println!("which is why the MPI hints of §VII matter.");

    let report = BenchReport::new("table1_strategies", false, rows);
    let path = write_report(&args, &report);
    println!("\nJSON artifact: {}", path.display());
}
