//! **Figure 6** — distribution of MPI call types for the application set.
//!
//! Regenerates: per application, the share of point-to-point, collective
//! and one-sided calls. The paper observes p2p-dominated traffic, exactly
//! three p2p-exclusive applications, two collectives-only applications (the
//! HILO pair) and zero one-sided usage.
//!
//! Run with: `cargo run --release -p otm-bench --bin fig6_call_distribution`
//! (`--out PATH` redirects the JSON report).

use otm_bench::{header, observability_value, write_report, BenchReport, CommonArgs};
use otm_trace::replay::AppReport;
use otm_trace::report::fig6_row;
use otm_trace::{replay, ReplayConfig};

fn main() {
    let args = CommonArgs::parse();
    header("Figure 6: distribution of MPI calls for the application set");
    let mut reports: Vec<AppReport> = Vec::new();
    for spec in otm_workloads::catalog() {
        let trace = (spec.generate)(42);
        let report = replay(&trace, &ReplayConfig { bins: 32 });
        println!("{}", fig6_row(&report));
        reports.push(report);
    }

    let p2p_only = reports
        .iter()
        .filter(|r| r.call_dist.p2p_fraction() == 1.0)
        .count();
    let coll_only = reports
        .iter()
        .filter(|r| r.call_dist.collective_fraction() == 1.0)
        .count();
    let one_sided: u64 = reports.iter().map(|r| r.call_dist.one_sided).sum();
    println!();
    println!("p2p-exclusive applications:        {p2p_only} (paper: 3)");
    println!("collectives-only applications:     {coll_only} (paper: 2, the HILO pair)");
    println!("one-sided operations anywhere:     {one_sided} (paper: none)");

    // The replay registry carries progress counters for the whole sweep.
    let obs = observability_value(otm_trace::replay_metrics().snapshot_json().as_deref());
    let report = BenchReport::with_observability("fig6_call_distribution", false, reports, obs);
    let path = write_report(&args, &report);
    println!("\nJSON artifact: {}", path.display());
}
