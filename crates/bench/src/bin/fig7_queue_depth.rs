//! **Figure 7** — queue depth per application at 1, 32 and 128 bins (the
//! paper's artifact sweeps powers of two from 1 to 256; pass `--full` for
//! that range).
//!
//! Regenerates: per-application mean and maximum search depth under the
//! optimistic four-index data-structure organization, the cross-application
//! average (the figure's red line), and the headline reductions. Paper
//! anchors: average 8.21 → 0.80 (32 bins, −90%) → 0.33 (128 bins, −95%);
//! BoxLib CNS max 25 → 3 → 1.
//!
//! Run with: `cargo run --release -p otm-bench --bin fig7_queue_depth`
//! (`--full` sweeps 1..256 bins; `--out PATH` redirects the JSON report).

use otm_bench::{header, observability_value, write_report, BenchReport, CommonArgs};
use otm_trace::replay::AppReport;
use otm_trace::{replay, ReplayConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7 {
    bins: Vec<usize>,
    per_app: Vec<Vec<AppReport>>,
    averages: Vec<f64>,
}

fn main() {
    let args = CommonArgs::parse();
    let bins: Vec<usize> = if args.full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![1, 32, 128]
    };
    header("Figure 7: queue depth for the different applications");

    let catalog = otm_workloads::catalog();
    let mut per_app: Vec<Vec<AppReport>> = Vec::new();
    for spec in &catalog {
        let trace = (spec.generate)(42);
        let reports: Vec<AppReport> = bins
            .iter()
            .map(|&b| replay(&trace, &ReplayConfig { bins: b }))
            .collect();
        print!("{:<18}", spec.name);
        for r in &reports {
            print!(
                " | b={:<3} mean {:>7.3} max {:>4}",
                r.bins, r.mean_queue_depth, r.max_queue_depth
            );
        }
        println!();
        per_app.push(reports);
    }

    let averages: Vec<f64> = (0..bins.len())
        .map(|i| {
            per_app
                .iter()
                .map(|reports| reports[i].mean_queue_depth)
                .sum::<f64>()
                / catalog.len() as f64
        })
        .collect();
    println!();
    for (i, &b) in bins.iter().enumerate() {
        let reduction = if averages[0] > 0.0 {
            100.0 * (1.0 - averages[i] / averages[0])
        } else {
            0.0
        };
        println!(
            "average queue depth, {b:>3} bins: {:>7.3}   (reduction vs 1 bin: {reduction:>5.1}%)",
            averages[i]
        );
    }
    println!("\npaper anchors: averages 8.21 / 0.80 / 0.33 at 1 / 32 / 128 bins (−90% / −95%);");
    println!("               BoxLib CNS max depth 25 -> 3 -> 1");

    let obs = observability_value(otm_trace::replay_metrics().snapshot_json().as_deref());
    let report = BenchReport::with_observability(
        "fig7_queue_depth",
        !args.full,
        Fig7 {
            bins,
            per_app,
            averages,
        },
        obs,
    );
    let path = write_report(&args, &report);
    println!("\nJSON artifact: {}", path.display());
}
