//! **Figure 8** — single-process message rate for the different matching
//! configurations.
//!
//! Regenerates: the ping-pong benchmark of §VI (k = 100 messages per
//! sequence, 500 repetitions, 1024 in-flight receives, hash tables at twice
//! that, 32 block threads) for the five series of the figure:
//!
//! * `Optimistic-DPA NC` — offloaded engine, no-conflict receives,
//! * `Optimistic-DPA WC-FP` — all-identical receives, fast path on,
//! * `Optimistic-DPA WC-SP` — all-identical receives, fast path off,
//! * `MPI-CPU` — traditional host matching,
//! * `RDMA-CPU` — no matching (transport ceiling).
//!
//! Expected shape (the paper's claim): NC comparable to MPI-CPU, WC-FP and
//! WC-SP lower due to conflict-resolution costs, RDMA-CPU on top. Absolute
//! rates differ from the paper's BlueField-3 testbed — the "DPA" here is a
//! simulated device on host threads.
//!
//! Run with: `cargo run --release -p otm-bench --bin fig8_message_rate`
//! (`--quick` shrinks the repeat count for smoke testing; `--messages N`
//! budgets ~N messages per series; `--repeats N` sets the count directly;
//! `--out PATH` redirects the JSON report).
//!
//! The JSON report is a [`BenchReport`] whose `observability` object maps
//! each offloaded series label to its merged registry snapshot: the
//! per-path resolution counters (NC / WC-FP / WC-SP), the search-depth and
//! block-latency histogram quantiles, and the dpa-sim queue-depth gauges.

use dpa_sim::{MatchMode, PingPongConfig, PingPongResult, Scenario};
use otm_bench::{header, observability_value, write_report, BenchReport, CommonArgs};
use std::collections::BTreeMap;

fn main() {
    let args = CommonArgs::parse();
    let k = 100usize;
    // --messages budgets the total per-series message count (the CI smoke
    // step runs with --messages 1000); otherwise --repeats / --quick.
    let repeats = match args.messages {
        Some(m) => (m as usize / k).max(1),
        None => args.repeats_or(500, 50),
    };
    let quick = repeats < 500;
    header("Figure 8: single-process message rate");
    println!("ping-pong: k={k} msgs/sequence, {repeats} repeats, 1024 in-flight receives\n");

    let runs: Vec<(MatchMode, Scenario)> = vec![
        (
            MatchMode::OptimisticDpa { fast_path: true },
            Scenario::NoConflict,
        ),
        (
            MatchMode::OptimisticDpa { fast_path: true },
            Scenario::WithConflict,
        ),
        (
            MatchMode::OptimisticDpa { fast_path: false },
            Scenario::WithConflict,
        ),
        (MatchMode::MpiCpu, Scenario::NoConflict),
        (MatchMode::MpiCpu, Scenario::WithConflict),
        (MatchMode::RdmaCpu, Scenario::NoConflict),
    ];

    let mut results: Vec<PingPongResult> = Vec::new();
    let mut observability: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    for (mode, scenario) in runs {
        let cfg = PingPongConfig {
            k,
            repeats,
            scenario,
            ..Default::default()
        };
        let mut result = dpa_sim::pingpong::run_pingpong(mode, &cfg);
        // The CPU baseline behaves identically in both scenarios; tag its
        // rows so the printed table and the JSON artifact agree.
        if matches!(mode, MatchMode::MpiCpu) {
            result.label = match scenario {
                Scenario::NoConflict => "MPI-CPU (NC receives)".to_string(),
                Scenario::WithConflict => "MPI-CPU (WC receives)".to_string(),
            };
        }
        harvest(&mut result, &mut observability);
        print_result(&result);
        results.push(result);
    }

    // An additional host-constrained configuration: one DPA execution unit
    // running inline. On simulation hosts with few cores the 32-lane
    // configuration pays a coordinator/worker handoff per block that a real
    // on-NIC deployment would not; the single-unit row isolates the data
    // structure cost from that artifact (see EXPERIMENTS.md).
    {
        let cfg = PingPongConfig {
            k,
            repeats,
            scenario: Scenario::NoConflict,
            block_threads: 1,
            ..Default::default()
        };
        let mut result =
            dpa_sim::pingpong::run_pingpong(MatchMode::OptimisticDpa { fast_path: true }, &cfg);
        result.label = "Optimistic-DPA NC (1 exec unit)".to_string();
        harvest(&mut result, &mut observability);
        print_result(&result);
        results.push(result);
    }
    finish(&args, quick, results, observability);
}

/// Moves a run's registry snapshot out of the result row and into the
/// report-level observability map, parsed into structured JSON.
fn harvest(result: &mut PingPongResult, observability: &mut BTreeMap<String, serde_json::Value>) {
    if let Some(v) = observability_value(result.observability_json.as_deref()) {
        observability.insert(result.label.clone(), v);
    }
    result.observability_json = None;
}

fn print_result(result: &PingPongResult) {
    print!("{:<32} {:>12.0} msgs/s", result.label, result.msgs_per_sec);
    if let Some(stats) = &result.engine_stats {
        print!(
            "   [optimistic-ok {} | fast-path {} | slow-path {}]",
            stats.optimistic_ok, stats.fast_path, stats.slow_path
        );
    }
    println!();
}

fn finish(
    args: &CommonArgs,
    quick: bool,
    results: Vec<PingPongResult>,
    observability: BTreeMap<String, serde_json::Value>,
) {
    // Shape checks mirrored from the paper's discussion of Fig. 8.
    let rate = |label: &str| {
        results
            .iter()
            .find(|r| r.label.starts_with(label))
            .map(|r| r.msgs_per_sec)
            .unwrap_or(0.0)
    };
    let nc = rate("Optimistic-DPA NC");
    let fp = rate("Optimistic-DPA WC-FP");
    let sp = rate("Optimistic-DPA WC-SP");
    let rdma = rate("RDMA-CPU");
    println!();
    println!(
        "shape: RDMA-CPU ceiling > others: {}",
        rdma >= nc.max(fp).max(sp) * 0.9
    );
    println!(
        "shape: conflicts cost throughput (NC > WC): {}",
        nc > fp.min(sp)
    );

    let report = BenchReport::with_observability(
        "fig8_message_rate",
        quick,
        results,
        if observability.is_empty() {
            None
        } else {
            Some(observability)
        },
    );
    let path = write_report(args, &report);
    println!("\nJSON artifact: {}", path.display());
}
