//! **Figure 8** — single-process message rate for the different matching
//! configurations.
//!
//! Regenerates: the ping-pong benchmark of §VI (k = 100 messages per
//! sequence, 500 repetitions, 1024 in-flight receives, hash tables at twice
//! that, 32 block threads) for the five series of the figure:
//!
//! * `Optimistic-DPA NC` — offloaded engine, no-conflict receives,
//! * `Optimistic-DPA WC-FP` — all-identical receives, fast path on,
//! * `Optimistic-DPA WC-SP` — all-identical receives, fast path off,
//! * `MPI-CPU` — traditional host matching,
//! * `RDMA-CPU` — no matching (transport ceiling).
//!
//! Expected shape (the paper's claim): NC comparable to MPI-CPU, WC-FP and
//! WC-SP lower due to conflict-resolution costs, RDMA-CPU on top. Absolute
//! rates differ from the paper's BlueField-3 testbed — the "DPA" here is a
//! simulated device on host threads.
//!
//! A seventh section exercises the concurrent command-queue API: `--shards`
//! communicator shards of one engine are driven by `--threads` poster
//! threads (defaults 4 and one-per-shard) while the coordinator drains
//! arrival blocks; the report carries aggregate and per-shard throughput.
//!
//! Run with: `cargo run --release -p otm-bench --bin fig8_message_rate`
//! (`--quick` shrinks the repeat count for smoke testing; `--messages N`
//! budgets ~N messages per series; `--repeats N` sets the count directly;
//! `--shards N` / `--threads N` size the sharded section; `--out PATH`
//! redirects the JSON report).
//!
//! The JSON report is a [`BenchReport`] whose `observability` object maps
//! each offloaded series label to its merged registry snapshot: the
//! per-path resolution counters (NC / WC-FP / WC-SP), the search-depth and
//! block-latency histogram quantiles, and the dpa-sim queue-depth gauges.

use dpa_sim::{MatchMode, PingPongConfig, PingPongResult, Scenario};
use mpi_matching::{MsgHandle, RecvHandle};
use otm::{Command, CommandOutcome, Delivery, OtmEngine};
use otm_base::{CommId, Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use otm_bench::{header, observability_value, write_report, BenchReport, CommonArgs};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// The fig8 `results` payload: the classic per-series rows plus the sharded
/// concurrent command-queue run.
#[derive(Debug, Serialize)]
struct Fig8Results {
    /// The six ping-pong series plus the 1-exec-unit row.
    series: Vec<PingPongResult>,
    /// Throughput of concurrent posting through the sharded engine.
    sharded: ShardedReport,
}

/// Aggregate + per-shard throughput of the concurrent command-queue run:
/// `--threads` poster threads drive `--shards` communicator shards of one
/// shared [`OtmEngine`] through `post_shared` and the arrival command queue
/// while the main thread drains blocks.
#[derive(Debug, Serialize)]
struct ShardedReport {
    /// Number of communicator shards driven concurrently.
    shards: usize,
    /// Number of poster threads feeding them.
    threads: usize,
    /// Total messages matched across all shards.
    messages: u64,
    /// Wall-clock for the whole run (posting + draining overlap).
    elapsed_secs: f64,
    /// Aggregate matched-message rate over the wall-clock above.
    msgs_per_sec: f64,
    /// Per-shard submission throughput, one row per communicator.
    per_shard: Vec<ShardRow>,
    /// Set when a drain stopped early; the counts above are then partial.
    error: Option<String>,
}

/// One communicator shard's share of the sharded run.
#[derive(Debug, Serialize)]
struct ShardRow {
    /// The communicator id backing this shard.
    comm: u16,
    /// Receives posted (== arrivals submitted) on this shard.
    posts: u64,
    /// Messages the drain loop delivered back for this shard.
    delivered: u64,
    /// Post+submit throughput seen by the shard's poster thread.
    posts_per_sec: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let k = 100usize;
    // --messages budgets the total per-series message count (the CI smoke
    // step runs with --messages 1000); otherwise --repeats / --quick.
    let repeats = match args.messages {
        Some(m) => (m as usize / k).max(1),
        None => args.repeats_or(500, 50),
    };
    let quick = repeats < 500;
    header("Figure 8: single-process message rate");
    println!("ping-pong: k={k} msgs/sequence, {repeats} repeats, 1024 in-flight receives\n");

    let runs: Vec<(MatchMode, Scenario)> = vec![
        (
            MatchMode::OptimisticDpa { fast_path: true },
            Scenario::NoConflict,
        ),
        (
            MatchMode::OptimisticDpa { fast_path: true },
            Scenario::WithConflict,
        ),
        (
            MatchMode::OptimisticDpa { fast_path: false },
            Scenario::WithConflict,
        ),
        (MatchMode::MpiCpu, Scenario::NoConflict),
        (MatchMode::MpiCpu, Scenario::WithConflict),
        (MatchMode::RdmaCpu, Scenario::NoConflict),
    ];

    let mut results: Vec<PingPongResult> = Vec::new();
    let mut observability: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    for (mode, scenario) in runs {
        let cfg = PingPongConfig {
            k,
            repeats,
            scenario,
            ..Default::default()
        };
        let mut result = dpa_sim::pingpong::run_pingpong(mode, &cfg);
        // The CPU baseline behaves identically in both scenarios; tag its
        // rows so the printed table and the JSON artifact agree.
        if matches!(mode, MatchMode::MpiCpu) {
            result.label = match scenario {
                Scenario::NoConflict => "MPI-CPU (NC receives)".to_string(),
                Scenario::WithConflict => "MPI-CPU (WC receives)".to_string(),
            };
        }
        harvest(&mut result, &mut observability);
        print_result(&result);
        results.push(result);
    }

    // An additional host-constrained configuration: one DPA execution unit
    // running inline. On simulation hosts with few cores the 32-lane
    // configuration pays a coordinator/worker handoff per block that a real
    // on-NIC deployment would not; the single-unit row isolates the data
    // structure cost from that artifact (see EXPERIMENTS.md).
    {
        let cfg = PingPongConfig {
            k,
            repeats,
            scenario: Scenario::NoConflict,
            block_threads: 1,
            ..Default::default()
        };
        let mut result =
            dpa_sim::pingpong::run_pingpong(MatchMode::OptimisticDpa { fast_path: true }, &cfg);
        result.label = "Optimistic-DPA NC (1 exec unit)".to_string();
        harvest(&mut result, &mut observability);
        print_result(&result);
        results.push(result);
    }

    let sharded = run_sharded(&args, k * repeats);
    finish(&args, quick, results, sharded, observability);
}

/// Drives one shared [`OtmEngine`] from multiple poster threads: shard `i`
/// is the communicator `CommId(i + 1)`, each poster owns the shards
/// `t, t + threads, ...`, posts receives through the lock-per-shard
/// `post_shared` path and submits the matching arrivals to the command
/// queue, while the main thread concurrently drains arrivals into blocks.
/// Every arrival is posted-then-submitted by the same thread, so the strict
/// FIFO queue guarantees each message matches (never lands unexpected).
fn run_sharded(args: &CommonArgs, budget: usize) -> ShardedReport {
    let shards = args.shards.unwrap_or(4).max(1);
    let threads = args.threads.unwrap_or(shards).clamp(1, shards);
    let per_shard = (budget / shards).max(1);
    let total = (per_shard * shards) as u64;

    // Worst case every receive is outstanding at once (posting outruns the
    // drain), so the table must hold the full budget.
    let config = MatchConfig::default()
        .with_max_receives(per_shard * shards)
        .with_bins((2 * per_shard * shards).next_power_of_two());
    let engine = OtmEngine::new(config).expect("sharded bench configuration");

    println!(
        "\nSharded command queue: {shards} shards x {per_shard} msgs, {threads} poster threads"
    );

    let mut delivered = vec![0u64; shards];
    let mut error: Option<String> = None;
    let mut timings: Vec<(usize, f64)> = Vec::new();
    let start = Instant::now();
    std::thread::scope(|s| {
        let engine = &engine;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut rows = Vec::new();
                    for shard in (t..shards).step_by(threads) {
                        let comm = CommId(shard as u16 + 1);
                        let base = (shard * per_shard) as u64;
                        let begin = Instant::now();
                        for i in 0..per_shard {
                            let (src, tag) = (Rank(i as u32 % 8), Tag(i as u32 % 64));
                            engine
                                .post_shared(
                                    ReceivePattern::new(src, tag, comm),
                                    RecvHandle(base + i as u64),
                                )
                                .expect("table sized for the full budget");
                            engine
                                .submit(Command::Arrival {
                                    env: Envelope::new(src, tag, comm),
                                    msg: MsgHandle(base + i as u64),
                                })
                                .expect("engine running");
                        }
                        rows.push((shard, begin.elapsed().as_secs_f64()));
                    }
                    rows
                })
            })
            .collect();

        // Drain concurrently with the posters until every submitted arrival
        // came back (or a drain reported an error).
        let mut seen = 0u64;
        while seen < total && error.is_none() {
            let report = engine.drain();
            for outcome in &report.outcomes {
                if let CommandOutcome::Delivery(d) = outcome {
                    seen += 1;
                    if let Delivery::Matched { recv, .. } = d {
                        delivered[recv.0 as usize / per_shard] += 1;
                    }
                }
            }
            if let Some(e) = report.error {
                error = Some(e.to_string());
            } else if seen < total {
                std::thread::yield_now();
            }
        }
        for h in handles {
            timings.extend(h.join().expect("poster thread"));
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut per_shard_rows: Vec<ShardRow> = timings
        .iter()
        .map(|&(shard, secs)| ShardRow {
            comm: shard as u16 + 1,
            posts: per_shard as u64,
            delivered: delivered[shard],
            posts_per_sec: per_shard as f64 / secs.max(f64::EPSILON),
        })
        .collect();
    per_shard_rows.sort_by_key(|r| r.comm);

    let matched: u64 = delivered.iter().sum();
    let report = ShardedReport {
        shards,
        threads,
        messages: matched,
        elapsed_secs: elapsed,
        msgs_per_sec: matched as f64 / elapsed.max(f64::EPSILON),
        per_shard: per_shard_rows,
        error: error.clone(),
    };
    for row in &report.per_shard {
        println!(
            "  shard comm={:<3} {:>8} posts {:>12.0} posts/s  delivered {}",
            row.comm, row.posts, row.posts_per_sec, row.delivered
        );
    }
    println!(
        "  aggregate: {} msgs in {:.3}s = {:.0} msgs/s ({} shards, {} poster threads)",
        report.messages, report.elapsed_secs, report.msgs_per_sec, report.shards, report.threads
    );
    if let Some(e) = &report.error {
        println!("  WARNING: drain stopped early: {e}");
    }
    report
}

/// Moves a run's registry snapshot out of the result row and into the
/// report-level observability map, parsed into structured JSON.
fn harvest(result: &mut PingPongResult, observability: &mut BTreeMap<String, serde_json::Value>) {
    if let Some(v) = observability_value(result.observability_json.as_deref()) {
        observability.insert(result.label.clone(), v);
    }
    result.observability_json = None;
}

fn print_result(result: &PingPongResult) {
    print!("{:<32} {:>12.0} msgs/s", result.label, result.msgs_per_sec);
    if let Some(stats) = &result.engine_stats {
        print!(
            "   [optimistic-ok {} | fast-path {} | slow-path {}]",
            stats.optimistic_ok, stats.fast_path, stats.slow_path
        );
    }
    println!();
}

fn finish(
    args: &CommonArgs,
    quick: bool,
    results: Vec<PingPongResult>,
    sharded: ShardedReport,
    observability: BTreeMap<String, serde_json::Value>,
) {
    let results = Fig8Results {
        series: results,
        sharded,
    };
    // Shape checks mirrored from the paper's discussion of Fig. 8.
    let rate = |label: &str| {
        results
            .series
            .iter()
            .find(|r| r.label.starts_with(label))
            .map(|r| r.msgs_per_sec)
            .unwrap_or(0.0)
    };
    let nc = rate("Optimistic-DPA NC");
    let fp = rate("Optimistic-DPA WC-FP");
    let sp = rate("Optimistic-DPA WC-SP");
    let rdma = rate("RDMA-CPU");
    println!();
    println!(
        "shape: RDMA-CPU ceiling > others: {}",
        rdma >= nc.max(fp).max(sp) * 0.9
    );
    println!(
        "shape: conflicts cost throughput (NC > WC): {}",
        nc > fp.min(sp)
    );
    let submitted: u64 = results.sharded.per_shard.iter().map(|r| r.posts).sum();
    println!(
        "shape: sharded drain delivered every message: {}",
        results.sharded.error.is_none() && results.sharded.messages == submitted
    );

    let report = BenchReport::with_observability(
        "fig8_message_rate",
        quick,
        results,
        if observability.is_empty() {
            None
        } else {
            Some(observability)
        },
    );
    let path = write_report(args, &report);
    println!("\nJSON artifact: {}", path.display());
}
