//! **Figure 8** — single-process message rate for the different matching
//! configurations.
//!
//! Regenerates: the ping-pong benchmark of §VI (k = 100 messages per
//! sequence, 500 repetitions, 1024 in-flight receives, hash tables at twice
//! that, 32 block threads) for the five series of the figure:
//!
//! * `Optimistic-DPA NC` — offloaded engine, no-conflict receives,
//! * `Optimistic-DPA WC-FP` — all-identical receives, fast path on,
//! * `Optimistic-DPA WC-SP` — all-identical receives, fast path off,
//! * `MPI-CPU` — traditional host matching,
//! * `RDMA-CPU` — no matching (transport ceiling).
//!
//! Expected shape (the paper's claim): NC comparable to MPI-CPU, WC-FP and
//! WC-SP lower due to conflict-resolution costs, RDMA-CPU on top. Absolute
//! rates differ from the paper's BlueField-3 testbed — the "DPA" here is a
//! simulated device on host threads.
//!
//! A seventh section exercises the concurrent command-queue API end to end:
//! `--shards` communicator shards (defaults 4), each terminating its own
//! queue pair on one receive NIC, are blasted by `--threads` sender threads
//! (default one-per-shard) while the main thread pumps the matching
//! service — poll, bounce-buffer staging, command-queue submit, pipelined
//! drain, and the eager protocol copy all on the measured path. The report
//! carries aggregate and per-shard throughput.
//!
//! An eighth section compares the drain's block-packing policies under
//! *mixed* traffic: sender threads interleave posts into each
//! communicator's arrival stream (`--post-mix` percent posts, default 30),
//! and the same workload is drained once per policy (`--packing` restricts
//! to one). Under the consecutive policy every interleaved post cuts the
//! arrival block short; the cross-communicator scheduler hoists posts and
//! refills blocks from the other lanes' FIFO heads, so blocks stay full.
//! The rows report blocks executed and mean block occupancy next to
//! throughput, and the same numbers land in a dependency-free
//! `fig8_mixed.json` artifact.
//!
//! With `--faults`, a ninth section runs the same pre-posted stream twice —
//! once over a perfect wire and once over a seeded hostile one (10% drop,
//! 10% duplicate, 10% reorder, 5% delay; `--fault-seed` picks the plan) —
//! with the sender wrapped in the go-back-N [`ReliableSender`]. The rows
//! put the reliability tax (retransmits, backoff polls, discarded
//! duplicates) next to throughput, the run asserts the matched
//! (receive, payload) sequence is identical in both runs, and everything
//! lands in a dependency-free `fig8_faults.json` artifact.
//!
//! With `--tenants N`, a tenth section promotes the service into a matchd
//! server and runs N tenant sessions against it for the same message
//! budget: each tenant submits (post, self-send) pairs per deterministic
//! tick, with `--flood-tenant I` turning tenant I into a flooder that
//! pushes far past its bounded ingress. The rows put each tenant's
//! admission counters (admitted / backpressured) next to its completed
//! throughput and, for well-behaved tenants, the fraction of their *solo*
//! throughput retained under contention — the fair-drain headline. The
//! numbers land in a dependency-free `fig8_tenants.json` artifact (with the
//! per-tenant series sections embedded when `--series` is also given).
//!
//! With `--series PATH`, the flight recorder's rolling time-series sampler
//! rides along: the mixed-traffic drain is sampled once per drain round and
//! the `--faults` service once per `progress()` poll (both deterministic
//! virtual clocks), and the labeled columnar series land in one JSON
//! artifact at PATH (schema per section: `t`, `queue_depth`,
//! `block_occupancy`, `path_counts`, `matched`, `retransmits`,
//! `fallbacks`). With `--spans PATH` (requires building with
//! `--features trace-events`; otherwise a warning), per-message lifecycle
//! span dumps are written per section as `PATH.<section>.jsonl` plus a
//! Chrome `trace_event` file `PATH.<section>.trace.json` that
//! <https://ui.perfetto.dev> opens directly.
//!
//! Run with: `cargo run --release -p otm-bench --bin fig8_message_rate`
//! (`--quick` shrinks the repeat count for smoke testing; `--messages N`
//! budgets ~N messages per series; `--repeats N` sets the count directly;
//! `--shards N` / `--threads N` size the sharded section; `--packing P` /
//! `--post-mix PCT` steer the mixed-traffic comparison; `--series PATH` /
//! `--spans PATH` capture the flight-recorder artifacts; `--out PATH`
//! redirects the JSON report).
//!
//! The JSON report is a [`BenchReport`] whose `observability` object maps
//! each offloaded series label to its merged registry snapshot: the
//! per-path resolution counters (NC / WC-FP / WC-SP), the search-depth and
//! block-latency histogram quantiles, and the dpa-sim queue-depth gauges.

use dpa_sim::bounce::BouncePool;
use dpa_sim::nic::RecvNic;
use dpa_sim::rdma::{connected_pair, eager_packet, QueuePair, RdmaDomain};
use dpa_sim::{
    Admission, FeedbackController, MatchMode, MatchServer, MatchdConfig, MatchingService,
    PingPongConfig, PingPongResult, ReliableSender, Scenario, TenantConfig, TenantSession,
};
use mpi_matching::{MsgHandle, RecvHandle};
use otm::{Command, OtmEngine};
use otm_base::{
    CommId, Envelope, FaultPlan, MatchConfig, MatchError, PackingPolicy, Rank, ReceivePattern,
    ReliabilityMode, SubmissionPath, Tag,
};
#[cfg(feature = "trace-events")]
use otm_bench::spans_sibling;
use otm_bench::{
    experiments_dir, header, observability_value, write_report, write_text_artifact, BenchReport,
    CommonArgs,
};
use otm_metrics::SeriesRecorder;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Flight-recorder output accumulated across the fig8 sections: labeled
/// rolling time series (`--series`) and labeled span dumps (`--spans`, only
/// under the `trace-events` feature).
#[derive(Default)]
struct FlightRecorder {
    /// `(section, series)` pairs, e.g. `("mixed cross-comm", ...)`.
    series: Vec<(String, SeriesRecorder)>,
    /// `(section, events, dropped)` per span dump.
    #[cfg(feature = "trace-events")]
    spans: Vec<(String, Vec<otm_metrics::SpanEvent>, u64)>,
}

impl FlightRecorder {
    /// Writes the labeled series as one artifact at `--series PATH`:
    /// `{"bench":"fig8_series","sections":{<label>:<columnar series>}}`,
    /// hand-assembled from `SeriesRecorder::to_json` (no serde on this
    /// path). Returns the path, or `None` when `--series` was not given or
    /// nothing was sampled.
    fn write_series(&self, args: &CommonArgs) -> Option<std::path::PathBuf> {
        let path = args.series.as_ref()?;
        if self.series.is_empty() {
            return None;
        }
        let sections: Vec<String> = self
            .series
            .iter()
            .map(|(label, s)| format!("\"{label}\":{}", s.to_json()))
            .collect();
        let json = format!(
            "{{\"bench\":\"fig8_series\",\"sections\":{{{}}}}}\n",
            sections.join(",")
        );
        Some(write_text_artifact(path, &json))
    }

    /// Self-consistency shape check for every recorded series: the terminal
    /// point's per-path counts must sum to its matched total (the invariant
    /// `otm_matched_total == Σ otm_resolutions_total{path}` carried into the
    /// artifact), and `t` must be strictly increasing.
    fn series_consistent(&self) -> bool {
        self.series.iter().all(|(_, s)| {
            let monotone = s.points().windows(2).all(|w| w[0].t < w[1].t);
            let terminal_ok = match s.last() {
                Some(p) => p.path_counts.iter().sum::<u64>() == p.matched,
                None => true,
            };
            monotone && terminal_ok
        })
    }

    /// Writes the span dumps next to the `--spans` stem (JSONL + Chrome
    /// `trace_event` per section) and prints one summary line per section
    /// with the per-path post→match latency means.
    #[cfg(feature = "trace-events")]
    fn write_spans(&self, args: &CommonArgs) {
        let Some(stem) = args.spans.as_ref() else {
            return;
        };
        for (section, events, dropped) in &self.spans {
            let jsonl = spans_sibling(stem, section, "jsonl");
            write_text_artifact(&jsonl, &otm_metrics::spans_to_jsonl(events));
            let chrome = spans_sibling(stem, section, "trace.json");
            write_text_artifact(&chrome, &otm_metrics::spans_to_chrome_trace(events));
            let hists = otm_metrics::latency_by_path(events);
            let lat: Vec<String> = otm_metrics::MATCH_PATHS
                .iter()
                .zip(&hists)
                .filter(|(_, h)| h.count > 0)
                .map(|(p, h)| {
                    format!(
                        "{} n={} mean={}ns",
                        p.label(),
                        h.count,
                        h.sum / h.count.max(1)
                    )
                })
                .collect();
            println!(
                "span dump [{section}]: {} events ({dropped} dropped) -> {} / {}   [{}]",
                events.len(),
                jsonl.display(),
                chrome.display(),
                lat.join(", ")
            );
        }
    }

    /// Without the `trace-events` feature the span layer is compiled out;
    /// tell the operator why `--spans` produced nothing instead of failing
    /// silently.
    #[cfg(not(feature = "trace-events"))]
    fn write_spans(&self, args: &CommonArgs) {
        if args.spans.is_some() {
            println!(
                "WARNING: --spans requires building with --features trace-events; \
                 span dump skipped"
            );
        }
    }
}

/// The fig8 `results` payload: the classic per-series rows plus the sharded
/// concurrent command-queue run.
#[derive(Debug, Serialize)]
struct Fig8Results {
    /// The six ping-pong series plus the 1-exec-unit row.
    series: Vec<PingPongResult>,
    /// Throughput of concurrent posting through the sharded engine, on the
    /// wait-free per-communicator ring submission path (the default).
    sharded: ShardedReport,
    /// The same sharded workload on the legacy global mutex submission
    /// path — the A/B baseline the ring path is measured against.
    sharded_mutex: ShardedReport,
    /// The mixed-traffic packing-policy comparison (one row per policy).
    mixed: Vec<MixedRow>,
    /// The fault-injection sweep (`--faults`), if it ran.
    faults: Option<FaultSweep>,
    /// The multi-tenant matchd fairness sweep (`--tenants`), if it ran.
    tenants: Option<TenantsSweep>,
    /// Whether this build stamped lifecycle spans (`--features
    /// trace-events`) — compare the sharded `msgs_per_sec` of a `true` and
    /// a `false` artifact to measure the span layer's overhead.
    trace_events: bool,
}

/// Aggregate + per-shard throughput of the concurrent command-queue run:
/// `--threads` sender threads blast eager packets at `--shards` communicator
/// shards — one queue pair per shard on one receive NIC — while the main
/// thread pumps the [`MatchingService`] over a sharded [`OtmEngine`] with
/// the command queue enabled, so staging, submit, the pipelined drain and
/// the eager protocol copy are all on the measured path.
#[derive(Debug, Serialize)]
struct ShardedReport {
    /// Number of communicator shards (= queue pairs) driven concurrently.
    shards: usize,
    /// Number of sender threads feeding them.
    threads: usize,
    /// The submission path the run used (`ring` or `mutex`).
    submission: String,
    /// Per-communicator submission-ring slots (`--ring-capacity`; the
    /// engine default when unset). Meaningless on the mutex path.
    ring_capacity: usize,
    /// Total receives completed across all shards.
    messages: u64,
    /// Wall-clock for the whole run (sending + service progress overlap).
    elapsed_secs: f64,
    /// Aggregate completed-receive rate over the wall-clock above.
    msgs_per_sec: f64,
    /// Per-shard throughput, one row per communicator.
    per_shard: Vec<ShardRow>,
    /// Set when the service stopped early; the counts above are then
    /// partial.
    error: Option<String>,
}

/// One communicator shard's share of the sharded run.
#[derive(Debug, Serialize)]
struct ShardRow {
    /// The communicator id backing this shard.
    comm: u16,
    /// Receives pre-posted (== packets sent) on this shard.
    posts: u64,
    /// Receives the service completed for this shard.
    delivered: u64,
    /// Wire throughput seen by the shard's sender thread.
    posts_per_sec: f64,
}

/// One packing policy's run of the mixed-traffic drain comparison: the same
/// interleaved post/arrival workload, drained under `packing`.
#[derive(Debug, Clone, Serialize)]
struct MixedRow {
    /// The drain packing policy (`consecutive` or `cross-comm`).
    packing: String,
    /// Percentage of posts interleaved into each communicator's stream.
    post_mix_pct: u32,
    /// Number of communicator lanes fed concurrently.
    shards: usize,
    /// Number of submitter threads feeding them.
    threads: usize,
    /// Arrival commands drained (every one produces a delivery).
    messages: u64,
    /// Post commands drained.
    posts: u64,
    /// Wall-clock for the whole run (submission + drain overlap).
    elapsed_secs: f64,
    /// Deliveries per second over the wall-clock above.
    msgs_per_sec: f64,
    /// Parallel matching blocks the drain executed.
    blocks_executed: u64,
    /// Mean arrivals per block (`messages / blocks_executed`) — the number
    /// the packing policy exists to maximize.
    mean_block_occupancy: f64,
}

impl MixedRow {
    /// Serializes the row by hand so the artifact stays dependency-free
    /// (mirrors `otm-metrics`' zero-dependency JSON exposition).
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"packing\":\"{}\",\"post_mix_pct\":{},\"shards\":{},",
                "\"threads\":{},\"messages\":{},\"posts\":{},",
                "\"elapsed_secs\":{:.6},\"msgs_per_sec\":{:.1},",
                "\"blocks_executed\":{},\"mean_block_occupancy\":{:.3}}}"
            ),
            self.packing,
            self.post_mix_pct,
            self.shards,
            self.threads,
            self.messages,
            self.posts,
            self.elapsed_secs,
            self.msgs_per_sec,
            self.blocks_executed,
            self.mean_block_occupancy,
        )
    }
}

fn main() {
    let args = CommonArgs::parse();
    let k = 100usize;
    // --messages budgets the total per-series message count (the CI smoke
    // step runs with --messages 1000); otherwise --repeats / --quick.
    let repeats = match args.messages {
        Some(m) => (m as usize / k).max(1),
        None => args.repeats_or(500, 50),
    };
    let quick = repeats < 500;
    header("Figure 8: single-process message rate");
    println!("ping-pong: k={k} msgs/sequence, {repeats} repeats, 1024 in-flight receives\n");

    let runs: Vec<(MatchMode, Scenario)> = vec![
        (
            MatchMode::OptimisticDpa { fast_path: true },
            Scenario::NoConflict,
        ),
        (
            MatchMode::OptimisticDpa { fast_path: true },
            Scenario::WithConflict,
        ),
        (
            MatchMode::OptimisticDpa { fast_path: false },
            Scenario::WithConflict,
        ),
        (MatchMode::MpiCpu, Scenario::NoConflict),
        (MatchMode::MpiCpu, Scenario::WithConflict),
        (MatchMode::RdmaCpu, Scenario::NoConflict),
    ];

    let mut results: Vec<PingPongResult> = Vec::new();
    let mut observability: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    for (mode, scenario) in runs {
        let cfg = PingPongConfig {
            k,
            repeats,
            scenario,
            ..Default::default()
        };
        let mut result = dpa_sim::pingpong::run_pingpong(mode, &cfg);
        // The CPU baseline behaves identically in both scenarios; tag its
        // rows so the printed table and the JSON artifact agree.
        if matches!(mode, MatchMode::MpiCpu) {
            result.label = match scenario {
                Scenario::NoConflict => "MPI-CPU (NC receives)".to_string(),
                Scenario::WithConflict => "MPI-CPU (WC receives)".to_string(),
            };
        }
        harvest(&mut result, &mut observability);
        print_result(&result);
        results.push(result);
    }

    // An additional host-constrained configuration: one DPA execution unit
    // running inline. On simulation hosts with few cores the 32-lane
    // configuration pays a coordinator/worker handoff per block that a real
    // on-NIC deployment would not; the single-unit row isolates the data
    // structure cost from that artifact (see EXPERIMENTS.md).
    {
        let cfg = PingPongConfig {
            k,
            repeats,
            scenario: Scenario::NoConflict,
            block_threads: 1,
            ..Default::default()
        };
        let mut result =
            dpa_sim::pingpong::run_pingpong(MatchMode::OptimisticDpa { fast_path: true }, &cfg);
        result.label = "Optimistic-DPA NC (1 exec unit)".to_string();
        harvest(&mut result, &mut observability);
        print_result(&result);
        results.push(result);
    }

    let mut recorder = FlightRecorder::default();
    let sharded = run_sharded(&args, k * repeats, SubmissionPath::Ring);
    let sharded_mutex = run_sharded(&args, k * repeats, SubmissionPath::Mutex);
    let mixed = run_mixed(&args, k * repeats, &mut observability, &mut recorder);
    let faults = run_faults(&args, k * repeats, &mut observability, &mut recorder);
    let tenants = run_tenants(&args, k * repeats, &mut observability);
    finish(
        &args,
        quick,
        results,
        sharded,
        sharded_mutex,
        mixed,
        faults,
        tenants,
        observability,
        recorder,
    );
}

/// True when command `i` of a lane's stream is a post under a `pct`-percent
/// mix: posts are spread uniformly through the stream (Bresenham-style), so
/// under the consecutive policy every post cuts an arrival run short.
fn is_post(i: usize, pct: u32) -> bool {
    let (i, pct) = (i as u64, pct as u64);
    (i + 1) * pct / 100 > i * pct / 100
}

/// Drives the drain's packing-policy comparison: `--threads` submitter
/// threads interleave posts into `--shards` communicators' arrival streams
/// (`--post-mix` percent posts each, spread uniformly) while the main
/// thread drains — submission pipelines against block execution, exactly
/// the engine-level path under the sharded service run above. The same
/// deterministic workload is replayed once per packing policy so the only
/// variable is how the drain packs blocks.
fn run_mixed(
    args: &CommonArgs,
    budget: usize,
    observability: &mut BTreeMap<String, serde_json::Value>,
    recorder: &mut FlightRecorder,
) -> Vec<(MixedRow, String)> {
    let shards = args.shards.unwrap_or(4).max(1);
    let threads = args.threads.unwrap_or(shards).clamp(1, shards);
    let post_mix = args.post_mix.unwrap_or(30).min(90);
    let per_lane = (budget / shards).max(1);
    let total = per_lane * shards;
    let posts_per_lane = (0..per_lane).filter(|&i| is_post(i, post_mix)).count();
    let arrivals_per_lane = per_lane - posts_per_lane;

    let policies: Vec<(PackingPolicy, &str)> = match args.packing.as_deref() {
        Some("consecutive") => vec![(PackingPolicy::Consecutive, "consecutive")],
        Some("cross-comm") => vec![(PackingPolicy::CrossComm, "cross-comm")],
        _ => vec![
            (PackingPolicy::Consecutive, "consecutive"),
            (PackingPolicy::CrossComm, "cross-comm"),
        ],
    };

    println!(
        "\nMixed-traffic packing: {shards} lanes x {per_lane} cmds, {post_mix}% posts, \
         {threads} submitter threads"
    );

    let mut rows = Vec::new();
    for (policy, name) in policies {
        let config = MatchConfig::default()
            .with_packing(policy)
            .with_max_receives((posts_per_lane * shards).max(1))
            .with_max_unexpected((arrivals_per_lane * shards).max(1))
            .with_bins((2 * total).next_power_of_two());
        let engine = OtmEngine::new(config).expect("mixed bench configuration");

        let mut drained = 0usize;
        let mut error: Option<String> = None;
        // The flight recorder's virtual clock for this section is the
        // drained-command count: drain rounds are few and batchy (one
        // `drain()` call applies the whole queued backlog), so progress
        // through the fixed budget is the clock that yields an evenly
        // spaced curve. Queue depth is the pending-work backlog (commands
        // of the budget not yet applied).
        let mut series = args
            .series
            .as_ref()
            .map(|_| SeriesRecorder::new((total as u64 / 128).max(1)));
        let barrier = std::sync::Barrier::new(threads + 1);
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let engine = &engine;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for lane in (t..shards).step_by(threads) {
                        let comm = CommId(lane as u16 + 1);
                        let base = (lane * per_lane) as u64;
                        let (mut next_recv, mut next_arr) = (0u64, 0u64);
                        for i in 0..per_lane {
                            // Unique tags pair post j with arrival j, so
                            // every command applies whichever side lands
                            // first (PRQ hit or UMQ hit) and the tables
                            // sized above never overflow.
                            let cmd = if is_post(i, post_mix) {
                                let handle = RecvHandle(base + next_recv);
                                let tag = Tag(next_recv as u32);
                                next_recv += 1;
                                Command::Post {
                                    pattern: ReceivePattern::new(Rank(0), tag, comm),
                                    handle,
                                }
                            } else {
                                let msg = MsgHandle(base + next_arr);
                                let tag = Tag(next_arr as u32);
                                next_arr += 1;
                                Command::Arrival {
                                    env: Envelope::new(Rank(0), tag, comm),
                                    msg,
                                }
                            };
                            // A full per-communicator submission ring is
                            // backpressure, not failure: the concurrent
                            // drain below is what frees slots, so yield and
                            // push the same command again.
                            loop {
                                match engine.submit(cmd) {
                                    Ok(()) => break,
                                    Err(MatchError::SubmissionRingFull { .. }) => {
                                        std::thread::yield_now();
                                    }
                                    Err(e) => panic!("engine running: {e}"),
                                }
                            }
                            // Submission is orders of magnitude cheaper than
                            // matching, so on few-core hosts an unyielding
                            // submitter timeslice would enqueue its whole
                            // lane as one segment; yielding between short
                            // bursts interleaves the lanes' streams the way
                            // concurrent wire traffic would.
                            if i % 8 == 7 {
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
            // Drain concurrently with the submitters until every command
            // has been applied.
            barrier.wait();
            while drained < total && error.is_none() {
                let report = engine.drain();
                if let Some(e) = report.error {
                    error = Some(e.to_string());
                    break;
                }
                if report.outcomes.is_empty() {
                    std::thread::yield_now();
                }
                drained += report.outcomes.len();
                if let Some(s) = series.as_mut() {
                    let t = drained as u64;
                    if s.due(t) {
                        s.sample(t, (total - drained) as u64, &engine.metrics_snapshot());
                    }
                }
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        if let Some(mut s) = series.take() {
            s.force_sample(
                drained as u64,
                (total - drained) as u64,
                &engine.metrics_snapshot(),
            );
            recorder.series.push((format!("mixed {name}"), s));
        }
        #[cfg(feature = "trace-events")]
        if args.spans.is_some() {
            let spans = engine.span_recorder();
            recorder
                .spans
                .push((format!("mixed-{name}"), spans.dump(), spans.dropped()));
        }

        let stats = engine.stats();
        let messages = (arrivals_per_lane * shards) as u64;
        let row = MixedRow {
            packing: name.to_string(),
            post_mix_pct: post_mix,
            shards,
            threads,
            messages,
            posts: (posts_per_lane * shards) as u64,
            elapsed_secs: elapsed,
            msgs_per_sec: messages as f64 / elapsed.max(f64::EPSILON),
            blocks_executed: stats.blocks,
            mean_block_occupancy: stats.messages as f64 / (stats.blocks as f64).max(1.0),
        };
        println!(
            "  {:<12} {:>12.0} msgs/s   blocks {:>8}   mean occupancy {:>6.2}",
            row.packing, row.msgs_per_sec, row.blocks_executed, row.mean_block_occupancy
        );
        if let Some(e) = error {
            println!("  WARNING: {name} drain stopped early: {e}");
        }
        let snapshot_json = engine.metrics_snapshot().to_json();
        if let Some(v) = observability_value(Some(&snapshot_json)) {
            observability.insert(format!("mixed {name}"), v);
        }
        rows.push((row, snapshot_json));
    }
    rows
}

/// Writes the mixed-traffic comparison to `fig8_mixed.json` next to the
/// main artifact, serialized by hand (no serde_json on this path) with the
/// engines' registry-snapshot JSON embedded verbatim.
fn write_mixed_artifact(rows: &[(MixedRow, String)]) -> std::path::PathBuf {
    let row_objs: Vec<String> = rows.iter().map(|(row, _)| row.to_json()).collect();
    let snapshots: Vec<String> = rows
        .iter()
        .map(|(row, snap)| format!("\"{}\":{}", row.packing, snap))
        .collect();
    let json = format!(
        "{{\"bench\":\"fig8_mixed\",\"rows\":[{}],\"observability\":{{{}}}}}\n",
        row_objs.join(","),
        snapshots.join(",")
    );
    let path = experiments_dir().join("fig8_mixed.json");
    std::fs::write(&path, json).expect("write mixed-traffic artifact");
    path
}

/// One run of the fault sweep: the same pre-posted stream, pushed through
/// the [`ReliableSender`], over either a perfect wire (`fault-free`) or the
/// seeded [`FaultPlan`] (`hostile-wire`), in either reliability mode. The
/// reliability columns quantify what the protocol paid to hide the wire's
/// misbehavior — the headline is `retransmit_amplification`, retransmits
/// per wire drop, where go-back-N's blanket window resends multiply every
/// loss and selective repeat resends only the holes.
#[derive(Debug, Clone, Serialize)]
struct FaultRow {
    /// `fault-free` or `hostile-wire`.
    label: String,
    /// `go-back-n` or `selective-repeat` ([`ReliabilityMode::label`]).
    mode: String,
    /// Messages completed end to end (always the full budget).
    messages: u64,
    /// Wall-clock including the final ack settle.
    elapsed_secs: f64,
    /// Completed receives per second over the wall-clock above.
    msgs_per_sec: f64,
    /// Packets the fault layer silently dropped.
    wire_drops: u64,
    /// Packets the fault layer delivered twice.
    wire_duplicates: u64,
    /// Packets the fault layer released out of order.
    wire_reorders: u64,
    /// Packets the fault layer held back before in-order release.
    wire_delays: u64,
    /// Packets resent by the reliability protocol (timeout resends plus,
    /// under selective repeat, SACK-driven fast retransmits).
    retransmits: u64,
    /// Retransmits per wire drop (`retransmits / wire_drops`; `0` on a
    /// clean wire) — the Fig. 9-style amplification headline.
    retransmit_amplification: f64,
    /// SACK-hole fast retransmits (zero under go-back-N).
    fast_retransmits: u64,
    /// Resend events (each may retransmit a whole window under go-back-N,
    /// only the unSACKed holes under selective repeat).
    resend_events: u64,
    /// Cumulative acks the sender consumed.
    acks_received: u64,
    /// Polls the sender spent backing off between resends (virtual time).
    backoff_polls: u64,
    /// Already-seen sequence numbers the receive NIC discarded.
    rx_duplicates_discarded: u64,
    /// Ahead-of-expected sequence numbers the receive NIC discarded.
    rx_gaps_discarded: u64,
    /// Out-of-order packets parked in the receive NIC's staging buffer
    /// (zero under go-back-N).
    rx_staged_out_of_order: u64,
    /// Cumulative acks the receive NIC emitted.
    acks_sent: u64,
    /// Knob movements the feedback controller applied during the run
    /// (`dpa_knob_changes_total`), each also stamped as a `knob_changed`
    /// span.
    knob_changes: u64,
}

impl FaultRow {
    /// Hand-rolled serialization for the dependency-free artifact (the same
    /// idiom as [`MixedRow::to_json`]).
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"mode\":\"{}\",\"messages\":{},",
                "\"elapsed_secs\":{:.6},",
                "\"msgs_per_sec\":{:.1},\"wire_drops\":{},\"wire_duplicates\":{},",
                "\"wire_reorders\":{},\"wire_delays\":{},\"retransmits\":{},",
                "\"retransmit_amplification\":{:.3},\"fast_retransmits\":{},",
                "\"resend_events\":{},\"acks_received\":{},\"backoff_polls\":{},",
                "\"rx_duplicates_discarded\":{},\"rx_gaps_discarded\":{},",
                "\"rx_staged_out_of_order\":{},\"acks_sent\":{},",
                "\"knob_changes\":{}}}"
            ),
            self.label,
            self.mode,
            self.messages,
            self.elapsed_secs,
            self.msgs_per_sec,
            self.wire_drops,
            self.wire_duplicates,
            self.wire_reorders,
            self.wire_delays,
            self.retransmits,
            self.retransmit_amplification,
            self.fast_retransmits,
            self.resend_events,
            self.acks_received,
            self.backoff_polls,
            self.rx_duplicates_discarded,
            self.rx_gaps_discarded,
            self.rx_staged_out_of_order,
            self.acks_sent,
            self.knob_changes,
        )
    }
}

/// The `--faults` sweep: plan parameters, the fault-free vs hostile rows,
/// and the oracle verdict (`matched_equal`) that the hostile wire changed
/// no matched (receive, payload) pair.
#[derive(Debug, Serialize)]
struct FaultSweep {
    /// Seed of the fault plan (`--fault-seed`, default `0xf8`).
    seed: u64,
    /// Drop probability in permille.
    drop_permille: u32,
    /// Duplicate probability in permille.
    duplicate_permille: u32,
    /// Reorder probability in permille.
    reorder_permille: u32,
    /// Delay probability in permille.
    delay_permille: u32,
    /// True when both runs completed the identical (receive, payload)
    /// sequence — the chaos oracle of `tests/fault_chaos.rs`, at bench
    /// scale.
    matched_equal: bool,
    /// Four rows: fault-free then hostile-wire, first under go-back-N and
    /// then under selective repeat.
    rows: Vec<FaultRow>,
}

/// Everything one fault-sweep run produces: the summary row, the completed
/// (receive handle, payload) sequence for the equality oracle, and the
/// service's registry snapshot.
struct FaultRun {
    row: FaultRow,
    completed: Vec<(u64, Vec<u8>)>,
    observability_json: Option<String>,
    /// The rolling time series sampled on the service's poll clock, when
    /// `--series` asked for one.
    series: Option<SeriesRecorder>,
    /// Merged engine + service span dump and its total dropped-events
    /// count, when `--spans` asked for one.
    #[cfg(feature = "trace-events")]
    spans: Option<(Vec<otm_metrics::SpanEvent>, u64)>,
}

/// Pushes `messages` eager packets through the full service path — queue
/// pair, (optionally faulty) receive NIC, command queue, pipelined drain,
/// eager copy — with the sender wrapped in the reliability protocol in the
/// requested mode, and records the completed (receive, payload) sequence
/// plus the reliability counters. The receives are pre-posted, so message
/// `i` deterministically matches receive `i` (per-QP FIFO + FIFO
/// matching), making the completed sequence directly comparable between
/// the fault-free and hostile runs and across modes. The self-tuning
/// feedback controller is attached; its reliability-window hint is applied
/// to the sender after every poll, so the flow-control window the run
/// settles into is the controller's, not a constant.
fn fault_run(
    args: &CommonArgs,
    label: &str,
    mode: ReliabilityMode,
    plan: Option<&FaultPlan>,
    messages: usize,
) -> FaultRun {
    let config = MatchConfig::default()
        .with_max_receives(messages.max(1))
        .with_bins((2 * messages.max(1)).next_power_of_two());
    let engine = OtmEngine::new(config).expect("fault bench configuration");
    let domain = RdmaDomain::new();
    let (tx, rx) = connected_pair();
    let mut nic = RecvNic::new(rx, BouncePool::new(messages.max(1), 64));
    nic.set_reliability_mode(mode);
    if let Some(plan) = plan {
        nic.set_faults(plan.clone());
    }
    let mut svc = MatchingService::with_backend(nic, domain, Box::new(engine));
    svc.enable_command_queue()
        .expect("the offloaded engine has a command queue");
    svc.attach_controller(FeedbackController::with_defaults());
    if args.series.is_some() {
        // The service samples itself on its poll clock; the cadence keeps
        // the series to a few hundred points on the fault-free run (which
        // completes up to a full reliability window per poll).
        svc.attach_series(SeriesRecorder::new((messages as u64 / 512).max(1)));
    }

    for i in 0..messages {
        let (src, tag) = (Rank(i as u32 % 8), Tag(i as u32 % 64));
        svc.post_recv(ReceivePattern::new(src, tag, CommId(1)))
            .expect("table sized for the full budget");
    }

    let mut sender = ReliableSender::new(tx).with_mode(mode);
    // One registry for the whole path: the sender's retransmit/backoff
    // counters land in the same snapshot as the NIC's wire/rx counters.
    sender.attach_metrics(svc.metrics().clone());
    let mut completed: Vec<(u64, Vec<u8>)> = Vec::with_capacity(messages);
    let mut sent = 0usize;
    let start = Instant::now();
    while completed.len() < messages {
        // The adaptive window is the flow control, exactly as on a real
        // wire: AIMD under selective repeat, the controller's cap under
        // go-back-N.
        while sent < messages && sender.can_send() {
            let (src, tag) = (Rank(sent as u32 % 8), Tag(sent as u32 % 64));
            let payload = (sent as u32).to_le_bytes().to_vec();
            sender
                .send(eager_packet(Envelope::new(src, tag, CommId(1)), payload))
                .expect("retry budget covers the configured fault rates");
            sent += 1;
        }
        svc.progress().expect("service alive");
        if let Some(hint) = svc.reliability_window_hint() {
            sender.set_window_limit(hint);
        }
        let stray = sender
            .poll()
            .expect("retry budget covers the configured fault rates");
        debug_assert!(stray.is_empty(), "nothing sends app data back");
        for done in svc.take_completed() {
            completed.push((done.recv.0, done.data));
        }
    }
    // Settle the tail acks so the reliability counters are final.
    while sender.unacked() > 0 {
        svc.progress().expect("service alive");
        sender
            .poll()
            .expect("retry budget covers the configured fault rates");
    }
    let elapsed = start.elapsed().as_secs_f64();
    svc.force_series_sample();
    #[cfg(feature = "trace-events")]
    let spans = if args.spans.is_some() {
        // Engine lifecycle spans (enqueued/packed/matched) and service
        // reliability spans (retransmitted/fell_back) share one process
        // timeline; merge them into a single chronological dump.
        let mut events = svc.engine_span_events().unwrap_or_default();
        events.extend(svc.metrics().spans().dump());
        events.sort_by_key(|e| (e.t_ns, e.subject, e.seq));
        let snap = svc.observability_snapshot();
        let dropped_of = |key: &str| snap.counters.get(key).copied().unwrap_or(0);
        let dropped = dropped_of("otm_span_dropped_total") + dropped_of("dpa_span_dropped_total");
        Some((events, dropped))
    } else {
        None
    };

    let wire = svc.nic().wire_fault_stats().unwrap_or_default();
    let rx_stats = svc.nic().rx_stats();
    let rel = sender.stats();
    let knob_changes = svc
        .metrics()
        .snapshot()
        .counters
        .get("dpa_knob_changes_total")
        .copied()
        .unwrap_or(0);
    FaultRun {
        row: FaultRow {
            label: label.to_string(),
            mode: mode.label().to_string(),
            messages: messages as u64,
            elapsed_secs: elapsed,
            msgs_per_sec: messages as f64 / elapsed.max(f64::EPSILON),
            wire_drops: wire.drops,
            wire_duplicates: wire.duplicates,
            wire_reorders: wire.reorders,
            wire_delays: wire.delays,
            retransmits: rel.retransmits,
            retransmit_amplification: if wire.drops > 0 {
                rel.retransmits as f64 / wire.drops as f64
            } else {
                0.0
            },
            fast_retransmits: rel.fast_retransmits,
            resend_events: rel.resend_events,
            acks_received: rel.acks,
            backoff_polls: rel.backoff_polls,
            rx_duplicates_discarded: rx_stats.duplicates,
            rx_gaps_discarded: rx_stats.gaps,
            rx_staged_out_of_order: rx_stats.staged_out_of_order,
            acks_sent: rx_stats.acks_sent,
            knob_changes,
        },
        completed,
        observability_json: svc.observability_json(),
        series: svc.take_series(),
        #[cfg(feature = "trace-events")]
        spans,
    }
}

/// Runs the `--faults` sweep: the identical pre-posted stream over a
/// perfect and a seeded hostile wire, the matched-sequence equality oracle,
/// and the `fig8_faults.json` artifact.
fn run_faults(
    args: &CommonArgs,
    budget: usize,
    observability: &mut BTreeMap<String, serde_json::Value>,
    recorder: &mut FlightRecorder,
) -> Option<FaultSweep> {
    if !args.faults {
        return None;
    }
    let messages = budget.max(1);
    let seed = args.fault_seed.unwrap_or(0xf8);
    let plan = FaultPlan::new(seed)
        .with_drop_permille(100)
        .with_duplicate_permille(100)
        .with_reorder_permille(100)
        .with_delay_permille(50);
    println!(
        "\nFault sweep: {messages} msgs per run, go-back-N vs selective repeat, \
         plan seed {seed:#x} (10% drop, 10% dup, 10% reorder, 5% delay)"
    );

    let mut runs: Vec<FaultRun> = Vec::with_capacity(4);
    for mode in [ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat] {
        runs.push(fault_run(args, "fault-free", mode, None, messages));
        runs.push(fault_run(args, "hostile-wire", mode, Some(&plan), messages));
    }
    // The oracle across all four runs: every (mode, wire) combination must
    // complete the identical (receive, payload) sequence — faults change
    // nothing, and neither does the ARQ mode.
    let matched_equal = runs.windows(2).all(|w| w[0].completed == w[1].completed);
    for run in &mut runs {
        let key = format!("faults {} {}", run.row.mode, run.row.label);
        if let Some(series) = run.series.take() {
            recorder.series.push((key.clone(), series));
        }
        #[cfg(feature = "trace-events")]
        if let Some((events, dropped)) = run.spans.take() {
            recorder.spans.push((
                format!("faults-{}-{}", run.row.mode, run.row.label),
                events,
                dropped,
            ));
        }
    }

    for run in &runs {
        let r = &run.row;
        println!(
            "  {:<16} {:<13} {:>12.0} msgs/s   [drops {} | dups {} | reorders {} | delays {}] \
             retransmits {} ({:.2}x amplification, {} fast), staged {}, knobs {}",
            r.mode,
            r.label,
            r.msgs_per_sec,
            r.wire_drops,
            r.wire_duplicates,
            r.wire_reorders,
            r.wire_delays,
            r.retransmits,
            r.retransmit_amplification,
            r.fast_retransmits,
            r.rx_staged_out_of_order,
            r.knob_changes,
        );
        if let Some(v) = observability_value(run.observability_json.as_deref()) {
            observability.insert(format!("faults {} {}", r.mode, r.label), v);
        }
    }
    let gbn_hostile = &runs[1].row;
    let sr_hostile = &runs[3].row;
    println!("shape: hostile wire changed no matched pair in either mode: {matched_equal}");
    println!(
        "shape: reliability protocol actually fired: {}",
        gbn_hostile.retransmits > 0 && gbn_hostile.wire_drops > 0
    );
    println!(
        "shape: selective-repeat amplification <= 2x ({:.2}x vs go-back-N {:.2}x): {}",
        sr_hostile.retransmit_amplification,
        gbn_hostile.retransmit_amplification,
        sr_hostile.retransmit_amplification <= 2.0
    );
    println!(
        "shape: selective repeat beats go-back-N on the hostile wire: {}",
        sr_hostile.msgs_per_sec > gbn_hostile.msgs_per_sec
    );
    println!(
        "shape: controller moved knobs and stamped spans: {}",
        runs.iter().any(|r| r.row.knob_changes > 0)
    );

    let sweep = FaultSweep {
        seed,
        drop_permille: plan.drop_permille,
        duplicate_permille: plan.duplicate_permille,
        reorder_permille: plan.reorder_permille,
        delay_permille: plan.delay_permille,
        matched_equal,
        rows: runs.iter().map(|r| r.row.clone()).collect(),
    };
    let snapshots: Vec<&Option<String>> = runs.iter().map(|r| &r.observability_json).collect();
    let path = write_faults_artifact(&sweep, &snapshots);
    println!("fault-sweep artifact: {}", path.display());
    Some(sweep)
}

/// Writes the fault sweep to `fig8_faults.json`, serialized by hand (no
/// serde_json on this path) with the two runs' registry-snapshot JSON
/// embedded verbatim — the same dependency-free idiom as
/// [`write_mixed_artifact`].
fn write_faults_artifact(sweep: &FaultSweep, snapshots: &[&Option<String>]) -> std::path::PathBuf {
    let row_objs: Vec<String> = sweep.rows.iter().map(FaultRow::to_json).collect();
    let snapshot_objs: Vec<String> = sweep
        .rows
        .iter()
        .zip(snapshots)
        .filter_map(|(row, snap)| {
            snap.as_ref()
                .map(|s| format!("\"{} {}\":{}", row.mode, row.label, s))
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"fig8_faults\",\"seed\":{},",
            "\"plan\":{{\"drop_permille\":{},\"duplicate_permille\":{},",
            "\"reorder_permille\":{},\"delay_permille\":{}}},",
            "\"matched_equal\":{},\"rows\":[{}],\"observability\":{{{}}}}}\n"
        ),
        sweep.seed,
        sweep.drop_permille,
        sweep.duplicate_permille,
        sweep.reorder_permille,
        sweep.delay_permille,
        sweep.matched_equal,
        row_objs.join(","),
        snapshot_objs.join(",")
    );
    let path = experiments_dir().join("fig8_faults.json");
    std::fs::write(&path, json).expect("write fault-sweep artifact");
    path
}

/// One tenant's row of the `--tenants` fairness sweep.
#[derive(Debug, Clone, Serialize)]
struct TenantRow {
    /// The tenant's id (open order on the server).
    tenant: u16,
    /// `flooder` or `well-behaved`.
    role: String,
    /// Submission attempts the harness made for this tenant (pairs).
    attempted_pairs: u64,
    /// Requests the session admitted into its ingress.
    admitted: u64,
    /// Submissions answered with `Admission::Backpressured`.
    backpressured: u64,
    /// Requests the fair drain moved into the engine.
    drained: u64,
    /// Receives completed and delivered back to the session.
    completed: u64,
    /// Completions of the identical workload running alone on its own
    /// server for the same tick count (`None` for the flooder).
    solo_completed: Option<u64>,
    /// `completed / solo_completed` — the fairness headline (`None` for
    /// the flooder).
    retained: Option<f64>,
    /// Completed receives per wall-clock second of the contended run.
    msgs_per_sec: f64,
}

impl TenantRow {
    /// Hand-rolled serialization for the dependency-free artifact (the
    /// same idiom as [`MixedRow::to_json`]).
    fn to_json(&self) -> String {
        let solo = self
            .solo_completed
            .map_or("null".to_string(), |v| v.to_string());
        let retained = self
            .retained
            .map_or("null".to_string(), |v| format!("{v:.4}"));
        format!(
            concat!(
                "{{\"tenant\":{},\"role\":\"{}\",\"attempted_pairs\":{},",
                "\"admitted\":{},\"backpressured\":{},\"drained\":{},",
                "\"completed\":{},\"solo_completed\":{},\"retained\":{},",
                "\"msgs_per_sec\":{:.1}}}"
            ),
            self.tenant,
            self.role,
            self.attempted_pairs,
            self.admitted,
            self.backpressured,
            self.drained,
            self.completed,
            solo,
            retained,
            self.msgs_per_sec,
        )
    }
}

/// The `--tenants` sweep: knobs, per-tenant rows, and the two fairness
/// verdicts the paper-style shape checks assert.
#[derive(Debug, Serialize)]
struct TenantsSweep {
    /// Tenant sessions on the shared server.
    tenants: usize,
    /// Index of the flooding tenant (`--flood-tenant`), if any.
    flood_tenant: Option<usize>,
    /// Scheduling rounds the contended (and each solo) run executed.
    ticks: u64,
    /// (post, self-send) pairs each well-behaved tenant submits per tick.
    pairs_per_tick: usize,
    /// Pairs the flooder attempts per tick.
    flood_pairs_per_tick: usize,
    /// Well-behaved ingress bound / DRR quantum.
    capacity: usize,
    /// Well-behaved DRR quantum.
    quantum: usize,
    /// Flooder ingress bound.
    flood_capacity: usize,
    /// Flooder DRR quantum.
    flood_quantum: usize,
    /// Deficit cap, in quanta.
    deficit_cap_quanta: u64,
    /// True when the flooder was answered with backpressure at admission.
    flooder_backpressured: bool,
    /// True when every well-behaved tenant kept at least half of its solo
    /// throughput at the same virtual time.
    fairness_retained: bool,
    /// One row per tenant.
    rows: Vec<TenantRow>,
}

/// Knobs of one tenants-sweep run, shared by the solo baseline and the
/// contended run so the comparison is apples to apples.
struct TenantBenchPlan {
    ticks: u64,
    pairs_per_tick: usize,
    flood_pairs_per_tick: usize,
    well: TenantConfig,
    flood: TenantConfig,
    matchd: MatchdConfig,
}

/// An engine sized so only admission — never table pressure — shapes the
/// tenants sweep, with cross-communicator packing and a per-lane quota so
/// both fairness layers (DRR at ingress, lane quota inside the drain) are
/// on the measured path.
fn tenants_match_config() -> MatchConfig {
    MatchConfig::default()
        .with_block_threads(4)
        .with_max_receives(1 << 15)
        .with_max_unexpected(1 << 15)
        .with_bins(1024)
        .with_packing(PackingPolicy::CrossComm)
        .with_lane_quota(Some(8))
}

/// Submits up to `pairs` (post, self-send) pairs on the session's
/// communicator and returns how many were attempted (backpressure refusals
/// are counted by the session itself).
fn submit_tenant_pairs(session: &TenantSession, pairs: usize, round: u64) -> u64 {
    let src = Rank(session.tenant().0 as u32);
    let comm = session.comm().expect("bench tenants are pinned");
    for i in 0..pairs {
        let tag = Tag((round as u32).wrapping_mul(31).wrapping_add(i as u32) % 61);
        match session.submit_post(ReceivePattern::new(src, tag, comm)) {
            Admission::Admitted(_) => {}
            // A refused post never sends: pairs stay matched 1:1 and the
            // ingress pressure shows up in the admission counters.
            _ => continue,
        }
        // The send half may hit the bound the post just squeezed under; the
        // orphaned post then waits for a later round's duplicate tag.
        let _ = session.submit_send(tag, vec![(i % 251) as u8]);
    }
    pairs as u64
}

/// The well-behaved workload running alone on its own server: the
/// throughput baseline the contended run is measured against.
fn tenant_solo_baseline(plan: &TenantBenchPlan) -> u64 {
    let mut server =
        MatchServer::new(tenants_match_config(), plan.matchd).expect("standalone matchd server");
    let session = server.open_tenant_with(TenantConfig {
        comm: Some(CommId(1)),
        ..plan.well
    });
    for round in 0..plan.ticks {
        submit_tenant_pairs(&session, plan.pairs_per_tick, round);
        server.tick().expect("solo tick");
    }
    session.stats().completed
}

/// Runs the `--tenants` sweep: a solo baseline, then N tenant sessions on
/// one matchd server — one of them (`--flood-tenant`) flooding far past its
/// ingress bound — for the same tick count. Returns the sweep plus the
/// multi-section series artifact when `--series` asked for one.
fn run_tenants(
    args: &CommonArgs,
    budget: usize,
    observability: &mut BTreeMap<String, serde_json::Value>,
) -> Option<(TenantsSweep, Option<String>)> {
    let tenants = args.tenants?.max(2);
    let flood_tenant = args.flood_tenant.filter(|&i| i < tenants);
    let pairs_per_tick = 8usize;
    let plan = TenantBenchPlan {
        ticks: (budget / (pairs_per_tick * tenants)).clamp(40, 500) as u64,
        pairs_per_tick,
        flood_pairs_per_tick: 200,
        well: TenantConfig {
            capacity: 1024,
            quantum: 64,
            comm: None,
        },
        flood: TenantConfig {
            capacity: 64,
            quantum: 16,
            comm: None,
        },
        matchd: MatchdConfig {
            tenant: TenantConfig::default(),
            deficit_cap_quanta: 4,
            ..MatchdConfig::default()
        },
    };
    println!(
        "\nMulti-tenant matchd: {tenants} tenants x {} ticks, {} pairs/tick each{}",
        plan.ticks,
        plan.pairs_per_tick,
        match flood_tenant {
            Some(i) => format!(
                ", tenant {i} flooding {} pairs/tick through a {}-slot ingress",
                plan.flood_pairs_per_tick, plan.flood.capacity
            ),
            None => String::new(),
        }
    );

    let solo = tenant_solo_baseline(&plan);

    let mut server =
        MatchServer::new(tenants_match_config(), plan.matchd).expect("standalone matchd server");
    if args.series.is_some() {
        server.attach_series((plan.ticks / 64).max(1));
    }
    let sessions: Vec<TenantSession> = (0..tenants)
        .map(|i| {
            let knobs = if flood_tenant == Some(i) {
                plan.flood
            } else {
                plan.well
            };
            server.open_tenant_with(TenantConfig {
                comm: Some(CommId(i as u16 + 1)),
                ..knobs
            })
        })
        .collect();

    let mut attempted = vec![0u64; tenants];
    let start = Instant::now();
    for round in 0..plan.ticks {
        for (i, session) in sessions.iter().enumerate() {
            let pairs = if flood_tenant == Some(i) {
                plan.flood_pairs_per_tick
            } else {
                plan.pairs_per_tick
            };
            attempted[i] += submit_tenant_pairs(session, pairs, round);
        }
        server.tick().expect("contended tick");
    }
    let elapsed = start.elapsed().as_secs_f64();

    let rows: Vec<TenantRow> = sessions
        .iter()
        .enumerate()
        .map(|(i, session)| {
            let stats = session.stats();
            let flooding = flood_tenant == Some(i);
            TenantRow {
                tenant: session.tenant().0,
                role: if flooding { "flooder" } else { "well-behaved" }.to_string(),
                attempted_pairs: attempted[i],
                admitted: stats.admitted,
                backpressured: stats.backpressured,
                drained: stats.drained,
                completed: stats.completed,
                solo_completed: (!flooding).then_some(solo),
                retained: (!flooding).then(|| stats.completed as f64 / (solo as f64).max(1.0)),
                msgs_per_sec: stats.completed as f64 / elapsed.max(f64::EPSILON),
            }
        })
        .collect();
    for row in &rows {
        println!(
            "  tenant {:<2} {:<13} {:>12.0} msgs/s   admitted {:>7}  backpressured {:>7}  \
             completed {:>7}{}",
            row.tenant,
            row.role,
            row.msgs_per_sec,
            row.admitted,
            row.backpressured,
            row.completed,
            match row.retained {
                Some(r) => format!("  retained {:.0}% of solo", r * 100.0),
                None => String::new(),
            }
        );
    }

    let flooder_backpressured = flood_tenant.is_none()
        || rows
            .iter()
            .any(|r| r.role == "flooder" && r.backpressured > 0);
    let fairness_retained = rows
        .iter()
        .filter_map(|r| r.retained)
        .all(|r| 2.0 * r >= 1.0);
    println!("shape: flooder answered with backpressure: {flooder_backpressured}");
    println!("shape: well-behaved tenants retained >= 50% of solo: {fairness_retained}");

    if let Some(v) = observability_value(server.service().observability_json().as_deref()) {
        observability.insert("tenants".to_string(), v);
    }
    let series = server.finish_series();
    Some((
        TenantsSweep {
            tenants,
            flood_tenant,
            ticks: plan.ticks,
            pairs_per_tick: plan.pairs_per_tick,
            flood_pairs_per_tick: plan.flood_pairs_per_tick,
            capacity: plan.well.capacity,
            quantum: plan.well.quantum,
            flood_capacity: plan.flood.capacity,
            flood_quantum: plan.flood.quantum,
            deficit_cap_quanta: plan.matchd.deficit_cap_quanta,
            flooder_backpressured,
            fairness_retained,
            rows,
        },
        series,
    ))
}

/// Writes the tenants sweep to `fig8_tenants.json`, serialized by hand with
/// the per-tenant series sections embedded verbatim when `--series` sampled
/// them — the same dependency-free idiom as [`write_mixed_artifact`].
fn write_tenants_artifact(sweep: &TenantsSweep, series: Option<&str>) -> std::path::PathBuf {
    let row_objs: Vec<String> = sweep.rows.iter().map(TenantRow::to_json).collect();
    let flood = sweep
        .flood_tenant
        .map_or("null".to_string(), |v| v.to_string());
    let series_field = match series {
        Some(s) => format!(",\"series\":{}", s.trim_end()),
        None => String::new(),
    };
    let json = format!(
        concat!(
            "{{\"bench\":\"fig8_tenants\",\"tenants\":{},\"flood_tenant\":{},",
            "\"ticks\":{},\"pairs_per_tick\":{},\"flood_pairs_per_tick\":{},",
            "\"capacity\":{},\"quantum\":{},\"flood_capacity\":{},",
            "\"flood_quantum\":{},\"deficit_cap_quanta\":{},",
            "\"flooder_backpressured\":{},\"fairness_retained\":{},",
            "\"rows\":[{}]{}}}\n"
        ),
        sweep.tenants,
        flood,
        sweep.ticks,
        sweep.pairs_per_tick,
        sweep.flood_pairs_per_tick,
        sweep.capacity,
        sweep.quantum,
        sweep.flood_capacity,
        sweep.flood_quantum,
        sweep.deficit_cap_quanta,
        sweep.flooder_backpressured,
        sweep.fairness_retained,
        row_objs.join(","),
        series_field,
    );
    let path = experiments_dir().join("fig8_tenants.json");
    std::fs::write(&path, json).expect("write tenants artifact");
    path
}

/// Drives the full receive path from multiple sender threads: shard `i` is
/// the communicator `CommId(i + 1)` terminating its own queue pair on one
/// receive NIC; its receives are pre-posted through the service (handle
/// range `[i * per_shard, (i + 1) * per_shard)`, so completions bin back by
/// handle). Each sender thread owns the shards `t, t + threads, ...` and
/// blasts their eager packets while the main thread pumps
/// [`MatchingService::progress`] — staging into bounce buffers, submitting
/// arrivals to the engine's command queue, and the pipelined drain all run
/// concurrently with the senders. Per-shard wire order is per-QP FIFO, so
/// every message finds its pre-posted receive.
fn run_sharded(args: &CommonArgs, budget: usize, submission: SubmissionPath) -> ShardedReport {
    let shards = args.shards.unwrap_or(4).max(1);
    let threads = args.threads.unwrap_or(shards).clamp(1, shards);
    let per_shard = (budget / shards).max(1);
    let total = per_shard * shards;

    // Worst case every receive is outstanding at once (sending outruns the
    // service), so the table — and the bounce pool — must hold the full
    // budget.
    let mut config = MatchConfig::default()
        .with_max_receives(total)
        .with_bins((2 * total).next_power_of_two())
        .with_submission(submission);
    if let Some(capacity) = args.ring_capacity {
        config = config.with_ring_capacity(capacity);
    }
    let ring_capacity = config.ring_capacity;
    let engine = OtmEngine::new(config).expect("sharded bench configuration");

    let domain = RdmaDomain::new();
    let mut senders: Vec<Option<QueuePair>> = Vec::with_capacity(shards);
    let mut nic: Option<RecvNic> = None;
    for _ in 0..shards {
        let (tx, rx) = connected_pair();
        match nic.as_mut() {
            None => nic = Some(RecvNic::new(rx, BouncePool::new(total, 64))),
            Some(n) => n.add_qp(rx),
        }
        senders.push(Some(tx));
    }
    let mut svc =
        MatchingService::with_backend(nic.expect("at least one shard"), domain, Box::new(engine));
    svc.enable_command_queue()
        .expect("the offloaded engine has a command queue");

    // Pre-post every receive, shard-major: the service hands out handles in
    // post order, so shard `s` owns `[s * per_shard, (s + 1) * per_shard)`.
    for shard in 0..shards {
        let comm = CommId(shard as u16 + 1);
        for i in 0..per_shard {
            let (src, tag) = (Rank(i as u32 % 8), Tag(i as u32 % 64));
            svc.post_recv(ReceivePattern::new(src, tag, comm))
                .expect("table sized for the full budget");
        }
    }

    // Partition the sender endpoints across the threads (QueuePair is not
    // Sync: each endpoint moves into exactly one thread).
    let mut plans: Vec<Vec<(usize, QueuePair)>> = (0..threads).map(|_| Vec::new()).collect();
    for shard in 0..shards {
        plans[shard % threads].push((shard, senders[shard].take().expect("unclaimed endpoint")));
    }

    let path_name = match submission {
        SubmissionPath::Ring => "ring",
        SubmissionPath::Mutex => "mutex",
    };
    println!(
        "\nSharded command queue ({path_name} submission): {shards} shards x {per_shard} msgs, \
         {threads} sender threads"
    );

    let mut delivered = vec![0u64; shards];
    let mut error: Option<String> = None;
    let mut timings: Vec<(usize, f64)> = Vec::new();
    let start = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .into_iter()
            .map(|plan| {
                s.spawn(move || {
                    let mut rows = Vec::new();
                    let mut endpoints = Vec::new();
                    for (shard, qp) in plan {
                        let comm = CommId(shard as u16 + 1);
                        let begin = Instant::now();
                        for i in 0..per_shard {
                            let (src, tag) = (Rank(i as u32 % 8), Tag(i as u32 % 64));
                            qp.send(eager_packet(Envelope::new(src, tag, comm), vec![i as u8]))
                                .expect("receive NIC alive");
                        }
                        rows.push((shard, begin.elapsed().as_secs_f64()));
                        // The endpoint must outlive the drain below: dropping
                        // it would tear the queue pair down under the NIC.
                        endpoints.push(qp);
                    }
                    (rows, endpoints)
                })
            })
            .collect();

        // The receive side runs here, concurrently with the senders: poll,
        // stage, submit, pipelined drain, eager copy — until every message
        // completed its receive (or the service reported an error).
        let mut seen = 0usize;
        while seen < total && error.is_none() {
            match svc.progress() {
                Ok(0) => std::thread::yield_now(),
                Ok(_) => {
                    for done in svc.take_completed() {
                        seen += 1;
                        delivered[done.recv.0 as usize / per_shard] += 1;
                    }
                }
                Err(e) => error = Some(e.to_string()),
            }
        }
        for h in handles {
            let (rows, _endpoints) = h.join().expect("sender thread");
            timings.extend(rows);
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut per_shard_rows: Vec<ShardRow> = timings
        .iter()
        .map(|&(shard, secs)| ShardRow {
            comm: shard as u16 + 1,
            posts: per_shard as u64,
            delivered: delivered[shard],
            posts_per_sec: per_shard as f64 / secs.max(f64::EPSILON),
        })
        .collect();
    per_shard_rows.sort_by_key(|r| r.comm);

    let matched: u64 = delivered.iter().sum();
    let report = ShardedReport {
        shards,
        threads,
        submission: path_name.to_string(),
        ring_capacity,
        messages: matched,
        elapsed_secs: elapsed,
        msgs_per_sec: matched as f64 / elapsed.max(f64::EPSILON),
        per_shard: per_shard_rows,
        error: error.clone(),
    };
    for row in &report.per_shard {
        println!(
            "  shard comm={:<3} {:>8} posts {:>12.0} posts/s  delivered {}",
            row.comm, row.posts, row.posts_per_sec, row.delivered
        );
    }
    println!(
        "  aggregate: {} msgs in {:.3}s = {:.0} msgs/s ({} shards, {} sender threads)",
        report.messages, report.elapsed_secs, report.msgs_per_sec, report.shards, report.threads
    );
    if let Some(e) = &report.error {
        println!("  WARNING: drain stopped early: {e}");
    }
    report
}

/// Moves a run's registry snapshot out of the result row and into the
/// report-level observability map, parsed into structured JSON.
fn harvest(result: &mut PingPongResult, observability: &mut BTreeMap<String, serde_json::Value>) {
    if let Some(v) = observability_value(result.observability_json.as_deref()) {
        observability.insert(result.label.clone(), v);
    }
    result.observability_json = None;
}

fn print_result(result: &PingPongResult) {
    print!("{:<32} {:>12.0} msgs/s", result.label, result.msgs_per_sec);
    if let Some(stats) = &result.engine_stats {
        print!(
            "   [optimistic-ok {} | fast-path {} | slow-path {}]",
            stats.optimistic_ok, stats.fast_path, stats.slow_path
        );
    }
    println!();
}

#[allow(clippy::too_many_arguments)]
fn finish(
    args: &CommonArgs,
    quick: bool,
    results: Vec<PingPongResult>,
    sharded: ShardedReport,
    sharded_mutex: ShardedReport,
    mixed: Vec<(MixedRow, String)>,
    faults: Option<FaultSweep>,
    tenants: Option<(TenantsSweep, Option<String>)>,
    observability: BTreeMap<String, serde_json::Value>,
    recorder: FlightRecorder,
) {
    let mixed_path = write_mixed_artifact(&mixed);
    let tenants_path = tenants
        .as_ref()
        .map(|(sweep, series)| write_tenants_artifact(sweep, series.as_deref()));
    let results = Fig8Results {
        series: results,
        sharded,
        sharded_mutex,
        mixed: mixed.into_iter().map(|(row, _)| row).collect(),
        faults,
        tenants: tenants.map(|(sweep, _)| sweep),
        trace_events: cfg!(feature = "trace-events"),
    };
    // Shape checks mirrored from the paper's discussion of Fig. 8.
    let rate = |label: &str| {
        results
            .series
            .iter()
            .find(|r| r.label.starts_with(label))
            .map(|r| r.msgs_per_sec)
            .unwrap_or(0.0)
    };
    let nc = rate("Optimistic-DPA NC");
    let fp = rate("Optimistic-DPA WC-FP");
    let sp = rate("Optimistic-DPA WC-SP");
    let rdma = rate("RDMA-CPU");
    println!();
    println!(
        "shape: RDMA-CPU ceiling > others: {}",
        rdma >= nc.max(fp).max(sp) * 0.9
    );
    println!(
        "shape: conflicts cost throughput (NC > WC): {}",
        nc > fp.min(sp)
    );
    let submitted: u64 = results.sharded.per_shard.iter().map(|r| r.posts).sum();
    println!(
        "shape: sharded drain delivered every message: {}",
        results.sharded.error.is_none() && results.sharded.messages == submitted
    );
    let mutex_submitted: u64 = results
        .sharded_mutex
        .per_shard
        .iter()
        .map(|r| r.posts)
        .sum();
    println!(
        "shape: mutex-path A/B delivered every message: {}",
        results.sharded_mutex.error.is_none() && results.sharded_mutex.messages == mutex_submitted
    );
    println!(
        "shape: ring submission keeps pace with the mutex path: {} \
         (ring {:.0} msgs/s vs mutex {:.0} msgs/s)",
        results.sharded.msgs_per_sec >= results.sharded_mutex.msgs_per_sec * 0.9,
        results.sharded.msgs_per_sec,
        results.sharded_mutex.msgs_per_sec,
    );
    let occupancy = |name: &str| {
        results
            .mixed
            .iter()
            .find(|r| r.packing == name)
            .map(|r| r.mean_block_occupancy)
    };
    if let (Some(consec), Some(cross)) = (occupancy("consecutive"), occupancy("cross-comm")) {
        println!(
            "shape: cross-comm packing refills blocks posts cut short: {}",
            cross >= 2.0 * consec
        );
    }

    let report = BenchReport::with_observability(
        "fig8_message_rate",
        quick,
        results,
        if observability.is_empty() {
            None
        } else {
            Some(observability)
        },
    );
    if let Some(series_path) = recorder.write_series(args) {
        println!(
            "shape: series terminal points self-consistent (Σ path == matched, t monotone): {}",
            recorder.series_consistent()
        );
        println!("flight-recorder series artifact: {}", series_path.display());
    }
    recorder.write_spans(args);

    let path = write_report(args, &report);
    println!("\nJSON artifact: {}", path.display());
    println!("mixed-traffic artifact: {}", mixed_path.display());
    if let Some(p) = tenants_path {
        println!("tenants artifact: {}", p.display());
    }
}
