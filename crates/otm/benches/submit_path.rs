//! Criterion A/B of the engine's two submission paths: the legacy global
//! mutex queue against the wait-free per-communicator rings.
//!
//! Two shapes:
//!
//! * `submit_drain_pairs` — one thread submits post/arrival pairs and
//!   drains them; measures the uncontended per-command overhead of each
//!   path (ticket + ring push vs. mutex lock + VecDeque push).
//! * `submit_contended` — four producer threads blast pairs into four
//!   communicator lanes concurrently, then the main thread drains; this is
//!   where the mutex path serializes every producer on one lock while the
//!   ring path only ever contends on a lane's tail CAS.
//!
//! Every cycle matches all its pairs (unique tags), so the engine's tables
//! return to empty between iterations and the measured work is pure
//! submission + drain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpi_matching::{MsgHandle, RecvHandle};
use otm::{Command, OtmEngine};
use otm_base::{
    CommId, Envelope, MatchConfig, MatchError, Rank, ReceivePattern, SubmissionPath, Tag,
};
use std::thread;

/// Post/arrival pairs per iteration (2 commands each).
const PAIRS: u64 = 1024;
const LANES: u64 = 4;

fn engine(path: SubmissionPath) -> OtmEngine {
    let config = MatchConfig::default()
        .with_submission(path)
        // Large enough that one iteration's backlog never fills a ring:
        // both paths then submit without backpressure retries and the
        // comparison isolates the per-command cost.
        .with_ring_capacity(4096)
        .with_max_receives(1 << 12)
        .with_max_unexpected(1 << 12);
    OtmEngine::new(config).expect("bench configuration")
}

fn submit_retrying(engine: &OtmEngine, cmd: Command) {
    loop {
        match engine.submit(cmd) {
            Ok(()) => return,
            Err(MatchError::SubmissionRingFull { .. }) => thread::yield_now(),
            Err(e) => panic!("engine running: {e}"),
        }
    }
}

/// One single-threaded cycle: `PAIRS` post/arrival pairs across `LANES`
/// communicators, then one drain that matches every pair.
fn pairs_cycle(engine: &OtmEngine) {
    for i in 0..PAIRS {
        let comm = CommId((i % LANES) as u16 + 1);
        let tag = Tag((i / LANES) as u32);
        submit_retrying(
            engine,
            Command::Post {
                pattern: ReceivePattern::new(Rank(0), tag, comm),
                handle: RecvHandle(i),
            },
        );
        submit_retrying(
            engine,
            Command::Arrival {
                env: Envelope::new(Rank(0), tag, comm),
                msg: MsgHandle(i),
            },
        );
    }
    let report = engine.drain();
    assert!(report.error.is_none(), "clean drain: {:?}", report.error);
}

/// One contended cycle: `LANES` producer threads, one lane each, submit
/// their pairs concurrently; the main thread drains once they join.
fn contended_cycle(engine: &OtmEngine) {
    thread::scope(|s| {
        for lane in 0..LANES {
            s.spawn(move || {
                let comm = CommId(lane as u16 + 1);
                let base = lane * PAIRS / LANES;
                for i in 0..PAIRS / LANES {
                    let tag = Tag(i as u32);
                    submit_retrying(
                        engine,
                        Command::Post {
                            pattern: ReceivePattern::new(Rank(0), tag, comm),
                            handle: RecvHandle(base + i),
                        },
                    );
                    submit_retrying(
                        engine,
                        Command::Arrival {
                            env: Envelope::new(Rank(0), tag, comm),
                            msg: MsgHandle(base + i),
                        },
                    );
                }
            });
        }
    });
    let report = engine.drain();
    assert!(report.error.is_none(), "clean drain: {:?}", report.error);
}

fn bench_submit_paths(c: &mut Criterion) {
    let paths = [
        (SubmissionPath::Mutex, "mutex"),
        (SubmissionPath::Ring, "ring"),
    ];

    let mut group = c.benchmark_group("submit_drain_pairs");
    group.throughput(Throughput::Elements(2 * PAIRS));
    for (path, name) in paths {
        let engine = engine(path);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| pairs_cycle(&engine))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("submit_contended");
    group.throughput(Throughput::Elements(2 * PAIRS));
    for (path, name) in paths {
        let engine = engine(path);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| contended_cycle(&engine))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_submit_paths);
criterion_main!(benches);
