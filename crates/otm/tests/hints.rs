//! Communicator-hint behaviour (§VII): wildcard assertions are enforced,
//! and `mpi_assert_allow_overtaking` communicators match without the
//! ordering machinery while still pairing every message with a
//! pattern-correct receive.

use mpi_matching::{MsgHandle, RecvHandle};
use otm::{Delivery, OtmEngine};
use otm_base::{CommHints, CommId, Envelope, MatchConfig, MatchError, Rank, ReceivePattern, Tag};
use std::collections::HashSet;

fn engine() -> OtmEngine {
    OtmEngine::new(
        MatchConfig::default()
            .with_block_threads(8)
            .with_max_receives(512)
            .with_bins(64),
    )
    .unwrap()
}

#[test]
fn wildcard_assertions_reject_violating_receives() {
    let mut e = engine();
    let comm = CommId(1);
    e.declare_comm(comm, CommHints::no_wildcards()).unwrap();
    // Fully-specified receives are fine.
    e.post(ReceivePattern::new(Rank(0), Tag(0), comm), RecvHandle(0))
        .unwrap();
    // Wildcards violate the assertion.
    let any_src = ReceivePattern::new(otm_base::SourceSel::Any, Tag(0), comm);
    assert!(matches!(
        e.post(any_src, RecvHandle(1)),
        Err(MatchError::HintViolation(_))
    ));
    let any_tag = ReceivePattern::new(Rank(0), otm_base::TagSel::Any, comm);
    assert!(matches!(
        e.post(any_tag, RecvHandle(2)),
        Err(MatchError::HintViolation(_))
    ));
}

#[test]
fn single_assertions_ban_only_their_wildcard() {
    let mut e = engine();
    let comm = CommId(2);
    e.declare_comm(
        comm,
        CommHints {
            no_any_source: true,
            ..Default::default()
        },
    )
    .unwrap();
    // ANY_TAG is still allowed.
    e.post(
        ReceivePattern::new(Rank(0), otm_base::TagSel::Any, comm),
        RecvHandle(0),
    )
    .unwrap();
    // ANY_SOURCE is not.
    let p = ReceivePattern::new(otm_base::SourceSel::Any, Tag(0), comm);
    assert!(matches!(
        e.post(p, RecvHandle(1)),
        Err(MatchError::HintViolation(_))
    ));
}

#[test]
fn hints_must_be_declared_before_first_use() {
    let mut e = engine();
    let comm = CommId(3);
    e.post(ReceivePattern::new(Rank(0), Tag(0), comm), RecvHandle(0))
        .unwrap();
    assert!(matches!(
        e.declare_comm(comm, CommHints::relaxed()),
        Err(MatchError::InvalidConfig(_))
    ));
    // Undeclared communicators default to full semantics.
    assert_eq!(e.comm_hints(comm), Some(CommHints::NONE));
}

#[test]
fn hinted_comm_still_matches_correctly() {
    let mut e = engine();
    let comm = CommId(4);
    e.declare_comm(comm, CommHints::no_wildcards()).unwrap();
    for i in 0..8u32 {
        e.post(
            ReceivePattern::new(Rank(0), Tag(i), comm),
            RecvHandle(u64::from(i)),
        )
        .unwrap();
    }
    let msgs: Vec<(Envelope, MsgHandle)> = (0..8u32)
        .map(|i| {
            (
                Envelope::new(Rank(0), Tag(i), comm),
                MsgHandle(u64::from(i)),
            )
        })
        .collect();
    let d = e.process_block(&msgs).unwrap();
    for (i, del) in d.iter().enumerate() {
        assert_eq!(del.matched(), Some(RecvHandle(i as u64)));
    }
}

#[test]
fn allow_overtaking_pairs_every_message_with_a_matching_receive() {
    // The WC storm on a relaxed communicator: ordering is waived, but the
    // pairing must still be one-to-one and pattern-correct.
    let mut e = engine();
    let comm = CommId(5);
    e.declare_comm(
        comm,
        CommHints {
            allow_overtaking: true,
            ..Default::default()
        },
    )
    .unwrap();
    let n = 64u64;
    for i in 0..n {
        e.post(ReceivePattern::new(Rank(0), Tag(0), comm), RecvHandle(i))
            .unwrap();
    }
    let msgs: Vec<(Envelope, MsgHandle)> = (0..n)
        .map(|i| (Envelope::new(Rank(0), Tag(0), comm), MsgHandle(i)))
        .collect();
    let deliveries = e.process_stream(&msgs).unwrap();
    let mut recvs = HashSet::new();
    for d in &deliveries {
        match d {
            Delivery::Matched { recv, .. } => {
                assert!(recvs.insert(*recv), "receive {recv:?} consumed twice");
                assert!(recv.0 < n);
            }
            Delivery::Unexpected { msg } => panic!("message {msg:?} missed a waiting receive"),
        }
    }
    assert_eq!(recvs.len(), n as usize);
    // The relaxed path books nothing, so no conflicts are ever detected.
    let stats = e.stats();
    assert_eq!(stats.direct_conflicts, 0, "{stats:?}");
    assert_eq!(stats.fast_path + stats.slow_path, 0, "{stats:?}");
}

#[test]
fn relaxed_and_strict_comms_coexist_in_one_block() {
    let mut e = engine();
    let relaxed = CommId(6);
    e.declare_comm(relaxed, CommHints::relaxed()).unwrap();
    // Strict WORLD receives (ordered) + relaxed comm receives.
    for i in 0..4u64 {
        e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(i))
            .unwrap();
        e.post(
            ReceivePattern::new(Rank(0), Tag(0), relaxed),
            RecvHandle(100 + i),
        )
        .unwrap();
    }
    let mut msgs = Vec::new();
    for i in 0..4u64 {
        msgs.push((Envelope::world(Rank(0), Tag(0)), MsgHandle(i)));
        msgs.push((Envelope::new(Rank(0), Tag(0), relaxed), MsgHandle(100 + i)));
    }
    let deliveries = e.process_block(&msgs).unwrap();
    // Strict lanes must preserve order among themselves (C2).
    let strict: Vec<_> = deliveries
        .iter()
        .filter(|d| d.msg().0 < 100)
        .map(|d| d.matched().unwrap())
        .collect();
    assert_eq!(
        strict,
        vec![RecvHandle(0), RecvHandle(1), RecvHandle(2), RecvHandle(3)]
    );
    // Relaxed lanes must each get one of the relaxed receives.
    let relaxed_recvs: HashSet<_> = deliveries
        .iter()
        .filter(|d| d.msg().0 >= 100)
        .map(|d| d.matched().unwrap())
        .collect();
    assert_eq!(relaxed_recvs.len(), 4);
    assert!(relaxed_recvs.iter().all(|r| r.0 >= 100));
}

#[test]
fn relaxed_unexpected_messages_still_park_and_match_later() {
    let mut e = engine();
    let comm = CommId(7);
    e.declare_comm(
        comm,
        CommHints {
            allow_overtaking: true,
            ..Default::default()
        },
    )
    .unwrap();
    let d = e
        .process_block(&[(Envelope::new(Rank(2), Tag(3), comm), MsgHandle(0))])
        .unwrap();
    assert_eq!(d[0], Delivery::Unexpected { msg: MsgHandle(0) });
    let r = e
        .post(ReceivePattern::new(Rank(2), Tag(3), comm), RecvHandle(0))
        .unwrap();
    assert_eq!(r, mpi_matching::PostResult::Matched(MsgHandle(0)));
}

#[test]
fn repeated_relaxed_storms_never_lose_receives() {
    // Stress: many racing rounds on a relaxed communicator; the pairing
    // must stay one-to-one every round.
    let mut e = OtmEngine::new(
        MatchConfig::default()
            .with_block_threads(32)
            .with_max_receives(2048)
            .with_bins(64),
    )
    .unwrap();
    let comm = CommId(8);
    e.declare_comm(comm, CommHints::relaxed()).unwrap();
    for round in 0..30u64 {
        for i in 0..32u64 {
            e.post(
                ReceivePattern::new(Rank(0), Tag(0), comm),
                RecvHandle(round * 32 + i),
            )
            .unwrap();
        }
        let msgs: Vec<(Envelope, MsgHandle)> = (0..32u64)
            .map(|i| {
                (
                    Envelope::new(Rank(0), Tag(0), comm),
                    MsgHandle(round * 32 + i),
                )
            })
            .collect();
        let d = e.process_block(&msgs).unwrap();
        let unique: HashSet<_> = d.iter().filter_map(|x| x.matched()).collect();
        assert_eq!(
            unique.len(),
            32,
            "round {round}: duplicate or missed receives"
        );
    }
    assert_eq!(e.prq_len(), 0);
}
