//! Multi-producer submission-ring stress (plain `std::thread`, run under
//! TSan in the nightly job): producer threads hammer tiny per-communicator
//! rings through the engine's `&self` submit path — two of them sharing one
//! ring, so the CAS tail claim really contends — while the single drain
//! consumer runs concurrently. Ring-full answers are retried by the
//! producers (that is the backpressure contract), and at the end every
//! submitted command must have been applied exactly once: no loss, no
//! duplication, no arrival overtaking its own post.

use mpi_matching::{MsgHandle, PostResult, RecvHandle};
use otm::{Command, CommandOutcome, Delivery, OtmEngine};
use otm_base::{
    CommId, Envelope, MatchConfig, MatchError, PackingPolicy, Rank, ReceivePattern, Tag,
};
use std::sync::Arc;
use std::thread;

const PRODUCERS: usize = 4;
const PER_PRODUCER: u64 = 300;

/// Submits one command, yielding through ring-full backpressure: the drain
/// on the main thread is the only thing that frees slots.
fn submit_retrying(engine: &OtmEngine, cmd: Command) {
    loop {
        match engine.submit(cmd) {
            Ok(()) => return,
            Err(MatchError::SubmissionRingFull { .. }) => thread::yield_now(),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
}

#[test]
fn concurrent_producers_through_tiny_rings_lose_and_duplicate_nothing() {
    let config = MatchConfig::default()
        .with_ring_capacity(8)
        .with_max_receives(4096)
        .with_packing(PackingPolicy::CrossComm)
        .with_lane_quota(Some(4));
    let engine = Arc::new(OtmEngine::new(config).unwrap());
    // Threads 0 and 1 share communicator 7 — a genuinely multi-producer
    // ring; threads 2 and 3 own their communicators, so the drain also
    // exercises the cross-lane min-ticket merge under load.
    let comms = [CommId(7), CommId(7), CommId(2), CommId(3)];

    let mut workers = Vec::new();
    for (t, comm) in comms.iter().copied().enumerate().take(PRODUCERS) {
        let engine = Arc::clone(&engine);
        workers.push(thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                // Pair id doubles as the handle, the message and (low bits)
                // the tag, so every outcome self-identifies.
                let id = (t as u64) * 1_000_000 + i;
                let tag = Tag((t as u32) * 100_000 + i as u32);
                submit_retrying(
                    &engine,
                    Command::Post {
                        pattern: ReceivePattern::new(Rank(0), tag, comm),
                        handle: RecvHandle(id),
                    },
                );
                submit_retrying(
                    &engine,
                    Command::Arrival {
                        env: Envelope::new(Rank(0), tag, comm),
                        msg: MsgHandle(id),
                    },
                );
            }
        }));
    }

    // The single consumer drains concurrently with the producers. Tags are
    // unique per pair and each producer pushes post-then-arrival, so every
    // arrival must come back Matched against its own post.
    let expect = (PRODUCERS as u64) * PER_PRODUCER;
    let mut posted = 0u64;
    let mut matched: Vec<u64> = Vec::new();
    let mut rounds = 0u64;
    while posted < expect || (matched.len() as u64) < expect {
        rounds += 1;
        assert!(rounds < 10_000_000, "drain loop failed to converge");
        let report = engine.drain();
        assert!(report.error.is_none(), "clean run: {:?}", report.error);
        for outcome in report.outcomes {
            match outcome {
                CommandOutcome::Post {
                    result: PostResult::Posted,
                    ..
                } => posted += 1,
                CommandOutcome::Post {
                    handle,
                    result: PostResult::Matched(msg),
                } => {
                    assert_eq!(handle.0, msg.0, "a pair only matches itself");
                    posted += 1;
                    matched.push(msg.0);
                }
                CommandOutcome::Delivery(Delivery::Matched { msg, recv }) => {
                    assert_eq!(recv.0, msg.0, "a pair only matches itself");
                    matched.push(msg.0);
                }
                CommandOutcome::Delivery(Delivery::Unexpected { msg }) => {
                    panic!("arrival {msg:?} overtook its post in a FIFO lane");
                }
            }
        }
        thread::yield_now();
    }
    for w in workers {
        w.join().unwrap();
    }

    // Fully quiescent: nothing left in any ring, every pair accounted for.
    let report = engine.drain();
    assert!(report.outcomes.is_empty(), "rings must be empty at the end");
    assert_eq!(posted, expect);
    matched.sort_unstable();
    let expected: Vec<u64> = (0..PRODUCERS as u64)
        .flat_map(|t| (0..PER_PRODUCER).map(move |i| t * 1_000_000 + i))
        .collect();
    assert_eq!(matched, expected, "every pair matched exactly once");
}

#[test]
fn ring_full_is_retryable_backpressure_at_the_engine_boundary() {
    // Capacity 2: the third submit into one communicator bounces with the
    // retryable SubmissionRingFull, a drain frees the slots, and the very
    // same command then goes through.
    let engine = OtmEngine::new(MatchConfig::small().with_ring_capacity(2)).unwrap();
    let arrival = |i: u64| Command::Arrival {
        env: Envelope::world(Rank(0), Tag(0)),
        msg: MsgHandle(i),
    };
    engine.submit(arrival(0)).unwrap();
    engine.submit(arrival(1)).unwrap();
    let err = engine.submit(arrival(2)).unwrap_err();
    assert!(
        matches!(err, MatchError::SubmissionRingFull { comm: 0 }),
        "got {err:?}"
    );
    assert!(err.is_retryable(), "ring-full must be retryable");
    assert_eq!(engine.pending_commands(), 2, "the bounced command is not enqueued");

    let report = engine.drain();
    assert!(report.error.is_none());
    assert_eq!(report.outcomes.len(), 2);
    engine
        .submit(arrival(2))
        .expect("the drain freed ring slots");
    assert_eq!(engine.pending_commands(), 1);
}
