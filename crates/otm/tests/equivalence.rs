//! Oracle equivalence: the parallel optimistic engine must produce
//! bit-identical match assignments to the sequential reference for any
//! interleaving of receive posts and message-block arrivals.
//!
//! MPI matching is a deterministic function of the post/arrival sequence
//! (C1 + C2); the optimistic protocol extracts parallelism but must not
//! change the function. These tests drive both implementations over random
//! workloads across every feature-flag combination and block size, many
//! times per configuration so thread interleavings vary.

use mpi_matching::oracle::{MatchEvent, Oracle};
use mpi_matching::{Assignment, MsgHandle, RecvHandle};
use otm::{Delivery, OtmEngine};
use otm_base::{CommId, Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A workload: rounds of (posts, message block).
#[derive(Debug, Clone)]
struct Workload {
    rounds: Vec<(Vec<ReceivePattern>, Vec<Envelope>)>,
}

impl Workload {
    /// Flattens into the oracle's event order: each round's posts precede
    /// its arrivals, mirroring how the engine drains posts between blocks.
    fn events(&self) -> Vec<MatchEvent> {
        let mut ev = Vec::new();
        for (posts, msgs) in &self.rounds {
            ev.extend(posts.iter().map(|&p| MatchEvent::Post(p)));
            ev.extend(msgs.iter().map(|&e| MatchEvent::Arrive(e)));
        }
        ev
    }

    /// Runs the workload on an engine, producing an oracle-comparable
    /// assignment with the same dense handle numbering.
    fn run_engine(&self, config: MatchConfig) -> Assignment {
        let mut engine = OtmEngine::new(config).expect("engine config valid");
        let mut asg = Assignment::default();
        let mut next_recv = 0u64;
        let mut next_msg = 0u64;
        for (posts, msgs) in &self.rounds {
            for &pattern in posts {
                let h = RecvHandle(next_recv);
                next_recv += 1;
                match engine.post(pattern, h).expect("post succeeds") {
                    mpi_matching::PostResult::Matched(m) => {
                        asg.recv_to_msg.insert(h, Some(m));
                        asg.msg_to_recv.insert(m, Some(h));
                    }
                    mpi_matching::PostResult::Posted => {
                        asg.recv_to_msg.insert(h, None);
                    }
                }
            }
            let block: Vec<(Envelope, MsgHandle)> = msgs
                .iter()
                .map(|&e| {
                    let m = MsgHandle(next_msg);
                    next_msg += 1;
                    (e, m)
                })
                .collect();
            for d in engine.process_stream(&block).expect("block succeeds") {
                match d {
                    Delivery::Matched { msg, recv } => {
                        asg.msg_to_recv.insert(msg, Some(recv));
                        asg.recv_to_msg.insert(recv, Some(msg));
                    }
                    Delivery::Unexpected { msg } => {
                        asg.msg_to_recv.insert(msg, None);
                    }
                }
            }
        }
        asg
    }
}

fn random_comm(rng: &mut SmallRng) -> CommId {
    // Two communicators: matching state must stay isolated between them
    // even inside one block.
    CommId(rng.gen_range(0..2))
}

fn random_pattern(rng: &mut SmallRng, ranks: u32, tags: u32) -> ReceivePattern {
    let comm = random_comm(rng);
    match rng.gen_range(0..10) {
        0 => ReceivePattern::new(otm_base::SourceSel::Any, Tag(rng.gen_range(0..tags)), comm),
        1 => ReceivePattern::new(Rank(rng.gen_range(0..ranks)), otm_base::TagSel::Any, comm),
        2 => ReceivePattern::new(otm_base::SourceSel::Any, otm_base::TagSel::Any, comm),
        _ => ReceivePattern::new(
            Rank(rng.gen_range(0..ranks)),
            Tag(rng.gen_range(0..tags)),
            comm,
        ),
    }
}

fn random_workload(rng: &mut SmallRng, rounds: usize, block_max: usize) -> Workload {
    // A small envelope space maximizes contention and wildcard overlap.
    let ranks = rng.gen_range(1..4);
    let tags = rng.gen_range(1..4);
    let rounds = (0..rounds)
        .map(|_| {
            let mut posts = Vec::new();
            let n_posts = rng.gen_range(0..=block_max + 2);
            let mut i = 0;
            while i < n_posts {
                let p = random_pattern(rng, ranks, tags);
                // Sometimes post a run of compatible receives to exercise
                // sequence ids and the fast path.
                let run = if rng.gen_bool(0.3) {
                    rng.gen_range(1..=block_max.max(2))
                } else {
                    1
                };
                for _ in 0..run.min(n_posts - i) {
                    posts.push(p);
                    i += 1;
                }
            }
            let msgs = (0..rng.gen_range(0..=block_max))
                .map(|_| {
                    Envelope::new(
                        Rank(rng.gen_range(0..ranks)),
                        Tag(rng.gen_range(0..tags)),
                        random_comm(rng),
                    )
                })
                .collect();
            (posts, msgs)
        })
        .collect();
    Workload { rounds }
}

fn check(workload: &Workload, config: MatchConfig, label: &str) {
    let expect = Oracle::run(&workload.events());
    let got = workload.run_engine(config);
    assert!(
        got.is_consistent(),
        "{label}: inconsistent engine assignment"
    );
    assert_eq!(
        got, expect,
        "{label}: engine diverged from oracle\nworkload: {workload:?}"
    );
}

fn base_config(block: usize) -> MatchConfig {
    MatchConfig::default()
        .with_block_threads(block)
        .with_max_receives(4096)
        .with_max_unexpected(4096)
        .with_bins(32)
}

#[test]
fn random_workloads_match_oracle_default_flags() {
    let mut rng = SmallRng::seed_from_u64(1);
    for block in [1usize, 2, 4, 8, 32] {
        for case in 0..12 {
            let w = random_workload(&mut rng, 12, block);
            check(
                &w,
                base_config(block),
                &format!("block={block} case={case}"),
            );
        }
    }
}

#[test]
fn random_workloads_match_oracle_fast_path_off() {
    let mut rng = SmallRng::seed_from_u64(2);
    for block in [4usize, 32] {
        for case in 0..10 {
            let w = random_workload(&mut rng, 10, block);
            check(
                &w,
                base_config(block).with_fast_path(false),
                &format!("no-fp block={block} case={case}"),
            );
        }
    }
}

#[test]
fn random_workloads_match_oracle_early_booking_check() {
    let mut rng = SmallRng::seed_from_u64(3);
    for block in [4usize, 32] {
        for case in 0..10 {
            let w = random_workload(&mut rng, 10, block);
            check(
                &w,
                base_config(block).with_early_booking_check(true),
                &format!("ebc block={block} case={case}"),
            );
        }
    }
}

#[test]
fn random_workloads_match_oracle_eager_removal() {
    let mut rng = SmallRng::seed_from_u64(4);
    for block in [4usize, 32] {
        for case in 0..10 {
            let w = random_workload(&mut rng, 10, block);
            check(
                &w,
                base_config(block).with_lazy_removal(false),
                &format!("eager block={block} case={case}"),
            );
        }
    }
}

#[test]
fn random_workloads_match_oracle_single_bin() {
    // One bin per table: maximal chain collisions, the worst case for the
    // index structures.
    let mut rng = SmallRng::seed_from_u64(5);
    for case in 0..10 {
        let w = random_workload(&mut rng, 10, 16);
        check(
            &w,
            base_config(16).with_bins(1),
            &format!("1-bin case={case}"),
        );
    }
}

#[test]
fn wc_storms_match_oracle() {
    // The with-conflict scenario of Fig. 8: every receive identical, every
    // message identical — maximal conflict pressure on the fast path.
    for (flag, label) in [(true, "wc-fp"), (false, "wc-sp")] {
        let rounds: Vec<(Vec<ReceivePattern>, Vec<Envelope>)> = (0..20)
            .map(|_| {
                (
                    vec![ReceivePattern::exact(Rank(0), Tag(0)); 32],
                    vec![Envelope::world(Rank(0), Tag(0)); 32],
                )
            })
            .collect();
        let w = Workload { rounds };
        check(&w, base_config(32).with_fast_path(flag), label);
    }
}

#[test]
fn wildcard_storms_match_oracle() {
    // All receives are ANY_ANY (single shared list, serial semantics) while
    // messages vary: stresses cross-index arbitration and the both-wild
    // chain under conflicts.
    let mut rng = SmallRng::seed_from_u64(6);
    let rounds: Vec<(Vec<ReceivePattern>, Vec<Envelope>)> = (0..15)
        .map(|_| {
            (
                vec![ReceivePattern::any_any(); 8],
                (0..8)
                    .map(|_| Envelope::world(Rank(rng.gen_range(0..3)), Tag(rng.gen_range(0..3))))
                    .collect(),
            )
        })
        .collect();
    let w = Workload { rounds };
    check(&w, base_config(8), "any-any storm");
}

#[test]
fn interleaving_repetition_stresses_schedules() {
    // Re-run one contentious workload many times: the workload is fixed but
    // the thread schedules are not; every schedule must agree with the
    // oracle.
    let mut rng = SmallRng::seed_from_u64(7);
    let w = random_workload(&mut rng, 8, 32);
    let expect = Oracle::run(&w.events());
    for round in 0..30 {
        let got = w.run_engine(base_config(32));
        assert_eq!(got, expect, "schedule round {round}");
    }
}

/// A long randomized soak across schedules and configurations — too slow
/// for every `cargo test`, run explicitly with `cargo test -- --ignored`.
#[test]
#[ignore = "multi-minute soak; run with -- --ignored"]
fn soak_random_schedules() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for case in 0..200 {
        let w = random_workload(&mut rng, 10, 32);
        let expect = Oracle::run(&w.events());
        for (flags, label) in [
            ((true, false, true), "default"),
            ((false, false, true), "no-fp"),
            ((true, true, true), "ebc"),
            ((true, false, false), "eager"),
        ] {
            let (fp, ebc, lazy) = flags;
            let got = w.run_engine(
                base_config(32)
                    .with_fast_path(fp)
                    .with_early_booking_check(ebc)
                    .with_lazy_removal(lazy),
            );
            assert_eq!(got, expect, "soak case {case} ({label})");
        }
    }
}
