//! Concurrent-shard stress tests (no loom, plain `std::thread`): poster
//! threads drive distinct communicator shards of one shared engine through
//! the `&self` posting path and the arrival command queue while the main
//! thread drains blocks, and the resulting per-communicator match sets must
//! be identical to the serialized oracle.
//!
//! Matching is deterministic in the per-communicator post order and the
//! arrival order (C1 + C2), and matching is communicator-local. Each
//! communicator here is owned by exactly one poster thread, so its post
//! *and* arrival orders are that thread's program order regardless of how
//! the threads interleave — the concurrent run must therefore reproduce the
//! oracle's assignment for every communicator, on every execution.

use mpi_matching::oracle::{MatchEvent, Oracle};
use mpi_matching::{Assignment, MsgHandle, PostResult, RecvHandle};
use otm::{Command, CommandOutcome, Delivery, OtmEngine};
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::{CommId, Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Handle-space stride separating communicators, so a delivery's handle
/// identifies its shard.
const BASE: u64 = 1_000_000;

/// A random single-communicator event stream over a small (rank, tag) space
/// (small so duplicates and wildcards collide often).
fn comm_events(rng: &mut SmallRng, comm: CommId, n: usize) -> Vec<MatchEvent> {
    (0..n)
        .map(|_| {
            let src = Rank(rng.gen_range(0..3));
            let tag = Tag(rng.gen_range(0..3));
            match rng.gen_range(0..10) {
                0..=3 => MatchEvent::Arrive(Envelope::new(src, tag, comm)),
                4..=6 => MatchEvent::Post(ReceivePattern::new(src, tag, comm)),
                7 => MatchEvent::Post(ReceivePattern::new(SourceSel::Any, tag, comm)),
                8 => MatchEvent::Post(ReceivePattern::new(src, TagSel::Any, comm)),
                _ => MatchEvent::Post(ReceivePattern::new(SourceSel::Any, TagSel::Any, comm)),
            }
        })
        .collect()
}

/// The oracle's dense-handle assignment, translated into the shard's global
/// handle range.
fn oracle_on(events: &[MatchEvent], base: u64) -> Assignment {
    let dense = Oracle::run(events);
    let mut asg = Assignment::default();
    for (r, m) in dense.recv_to_msg {
        asg.recv_to_msg
            .insert(RecvHandle(r.0 + base), m.map(|m| MsgHandle(m.0 + base)));
    }
    for (m, r) in dense.msg_to_recv {
        asg.msg_to_recv
            .insert(MsgHandle(m.0 + base), r.map(|r| RecvHandle(r.0 + base)));
    }
    asg
}

/// Runs `per_comm` event streams concurrently — one poster thread per
/// communicator, posts through `post_shared`, arrivals through the command
/// queue, the main thread draining — and asserts every communicator's match
/// set equals its serialized oracle.
fn run_concurrent(per_comm: &[Vec<MatchEvent>]) {
    let comms = per_comm.len();
    let total_posts: usize = per_comm
        .iter()
        .flatten()
        .filter(|e| matches!(e, MatchEvent::Post(_)))
        .count();
    let total_arrivals: usize = per_comm.iter().map(Vec::len).sum::<usize>() - total_posts;

    let config = MatchConfig::default()
        .with_max_receives((total_posts + 1).next_power_of_two())
        .with_max_unexpected((total_arrivals + 1).next_power_of_two())
        .with_bins(32)
        .with_block_threads(4);
    let engine = OtmEngine::new(config).expect("stress configuration");

    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut post_results: Vec<Vec<PostResult>> = Vec::new();
    std::thread::scope(|s| {
        let engine = &engine;
        let posters: Vec<_> = per_comm
            .iter()
            .enumerate()
            .map(|(c, events)| {
                s.spawn(move || {
                    let base = c as u64 * BASE;
                    let (mut next_recv, mut next_msg) = (0u64, 0u64);
                    let mut results = Vec::new();
                    for ev in events {
                        match *ev {
                            MatchEvent::Post(pattern) => {
                                let h = RecvHandle(base + next_recv);
                                next_recv += 1;
                                results.push(
                                    engine
                                        .post_shared(pattern, h)
                                        .expect("table sized for the workload"),
                                );
                            }
                            MatchEvent::Arrive(env) => {
                                let msg = MsgHandle(base + next_msg);
                                next_msg += 1;
                                engine
                                    .submit(Command::Arrival { env, msg })
                                    .expect("engine running");
                            }
                        }
                    }
                    results
                })
            })
            .collect();

        while deliveries.len() < total_arrivals {
            let report = engine.drain();
            if let Some(e) = report.error {
                panic!("drain failed mid-stress: {e:?}");
            }
            for outcome in report.outcomes {
                if let CommandOutcome::Delivery(d) = outcome {
                    deliveries.push(d);
                }
            }
            if deliveries.len() < total_arrivals {
                std::thread::yield_now();
            }
        }
        for p in posters {
            post_results.push(p.join().expect("poster thread"));
        }
    });

    // Rebuild each communicator's observed assignment from the post results
    // (the posting thread's program order maps post i to handle base + i)
    // and the drained deliveries (handles carry their shard).
    let mut observed: Vec<Assignment> = (0..comms).map(|_| Assignment::default()).collect();
    for (c, results) in post_results.iter().enumerate() {
        let base = c as u64 * BASE;
        for (i, r) in results.iter().enumerate() {
            let h = RecvHandle(base + i as u64);
            match *r {
                PostResult::Matched(m) => {
                    observed[c].recv_to_msg.insert(h, Some(m));
                    observed[c].msg_to_recv.insert(m, Some(h));
                }
                PostResult::Posted => {
                    observed[c].recv_to_msg.entry(h).or_insert(None);
                }
            }
        }
    }
    for d in deliveries {
        match d {
            Delivery::Matched { msg, recv } => {
                let c = (msg.0 / BASE) as usize;
                observed[c].msg_to_recv.insert(msg, Some(recv));
                observed[c].recv_to_msg.insert(recv, Some(msg));
            }
            Delivery::Unexpected { msg } => {
                let c = (msg.0 / BASE) as usize;
                observed[c].msg_to_recv.entry(msg).or_insert(None);
            }
        }
    }

    for (c, events) in per_comm.iter().enumerate() {
        let expect = oracle_on(events, c as u64 * BASE);
        assert!(observed[c].is_consistent());
        assert_eq!(
            observed[c], expect,
            "communicator {c} diverged from its serialized oracle"
        );
    }
    assert_eq!(engine.pending_commands(), 0);
}

/// The acceptance-criteria shape: two poster threads on two communicators,
/// repeated across seeds so thread interleavings vary.
#[test]
fn two_threads_two_comms_match_the_serialized_oracle() {
    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed);
        let per_comm: Vec<Vec<MatchEvent>> = (0..2)
            .map(|c| comm_events(&mut rng, CommId(c as u16 + 1), 200))
            .collect();
        run_concurrent(&per_comm);
    }
}

/// Wider fan-out: four poster threads on four communicator shards.
#[test]
fn four_threads_four_comms_match_the_serialized_oracle() {
    for seed in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(0xBEEF ^ seed);
        let per_comm: Vec<Vec<MatchEvent>> = (0..4)
            .map(|c| comm_events(&mut rng, CommId(c as u16 + 1), 150))
            .collect();
        run_concurrent(&per_comm);
    }
}

/// Lopsided shards — one busy communicator, one nearly idle — still match
/// their oracles (exercises drains that straddle shard activity).
#[test]
fn lopsided_shards_match_the_serialized_oracle() {
    let mut rng = SmallRng::seed_from_u64(0xD15C0);
    let per_comm = vec![
        comm_events(&mut rng, CommId(1), 400),
        comm_events(&mut rng, CommId(2), 10),
    ];
    run_concurrent(&per_comm);
}
