//! Per-communicator shards of the engine's host-facing state.
//!
//! The paper's DPA deployment scales by running independent communicators
//! on independent execution-unit groups (§IV-E): commands for different
//! communicators never contend. This module mirrors that split on the host
//! side. Each communicator owns a [`CommShard`] — the worker-visible
//! [`CommShared`] tables plus a small mutex-protected [`ShardHost`] with
//! the host-only state (unexpected store, post labels, sequence-id run
//! tracking). Posting into communicator *A* takes only *A*'s shard lock,
//! so threads posting into different communicators proceed concurrently;
//! the block coordinator locks exactly the shards a block touches, in
//! [`CommId`] order, which keeps the engine deadlock-free (posters ever
//! hold at most one shard lock).

#![deny(missing_docs)]

use crate::block::CommShared;
use crate::index::PrqIndexes;
use crate::ring::CommandRing;
use crate::table::ReceiveTable;
use crate::umq::UnexpectedStore;
use otm_base::{CommHints, CommId, MatchConfig, MatchError, PostLabel, ReceivePattern, SeqId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Host-only per-communicator state, touched under the shard lock and
/// never by block workers.
pub struct ShardHost {
    /// The communicator's unexpected-message store (§IV-C).
    pub(crate) umq: UnexpectedStore,
    /// Next post label (monotone per communicator).
    pub(crate) next_label: PostLabel,
    /// Current sequence id (§III-D3a).
    pub(crate) cur_seq: SeqId,
    /// The previous post's pattern, for sequence-run detection.
    pub(crate) last_pattern: Option<ReceivePattern>,
}

/// One communicator's complete matching state: the lock-free tables the
/// block workers search ([`CommShared`]) plus the mutex-protected host
/// side ([`ShardHost`]).
pub struct CommShard {
    /// Worker-visible tables (receive table, PRQ indexes, hints). These are
    /// internally synchronized (atomics); the `Arc` is cloned into block
    /// lane data.
    pub(crate) shared: Arc<CommShared>,
    /// Host-only state, guarded by the shard lock.
    pub(crate) host: Mutex<ShardHost>,
    /// The communicator's bounded submission ring (§IV-E command queue):
    /// host threads push commands here without contending on any global
    /// lock; the drain coordinator pops from the consumer end. Unused (and
    /// empty) when the engine runs the mutex submission path.
    pub(crate) submission: CommandRing,
}

impl CommShard {
    fn new(config: &MatchConfig, hints: CommHints) -> Self {
        CommShard {
            shared: Arc::new(CommShared {
                table: ReceiveTable::new(config.max_receives),
                prq: PrqIndexes::new(config.bins),
                hints,
            }),
            host: Mutex::new(ShardHost {
                umq: UnexpectedStore::new(config.bins, config.max_unexpected),
                next_label: PostLabel::ZERO,
                cur_seq: SeqId::ZERO,
                last_pattern: None,
            }),
            submission: CommandRing::new(config.ring_capacity),
        }
    }
}

impl std::fmt::Debug for CommShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommShard").finish_non_exhaustive()
    }
}

/// The engine's communicator → shard directory.
///
/// The map itself is behind a read-write lock that is only write-locked to
/// insert a *new* communicator; steady-state lookups take the read lock,
/// clone the `Arc`, and release it before touching the shard — the map
/// lock is never held across shard work, so it cannot participate in a
/// deadlock cycle.
#[derive(Debug, Default)]
pub struct ShardMap {
    shards: RwLock<HashMap<CommId, Arc<CommShard>>>,
}

impl ShardMap {
    /// An empty directory.
    pub fn new() -> Self {
        ShardMap::default()
    }

    /// The shard for `comm`, if the communicator has been used.
    pub fn get(&self, comm: CommId) -> Option<Arc<CommShard>> {
        self.shards.read().get(&comm).cloned()
    }

    /// The shard for `comm`, creating it (with no hints) on first use.
    pub fn get_or_create(&self, comm: CommId, config: &MatchConfig) -> Arc<CommShard> {
        if let Some(shard) = self.get(comm) {
            return shard;
        }
        let mut map = self.shards.write();
        Arc::clone(
            map.entry(comm)
                .or_insert_with(|| Arc::new(CommShard::new(config, CommHints::NONE))),
        )
    }

    /// Declares `comm` with `hints`; fails if the communicator already
    /// exists (hints are fixed at communicator creation, like the DPA's
    /// resource allocation).
    pub fn try_declare(
        &self,
        comm: CommId,
        config: &MatchConfig,
        hints: CommHints,
    ) -> Result<(), MatchError> {
        let mut map = self.shards.write();
        if map.contains_key(&comm) {
            return Err(MatchError::InvalidConfig(format!(
                "hints for {comm} must be declared before the communicator is used"
            )));
        }
        map.insert(comm, Arc::new(CommShard::new(config, hints)));
        Ok(())
    }

    /// Every shard, sorted by communicator id (the global lock order).
    pub fn all_sorted(&self) -> Vec<(CommId, Arc<CommShard>)> {
        let mut all: Vec<_> = self
            .shards
            .read()
            .iter()
            .map(|(id, s)| (*id, Arc::clone(s)))
            .collect();
        all.sort_by_key(|(id, _)| *id);
        all
    }

    /// Number of communicators seen so far.
    pub fn len(&self) -> usize {
        self.shards.read().len()
    }

    /// Whether no communicator has been used yet.
    pub fn is_empty(&self) -> bool {
        self.shards.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_is_idempotent() {
        let map = ShardMap::new();
        let config = MatchConfig::small();
        let a = map.get_or_create(CommId(1), &config);
        let b = map.get_or_create(CommId(1), &config);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn declare_after_use_is_rejected() {
        let map = ShardMap::new();
        let config = MatchConfig::small();
        map.get_or_create(CommId(2), &config);
        assert!(map
            .try_declare(CommId(2), &config, CommHints::no_wildcards())
            .is_err());
        assert!(map
            .try_declare(CommId(3), &config, CommHints::no_wildcards())
            .is_ok());
        assert_eq!(
            map.get(CommId(3)).unwrap().shared.hints,
            CommHints::no_wildcards()
        );
    }

    #[test]
    fn all_sorted_is_in_comm_id_order() {
        let map = ShardMap::new();
        let config = MatchConfig::small();
        for id in [5u16, 1, 3] {
            map.get_or_create(CommId(id), &config);
        }
        let ids: Vec<_> = map.all_sorted().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![CommId(1), CommId(3), CommId(5)]);
    }
}
