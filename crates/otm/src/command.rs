//! The engine's host-facing command submission queue.
//!
//! The DPA receives its work through QP command queues (§IV-E): the host
//! enqueues *post* and *arrival* commands from any thread, and the device
//! coordinator drains them in submission order. [`CommandQueue`] is that
//! queue on the host side, behind one of two submission paths selected by
//! [`otm_base::SubmissionPath`]:
//!
//! * **`Ring`** (the default): every command is stamped with a global
//!   submission *ticket* and pushed onto its communicator's bounded
//!   [`CommandRing`](crate::ring::CommandRing) — a wait-free push that
//!   contends with nothing outside its own communicator. A full ring hands
//!   the command back as the retryable
//!   [`MatchError::SubmissionRingFull`](otm_base::MatchError) backpressure
//!   signal. The drain recovers the global submission order by merging ring
//!   heads on their tickets (a k-way min-ticket merge), so the strict-FIFO
//!   oracle and the packed≡consecutive equivalence hold unchanged.
//! * **`Mutex`**: the pre-ring single mutex-guarded FIFO, kept for A/B
//!   comparison. Submission never reports backpressure.
//!
//! Commands that a failed drain hands back via
//! `CommandQueue::requeue_front` (crate-internal) go into a small *stash* that every take
//! consumes before touching the rings — a stashed command is always older
//! than anything still in its communicator's ring, so per-communicator FIFO
//! order survives requeueing on both paths.
//!
//! [`crate::OtmEngine::drain`] plays the coordinator: it pops commands in
//! bounded chunks, stages them in a [`crate::scheduler::PackingScheduler`],
//! applies posts through the per-communicator shards, and assembles arrivals
//! into parallel matching blocks. Between chunks no queue-wide lock is held,
//! so submissions pipeline against block execution (the paper's CQ
//! pipelining, §IV-E).
//!
//! MPI matching depends only on *per-communicator* command order, which both
//! paths preserve and which the scheduler never violates even when its
//! cross-communicator policy reorders commands from different communicators
//! to fill blocks (§IV-E execution groups).
//!
//! The command vocabulary ([`Command`], [`CommandOutcome`], [`DrainReport`])
//! lives in `mpi_matching::backend` so every
//! [`MatchingBackend`](mpi_matching::MatchingBackend) speaks it; this
//! module re-exports the types under their engine-side names.

#![deny(missing_docs)]

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::shard::ShardMap;
use otm_base::{CommId, MatchConfig, MatchError, SubmissionPath};

pub use mpi_matching::backend::{CommandOutcome, DrainReport, PendingCommand as Command};

/// The communicator a command belongs to (posts carry it in their pattern,
/// arrivals in their envelope).
pub(crate) fn comm_of(cmd: &Command) -> CommId {
    match cmd {
        Command::Post { pattern, .. } => pattern.comm,
        Command::Arrival { env, .. } => env.comm,
    }
}

/// The storage behind the facade: one global FIFO or the per-shard rings.
#[derive(Debug)]
enum PathImpl {
    /// Mutex path: the ticketed global FIFO itself.
    Mutex(Mutex<VecDeque<(u64, Command)>>),
    /// Ring path: storage lives in each shard's `submission` ring; the
    /// facade only coordinates tickets and the drain-side merge.
    Rings,
}

/// A multi-producer command queue (see module docs).
///
/// Every successfully submitted command is stamped with a monotone *ticket*
/// (the global submission sequence number); drains consume in ticket order,
/// which on the ring path is recovered by merging the per-communicator ring
/// heads.
#[derive(Debug)]
pub struct CommandQueue {
    /// Next submission ticket. A ticket burned on a rejected (ring-full)
    /// push leaves a harmless gap — tickets only need to be monotone over
    /// the commands that actually entered the queue.
    tickets: AtomicU64,
    /// Commands handed back by a failed drain, ahead of everything still in
    /// the rings / FIFO. Only the drain touches it (requeue + take), so the
    /// mutex is uncontended on the submit path.
    stash: Mutex<VecDeque<(u64, Command)>>,
    inner: PathImpl,
}

impl CommandQueue {
    /// An empty queue on the submission path `config` selects.
    pub fn new(config: &MatchConfig) -> Self {
        let inner = match config.submission {
            SubmissionPath::Mutex => PathImpl::Mutex(Mutex::new(VecDeque::new())),
            SubmissionPath::Ring => PathImpl::Rings,
        };
        CommandQueue {
            tickets: AtomicU64::new(0),
            stash: Mutex::new(VecDeque::new()),
            inner,
        }
    }

    /// Enqueues a command. Callable from any thread.
    ///
    /// On the ring path a full communicator ring rejects the command with
    /// the retryable [`MatchError::SubmissionRingFull`]; draining the queue
    /// frees slots, after which the same submit succeeds. The mutex path
    /// never rejects.
    pub fn submit(
        &self,
        cmd: Command,
        shards: &ShardMap,
        config: &MatchConfig,
    ) -> Result<(), MatchError> {
        let ticket = self.tickets.fetch_add(1, Ordering::Relaxed);
        match &self.inner {
            PathImpl::Mutex(fifo) => {
                fifo.lock().push_back((ticket, cmd));
                Ok(())
            }
            PathImpl::Rings => {
                let comm = comm_of(&cmd);
                let shard = shards.get_or_create(comm, config);
                shard
                    .submission
                    .push(ticket, cmd)
                    .map_err(|_| MatchError::SubmissionRingFull { comm: comm.0 })
            }
        }
    }

    /// Number of commands waiting to be drained. On the ring path this is a
    /// racy monitoring snapshot (one load per communicator), not a
    /// synchronization primitive.
    pub fn len(&self, shards: &ShardMap) -> usize {
        let stashed = self.stash.lock().len();
        stashed
            + match &self.inner {
                PathImpl::Mutex(fifo) => fifo.lock().len(),
                PathImpl::Rings => shards
                    .all_sorted()
                    .iter()
                    .map(|(_, shard)| shard.submission.len())
                    .sum(),
            }
    }

    /// Whether no command is waiting (same caveat as [`CommandQueue::len`]).
    pub fn is_empty(&self, shards: &ShardMap) -> bool {
        self.len(shards) == 0
    }

    /// Per-communicator submission-ring occupancy, in communicator order —
    /// feeds the `otm_submission_ring_depth` gauges. Empty on the mutex
    /// path (there are no rings to observe).
    pub(crate) fn lane_occupancy(&self, shards: &ShardMap) -> Vec<(u16, usize)> {
        match &self.inner {
            PathImpl::Mutex(_) => Vec::new(),
            PathImpl::Rings => shards
                .all_sorted()
                .iter()
                .map(|(comm, shard)| (comm.0, shard.submission.len()))
                .collect(),
        }
    }

    /// Takes every queued command, oldest first (global ticket order).
    /// Submissions racing with the take land after it and are picked up by
    /// the next drain.
    pub(crate) fn take_all(&self, shards: &ShardMap) -> VecDeque<(u64, Command)> {
        self.take_chunk(usize::MAX, shards)
    }

    /// Takes up to `max` commands from the head, oldest first: the stash
    /// (requeued, oldest of all) is consumed before the rings / FIFO, and on
    /// the ring path the per-communicator ring heads are merged by ticket so
    /// the chunk comes out in global submission order. No queue-wide lock is
    /// held on the ring path, so concurrent submitters pipeline against
    /// whatever the caller does with the chunk.
    pub(crate) fn take_chunk(&self, max: usize, shards: &ShardMap) -> VecDeque<(u64, Command)> {
        let mut out = VecDeque::new();
        if max == 0 {
            return out;
        }
        {
            let mut stash = self.stash.lock();
            while out.len() < max {
                match stash.pop_front() {
                    Some(entry) => out.push_back(entry),
                    None => break,
                }
            }
        }
        match &self.inner {
            PathImpl::Mutex(fifo) => {
                let mut fifo = fifo.lock();
                while out.len() < max {
                    match fifo.pop_front() {
                        Some(entry) => out.push_back(entry),
                        None => break,
                    }
                }
            }
            PathImpl::Rings => {
                // k-way min-ticket merge over the ring heads. The drain gate
                // serializes consumers, so a peeked head can only be popped
                // by us; a head appearing concurrently (racing submit) may
                // or may not be included — exactly the mutex path's take
                // semantics.
                let lanes = shards.all_sorted();
                while out.len() < max {
                    let mut best: Option<(u64, usize)> = None;
                    for (i, (_, shard)) in lanes.iter().enumerate() {
                        if let Some(ticket) = shard.submission.peek_ticket() {
                            if best.map(|(t, _)| ticket < t).unwrap_or(true) {
                                best = Some((ticket, i));
                            }
                        }
                    }
                    match best {
                        Some((_, i)) => match lanes[i].1.submission.pop() {
                            Some(entry) => out.push_back(entry),
                            None => break,
                        },
                        None => break,
                    }
                }
            }
        }
        out
    }

    /// Puts unprocessed commands back at the *front* of the queue (in their
    /// original order), ahead of anything submitted since the take. The
    /// stash serves both paths: requeued commands are older than anything
    /// still in the rings / FIFO, so consuming the stash first preserves
    /// per-communicator FIFO order.
    pub(crate) fn requeue_front(&self, cmds: VecDeque<(u64, Command)>) {
        let mut stash = self.stash.lock();
        for entry in cmds.into_iter().rev() {
            stash.push_front(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_matching::MsgHandle;
    use otm_base::{CommId, Envelope, Rank, Tag};

    fn arrival(i: u64) -> Command {
        Command::Arrival {
            env: Envelope::world(Rank(0), Tag(i as u32)),
            msg: MsgHandle(i),
        }
    }

    fn arrival_on(comm: u16, i: u64) -> Command {
        Command::Arrival {
            env: Envelope::new(Rank(0), Tag(i as u32), CommId(comm)),
            msg: MsgHandle(i),
        }
    }

    fn ring_queue() -> (CommandQueue, ShardMap, MatchConfig) {
        let config = MatchConfig::small();
        (CommandQueue::new(&config), ShardMap::new(), config)
    }

    fn mutex_queue() -> (CommandQueue, ShardMap, MatchConfig) {
        let config = MatchConfig::small().with_submission(SubmissionPath::Mutex);
        (CommandQueue::new(&config), ShardMap::new(), config)
    }

    fn commands(q: &CommandQueue, shards: &ShardMap) -> Vec<Command> {
        q.take_all(shards).into_iter().map(|(_, c)| c).collect()
    }

    #[test]
    fn submit_take_preserves_fifo_order_on_both_paths() {
        for (q, shards, config) in [ring_queue(), mutex_queue()] {
            for i in 0..4 {
                q.submit(arrival(i), &shards, &config).unwrap();
            }
            assert_eq!(q.len(&shards), 4);
            let taken = q.take_all(&shards);
            assert_eq!(
                taken.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
                vec![0, 1, 2, 3],
                "tickets are the submission order"
            );
            assert_eq!(
                taken.into_iter().map(|(_, c)| c).collect::<Vec<_>>(),
                (0..4).map(arrival).collect::<Vec<_>>()
            );
            assert!(q.is_empty(&shards));
        }
    }

    #[test]
    fn requeue_front_goes_ahead_of_new_submissions() {
        for (q, shards, config) in [ring_queue(), mutex_queue()] {
            q.submit(arrival(0), &shards, &config).unwrap();
            q.submit(arrival(1), &shards, &config).unwrap();
            let mut taken = q.take_all(&shards);
            taken.pop_front(); // command 0 was applied
            q.submit(arrival(2), &shards, &config).unwrap(); // raced in after the take
            q.requeue_front(taken);
            assert_eq!(commands(&q, &shards), vec![arrival(1), arrival(2)]);
        }
    }

    #[test]
    fn take_chunk_pops_bounded_prefixes_in_order() {
        for (q, shards, config) in [ring_queue(), mutex_queue()] {
            for i in 0..5 {
                q.submit(arrival(i), &shards, &config).unwrap();
            }
            let first: Vec<_> = q
                .take_chunk(2, &shards)
                .into_iter()
                .map(|(_, c)| c)
                .collect();
            assert_eq!(first, vec![arrival(0), arrival(1)]);
            assert_eq!(q.len(&shards), 3);
            // Oversized chunk takes whatever is left; zero takes nothing.
            assert_eq!(q.take_chunk(0, &shards).len(), 0);
            let rest: Vec<_> = q
                .take_chunk(99, &shards)
                .into_iter()
                .map(|(_, c)| c)
                .collect();
            assert_eq!(rest, vec![arrival(2), arrival(3), arrival(4)]);
            assert!(q.is_empty(&shards));
        }
    }

    #[test]
    fn ring_path_merges_lanes_back_into_submission_order() {
        let (q, shards, config) = ring_queue();
        // Interleave three communicators; the rings hold them separately…
        for i in 0..9u64 {
            q.submit(arrival_on((i % 3) as u16 + 1, i), &shards, &config)
                .unwrap();
        }
        assert_eq!(shards.len(), 3, "one shard per communicator");
        // …but the drain-side merge recovers the global submission order.
        let tickets: Vec<u64> = q.take_all(&shards).into_iter().map(|(t, _)| t).collect();
        assert_eq!(tickets, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn full_ring_reports_retryable_backpressure() {
        let config = MatchConfig::small()
            .with_ring_capacity(2)
            .with_submission(SubmissionPath::Ring);
        let q = CommandQueue::new(&config);
        let shards = ShardMap::new();
        q.submit(arrival(0), &shards, &config).unwrap();
        q.submit(arrival(1), &shards, &config).unwrap();
        let err = q.submit(arrival(2), &shards, &config).unwrap_err();
        assert_eq!(err, MatchError::SubmissionRingFull { comm: 0 });
        assert!(err.is_retryable());
        // Another communicator's ring is unaffected by the full one.
        q.submit(arrival_on(5, 0), &shards, &config).unwrap();
        // Draining frees slots; the retry then succeeds.
        let drained = q.take_all(&shards);
        assert_eq!(drained.len(), 3);
        q.submit(arrival(2), &shards, &config).unwrap();
        assert_eq!(q.len(&shards), 1);
    }

    #[test]
    fn stash_is_consumed_before_ring_commands() {
        let (q, shards, config) = ring_queue();
        for i in 0..4 {
            q.submit(arrival(i), &shards, &config).unwrap();
        }
        let mut taken = q.take_chunk(2, &shards);
        taken.pop_front(); // 0 applied; 1 must come back ahead of 2, 3
        q.requeue_front(taken);
        assert_eq!(q.len(&shards), 3);
        assert_eq!(
            commands(&q, &shards),
            vec![arrival(1), arrival(2), arrival(3)]
        );
    }

    #[test]
    fn mutex_path_ignores_ring_capacity() {
        let config = MatchConfig::small()
            .with_ring_capacity(1)
            .with_submission(SubmissionPath::Mutex);
        let q = CommandQueue::new(&config);
        let shards = ShardMap::new();
        for i in 0..64 {
            q.submit(arrival(i), &shards, &config).unwrap();
        }
        assert_eq!(q.len(&shards), 64);
        assert!(q.lane_occupancy(&shards).is_empty());
    }
}
