//! The engine's host-facing command submission queue.
//!
//! The DPA receives its work through QP command queues (§IV-E): the host
//! enqueues *post* and *arrival* commands from any thread, and the device
//! coordinator drains them in submission order. [`CommandQueue`] is that
//! queue on the host side — a `&self` (interior-mutability) FIFO that any
//! number of threads can [`CommandQueue::submit`] into concurrently, with
//! [`crate::OtmEngine::drain`] playing the coordinator: it pops commands
//! in order, applies posts through the per-communicator shards, and packs
//! consecutive arrivals into parallel matching blocks.
//!
//! Because the queue is a strict FIFO, the engine's matching outcome over
//! the drained commands is the same deterministic function of submission
//! order that a fully serialized engine computes — MPI matching depends
//! only on per-communicator post order and global arrival order, both of
//! which the queue preserves.

#![deny(missing_docs)]

use crate::engine::Delivery;
use mpi_matching::{MsgHandle, PostResult, RecvHandle};
use otm_base::{Envelope, MatchError, ReceivePattern};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One host-to-engine command, mirroring the DPA QP command set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Post a receive (the `post` command path).
    Post {
        /// The receive's matching pattern.
        pattern: ReceivePattern,
        /// The caller's handle for the receive.
        handle: RecvHandle,
    },
    /// Deliver one incoming message (the arrival path; the coordinator
    /// batches consecutive arrivals into blocks).
    Arrival {
        /// The message's envelope.
        env: Envelope,
        /// The caller's handle for the message.
        msg: MsgHandle,
    },
}

/// The result of applying one [`Command`], in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandOutcome {
    /// Outcome of a [`Command::Post`].
    Post(PostResult),
    /// Outcome of a [`Command::Arrival`].
    Delivery(Delivery),
}

/// Everything one [`crate::OtmEngine::drain`] call accomplished.
///
/// A drain is not all-or-nothing: commands apply one by one (arrivals in
/// blocks), and an error stops the drain mid-queue. The outcomes of the
/// commands that *did* apply are always reported — dropping them would lose
/// deliveries the caller must act on.
#[derive(Debug)]
pub struct DrainReport {
    /// Outcome of every applied command, in submission order.
    pub outcomes: Vec<CommandOutcome>,
    /// The error that stopped the drain early, if any. The failing command
    /// and everything queued behind it were put back at the front of the
    /// queue, so a retry after remedying the error (e.g. freeing
    /// unexpected-store capacity) resumes exactly where this drain stopped.
    pub error: Option<MatchError>,
}

/// A multi-producer command FIFO (see module docs).
#[derive(Debug, Default)]
pub struct CommandQueue {
    inner: Mutex<VecDeque<Command>>,
}

impl CommandQueue {
    /// An empty queue.
    pub fn new() -> Self {
        CommandQueue::default()
    }

    /// Enqueues a command at the tail. Callable from any thread.
    pub fn submit(&self, cmd: Command) {
        self.inner.lock().push_back(cmd);
    }

    /// Number of commands waiting to be drained.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no command is waiting.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Takes every queued command, oldest first. Submissions racing with
    /// the take land after it and are picked up by the next drain.
    pub(crate) fn take_all(&self) -> VecDeque<Command> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Puts unprocessed commands back at the *front* of the queue (in their
    /// original order), ahead of anything submitted since the take.
    pub(crate) fn requeue_front(&self, cmds: VecDeque<Command>) {
        let mut inner = self.inner.lock();
        for cmd in cmds.into_iter().rev() {
            inner.push_front(cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::{Rank, Tag};

    fn arrival(i: u64) -> Command {
        Command::Arrival {
            env: Envelope::world(Rank(0), Tag(i as u32)),
            msg: MsgHandle(i),
        }
    }

    #[test]
    fn submit_take_preserves_fifo_order() {
        let q = CommandQueue::new();
        for i in 0..4 {
            q.submit(arrival(i));
        }
        assert_eq!(q.len(), 4);
        let taken: Vec<_> = q.take_all().into_iter().collect();
        assert_eq!(taken, (0..4).map(arrival).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn requeue_front_goes_ahead_of_new_submissions() {
        let q = CommandQueue::new();
        q.submit(arrival(0));
        q.submit(arrival(1));
        let mut taken = q.take_all();
        taken.pop_front(); // command 0 was applied
        q.submit(arrival(2)); // raced in after the take
        q.requeue_front(taken);
        let order: Vec<_> = q.take_all().into_iter().collect();
        assert_eq!(order, vec![arrival(1), arrival(2)]);
    }
}
