//! The engine's host-facing command submission queue.
//!
//! The DPA receives its work through QP command queues (§IV-E): the host
//! enqueues *post* and *arrival* commands from any thread, and the device
//! coordinator drains them in submission order. [`CommandQueue`] is that
//! queue on the host side — a `&self` (interior-mutability) FIFO that any
//! number of threads can [`CommandQueue::submit`] into concurrently, with
//! [`crate::OtmEngine::drain`] playing the coordinator: it pops commands
//! in bounded chunks, stages them in a [`crate::scheduler::PackingScheduler`],
//! applies posts through the per-communicator shards, and assembles arrivals
//! into parallel matching blocks. Between chunks the queue lock is free, so
//! submissions pipeline against block execution (the paper's CQ pipelining,
//! §IV-E).
//!
//! Because the queue is a strict FIFO and drains are serialized, the
//! engine's matching outcome over the drained commands is the same
//! deterministic function of submission order that a fully serialized
//! engine computes — MPI matching depends only on *per-communicator*
//! command order, which the queue preserves and which the scheduler never
//! violates even when its cross-communicator policy reorders commands from
//! different communicators to fill blocks (§IV-E execution groups).
//!
//! The command vocabulary ([`Command`], [`CommandOutcome`], [`DrainReport`])
//! lives in `mpi_matching::backend` so every
//! [`MatchingBackend`](mpi_matching::MatchingBackend) speaks it; this
//! module re-exports the types under their engine-side names.

#![deny(missing_docs)]

use parking_lot::Mutex;
use std::collections::VecDeque;

pub use mpi_matching::backend::{CommandOutcome, DrainReport, PendingCommand as Command};

/// A multi-producer command FIFO (see module docs).
#[derive(Debug, Default)]
pub struct CommandQueue {
    inner: Mutex<VecDeque<Command>>,
}

impl CommandQueue {
    /// An empty queue.
    pub fn new() -> Self {
        CommandQueue::default()
    }

    /// Enqueues a command at the tail. Callable from any thread.
    pub fn submit(&self, cmd: Command) {
        self.inner.lock().push_back(cmd);
    }

    /// Number of commands waiting to be drained.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no command is waiting.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Takes every queued command, oldest first. Submissions racing with
    /// the take land after it and are picked up by the next drain.
    pub(crate) fn take_all(&self) -> VecDeque<Command> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Takes up to `max` commands from the head, oldest first. The queue
    /// lock is held only for the pop, so concurrent submitters pipeline
    /// against whatever the caller does with the chunk.
    pub(crate) fn take_chunk(&self, max: usize) -> VecDeque<Command> {
        let mut inner = self.inner.lock();
        if max == 0 || inner.is_empty() {
            return VecDeque::new();
        }
        if inner.len() <= max {
            return std::mem::take(&mut *inner);
        }
        inner.drain(..max).collect()
    }

    /// Puts unprocessed commands back at the *front* of the queue (in their
    /// original order), ahead of anything submitted since the take.
    pub(crate) fn requeue_front(&self, cmds: VecDeque<Command>) {
        let mut inner = self.inner.lock();
        for cmd in cmds.into_iter().rev() {
            inner.push_front(cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_matching::MsgHandle;
    use otm_base::{Envelope, Rank, Tag};

    fn arrival(i: u64) -> Command {
        Command::Arrival {
            env: Envelope::world(Rank(0), Tag(i as u32)),
            msg: MsgHandle(i),
        }
    }

    #[test]
    fn submit_take_preserves_fifo_order() {
        let q = CommandQueue::new();
        for i in 0..4 {
            q.submit(arrival(i));
        }
        assert_eq!(q.len(), 4);
        let taken: Vec<_> = q.take_all().into_iter().collect();
        assert_eq!(taken, (0..4).map(arrival).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn requeue_front_goes_ahead_of_new_submissions() {
        let q = CommandQueue::new();
        q.submit(arrival(0));
        q.submit(arrival(1));
        let mut taken = q.take_all();
        taken.pop_front(); // command 0 was applied
        q.submit(arrival(2)); // raced in after the take
        q.requeue_front(taken);
        let order: Vec<_> = q.take_all().into_iter().collect();
        assert_eq!(order, vec![arrival(1), arrival(2)]);
    }

    #[test]
    fn take_chunk_pops_bounded_prefixes_in_order() {
        let q = CommandQueue::new();
        for i in 0..5 {
            q.submit(arrival(i));
        }
        let first: Vec<_> = q.take_chunk(2).into_iter().collect();
        assert_eq!(first, vec![arrival(0), arrival(1)]);
        assert_eq!(q.len(), 3);
        // Oversized chunk takes whatever is left; zero takes nothing.
        assert_eq!(q.take_chunk(0).len(), 0);
        let rest: Vec<_> = q.take_chunk(99).into_iter().collect();
        assert_eq!(rest, vec![arrival(2), arrival(3), arrival(4)]);
        assert!(q.is_empty());
    }
}
