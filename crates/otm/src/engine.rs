//! The Optimistic Tag Matching engine: public API and coordinator logic.
//!
//! [`OtmEngine`] owns a persistent pool of block workers (the DPA threads of
//! §IV) and the host-facing state: per-communicator descriptor tables, index
//! structures and unexpected-message stores. Receives are posted through
//! [`OtmEngine::post`] — the QP command path of §IV-E — and incoming
//! messages are matched in blocks of up to `N` via
//! [`OtmEngine::process_block`] (a chunking [`OtmEngine::process_stream`] is
//! provided for convenience).
//!
//! Posting and block processing take `&mut self`: the engine serializes the
//! host command path with block execution exactly as the DPA serializes QP
//! command handling with its run-to-completion handlers. Inside a block,
//! matching is genuinely parallel across the worker pool.

use crate::block::{BlockShared, CommShared, LaneData};
use crate::index::PrqIndexes;
use crate::metrics::{trace_event, EngineMetrics};
use crate::stats::{OtmStats, StatsSnapshot};
use crate::table::{DescId, Payload, ReceiveTable};
use crate::umq::UnexpectedStore;
use crate::worker::{pool_size, worker_main, worker_main_inline, WorkerCtx};
use mpi_matching::{ArriveResult, Matcher, MsgHandle, PostResult, RecvHandle};
use otm_base::{
    ArrivalSeq, CommHints, CommId, Envelope, InlineHashes, MatchConfig, MatchError, PostLabel,
    ReceivePattern, SeqId,
};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Matching state drained from an engine for software fallback: the
/// pending receives (per-communicator post order) and the waiting
/// unexpected messages (per-communicator arrival order).
pub type FallbackState = (
    Vec<(ReceivePattern, RecvHandle)>,
    Vec<(Envelope, MsgHandle)>,
);

/// Outcome of matching one incoming message in a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message matched a posted receive.
    Matched {
        /// The message's handle.
        msg: MsgHandle,
        /// The matched receive's handle.
        recv: RecvHandle,
    },
    /// No receive matched; the message was stored as unexpected.
    Unexpected {
        /// The message's handle.
        msg: MsgHandle,
    },
}

impl Delivery {
    /// The matched receive handle, if any.
    pub fn matched(self) -> Option<RecvHandle> {
        match self {
            Delivery::Matched { recv, .. } => Some(recv),
            Delivery::Unexpected { .. } => None,
        }
    }

    /// The message handle.
    pub fn msg(self) -> MsgHandle {
        match self {
            Delivery::Matched { msg, .. } | Delivery::Unexpected { msg } => msg,
        }
    }
}

/// Host-side per-communicator state (never touched by workers).
struct CommHost {
    shared: Arc<CommShared>,
    umq: UnexpectedStore,
    next_label: PostLabel,
    cur_seq: SeqId,
    last_pattern: Option<ReceivePattern>,
}

/// The Optimistic Tag Matching engine (see module docs and crate docs).
pub struct OtmEngine {
    config: MatchConfig,
    shared: Arc<BlockShared>,
    stats: Arc<OtmStats>,
    metrics: EngineMetrics,
    comms: HashMap<CommId, CommHost>,
    workers: Vec<JoinHandle<()>>,
    next_arrival: ArrivalSeq,
    stopped: bool,
}

impl std::fmt::Debug for OtmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OtmEngine")
            .field("config", &self.config)
            .field("comms", &self.comms.len())
            .field("workers", &self.workers.len())
            .field("stopped", &self.stopped)
            .finish()
    }
}

impl OtmEngine {
    /// Creates an engine and spawns its worker pool.
    ///
    /// A `block_threads == 1` engine spawns no workers at all: its single
    /// lane runs inline on the caller's thread (one DPA execution unit, no
    /// handoff), which keeps the configuration meaningful on small hosts.
    pub fn new(config: MatchConfig) -> Result<Self, MatchError> {
        config.validate()?;
        let shared = Arc::new(BlockShared::new(config.block_threads));
        let stats = Arc::new(OtmStats::default());
        let metrics = EngineMetrics::new();
        let pool = if config.block_threads == 1 {
            0
        } else {
            config.block_threads
        };
        let workers = (0..pool)
            .map(|lane| {
                let ctx = WorkerCtx {
                    shared: Arc::clone(&shared),
                    stats: Arc::clone(&stats),
                    metrics: metrics.clone(),
                    config: config.clone(),
                    lane,
                };
                std::thread::Builder::new()
                    .name(format!("otm-worker-{lane}"))
                    .spawn(move || worker_main(ctx))
                    .expect("spawning an engine worker thread")
            })
            .collect();
        Ok(OtmEngine {
            config,
            shared,
            stats,
            metrics,
            comms: HashMap::new(),
            workers,
            next_arrival: ArrivalSeq::ZERO,
            stopped: false,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// A snapshot of the engine's statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The engine's metric instruments (histograms, path counters).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Copies out the engine's metrics registry: search-depth and
    /// block-latency histograms plus resolution-path counters, ready for
    /// Prometheus or JSON exposition.
    #[cfg(feature = "metrics")]
    pub fn metrics_snapshot(&self) -> otm_metrics::RegistrySnapshot {
        self.metrics.snapshot()
    }

    /// Copies out the retained timeline events, oldest first.
    #[cfg(feature = "trace-events")]
    pub fn trace_events(&self) -> Vec<otm_metrics::TraceEvent> {
        self.metrics.trace_ring().dump()
    }

    /// Renders the retained timeline events as a JSON array.
    #[cfg(feature = "trace-events")]
    pub fn trace_events_json(&self) -> String {
        self.metrics.trace_ring().to_json()
    }

    fn check_running(&self) -> Result<(), MatchError> {
        if self.stopped || self.shared.poisoned.load(Ordering::SeqCst) {
            Err(MatchError::EngineStopped)
        } else {
            Ok(())
        }
    }

    fn ensure_comm(&mut self, comm: CommId) -> &mut CommHost {
        self.ensure_comm_with_hints(comm, CommHints::NONE)
    }

    fn ensure_comm_with_hints(&mut self, comm: CommId, hints: CommHints) -> &mut CommHost {
        let config = &self.config;
        self.comms.entry(comm).or_insert_with(|| CommHost {
            shared: Arc::new(CommShared {
                table: ReceiveTable::new(config.max_receives),
                prq: PrqIndexes::new(config.bins),
                hints,
            }),
            umq: UnexpectedStore::new(config.bins, config.max_unexpected),
            next_label: PostLabel::ZERO,
            cur_seq: SeqId::ZERO,
            last_pattern: None,
        })
    }

    /// Declares a communicator with matching hints (§VII): "applications
    /// can provide MPI communicator info objects to influence the
    /// offloading of tag matching for a given communicator" (§IV-E).
    ///
    /// Like the DPA resource allocation, hints are fixed at communicator
    /// creation: calling this after the communicator has been used is an
    /// error.
    pub fn declare_comm(&mut self, comm: CommId, hints: CommHints) -> Result<(), MatchError> {
        self.check_running()?;
        if self.comms.contains_key(&comm) {
            return Err(MatchError::InvalidConfig(format!(
                "hints for {comm} must be declared before the communicator is used"
            )));
        }
        self.ensure_comm_with_hints(comm, hints);
        Ok(())
    }

    /// The hints a communicator was declared with.
    pub fn comm_hints(&self, comm: CommId) -> Option<CommHints> {
        self.comms.get(&comm).map(|c| c.shared.hints)
    }

    /// Posts a receive — the host-to-DPA command path (§IV-E).
    ///
    /// The unexpected-message store is searched first (§IV-C); on a miss the
    /// receive is labelled, assigned its sequence id, and indexed in the
    /// structure matching its wildcard class (§III-B).
    pub fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        self.check_running()?;
        let stats = Arc::clone(&self.stats);
        let metrics = self.metrics.clone();
        let host = self.ensure_comm(pattern.comm);
        if !host.shared.hints.permits(pattern.wildcard_class()) {
            return Err(MatchError::HintViolation(format!(
                "receive {pattern} violates the hints declared for {}",
                pattern.comm
            )));
        }
        if let Some(m) = host.umq.match_post(&pattern) {
            stats.matched_on_post.fetch_add(1, Ordering::Relaxed);
            stats
                .umq_depth_sum
                .fetch_add(m.depth as u64, Ordering::Relaxed);
            stats.umq_search_count.fetch_add(1, Ordering::Relaxed);
            metrics.record_umq_match_depth(m.depth as u64);
            // The consumed receive is not indexed, so it breaks any ongoing
            // run of compatible receives.
            host.last_pattern = None;
            return Ok(PostResult::Matched(m.handle));
        }
        stats.umq_search_count.fetch_add(1, Ordering::Relaxed);
        // Sequence ids (§III-D3a): consecutive compatible posts share one.
        let seq = match &host.last_pattern {
            Some(p) if p.compatible(&pattern) => host.cur_seq,
            _ => {
                host.cur_seq = host.cur_seq.next();
                host.cur_seq
            }
        };
        host.last_pattern = Some(pattern);
        let home = host.shared.prq.home_of(&pattern);
        let label = host.next_label;
        let desc = host.shared.table.allocate(Payload {
            pattern,
            label,
            seq,
            handle: handle.0,
            home,
        })?;
        host.next_label = host.next_label.next();
        host.shared.prq.insert(home, desc);
        stats.posted.fetch_add(1, Ordering::Relaxed);
        Ok(PostResult::Posted)
    }

    /// Matches one block of up to `N` incoming messages in parallel.
    ///
    /// Messages are taken in arrival order: lane *i* processes the *i*-th
    /// message, and the block's deliveries are returned in the same order.
    pub fn process_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<Delivery>, MatchError> {
        self.check_running()?;
        let n = msgs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if n > self.config.block_threads {
            return Err(MatchError::InvalidConfig(format!(
                "block of {n} messages exceeds the {}-thread pool",
                self.config.block_threads
            )));
        }

        // Pre-resolve every lane's communicator state so the workers never
        // touch the communicator map, and pre-check the unexpected-store
        // capacity: in the worst case every message of the block goes
        // unexpected, and rejecting up front keeps the operation atomic —
        // the caller can fall back to software matching (§IV-E) with the
        // engine's state fully intact (see `drain_for_fallback`).
        for (env, _) in msgs {
            self.ensure_comm(env.comm);
        }
        let mut per_comm: HashMap<CommId, usize> = HashMap::new();
        for (env, _) in msgs {
            *per_comm.entry(env.comm).or_insert(0) += 1;
        }
        for (comm, count) in per_comm {
            if self.comms[&comm].umq.available() < count {
                return Err(MatchError::UnexpectedStoreFull);
            }
        }
        let lanes: Vec<LaneData> = msgs
            .iter()
            .map(|&(env, handle)| LaneData {
                env,
                handle,
                hashes: InlineHashes::of(&env),
                comm: Arc::clone(&self.comms[&env.comm].shared),
            })
            .collect();

        // Publish the block and run it: inline on this thread for a
        // single-lane engine, otherwise on the worker pool.
        let block_timer = self.metrics.timer();
        trace_event!(self.metrics, 0u32, BlockStart);
        self.shared.reset_for_block();
        *self.shared.lanes.write() = lanes;
        self.shared.epoch.fetch_add(1, Ordering::Release);
        if self.workers.is_empty() {
            let guard = self.shared.lanes.read();
            let ctx = WorkerCtx {
                shared: Arc::clone(&self.shared),
                stats: Arc::clone(&self.stats),
                metrics: self.metrics.clone(),
                config: self.config.clone(),
                lane: 0,
            };
            worker_main_inline(&ctx, &guard[0]);
        } else {
            {
                let mut control = self.shared.control.lock();
                control.epoch += 1;
                control.done = 0;
                self.shared.start_cv.notify_all();
            }
            // Wait for the whole pool to drain the block.
            let mut control = self.shared.control.lock();
            while control.done < pool_size(n, self.config.block_threads) {
                self.shared.done_cv.wait(&mut control);
            }
        }

        if self.shared.poisoned.load(Ordering::SeqCst) {
            self.stopped = true;
            return Err(MatchError::EngineStopped);
        }

        self.metrics.observe_block(block_timer);
        trace_event!(self.metrics, 0u32, BlockEnd);
        self.stats.blocks.fetch_add(1, Ordering::Relaxed);
        self.stats.messages.fetch_add(n as u64, Ordering::Relaxed);

        // Block-end cleanup, phase 1: clear the booking bitmaps so they are
        // monotone only within a block.
        for (booked, (env, _)) in self.shared.booked_desc.iter().zip(msgs) {
            let desc = booked.load(Ordering::Acquire);
            if desc != u32::MAX {
                let comm = &self.comms[&env.comm].shared;
                comm.table.slot(desc).clear_booking();
            }
        }

        // Phase 2: collect results, unlink and free consumed descriptors,
        // store unexpected messages (in lane = arrival order).
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        let base_arrival = self.next_arrival;
        let mut deliveries = Vec::with_capacity(n);
        for (lane, &(env, handle)) in msgs.iter().enumerate() {
            let code = self.shared.results[lane].load(Ordering::Acquire);
            debug_assert_ne!(
                code,
                crate::block::result_code::UNSET,
                "lane {lane} never settled"
            );
            if code == crate::block::result_code::UNEXPECTED {
                self.stats.unexpected.fetch_add(1, Ordering::Relaxed);
                let host = self.comms.get_mut(&env.comm).expect("comm ensured above");
                host.umq
                    .insert(env, handle, ArrivalSeq(base_arrival.0 + lane as u64))
                    .expect("capacity pre-checked before the block ran");
                deliveries.push(Delivery::Unexpected { msg: handle });
            } else {
                let desc = code as DescId;
                let comm = Arc::clone(&self.comms[&env.comm].shared);
                debug_assert_eq!(comm.table.slot(desc).state(), crate::table::state::CONSUMED);
                debug_assert_eq!(comm.table.slot(desc).consumed_epoch(), epoch);
                let payload = comm.table.slot(desc).payload();
                if self.config.lazy_removal {
                    // The coordinator is the lock winner of §IV-D's lazy
                    // scheme: sweep the tombstone out of its chain now that
                    // no block is in flight.
                    comm.prq.unlink(payload.home, desc);
                }
                comm.table.release(desc);
                self.stats.matched.fetch_add(1, Ordering::Relaxed);
                deliveries.push(Delivery::Matched {
                    msg: handle,
                    recv: RecvHandle(payload.handle),
                });
            }
        }
        self.next_arrival = ArrivalSeq(self.next_arrival.0 + n as u64);
        Ok(deliveries)
    }

    /// Matches an arbitrarily long message stream, chunked into blocks of
    /// the configured size.
    pub fn process_stream(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<Delivery>, MatchError> {
        let mut out = Vec::with_capacity(msgs.len());
        for chunk in msgs.chunks(self.config.block_threads) {
            out.extend(self.process_block(chunk)?);
        }
        Ok(out)
    }

    /// Non-destructive unexpected-message probe (`MPI_Iprobe` semantics):
    /// the oldest waiting message matching `pattern`, if any.
    pub fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.comms
            .get(&pattern.comm)
            .and_then(|host| host.umq.probe(pattern))
    }

    /// Drains the complete matching state for migration to software tag
    /// matching — the fallback the paper mandates when device resources run
    /// out (§III-B, §IV-E). Consumes the engine (the device resources are
    /// being given up).
    ///
    /// Returns the pending receives and the waiting unexpected messages.
    /// Receives are ordered per communicator by post label (C1 only
    /// constrains order *within* a communicator, so replaying
    /// communicator-by-communicator into a software matcher preserves MPI
    /// semantics); unexpected messages are in arrival order per
    /// communicator.
    pub fn drain_for_fallback(mut self) -> FallbackState {
        let mut receives = Vec::new();
        let mut unexpected = Vec::new();
        let mut comms: Vec<(CommId, CommHost)> = self.comms.drain().collect();
        comms.sort_by_key(|(id, _)| *id);
        for (_, mut host) in comms {
            let mut posted = host.shared.table.posted_snapshot();
            posted.sort_by_key(|p| p.label);
            receives.extend(
                posted
                    .into_iter()
                    .map(|p| (p.pattern, RecvHandle(p.handle))),
            );
            unexpected.extend(host.umq.drain());
        }
        (receives, unexpected)
    }

    /// Live posted receives across all communicators.
    pub fn prq_len(&self) -> usize {
        self.comms
            .values()
            .map(|c| c.shared.prq.live_count(&c.shared.table))
            .sum()
    }

    /// Waiting unexpected messages across all communicators.
    pub fn umq_len(&self) -> usize {
        self.comms.values().map(|c| c.umq.len()).sum()
    }
}

impl Drop for OtmEngine {
    fn drop(&mut self) {
        {
            let mut control = self.shared.control.lock();
            control.stop = true;
            self.shared.start_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Adapter implementing the sequential [`Matcher`] interface on top of the
/// parallel engine by processing one-message blocks.
///
/// Single-message blocks exercise the optimistic search and booking paths
/// (never the conflict paths); the adapter lets the engine participate in
/// the oracle-equivalence harness and the Table I strategy comparison.
pub struct SequentialOtm {
    engine: OtmEngine,
    stats: mpi_matching::MatchStats,
}

impl SequentialOtm {
    /// Wraps a fresh engine with the given configuration.
    pub fn new(config: MatchConfig) -> Result<Self, MatchError> {
        Ok(SequentialOtm {
            engine: OtmEngine::new(config)?,
            stats: mpi_matching::MatchStats::new(),
        })
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &OtmEngine {
        &self.engine
    }
}

impl std::fmt::Debug for SequentialOtm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequentialOtm")
            .field("engine", &self.engine)
            .finish()
    }
}

impl Matcher for SequentialOtm {
    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        let before = self.engine.stats();
        let result = self.engine.post(pattern, handle)?;
        let after = self.engine.stats();
        let depth = (after.umq_depth_sum - before.umq_depth_sum) as usize;
        self.stats
            .record_post(depth, matches!(result, PostResult::Matched(_)));
        self.stats
            .observe_queue_lens(self.engine.prq_len(), self.engine.umq_len());
        Ok(result)
    }

    fn arrive(&mut self, env: Envelope, handle: MsgHandle) -> Result<ArriveResult, MatchError> {
        let before = self.engine.stats();
        let deliveries = self.engine.process_block(&[(env, handle)])?;
        let after = self.engine.stats();
        let depth = (after.search_depth_sum - before.search_depth_sum) as usize;
        let result = match deliveries[0] {
            Delivery::Matched { recv, .. } => ArriveResult::Matched(recv),
            Delivery::Unexpected { .. } => ArriveResult::Unexpected,
        };
        self.stats
            .record_arrival(depth, matches!(result, ArriveResult::Matched(_)));
        self.stats
            .observe_queue_lens(self.engine.prq_len(), self.engine.umq_len());
        Ok(result)
    }

    fn prq_len(&self) -> usize {
        self.engine.prq_len()
    }

    fn umq_len(&self) -> usize {
        self.engine.umq_len()
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.engine.probe(pattern)
    }

    fn stats(&self) -> &mpi_matching::MatchStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = mpi_matching::MatchStats::new();
    }

    fn strategy_name(&self) -> &'static str {
        "optimistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::{Rank, Tag};

    fn engine() -> OtmEngine {
        OtmEngine::new(MatchConfig::small()).unwrap()
    }

    fn env(src: u32, tag: u32) -> Envelope {
        Envelope::world(Rank(src), Tag(tag))
    }

    #[test]
    fn expected_message_matches() {
        let mut e = engine();
        e.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(10))
            .unwrap();
        let d = e.process_block(&[(env(0, 1), MsgHandle(0))]).unwrap();
        assert_eq!(
            d,
            vec![Delivery::Matched {
                msg: MsgHandle(0),
                recv: RecvHandle(10)
            }]
        );
        assert_eq!(e.prq_len(), 0);
    }

    #[test]
    fn unexpected_message_is_stored_then_matched_at_post() {
        let mut e = engine();
        let d = e.process_block(&[(env(2, 3), MsgHandle(5))]).unwrap();
        assert_eq!(d, vec![Delivery::Unexpected { msg: MsgHandle(5) }]);
        assert_eq!(e.umq_len(), 1);
        let r = e
            .post(ReceivePattern::exact(Rank(2), Tag(3)), RecvHandle(0))
            .unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(5)));
        assert_eq!(e.umq_len(), 0);
    }

    #[test]
    fn full_block_matches_distinct_receives_in_parallel() {
        let mut e = engine();
        let n = e.config().block_threads;
        for i in 0..n {
            e.post(
                ReceivePattern::exact(Rank(i as u32), Tag(0)),
                RecvHandle(i as u64),
            )
            .unwrap();
        }
        let msgs: Vec<_> = (0..n)
            .map(|i| (env(i as u32, 0), MsgHandle(i as u64)))
            .collect();
        let d = e.process_block(&msgs).unwrap();
        for (i, del) in d.iter().enumerate() {
            assert_eq!(
                *del,
                Delivery::Matched {
                    msg: MsgHandle(i as u64),
                    recv: RecvHandle(i as u64)
                }
            );
        }
        let snap = e.stats();
        assert_eq!(snap.matched, n as u64);
        assert_eq!(
            snap.slow_path + snap.fast_path,
            0,
            "distinct receives must not conflict"
        );
    }

    #[test]
    fn conflicting_block_preserves_message_order() {
        // All messages match the same sequence of compatible receives: the
        // canonical WC scenario. Deliveries must pair message i with the
        // i-th posted receive.
        let mut e = engine();
        let n = e.config().block_threads;
        for i in 0..n {
            e.post(ReceivePattern::exact(Rank(7), Tag(7)), RecvHandle(i as u64))
                .unwrap();
        }
        let msgs: Vec<_> = (0..n).map(|i| (env(7, 7), MsgHandle(i as u64))).collect();
        let d = e.process_block(&msgs).unwrap();
        for (i, del) in d.iter().enumerate() {
            assert_eq!(
                *del,
                Delivery::Matched {
                    msg: MsgHandle(i as u64),
                    recv: RecvHandle(i as u64)
                },
                "lane {i}"
            );
        }
    }

    #[test]
    fn fast_path_is_taken_for_compatible_sequences() {
        // Conflicts are time-dependent (§III-C): "two threads attempt to
        // book the same receive only if they process messages matching that
        // same receive at the same time". With 32 lanes racing over many
        // rounds, the all-booked-same-receive scenario occurs reliably.
        let mut e =
            OtmEngine::new(MatchConfig::default().with_max_receives(4096).with_bins(64)).unwrap();
        let n = e.config().block_threads;
        let mut next = 0u64;
        for _round in 0..50 {
            for _ in 0..n {
                e.post(ReceivePattern::exact(Rank(1), Tag(1)), RecvHandle(next))
                    .unwrap();
                next += 1;
            }
            let msgs: Vec<_> = (0..n).map(|i| (env(1, 1), MsgHandle(i as u64))).collect();
            let d = e.process_block(&msgs).unwrap();
            let base = next - n as u64;
            for (i, del) in d.iter().enumerate() {
                assert_eq!(del.matched(), Some(RecvHandle(base + i as u64)), "lane {i}");
            }
        }
        assert!(e.stats().fast_path > 0, "stats: {:?}", e.stats());
    }

    #[test]
    fn slow_path_only_when_fast_path_disabled() {
        // As with the fast-path test, conflicts are time-dependent, so run
        // many racing rounds; with the fast path off, every conflict must
        // resolve through the slow path (the WC-SP configuration of Fig. 8).
        let mut e = OtmEngine::new(
            MatchConfig::default()
                .with_max_receives(4096)
                .with_bins(64)
                .with_fast_path(false),
        )
        .unwrap();
        let n = e.config().block_threads;
        let mut next = 0u64;
        for _round in 0..50 {
            for _ in 0..n {
                e.post(ReceivePattern::exact(Rank(1), Tag(1)), RecvHandle(next))
                    .unwrap();
                next += 1;
            }
            let msgs: Vec<_> = (0..n).map(|i| (env(1, 1), MsgHandle(i as u64))).collect();
            let d = e.process_block(&msgs).unwrap();
            let base = next - n as u64;
            for (i, del) in d.iter().enumerate() {
                assert_eq!(del.matched(), Some(RecvHandle(base + i as u64)), "lane {i}");
            }
        }
        let snap = e.stats();
        assert_eq!(snap.fast_path, 0);
        assert!(snap.slow_path > 0, "stats: {snap:?}");
    }

    #[test]
    fn mixed_block_some_unexpected() {
        let mut e = engine();
        e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        let d = e
            .process_block(&[
                (env(0, 0), MsgHandle(0)),
                (env(9, 9), MsgHandle(1)),
                (env(0, 0), MsgHandle(2)),
            ])
            .unwrap();
        assert_eq!(
            d[0],
            Delivery::Matched {
                msg: MsgHandle(0),
                recv: RecvHandle(0)
            }
        );
        assert_eq!(d[1], Delivery::Unexpected { msg: MsgHandle(1) });
        assert_eq!(d[2], Delivery::Unexpected { msg: MsgHandle(2) });
        // Unexpected messages must be retrievable in arrival order.
        let r = e.post(ReceivePattern::any_any(), RecvHandle(1)).unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(1)));
        let r = e.post(ReceivePattern::any_any(), RecvHandle(2)).unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(2)));
    }

    #[test]
    fn wildcard_receives_match_in_post_order_across_blocks() {
        let mut e = engine();
        e.post(ReceivePattern::any_source(Tag(5)), RecvHandle(0))
            .unwrap();
        e.post(ReceivePattern::exact(Rank(1), Tag(5)), RecvHandle(1))
            .unwrap();
        let d = e
            .process_stream(&[(env(1, 5), MsgHandle(0)), (env(1, 5), MsgHandle(1))])
            .unwrap();
        assert_eq!(
            d[0].matched(),
            Some(RecvHandle(0)),
            "C1: wildcard posted first wins"
        );
        assert_eq!(d[1].matched(), Some(RecvHandle(1)));
    }

    #[test]
    fn receive_table_capacity_reports_fallback() {
        let mut e = OtmEngine::new(MatchConfig::small().with_max_receives(2)).unwrap();
        e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        e.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(1))
            .unwrap();
        assert_eq!(
            e.post(ReceivePattern::exact(Rank(0), Tag(2)), RecvHandle(2)),
            Err(MatchError::ReceiveTableFull)
        );
        // Consuming a receive frees capacity.
        e.process_block(&[(env(0, 0), MsgHandle(0))]).unwrap();
        e.post(ReceivePattern::exact(Rank(0), Tag(2)), RecvHandle(2))
            .unwrap();
    }

    #[test]
    fn unexpected_store_capacity_reports_fallback() {
        let mut e = OtmEngine::new(MatchConfig::small().with_max_unexpected(1)).unwrap();
        e.process_block(&[(env(0, 0), MsgHandle(0))]).unwrap();
        // A block that could overflow the store is rejected atomically —
        // BEFORE any message is matched — so the caller can migrate the
        // fully intact state to software matching (§IV-E).
        let err = e.process_block(&[(env(0, 1), MsgHandle(1))]).unwrap_err();
        assert_eq!(err, MatchError::UnexpectedStoreFull);
        // Nothing was lost or half-applied: the first unexpected message is
        // still there, posting still works, and draining hands it over.
        assert_eq!(e.umq_len(), 1);
        let r = e
            .post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(0)));
        // With the store drained the same block now succeeds.
        let d = e.process_block(&[(env(0, 1), MsgHandle(1))]).unwrap();
        assert_eq!(d[0], Delivery::Unexpected { msg: MsgHandle(1) });
    }

    #[test]
    fn rejected_block_preserves_state_for_fallback_drain() {
        let mut e = OtmEngine::new(MatchConfig::small().with_max_unexpected(1)).unwrap();
        e.post(ReceivePattern::exact(Rank(5), Tag(5)), RecvHandle(9))
            .unwrap();
        e.process_block(&[(env(0, 0), MsgHandle(0))]).unwrap();
        // This block contains a MATCHING message and an overflowing one;
        // the atomic pre-check must reject it without consuming the match.
        let err = e
            .process_block(&[(env(5, 5), MsgHandle(1)), (env(0, 1), MsgHandle(2))])
            .unwrap_err();
        assert_eq!(err, MatchError::UnexpectedStoreFull);
        let (receives, unexpected) = e.drain_for_fallback();
        assert_eq!(
            receives,
            vec![(ReceivePattern::exact(Rank(5), Tag(5)), RecvHandle(9))]
        );
        assert_eq!(unexpected.len(), 1);
        assert_eq!(unexpected[0].1, MsgHandle(0));
    }

    #[test]
    fn fast_path_requires_lazy_removal() {
        // Eager removal unlinks consumed entries mid-block, which would
        // shift the fast-path rank walk; such configurations must resolve
        // conflicts through the slow path only.
        let mut e = OtmEngine::new(
            MatchConfig::default()
                .with_max_receives(4096)
                .with_bins(64)
                .with_fast_path(true)
                .with_lazy_removal(false),
        )
        .unwrap();
        let n = e.config().block_threads;
        let mut next = 0u64;
        for _round in 0..30 {
            for _ in 0..n {
                e.post(ReceivePattern::exact(Rank(1), Tag(1)), RecvHandle(next))
                    .unwrap();
                next += 1;
            }
            let msgs: Vec<_> = (0..n).map(|i| (env(1, 1), MsgHandle(i as u64))).collect();
            let d = e.process_block(&msgs).unwrap();
            let base = next - n as u64;
            for (i, del) in d.iter().enumerate() {
                assert_eq!(del.matched(), Some(RecvHandle(base + i as u64)), "lane {i}");
            }
        }
        assert_eq!(e.stats().fast_path, 0, "stats: {:?}", e.stats());
    }

    #[test]
    fn oversized_block_is_rejected() {
        let mut e = engine();
        let n = e.config().block_threads;
        let msgs: Vec<_> = (0..n + 1)
            .map(|i| (env(0, 0), MsgHandle(i as u64)))
            .collect();
        assert!(matches!(
            e.process_block(&msgs),
            Err(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_block_is_a_noop() {
        let mut e = engine();
        assert_eq!(e.process_block(&[]).unwrap(), Vec::new());
        assert_eq!(e.stats().blocks, 0);
    }

    #[test]
    fn communicators_are_isolated() {
        let mut e = engine();
        let other = CommId(3);
        e.post(ReceivePattern::new(Rank(0), Tag(0), other), RecvHandle(0))
            .unwrap();
        // Same (src, tag) on WORLD must not match the comm-3 receive.
        let d = e.process_block(&[(env(0, 0), MsgHandle(0))]).unwrap();
        assert_eq!(d[0], Delivery::Unexpected { msg: MsgHandle(0) });
        let d = e
            .process_block(&[(Envelope::new(Rank(0), Tag(0), other), MsgHandle(1))])
            .unwrap();
        assert_eq!(d[0].matched(), Some(RecvHandle(0)));
    }

    #[test]
    fn sequence_ids_advance_on_incompatible_posts() {
        let mut e = engine();
        // Three compatible posts, then an incompatible one, then compatible
        // again: exercised indirectly through the fast path machinery; here
        // we just assert the engine accepts the pattern stream.
        for i in 0..3 {
            e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(i))
                .unwrap();
        }
        e.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(3))
            .unwrap();
        e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(4))
            .unwrap();
        assert_eq!(e.prq_len(), 5);
    }

    #[test]
    fn sequential_adapter_tracks_stats() {
        let mut m = SequentialOtm::new(MatchConfig::small()).unwrap();
        m.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        let r = m.arrive(env(0, 0), MsgHandle(0)).unwrap();
        assert_eq!(r, ArriveResult::Matched(RecvHandle(0)));
        assert_eq!(m.stats().matched_on_arrival, 1);
        assert_eq!(m.strategy_name(), "optimistic");
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn metrics_snapshot_tracks_engine_activity() {
        let mut e = engine();
        e.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(10))
            .unwrap();
        e.process_block(&[(env(0, 1), MsgHandle(0))]).unwrap();
        let snap = e.metrics_snapshot();
        assert_eq!(snap.hists["otm_search_depth"].count, 1);
        assert_eq!(snap.hists["otm_block_latency_ns"].count, 1);
        assert!(snap.hists["otm_block_latency_ns"].max > 0);
        assert_eq!(snap.counters["otm_resolutions_total{path=\"nc\"}"], 1);
        // A post-time UMQ match lands in the UMQ histogram.
        e.process_block(&[(env(9, 9), MsgHandle(1))]).unwrap();
        e.post(ReceivePattern::exact(Rank(9), Tag(9)), RecvHandle(11))
            .unwrap();
        let snap = e.metrics_snapshot();
        assert_eq!(snap.hists["otm_umq_match_depth"].count, 1);
        // The delta between consecutive snapshots isolates new activity.
        let later = e.metrics_snapshot();
        assert_eq!(later.delta(&snap).hists["otm_search_depth"].count, 0);
    }

    #[cfg(feature = "trace-events")]
    #[test]
    fn trace_events_capture_block_boundaries() {
        let mut e = engine();
        e.process_block(&[(env(1, 1), MsgHandle(0))]).unwrap();
        let events = e.trace_events();
        use otm_metrics::EventKind;
        assert!(events.iter().any(|ev| ev.kind == EventKind::BlockStart));
        assert!(events.iter().any(|ev| ev.kind == EventKind::BlockEnd));
        let json = e.trace_events_json();
        assert!(json.contains("\"kind\":\"block_start\""));
    }

    #[test]
    fn stream_across_many_blocks_drains_receives_in_order() {
        let mut e = engine();
        let total = 3 * e.config().block_threads + 1;
        for i in 0..total {
            e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(i as u64))
                .unwrap();
        }
        let msgs: Vec<_> = (0..total)
            .map(|i| (env(0, 0), MsgHandle(i as u64)))
            .collect();
        let d = e.process_stream(&msgs).unwrap();
        for (i, del) in d.iter().enumerate() {
            assert_eq!(del.matched(), Some(RecvHandle(i as u64)), "message {i}");
        }
        assert_eq!(e.prq_len(), 0);
    }
}
