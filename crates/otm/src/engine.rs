//! The Optimistic Tag Matching engine: public API and coordinator logic.
//!
//! [`OtmEngine`] owns a persistent pool of block workers (the DPA threads of
//! §IV) and the host-facing state: per-communicator descriptor tables, index
//! structures and unexpected-message stores, organized as independent
//! [`shards`](crate::shard) keyed by communicator.
//!
//! Two host-facing paths feed the engine, mirroring §IV-E's QP command
//! handling:
//!
//! * **Direct calls.** [`OtmEngine::post_shared`] posts a receive through
//!   `&self` — it takes only the target communicator's shard lock, so
//!   threads posting into *different* communicators proceed concurrently.
//!   Blocks of incoming messages are matched via
//!   [`OtmEngine::process_block`] (with a chunking
//!   [`OtmEngine::process_stream`]); the block coordinator serializes block
//!   execution behind an internal coordinator lock and locks exactly the
//!   shards the block touches.
//! * **The command queue.** Any thread may [`OtmEngine::submit`] post and
//!   arrival commands into the engine's FIFO [`CommandQueue`]; a drainer
//!   thread calls [`OtmEngine::drain`] to apply them, staging a bounded
//!   window in a packing scheduler that assembles arrivals into parallel
//!   blocks — by default reordering across communicators to keep blocks
//!   full under mixed post/arrival traffic. Because matching outcomes
//!   depend only on per-communicator command order, which the scheduler
//!   strictly preserves, the per-communicator match set is identical to a
//!   fully serialized engine's.
//!
//! The historical `&mut self` methods ([`OtmEngine::post`],
//! [`OtmEngine::process_block`]) remain as thin compatibility wrappers over
//! the sharded `&self` machinery.

use crate::block::{BlockShared, LaneData};
use crate::command::{Command, CommandOutcome, CommandQueue, DrainReport};
use crate::metrics::{span_event, trace_event, EngineMetrics};
use crate::scheduler::{PackingScheduler, PackingStep};
use crate::shard::{CommShard, ShardMap};
use crate::stats::{OtmStats, StatsSnapshot};
use crate::table::{DescId, Payload};
use crate::worker::{pool_size, worker_main, worker_main_inline, WorkerCtx};
use mpi_matching::stats::DepthAggregate;
use mpi_matching::{
    ArriveResult, MatchStats, Matcher, MatchingBackend, MsgHandle, PostResult, RecvHandle,
};
use otm_base::{
    ArrivalSeq, CommHints, CommId, Envelope, InlineHashes, MatchConfig, MatchError, PackingPolicy,
    ReceivePattern,
};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

pub use mpi_matching::backend::{BlockDelivery as Delivery, FallbackState};

/// Coordinator-only state: whatever must be serialized across blocks but
/// not across posts. Guarded by the engine's coordinator lock, which also
/// serializes block execution on the single [`BlockShared`] arena.
struct CoordState {
    /// Arrival sequence of the next incoming message.
    next_arrival: ArrivalSeq,
}

/// The Optimistic Tag Matching engine (see module docs and crate docs).
pub struct OtmEngine {
    config: MatchConfig,
    shared: Arc<BlockShared>,
    stats: Arc<OtmStats>,
    metrics: EngineMetrics,
    shards: ShardMap,
    queue: CommandQueue,
    coord: Mutex<CoordState>,
    /// Serializes whole [`OtmEngine::drain`] calls. Distinct from `coord`
    /// (which serializes individual blocks) so a drain can release the
    /// block arena between chunks — pipelining racing `submit`s and direct
    /// `process_block` calls against queue pops — while concurrent drains
    /// still cannot interleave their pops and break FIFO order.
    drain_gate: Mutex<()>,
    /// Runtime packing-policy override (e.g. from a feedback controller):
    /// 0 = none (use the configured policy), 1 = `Consecutive`,
    /// 2 = `CrossComm`. Read at the top of every drain.
    packing_override: AtomicU8,
    /// Runtime packing-window override in commands (0 = the configured
    /// default of `block_threads × 8`). Read at the top of every drain.
    packing_window_override: AtomicUsize,
    workers: Vec<JoinHandle<()>>,
    stopped: AtomicBool,
}

impl std::fmt::Debug for OtmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OtmEngine")
            .field("config", &self.config)
            .field("comms", &self.shards.len())
            .field("workers", &self.workers.len())
            .field("stopped", &self.stopped.load(Ordering::Relaxed))
            .finish()
    }
}

impl OtmEngine {
    /// Creates an engine and spawns its worker pool.
    ///
    /// A `block_threads == 1` engine spawns no workers at all: its single
    /// lane runs inline on the caller's thread (one DPA execution unit, no
    /// handoff), which keeps the configuration meaningful on small hosts.
    pub fn new(config: MatchConfig) -> Result<Self, MatchError> {
        config.validate()?;
        let shared = Arc::new(BlockShared::new(config.block_threads));
        let stats = Arc::new(OtmStats::default());
        let metrics = EngineMetrics::new();
        let pool = if config.block_threads == 1 {
            0
        } else {
            config.block_threads
        };
        let workers = (0..pool)
            .map(|lane| {
                let ctx = WorkerCtx {
                    shared: Arc::clone(&shared),
                    stats: Arc::clone(&stats),
                    metrics: metrics.clone(),
                    config: config.clone(),
                    lane,
                };
                std::thread::Builder::new()
                    .name(format!("otm-worker-{lane}"))
                    .spawn(move || worker_main(ctx))
                    .expect("spawning an engine worker thread")
            })
            .collect();
        Ok(OtmEngine {
            queue: CommandQueue::new(&config),
            config,
            shared,
            stats,
            metrics,
            shards: ShardMap::new(),
            coord: Mutex::new(CoordState {
                next_arrival: ArrivalSeq::ZERO,
            }),
            drain_gate: Mutex::new(()),
            packing_override: AtomicU8::new(0),
            packing_window_override: AtomicUsize::new(0),
            workers,
            stopped: AtomicBool::new(false),
        })
    }

    /// Overrides the packing policy for subsequent drains (`None` restores
    /// the configured policy). Safe to call at any time: the override is
    /// read once at the top of each drain, and both policies preserve
    /// per-communicator FIFO order, so a mid-stream switch cannot violate
    /// MPI matching order.
    pub fn set_packing_override(&self, policy: Option<PackingPolicy>) {
        let encoded = match policy {
            None => 0,
            Some(PackingPolicy::Consecutive) => 1,
            Some(PackingPolicy::CrossComm) => 2,
        };
        self.packing_override.store(encoded, Ordering::Relaxed);
    }

    /// The active packing-policy override, if one is set.
    pub fn packing_override(&self) -> Option<PackingPolicy> {
        match self.packing_override.load(Ordering::Relaxed) {
            1 => Some(PackingPolicy::Consecutive),
            2 => Some(PackingPolicy::CrossComm),
            _ => None,
        }
    }

    /// The packing policy the next drain will use (override, else config).
    pub fn effective_packing(&self) -> PackingPolicy {
        self.packing_override().unwrap_or(self.config.packing)
    }

    /// Overrides the drain's staging-window depth in commands (0 restores
    /// the configured default of `block_threads × 8`). Values below one
    /// block are rounded up so blocks can still fill.
    pub fn set_packing_window_override(&self, window: usize) {
        self.packing_window_override
            .store(window, Ordering::Relaxed);
    }

    /// The staging-window depth the next drain will use.
    pub fn effective_packing_window(&self) -> usize {
        match self.packing_window_override.load(Ordering::Relaxed) {
            0 => self.configured_packing_window(),
            w => w.max(self.config.block_threads),
        }
    }

    /// The non-overridden staging-window depth (`block_threads × 8`,
    /// floored at 32) — the baseline a controller widens from.
    pub fn configured_packing_window(&self) -> usize {
        self.config.block_threads.saturating_mul(8).max(32)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// A snapshot of the engine's statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The engine's metric instruments (histograms, path counters).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Copies out the engine's metrics registry: search-depth and
    /// block-latency histograms plus resolution-path counters, ready for
    /// Prometheus or JSON exposition.
    #[cfg(feature = "metrics")]
    pub fn metrics_snapshot(&self) -> otm_metrics::RegistrySnapshot {
        self.metrics.snapshot()
    }

    /// Copies out the retained timeline events, oldest first.
    #[cfg(feature = "trace-events")]
    pub fn trace_events(&self) -> Vec<otm_metrics::TraceEvent> {
        self.metrics.trace_ring().dump()
    }

    /// Renders the retained timeline events as a JSON array.
    #[cfg(feature = "trace-events")]
    pub fn trace_events_json(&self) -> String {
        self.metrics.trace_ring().to_json()
    }

    /// Copies out the retained lifecycle span events, oldest first.
    #[cfg(feature = "trace-events")]
    pub fn span_events(&self) -> Vec<otm_metrics::SpanEvent> {
        self.metrics.spans().dump()
    }

    /// The engine's lifecycle span recorder (ring stats, JSONL and Chrome
    /// `trace_event` export, per-path latency histograms).
    #[cfg(feature = "trace-events")]
    pub fn span_recorder(&self) -> &otm_metrics::SpanRecorder {
        self.metrics.spans()
    }

    fn check_running(&self) -> Result<(), MatchError> {
        if self.stopped.load(Ordering::SeqCst) || self.shared.poisoned.load(Ordering::SeqCst) {
            Err(MatchError::EngineStopped)
        } else {
            Ok(())
        }
    }

    /// Declares a communicator with matching hints (§VII): "applications
    /// can provide MPI communicator info objects to influence the
    /// offloading of tag matching for a given communicator" (§IV-E).
    ///
    /// Like the DPA resource allocation, hints are fixed at communicator
    /// creation: calling this after the communicator has been used is an
    /// error.
    pub fn declare_comm(&self, comm: CommId, hints: CommHints) -> Result<(), MatchError> {
        self.check_running()?;
        self.shards.try_declare(comm, &self.config, hints)
    }

    /// The hints a communicator was declared with.
    pub fn comm_hints(&self, comm: CommId) -> Option<CommHints> {
        self.shards.get(comm).map(|s| s.shared.hints)
    }

    /// Posts a receive — the host-to-DPA command path (§IV-E) — through
    /// `&self`: only the target communicator's shard lock is taken, so
    /// concurrent posters into different communicators never contend.
    ///
    /// The unexpected-message store is searched first (§IV-C); on a miss the
    /// receive is labelled, assigned its sequence id, and indexed in the
    /// structure matching its wildcard class (§III-B).
    pub fn post_shared(
        &self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        self.check_running()?;
        let shard = self.shards.get_or_create(pattern.comm, &self.config);
        if !shard.shared.hints.permits(pattern.wildcard_class()) {
            return Err(MatchError::HintViolation(format!(
                "receive {pattern} violates the hints declared for {}",
                pattern.comm
            )));
        }
        let mut host = shard.host.lock();
        if let Some(m) = host.umq.match_post(&pattern) {
            self.stats.matched_on_post.fetch_add(1, Ordering::Relaxed);
            self.stats
                .umq_depth_sum
                .fetch_add(m.depth as u64, Ordering::Relaxed);
            self.stats.umq_search_count.fetch_add(1, Ordering::Relaxed);
            self.metrics.record_umq_match_depth(m.depth as u64);
            self.metrics.count_post_match();
            self.metrics.count_matched();
            // The subject is the *message* consumed from the UMQ: if it
            // arrived through a block earlier, this closes the span those
            // events opened.
            span_event!(
                self.metrics,
                m.handle.0,
                SpanKind::Matched {
                    path: MatchPath::Post
                }
            );
            // The consumed receive is not indexed, so it breaks any ongoing
            // run of compatible receives.
            host.last_pattern = None;
            return Ok(PostResult::Matched(m.handle));
        }
        self.stats.umq_search_count.fetch_add(1, Ordering::Relaxed);
        // Sequence ids (§III-D3a): consecutive compatible posts share one.
        let seq = match &host.last_pattern {
            Some(p) if p.compatible(&pattern) => host.cur_seq,
            _ => {
                host.cur_seq = host.cur_seq.next();
                host.cur_seq
            }
        };
        host.last_pattern = Some(pattern);
        let home = shard.shared.prq.home_of(&pattern);
        let label = host.next_label;
        let desc = shard.shared.table.allocate(Payload {
            pattern,
            label,
            seq,
            handle: handle.0,
            home,
        })?;
        host.next_label = host.next_label.next();
        shard.shared.prq.insert(home, desc);
        self.stats.posted.fetch_add(1, Ordering::Relaxed);
        span_event!(self.metrics, RECV_SUBJECT_BIT | handle.0, SpanKind::Posted);
        Ok(PostResult::Posted)
    }

    /// Posts a receive. Compatibility wrapper over [`OtmEngine::post_shared`].
    pub fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        self.post_shared(pattern, handle)
    }

    /// Enqueues a command into the engine's submission queue (§IV-E's QP
    /// command path). Callable from any thread; the command takes effect at
    /// the next [`OtmEngine::drain`].
    ///
    /// On the default ring submission path a full communicator ring rejects
    /// the command with the retryable
    /// [`MatchError::SubmissionRingFull`] — nothing is enqueued; draining
    /// frees slots, after which the same submit succeeds.
    pub fn submit(&self, cmd: Command) -> Result<(), MatchError> {
        self.check_running()?;
        // The span subject must be captured before `cmd` moves into the
        // queue; the event itself is stamped only once the submit succeeded
        // (a ring-full rejection enqueues nothing, so it opens no span).
        #[cfg(feature = "trace-events")]
        let subject = match &cmd {
            Command::Post { handle, .. } => ::otm_metrics::RECV_SUBJECT_BIT | handle.0,
            Command::Arrival { msg, .. } => msg.0,
        };
        self.queue.submit(cmd, &self.shards, &self.config)?;
        #[cfg(feature = "trace-events")]
        span_event!(self.metrics, subject, SpanKind::Enqueued);
        Ok(())
    }

    /// Number of submitted commands not yet drained.
    pub fn pending_commands(&self) -> usize {
        self.queue.len(&self.shards)
    }

    /// Drains the command queue — the coordinator half of the QP command
    /// path. Commands are staged into a [`PackingScheduler`] window and
    /// carved into steps: single posts, and arrival blocks of up to
    /// `block_threads` messages matched in parallel. Under the default
    /// [`PackingPolicy::CrossComm`](otm_base::PackingPolicy) policy blocks
    /// are assembled *across* communicators (§IV-E execution-group
    /// scheduling): posts at lane heads are hoisted ahead of other
    /// communicators' arrivals and the arrival runs of every lane are fused,
    /// so mixed post/arrival traffic still fills blocks. Per-communicator
    /// command order — the only order MPI matching can observe — is strictly
    /// preserved; [`PackingPolicy::Consecutive`](otm_base::PackingPolicy)
    /// restores the old strict-FIFO packing for A/B comparison.
    ///
    /// The drain is *pipelined* (the paper's CQ pipelining, §IV-E): it pops
    /// commands in bounded chunks and takes the queue and coordinator locks
    /// only briefly per chunk/block, so racing `submit`s and direct
    /// `process_block` calls overlap with block execution instead of
    /// stalling behind the whole drain. Whole drains are still serialized
    /// against each other, and only commands already queued when the drain
    /// started are processed — submissions racing in mid-drain wait for the
    /// next drain, so a busy submitter cannot pin the coordinator forever.
    ///
    /// On an error the drain stops: outcomes of the commands already
    /// applied are returned in the report (in submission order) together
    /// with the error. What happens to the failing command and everything
    /// unapplied behind it depends on the error class (see
    /// [`DrainReport::error`]): *retryable* resource exhaustion requeues
    /// them at the front of the queue in submission order (ahead of racing
    /// submissions) so a retry resumes exactly where this drain stopped;
    /// a *terminal* error (the engine is stopped or poisoned, a command is
    /// invalid) surfaces them in [`DrainReport::unapplied`] instead, so a
    /// retry loop terminates rather than spinning forever on a dead engine.
    pub fn drain(&self) -> DrainReport {
        let _gate = self.drain_gate.lock();
        // Chunk size: a few blocks' worth of commands per pop keeps the
        // queue-lock hold times short without paying the lock once per
        // command. The staging window is a couple of chunks deep — enough
        // lookahead to fuse arrival runs across lanes without hoarding
        // commands that a racing fallback drain would have to wait for.
        let chunk = self.config.block_threads.saturating_mul(4).max(16);
        let window = self.effective_packing_window();
        // Bound the drain to what was queued at entry (racing submissions
        // land behind this count and belong to the next drain).
        let mut remaining = self.queue.len(&self.shards);
        let mut sched = PackingScheduler::new(self.effective_packing(), self.config.block_threads)
            .with_lane_quota(self.config.lane_quota);
        let mut outcomes: Vec<(u64, CommandOutcome)> = Vec::with_capacity(remaining);
        // Lanes whose depth gauge was set by the previous iteration: a lane
        // that empties must decay its current-depth gauge back to 0 (the
        // peak gauge keeps the high-water mark regardless).
        let mut live_lanes: Vec<u16> = Vec::new();
        loop {
            // Refill the window before every step so blocks are assembled
            // from the fullest lanes we are entitled to see.
            while remaining > 0 && sched.staged() < window {
                let take = chunk.min(remaining).min(window - sched.staged());
                let cmds = self.queue.take_chunk(take, &self.shards);
                if cmds.is_empty() {
                    // A concurrent drain_for_fallback emptied the queue.
                    remaining = 0;
                    break;
                }
                remaining -= cmds.len();
                sched.admit(cmds);
            }
            for (comm, depth) in self.queue.lane_occupancy(&self.shards) {
                self.metrics.record_ring_depth(comm, depth as u64);
            }
            let live_now: Vec<u16> = {
                let mut now = Vec::new();
                for (comm, depth) in sched.lane_depths() {
                    self.metrics.record_lane_depth(comm.0, depth as u64);
                    now.push(comm.0);
                }
                now
            };
            for &comm in &live_lanes {
                if !live_now.contains(&comm) {
                    self.metrics.record_lane_depth(comm, 0);
                }
            }
            live_lanes = live_now;
            let Some(step) = sched.next_step() else {
                // The window is drained: every lane gauge decays to 0.
                for &comm in &live_lanes {
                    self.metrics.record_lane_depth(comm, 0);
                }
                break;
            };
            match step {
                PackingStep::Post {
                    idx,
                    pattern,
                    handle,
                } => match self.post_shared(pattern, handle) {
                    Ok(result) => outcomes.push((idx, CommandOutcome::Post { handle, result })),
                    Err(e) => {
                        let failed = vec![(idx, Command::Post { pattern, handle })];
                        return self.fail_drain(e, failed, sched, outcomes);
                    }
                },
                PackingStep::Block { msgs } => {
                    let block: Vec<(Envelope, MsgHandle)> =
                        msgs.iter().map(|&(_, env, msg)| (env, msg)).collect();
                    let result = {
                        let mut coord = self.coord.lock();
                        self.process_block_locked(&mut coord, &block)
                    };
                    match result {
                        Ok(deliveries) => outcomes.extend(
                            msgs.iter()
                                .zip(deliveries)
                                .map(|(&(idx, _, _), d)| (idx, CommandOutcome::Delivery(d))),
                        ),
                        Err(e) => {
                            let failed = msgs
                                .into_iter()
                                .map(|(idx, env, msg)| (idx, Command::Arrival { env, msg }))
                                .collect();
                            return self.fail_drain(e, failed, sched, outcomes);
                        }
                    }
                }
            }
        }
        outcomes.sort_unstable_by_key(|&(idx, _)| idx);
        DrainReport {
            outcomes: outcomes.into_iter().map(|(_, o)| o).collect(),
            error: None,
            unapplied: Vec::new(),
        }
    }

    /// Finishes a drain that stopped on `error`, deciding the fate of the
    /// unapplied commands: the `failed` step plus everything still staged
    /// in the scheduler, restored to submission order (every staged command
    /// is older than anything left in the queue, so putting the sorted set
    /// back at the queue front reconstructs the global order exactly).
    /// Retryable errors requeue them at the queue front; terminal errors
    /// pull *everything* (including commands still queued) out and surface
    /// it in the report, so retry loops terminate and a subsequent fallback
    /// can replay the commands.
    fn fail_drain(
        &self,
        error: MatchError,
        failed: Vec<(u64, Command)>,
        sched: PackingScheduler,
        mut outcomes: Vec<(u64, CommandOutcome)>,
    ) -> DrainReport {
        let mut unprocessed: Vec<(u64, Command)> = failed;
        unprocessed.extend(sched.into_unapplied());
        unprocessed.sort_unstable_by_key(|&(idx, _)| idx);
        outcomes.sort_unstable_by_key(|&(idx, _)| idx);
        let outcomes = outcomes.into_iter().map(|(_, o)| o).collect();
        let unprocessed: VecDeque<(u64, Command)> = unprocessed.into_iter().collect();
        if error.is_retryable() {
            self.queue.requeue_front(unprocessed);
            DrainReport {
                outcomes,
                error: Some(error),
                unapplied: Vec::new(),
            }
        } else {
            let mut unapplied: Vec<Command> = unprocessed.into_iter().map(|(_, cmd)| cmd).collect();
            unapplied.extend(
                self.queue
                    .take_all(&self.shards)
                    .into_iter()
                    .map(|(_, cmd)| cmd),
            );
            DrainReport {
                outcomes,
                error: Some(error),
                unapplied,
            }
        }
    }

    /// Stops the engine: every subsequent post, submit, block, or drain
    /// reports [`MatchError::EngineStopped`]. Commands already in the
    /// submission queue stay there — [`OtmEngine::drain_for_fallback`]
    /// still surfaces them, so shutdown loses nothing.
    pub fn shutdown(&self) {
        self.stopped.store(true, Ordering::SeqCst);
    }

    /// Matches one block of up to `N` incoming messages in parallel.
    ///
    /// Messages are taken in arrival order: lane *i* processes the *i*-th
    /// message, and the block's deliveries are returned in the same order.
    pub fn process_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<Delivery>, MatchError> {
        let mut coord = self.coord.lock();
        self.process_block_locked(&mut coord, msgs)
    }

    /// The block coordinator. Requires the coordinator lock (serializing
    /// block execution on the one [`BlockShared`] arena) and takes the host
    /// locks of exactly the shards the block touches, in [`CommId`] order —
    /// the engine's global lock order. Posters hold at most one shard lock
    /// and never the coordinator lock, so this cannot deadlock; posts into
    /// communicators outside the block proceed concurrently with it.
    fn process_block_locked(
        &self,
        coord: &mut CoordState,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<Delivery>, MatchError> {
        self.check_running()?;
        let n = msgs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if n > self.config.block_threads {
            return Err(MatchError::InvalidConfig(format!(
                "block of {n} messages exceeds the {}-thread pool",
                self.config.block_threads
            )));
        }

        // Resolve every lane's shard so the workers never touch the shard
        // map, then lock the involved shards (sorted, deduplicated): while
        // the block runs, no poster can mutate an involved communicator's
        // tables.
        let lane_shards: Vec<Arc<CommShard>> = msgs
            .iter()
            .map(|(env, _)| self.shards.get_or_create(env.comm, &self.config))
            .collect();
        let mut involved: Vec<(CommId, Arc<CommShard>)> = msgs
            .iter()
            .zip(&lane_shards)
            .map(|((env, _), shard)| (env.comm, Arc::clone(shard)))
            .collect();
        involved.sort_by_key(|(id, _)| *id);
        involved.dedup_by_key(|(id, _)| *id);
        let mut guards: Vec<_> = involved
            .iter()
            .map(|(id, shard)| (*id, shard.host.lock()))
            .collect();

        // Pre-check the unexpected-store capacity: in the worst case every
        // message of the block goes unexpected, and rejecting up front
        // keeps the operation atomic — the caller can fall back to software
        // matching (§IV-E) with the engine's state fully intact (see
        // `drain_for_fallback`).
        let mut per_comm: HashMap<CommId, usize> = HashMap::new();
        for (env, _) in msgs {
            *per_comm.entry(env.comm).or_insert(0) += 1;
        }
        for (comm, count) in per_comm {
            let (_, host) = guards
                .iter()
                .find(|(id, _)| *id == comm)
                .expect("every block communicator is locked");
            if host.umq.available() < count {
                return Err(MatchError::UnexpectedStoreFull);
            }
        }
        let lanes: Vec<LaneData> = msgs
            .iter()
            .zip(&lane_shards)
            .map(|(&(env, handle), shard)| LaneData {
                env,
                handle,
                hashes: InlineHashes::of(&env),
                comm: Arc::clone(&shard.shared),
            })
            .collect();

        // Publish the block and run it: inline on this thread for a
        // single-lane engine, otherwise on the worker pool.
        let block_timer = self.metrics.timer();
        trace_event!(self.metrics, 0u32, BlockStart);
        #[cfg(feature = "trace-events")]
        {
            // Block ids are the engine's running block count: serialized by
            // the coordinator lock we hold, so the sequence is gap-free.
            let block_id = self.stats.blocks.load(Ordering::Relaxed);
            for &(_, handle) in msgs {
                span_event!(
                    self.metrics,
                    handle.0,
                    SpanKind::Packed {
                        block_id,
                        occupancy: n as u32
                    }
                );
            }
        }
        self.shared.reset_for_block();
        *self.shared.lanes.write() = lanes;
        self.shared.epoch.fetch_add(1, Ordering::Release);
        if self.workers.is_empty() {
            let guard = self.shared.lanes.read();
            let ctx = WorkerCtx {
                shared: Arc::clone(&self.shared),
                stats: Arc::clone(&self.stats),
                metrics: self.metrics.clone(),
                config: self.config.clone(),
                lane: 0,
            };
            worker_main_inline(&ctx, &guard[0]);
        } else {
            {
                let mut control = self.shared.control.lock();
                control.epoch += 1;
                control.done = 0;
                self.shared.start_cv.notify_all();
            }
            // Wait for the whole pool to drain the block.
            let mut control = self.shared.control.lock();
            while control.done < pool_size(n, self.config.block_threads) {
                self.shared.done_cv.wait(&mut control);
            }
        }

        if self.shared.poisoned.load(Ordering::SeqCst) {
            self.stopped.store(true, Ordering::SeqCst);
            return Err(MatchError::EngineStopped);
        }

        self.metrics.observe_block(block_timer);
        self.metrics.record_block_occupancy(n as u64);
        trace_event!(self.metrics, 0u32, BlockEnd);
        self.stats.blocks.fetch_add(1, Ordering::Relaxed);
        self.stats.messages.fetch_add(n as u64, Ordering::Relaxed);

        // Block-end cleanup, phase 1: clear the booking bitmaps so they are
        // monotone only within a block.
        for (booked, shard) in self.shared.booked_desc.iter().zip(&lane_shards) {
            let desc = booked.load(Ordering::Acquire);
            if desc != u32::MAX {
                shard.shared.table.slot(desc).clear_booking();
            }
        }

        // Phase 2: collect results, unlink and free consumed descriptors,
        // store unexpected messages (in lane = arrival order).
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        let base_arrival = coord.next_arrival;
        let mut deliveries = Vec::with_capacity(n);
        for (lane, &(env, handle)) in msgs.iter().enumerate() {
            let code = self.shared.results[lane].load(Ordering::Acquire);
            debug_assert_ne!(
                code,
                crate::block::result_code::UNSET,
                "lane {lane} never settled"
            );
            if code == crate::block::result_code::UNEXPECTED {
                self.stats.unexpected.fetch_add(1, Ordering::Relaxed);
                let (_, host) = guards
                    .iter_mut()
                    .find(|(id, _)| *id == env.comm)
                    .expect("every block communicator is locked");
                host.umq
                    .insert(env, handle, ArrivalSeq(base_arrival.0 + lane as u64))
                    .expect("capacity pre-checked before the block ran");
                deliveries.push(Delivery::Unexpected { msg: handle });
            } else {
                let desc = code as DescId;
                let comm = &lane_shards[lane].shared;
                debug_assert_eq!(comm.table.slot(desc).state(), crate::table::state::CONSUMED);
                debug_assert_eq!(comm.table.slot(desc).consumed_epoch(), epoch);
                let payload = comm.table.slot(desc).payload();
                if self.config.lazy_removal {
                    // The coordinator is the lock winner of §IV-D's lazy
                    // scheme: sweep the tombstone out of its chain now that
                    // no block is in flight.
                    comm.prq.unlink(payload.home, desc);
                }
                comm.table.release(desc);
                self.stats.matched.fetch_add(1, Ordering::Relaxed);
                deliveries.push(Delivery::Matched {
                    msg: handle,
                    recv: RecvHandle(payload.handle),
                });
            }
        }
        coord.next_arrival = ArrivalSeq(coord.next_arrival.0 + n as u64);
        Ok(deliveries)
    }

    /// Matches an arbitrarily long message stream, chunked into blocks of
    /// the configured size.
    pub fn process_stream(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<Delivery>, MatchError> {
        let mut out = Vec::with_capacity(msgs.len());
        for chunk in msgs.chunks(self.config.block_threads) {
            out.extend(self.process_block(chunk)?);
        }
        Ok(out)
    }

    /// Non-destructive unexpected-message probe (`MPI_Iprobe` semantics):
    /// the oldest waiting message matching `pattern`, if any.
    pub fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.shards
            .get(pattern.comm)
            .and_then(|shard| shard.host.lock().umq.probe(pattern))
    }

    /// Drains the complete matching state for migration to software tag
    /// matching — the fallback the paper mandates when device resources run
    /// out (§III-B, §IV-E). Consumes the engine (the device resources are
    /// being given up).
    ///
    /// Returns the pending receives, the waiting unexpected messages, *and*
    /// every command still sitting in the submission queue. Receives are
    /// ordered per communicator by post label (C1 only constrains order
    /// *within* a communicator, so replaying communicator-by-communicator
    /// into a software matcher preserves MPI semantics); unexpected
    /// messages are in arrival order per communicator; pending commands are
    /// in global submission order (including any batch a failed retryable
    /// drain put back at the queue front). Nothing the engine ever accepted
    /// is dropped — the fallback is loss-free even with a non-empty queue.
    pub fn drain_for_fallback(self) -> FallbackState {
        // Take the queue first: it holds the youngest accepted work, and
        // consuming `self` guarantees no submitter can race in behind us.
        let pending: Vec<Command> = self
            .queue
            .take_all(&self.shards)
            .into_iter()
            .map(|(_, cmd)| cmd)
            .collect();
        let mut receives = Vec::new();
        let mut unexpected = Vec::new();
        for (_, shard) in self.shards.all_sorted() {
            let mut posted = shard.shared.table.posted_snapshot();
            posted.sort_by_key(|p| p.label);
            receives.extend(
                posted
                    .into_iter()
                    .map(|p| (p.pattern, RecvHandle(p.handle))),
            );
            unexpected.extend(shard.host.lock().umq.drain());
        }
        FallbackState {
            receives,
            unexpected,
            pending,
        }
    }

    /// Live posted receives across all communicators.
    pub fn prq_len(&self) -> usize {
        self.shards
            .all_sorted()
            .iter()
            .map(|(_, s)| s.shared.prq.live_count(&s.shared.table))
            .sum()
    }

    /// Waiting unexpected messages across all communicators.
    pub fn umq_len(&self) -> usize {
        self.shards
            .all_sorted()
            .iter()
            .map(|(_, s)| s.host.lock().umq.len())
            .sum()
    }
}

impl Drop for OtmEngine {
    fn drop(&mut self) {
        {
            let mut control = self.shared.control.lock();
            control.stop = true;
            self.shared.start_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl MatchingBackend for OtmEngine {
    fn backend_name(&self) -> &'static str {
        "Optimistic-DPA"
    }

    fn block_size(&self) -> usize {
        self.config.block_threads
    }

    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        self.post_shared(pattern, handle)
    }

    fn arrive_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<Delivery>, MatchError> {
        self.process_stream(msgs)
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        OtmEngine::probe(self, pattern)
    }

    fn prq_len(&self) -> usize {
        OtmEngine::prq_len(self)
    }

    fn umq_len(&self) -> usize {
        OtmEngine::umq_len(self)
    }

    /// Translates the engine's device-side counters into host
    /// [`MatchStats`]: block search depths land in `prq_search`, post-time
    /// UMQ search depths in `umq_search`. Queue high-water marks are not
    /// tracked device-side and merge as zero.
    fn merge_stats(&self, into: &mut MatchStats) {
        let s = self.stats.snapshot();
        into.merge(&MatchStats {
            prq_search: DepthAggregate {
                count: s.search_count,
                sum: s.search_depth_sum,
                max: s.search_depth_max,
            },
            umq_search: DepthAggregate {
                count: s.umq_search_count,
                sum: s.umq_depth_sum,
                max: 0,
            },
            matched_on_arrival: s.matched,
            unexpected: s.unexpected,
            matched_on_post: s.matched_on_post,
            posted: s.posted,
            prq_high_water: 0,
            umq_high_water: 0,
        });
    }

    fn wants_offload_fallback(&self) -> bool {
        true
    }

    fn supports_command_queue(&self) -> bool {
        true
    }

    fn submit_command(&mut self, cmd: Command) -> Result<(), MatchError> {
        OtmEngine::submit(self, cmd)
    }

    fn drain_commands(&mut self) -> DrainReport {
        OtmEngine::drain(self)
    }

    fn pending_commands(&self) -> usize {
        OtmEngine::pending_commands(self)
    }

    fn drain_for_fallback(self: Box<Self>) -> Result<FallbackState, MatchError> {
        Ok((*self).drain_for_fallback())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Adapter implementing the sequential [`Matcher`] interface on top of the
/// parallel engine by processing one-message blocks.
///
/// Single-message blocks exercise the optimistic search and booking paths
/// (never the conflict paths); the adapter lets the engine participate in
/// the oracle-equivalence harness and the Table I strategy comparison.
pub struct SequentialOtm {
    engine: OtmEngine,
    stats: MatchStats,
}

impl SequentialOtm {
    /// Wraps a fresh engine with the given configuration.
    pub fn new(config: MatchConfig) -> Result<Self, MatchError> {
        Ok(SequentialOtm {
            engine: OtmEngine::new(config)?,
            stats: MatchStats::new(),
        })
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &OtmEngine {
        &self.engine
    }
}

impl std::fmt::Debug for SequentialOtm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequentialOtm")
            .field("engine", &self.engine)
            .finish()
    }
}

impl Matcher for SequentialOtm {
    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        let before = self.engine.stats();
        let result = self.engine.post(pattern, handle)?;
        let after = self.engine.stats();
        let depth = (after.umq_depth_sum - before.umq_depth_sum) as usize;
        self.stats
            .record_post(depth, matches!(result, PostResult::Matched(_)));
        self.stats
            .observe_queue_lens(self.engine.prq_len(), self.engine.umq_len());
        Ok(result)
    }

    fn arrive(&mut self, env: Envelope, handle: MsgHandle) -> Result<ArriveResult, MatchError> {
        let before = self.engine.stats();
        let deliveries = self.engine.process_block(&[(env, handle)])?;
        let after = self.engine.stats();
        let depth = (after.search_depth_sum - before.search_depth_sum) as usize;
        let result = match deliveries[0] {
            Delivery::Matched { recv, .. } => ArriveResult::Matched(recv),
            Delivery::Unexpected { .. } => ArriveResult::Unexpected,
        };
        self.stats
            .record_arrival(depth, matches!(result, ArriveResult::Matched(_)));
        self.stats
            .observe_queue_lens(self.engine.prq_len(), self.engine.umq_len());
        Ok(result)
    }

    fn prq_len(&self) -> usize {
        self.engine.prq_len()
    }

    fn umq_len(&self) -> usize {
        self.engine.umq_len()
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.engine.probe(pattern)
    }

    fn stats(&self) -> &MatchStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::new();
    }

    fn strategy_name(&self) -> &'static str {
        "optimistic"
    }
}

impl MatchingBackend for SequentialOtm {
    fn backend_name(&self) -> &'static str {
        "Optimistic-Seq"
    }

    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        Matcher::post(self, pattern, handle)
    }

    fn arrive_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<Delivery>, MatchError> {
        msgs.iter()
            .map(|&(env, msg)| {
                Ok(match Matcher::arrive(self, env, msg)? {
                    ArriveResult::Matched(recv) => Delivery::Matched { msg, recv },
                    ArriveResult::Unexpected => Delivery::Unexpected { msg },
                })
            })
            .collect()
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        Matcher::probe(self, pattern)
    }

    fn prq_len(&self) -> usize {
        Matcher::prq_len(self)
    }

    fn umq_len(&self) -> usize {
        Matcher::umq_len(self)
    }

    /// The adapter tracks exact per-operation [`MatchStats`] (unlike the
    /// parallel engine's translated counters), merged verbatim.
    fn merge_stats(&self, into: &mut MatchStats) {
        into.merge(&self.stats);
    }

    fn wants_offload_fallback(&self) -> bool {
        true
    }

    fn drain_for_fallback(self: Box<Self>) -> Result<FallbackState, MatchError> {
        Ok(self.engine.drain_for_fallback())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::{Rank, Tag};

    fn engine() -> OtmEngine {
        OtmEngine::new(MatchConfig::small()).unwrap()
    }

    fn env(src: u32, tag: u32) -> Envelope {
        Envelope::world(Rank(src), Tag(tag))
    }

    #[test]
    fn expected_message_matches() {
        let mut e = engine();
        e.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(10))
            .unwrap();
        let d = e.process_block(&[(env(0, 1), MsgHandle(0))]).unwrap();
        assert_eq!(
            d,
            vec![Delivery::Matched {
                msg: MsgHandle(0),
                recv: RecvHandle(10)
            }]
        );
        assert_eq!(e.prq_len(), 0);
    }

    #[test]
    fn unexpected_message_is_stored_then_matched_at_post() {
        let mut e = engine();
        let d = e.process_block(&[(env(2, 3), MsgHandle(5))]).unwrap();
        assert_eq!(d, vec![Delivery::Unexpected { msg: MsgHandle(5) }]);
        assert_eq!(e.umq_len(), 1);
        let r = e
            .post(ReceivePattern::exact(Rank(2), Tag(3)), RecvHandle(0))
            .unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(5)));
        assert_eq!(e.umq_len(), 0);
    }

    #[test]
    fn full_block_matches_distinct_receives_in_parallel() {
        let mut e = engine();
        let n = e.config().block_threads;
        for i in 0..n {
            e.post(
                ReceivePattern::exact(Rank(i as u32), Tag(0)),
                RecvHandle(i as u64),
            )
            .unwrap();
        }
        let msgs: Vec<_> = (0..n)
            .map(|i| (env(i as u32, 0), MsgHandle(i as u64)))
            .collect();
        let d = e.process_block(&msgs).unwrap();
        for (i, del) in d.iter().enumerate() {
            assert_eq!(
                *del,
                Delivery::Matched {
                    msg: MsgHandle(i as u64),
                    recv: RecvHandle(i as u64)
                }
            );
        }
        let snap = e.stats();
        assert_eq!(snap.matched, n as u64);
        assert_eq!(
            snap.slow_path + snap.fast_path,
            0,
            "distinct receives must not conflict"
        );
    }

    #[test]
    fn conflicting_block_preserves_message_order() {
        // All messages match the same sequence of compatible receives: the
        // canonical WC scenario. Deliveries must pair message i with the
        // i-th posted receive.
        let mut e = engine();
        let n = e.config().block_threads;
        for i in 0..n {
            e.post(ReceivePattern::exact(Rank(7), Tag(7)), RecvHandle(i as u64))
                .unwrap();
        }
        let msgs: Vec<_> = (0..n).map(|i| (env(7, 7), MsgHandle(i as u64))).collect();
        let d = e.process_block(&msgs).unwrap();
        for (i, del) in d.iter().enumerate() {
            assert_eq!(
                *del,
                Delivery::Matched {
                    msg: MsgHandle(i as u64),
                    recv: RecvHandle(i as u64)
                },
                "lane {i}"
            );
        }
    }

    #[test]
    fn fast_path_is_taken_for_compatible_sequences() {
        // Conflicts are time-dependent (§III-C): "two threads attempt to
        // book the same receive only if they process messages matching that
        // same receive at the same time". With 32 lanes racing over many
        // rounds, the all-booked-same-receive scenario occurs reliably.
        let mut e =
            OtmEngine::new(MatchConfig::default().with_max_receives(4096).with_bins(64)).unwrap();
        let n = e.config().block_threads;
        let mut next = 0u64;
        for _round in 0..50 {
            for _ in 0..n {
                e.post(ReceivePattern::exact(Rank(1), Tag(1)), RecvHandle(next))
                    .unwrap();
                next += 1;
            }
            let msgs: Vec<_> = (0..n).map(|i| (env(1, 1), MsgHandle(i as u64))).collect();
            let d = e.process_block(&msgs).unwrap();
            let base = next - n as u64;
            for (i, del) in d.iter().enumerate() {
                assert_eq!(del.matched(), Some(RecvHandle(base + i as u64)), "lane {i}");
            }
        }
        assert!(e.stats().fast_path > 0, "stats: {:?}", e.stats());
    }

    #[test]
    fn slow_path_only_when_fast_path_disabled() {
        // As with the fast-path test, conflicts are time-dependent, so run
        // many racing rounds; with the fast path off, every conflict must
        // resolve through the slow path (the WC-SP configuration of Fig. 8).
        let mut e = OtmEngine::new(
            MatchConfig::default()
                .with_max_receives(4096)
                .with_bins(64)
                .with_fast_path(false),
        )
        .unwrap();
        let n = e.config().block_threads;
        let mut next = 0u64;
        for _round in 0..50 {
            for _ in 0..n {
                e.post(ReceivePattern::exact(Rank(1), Tag(1)), RecvHandle(next))
                    .unwrap();
                next += 1;
            }
            let msgs: Vec<_> = (0..n).map(|i| (env(1, 1), MsgHandle(i as u64))).collect();
            let d = e.process_block(&msgs).unwrap();
            let base = next - n as u64;
            for (i, del) in d.iter().enumerate() {
                assert_eq!(del.matched(), Some(RecvHandle(base + i as u64)), "lane {i}");
            }
        }
        let snap = e.stats();
        assert_eq!(snap.fast_path, 0);
        assert!(snap.slow_path > 0, "stats: {snap:?}");
    }

    #[test]
    fn mixed_block_some_unexpected() {
        let mut e = engine();
        e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        let d = e
            .process_block(&[
                (env(0, 0), MsgHandle(0)),
                (env(9, 9), MsgHandle(1)),
                (env(0, 0), MsgHandle(2)),
            ])
            .unwrap();
        assert_eq!(
            d[0],
            Delivery::Matched {
                msg: MsgHandle(0),
                recv: RecvHandle(0)
            }
        );
        assert_eq!(d[1], Delivery::Unexpected { msg: MsgHandle(1) });
        assert_eq!(d[2], Delivery::Unexpected { msg: MsgHandle(2) });
        // Unexpected messages must be retrievable in arrival order.
        let r = e.post(ReceivePattern::any_any(), RecvHandle(1)).unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(1)));
        let r = e.post(ReceivePattern::any_any(), RecvHandle(2)).unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(2)));
    }

    #[test]
    fn wildcard_receives_match_in_post_order_across_blocks() {
        let mut e = engine();
        e.post(ReceivePattern::any_source(Tag(5)), RecvHandle(0))
            .unwrap();
        e.post(ReceivePattern::exact(Rank(1), Tag(5)), RecvHandle(1))
            .unwrap();
        let d = e
            .process_stream(&[(env(1, 5), MsgHandle(0)), (env(1, 5), MsgHandle(1))])
            .unwrap();
        assert_eq!(
            d[0].matched(),
            Some(RecvHandle(0)),
            "C1: wildcard posted first wins"
        );
        assert_eq!(d[1].matched(), Some(RecvHandle(1)));
    }

    #[test]
    fn receive_table_capacity_reports_fallback() {
        let mut e = OtmEngine::new(MatchConfig::small().with_max_receives(2)).unwrap();
        e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        e.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(1))
            .unwrap();
        assert_eq!(
            e.post(ReceivePattern::exact(Rank(0), Tag(2)), RecvHandle(2)),
            Err(MatchError::ReceiveTableFull)
        );
        // Consuming a receive frees capacity.
        e.process_block(&[(env(0, 0), MsgHandle(0))]).unwrap();
        e.post(ReceivePattern::exact(Rank(0), Tag(2)), RecvHandle(2))
            .unwrap();
    }

    #[test]
    fn unexpected_store_capacity_reports_fallback() {
        let mut e = OtmEngine::new(MatchConfig::small().with_max_unexpected(1)).unwrap();
        e.process_block(&[(env(0, 0), MsgHandle(0))]).unwrap();
        // A block that could overflow the store is rejected atomically —
        // BEFORE any message is matched — so the caller can migrate the
        // fully intact state to software matching (§IV-E).
        let err = e.process_block(&[(env(0, 1), MsgHandle(1))]).unwrap_err();
        assert_eq!(err, MatchError::UnexpectedStoreFull);
        // Nothing was lost or half-applied: the first unexpected message is
        // still there, posting still works, and draining hands it over.
        assert_eq!(e.umq_len(), 1);
        let r = e
            .post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(0)));
        // With the store drained the same block now succeeds.
        let d = e.process_block(&[(env(0, 1), MsgHandle(1))]).unwrap();
        assert_eq!(d[0], Delivery::Unexpected { msg: MsgHandle(1) });
    }

    #[test]
    fn rejected_block_preserves_state_for_fallback_drain() {
        let mut e = OtmEngine::new(MatchConfig::small().with_max_unexpected(1)).unwrap();
        e.post(ReceivePattern::exact(Rank(5), Tag(5)), RecvHandle(9))
            .unwrap();
        e.process_block(&[(env(0, 0), MsgHandle(0))]).unwrap();
        // This block contains a MATCHING message and an overflowing one;
        // the atomic pre-check must reject it without consuming the match.
        let err = e
            .process_block(&[(env(5, 5), MsgHandle(1)), (env(0, 1), MsgHandle(2))])
            .unwrap_err();
        assert_eq!(err, MatchError::UnexpectedStoreFull);
        let state = e.drain_for_fallback();
        assert_eq!(
            state.receives,
            vec![(ReceivePattern::exact(Rank(5), Tag(5)), RecvHandle(9))]
        );
        assert_eq!(state.unexpected.len(), 1);
        assert_eq!(state.unexpected[0].1, MsgHandle(0));
        assert!(state.pending.is_empty());
    }

    #[test]
    fn fast_path_requires_lazy_removal() {
        // Eager removal unlinks consumed entries mid-block, which would
        // shift the fast-path rank walk; such configurations must resolve
        // conflicts through the slow path only.
        let mut e = OtmEngine::new(
            MatchConfig::default()
                .with_max_receives(4096)
                .with_bins(64)
                .with_fast_path(true)
                .with_lazy_removal(false),
        )
        .unwrap();
        let n = e.config().block_threads;
        let mut next = 0u64;
        for _round in 0..30 {
            for _ in 0..n {
                e.post(ReceivePattern::exact(Rank(1), Tag(1)), RecvHandle(next))
                    .unwrap();
                next += 1;
            }
            let msgs: Vec<_> = (0..n).map(|i| (env(1, 1), MsgHandle(i as u64))).collect();
            let d = e.process_block(&msgs).unwrap();
            let base = next - n as u64;
            for (i, del) in d.iter().enumerate() {
                assert_eq!(del.matched(), Some(RecvHandle(base + i as u64)), "lane {i}");
            }
        }
        assert_eq!(e.stats().fast_path, 0, "stats: {:?}", e.stats());
    }

    #[test]
    fn oversized_block_is_rejected() {
        let mut e = engine();
        let n = e.config().block_threads;
        let msgs: Vec<_> = (0..n + 1)
            .map(|i| (env(0, 0), MsgHandle(i as u64)))
            .collect();
        assert!(matches!(
            e.process_block(&msgs),
            Err(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_block_is_a_noop() {
        let mut e = engine();
        assert_eq!(e.process_block(&[]).unwrap(), Vec::new());
        assert_eq!(e.stats().blocks, 0);
    }

    #[test]
    fn communicators_are_isolated() {
        let mut e = engine();
        let other = CommId(3);
        e.post(ReceivePattern::new(Rank(0), Tag(0), other), RecvHandle(0))
            .unwrap();
        // Same (src, tag) on WORLD must not match the comm-3 receive.
        let d = e.process_block(&[(env(0, 0), MsgHandle(0))]).unwrap();
        assert_eq!(d[0], Delivery::Unexpected { msg: MsgHandle(0) });
        let d = e
            .process_block(&[(Envelope::new(Rank(0), Tag(0), other), MsgHandle(1))])
            .unwrap();
        assert_eq!(d[0].matched(), Some(RecvHandle(0)));
    }

    #[test]
    fn sequence_ids_advance_on_incompatible_posts() {
        let mut e = engine();
        // Three compatible posts, then an incompatible one, then compatible
        // again: exercised indirectly through the fast path machinery; here
        // we just assert the engine accepts the pattern stream.
        for i in 0..3 {
            e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(i))
                .unwrap();
        }
        e.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(3))
            .unwrap();
        e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(4))
            .unwrap();
        assert_eq!(e.prq_len(), 5);
    }

    #[test]
    fn sequential_adapter_tracks_stats() {
        let mut m = SequentialOtm::new(MatchConfig::small()).unwrap();
        Matcher::post(
            &mut m,
            ReceivePattern::exact(Rank(0), Tag(0)),
            RecvHandle(0),
        )
        .unwrap();
        let r = m.arrive(env(0, 0), MsgHandle(0)).unwrap();
        assert_eq!(r, ArriveResult::Matched(RecvHandle(0)));
        assert_eq!(m.stats().matched_on_arrival, 1);
        assert_eq!(m.strategy_name(), "optimistic");
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn metrics_snapshot_tracks_engine_activity() {
        let mut e = engine();
        e.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(10))
            .unwrap();
        e.process_block(&[(env(0, 1), MsgHandle(0))]).unwrap();
        let snap = e.metrics_snapshot();
        assert_eq!(snap.hists["otm_search_depth"].count, 1);
        assert_eq!(snap.hists["otm_block_latency_ns"].count, 1);
        assert!(snap.hists["otm_block_latency_ns"].max > 0);
        assert_eq!(snap.counters["otm_resolutions_total{path=\"nc\"}"], 1);
        // A post-time UMQ match lands in the UMQ histogram.
        e.process_block(&[(env(9, 9), MsgHandle(1))]).unwrap();
        e.post(ReceivePattern::exact(Rank(9), Tag(9)), RecvHandle(11))
            .unwrap();
        let snap = e.metrics_snapshot();
        assert_eq!(snap.hists["otm_umq_match_depth"].count, 1);
        // The delta between consecutive snapshots isolates new activity.
        let later = e.metrics_snapshot();
        assert_eq!(later.delta(&snap).hists["otm_search_depth"].count, 0);
    }

    #[cfg(feature = "trace-events")]
    #[test]
    fn span_lifecycle_covers_enqueued_packed_matched() {
        use otm_metrics::{MatchPath, SpanKind, RECV_SUBJECT_BIT};
        let e = engine();
        e.submit(Command::Post {
            pattern: ReceivePattern::exact(Rank(0), Tag(1)),
            handle: RecvHandle(3),
        })
        .unwrap();
        e.submit(Command::Arrival {
            env: env(0, 1),
            msg: MsgHandle(3),
        })
        .unwrap();
        let report = e.drain();
        assert!(report.error.is_none());
        let spans = e.span_events();
        // The receive (namespaced subject) was enqueued then posted; the
        // message — sharing the raw id 3, distinguishable only through the
        // namespace bit — was enqueued, packed into a 1-message block, and
        // matched without conflict.
        let recv = RECV_SUBJECT_BIT | 3;
        let kinds_of = |subject: u64| -> Vec<SpanKind> {
            spans
                .iter()
                .filter(|s| s.subject == subject)
                .map(|s| s.kind)
                .collect()
        };
        assert_eq!(kinds_of(recv), vec![SpanKind::Enqueued, SpanKind::Posted]);
        assert_eq!(
            kinds_of(3),
            vec![
                SpanKind::Enqueued,
                SpanKind::Packed {
                    block_id: 0,
                    occupancy: 1
                },
                SpanKind::Matched {
                    path: MatchPath::Nc
                }
            ]
        );
        // A later post consuming the UMQ closes the unexpected message's
        // span with a post-path match.
        e.submit(Command::Arrival {
            env: env(9, 9),
            msg: MsgHandle(50),
        })
        .unwrap();
        e.drain();
        let r = e
            .post_shared(ReceivePattern::exact(Rank(9), Tag(9)), RecvHandle(8))
            .unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(50)));
        let spans = e.span_events();
        assert!(spans.iter().any(|s| s.subject == 50
            && s.kind
                == SpanKind::Matched {
                    path: MatchPath::Post
                }));
        // Flight-recorder invariants: nothing dropped, matched spans agree
        // with the matched counter, and the path counters sum to it.
        assert_eq!(e.span_recorder().dropped(), 0);
        let matched_spans = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Matched { .. }))
            .count() as u64;
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counters["otm_matched_total"], matched_spans);
        let path_sum: u64 = otm_metrics::MATCH_PATHS
            .iter()
            .map(|p| {
                let key = format!("otm_resolutions_total{{path=\"{}\"}}", p.label());
                snap.counters.get(&key).copied().unwrap_or(0)
            })
            .sum();
        assert_eq!(path_sum, snap.counters["otm_matched_total"]);
    }

    #[cfg(feature = "trace-events")]
    #[test]
    fn trace_events_capture_block_boundaries() {
        let mut e = engine();
        e.process_block(&[(env(1, 1), MsgHandle(0))]).unwrap();
        let events = e.trace_events();
        use otm_metrics::EventKind;
        assert!(events.iter().any(|ev| ev.kind == EventKind::BlockStart));
        assert!(events.iter().any(|ev| ev.kind == EventKind::BlockEnd));
        let json = e.trace_events_json();
        assert!(json.contains("\"kind\":\"block_start\""));
    }

    #[test]
    fn stream_across_many_blocks_drains_receives_in_order() {
        let mut e = engine();
        let total = 3 * e.config().block_threads + 1;
        for i in 0..total {
            e.post(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(i as u64))
                .unwrap();
        }
        let msgs: Vec<_> = (0..total)
            .map(|i| (env(0, 0), MsgHandle(i as u64)))
            .collect();
        let d = e.process_stream(&msgs).unwrap();
        for (i, del) in d.iter().enumerate() {
            assert_eq!(del.matched(), Some(RecvHandle(i as u64)), "message {i}");
        }
        assert_eq!(e.prq_len(), 0);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        // The `&self` command path only helps if the engine can actually be
        // shared; this is a compile-time property, checked here explicitly
        // since `forbid(unsafe_code)` means it must hold by construction.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OtmEngine>();
    }

    #[test]
    fn submitted_commands_apply_in_order_on_drain() {
        let e = engine();
        e.submit(Command::Post {
            pattern: ReceivePattern::exact(Rank(0), Tag(1)),
            handle: RecvHandle(0),
        })
        .unwrap();
        e.submit(Command::Arrival {
            env: env(0, 1),
            msg: MsgHandle(0),
        })
        .unwrap();
        e.submit(Command::Arrival {
            env: env(4, 4),
            msg: MsgHandle(1),
        })
        .unwrap();
        assert_eq!(e.pending_commands(), 3);
        let report = e.drain();
        assert!(report.error.is_none());
        assert_eq!(
            report.outcomes,
            vec![
                CommandOutcome::Post {
                    handle: RecvHandle(0),
                    result: PostResult::Posted
                },
                CommandOutcome::Delivery(Delivery::Matched {
                    msg: MsgHandle(0),
                    recv: RecvHandle(0)
                }),
                CommandOutcome::Delivery(Delivery::Unexpected { msg: MsgHandle(1) }),
            ]
        );
        assert_eq!(e.pending_commands(), 0);
        assert_eq!(e.umq_len(), 1);
    }

    #[test]
    fn drain_batches_consecutive_arrivals_into_blocks() {
        let e = engine();
        let n = e.config().block_threads;
        // 2n+1 arrivals with no posts in between: the drain must pack them
        // into full blocks (2 full + 1 remainder).
        for i in 0..(2 * n + 1) {
            e.submit(Command::Arrival {
                env: env(0, 0),
                msg: MsgHandle(i as u64),
            })
            .unwrap();
        }
        let report = e.drain();
        assert!(report.error.is_none());
        assert_eq!(report.outcomes.len(), 2 * n + 1);
        assert_eq!(e.stats().blocks, 3);
        assert_eq!(e.umq_len(), 2 * n + 1);
    }

    #[test]
    fn failed_drain_requeues_the_unprocessed_tail() {
        let e = OtmEngine::new(MatchConfig::small().with_max_unexpected(1)).unwrap();
        // Arrival / post / arrival / post: the posts force one-message
        // batches. The first arrival fills the store, so the second cannot
        // be stored; it and the post behind it must stay queued.
        e.submit(Command::Arrival {
            env: env(0, 0),
            msg: MsgHandle(0),
        })
        .unwrap();
        e.submit(Command::Post {
            pattern: ReceivePattern::exact(Rank(8), Tag(8)),
            handle: RecvHandle(0),
        })
        .unwrap();
        e.submit(Command::Arrival {
            env: env(0, 1),
            msg: MsgHandle(1),
        })
        .unwrap();
        e.submit(Command::Post {
            pattern: ReceivePattern::exact(Rank(9), Tag(9)),
            handle: RecvHandle(1),
        })
        .unwrap();
        let report = e.drain();
        assert_eq!(report.error, Some(MatchError::UnexpectedStoreFull));
        // The first arrival and the first post were applied; the failed
        // arrival and the trailing post are back in submission order.
        assert_eq!(
            report.outcomes,
            vec![
                CommandOutcome::Delivery(Delivery::Unexpected { msg: MsgHandle(0) }),
                CommandOutcome::Post {
                    handle: RecvHandle(0),
                    result: PostResult::Posted
                },
            ]
        );
        assert_eq!(e.pending_commands(), 2);
        // Remedy the error — consume the stored message to free capacity —
        // then the retry resumes exactly where the drain stopped.
        let r = e
            .post_shared(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(7))
            .unwrap();
        assert_eq!(r, PostResult::Matched(MsgHandle(0)));
        let report = e.drain();
        assert!(report.error.is_none());
        assert_eq!(
            report.outcomes,
            vec![
                CommandOutcome::Delivery(Delivery::Unexpected { msg: MsgHandle(1) }),
                CommandOutcome::Post {
                    handle: RecvHandle(1),
                    result: PostResult::Posted
                },
            ]
        );
    }

    #[test]
    fn concurrent_posts_to_distinct_comms_succeed() {
        // Smoke test for the sharded `&self` path (the full interleaving
        // stress test lives in tests/concurrent_shards.rs): two threads
        // post into two communicators simultaneously.
        let e = engine();
        let comm_a = CommId(1);
        let comm_b = CommId(2);
        std::thread::scope(|s| {
            for (t, comm) in [comm_a, comm_b].into_iter().enumerate() {
                let e = &e;
                s.spawn(move || {
                    for i in 0..32u64 {
                        e.post_shared(
                            ReceivePattern::new(Rank(0), Tag(i as u32), comm),
                            RecvHandle(t as u64 * 1000 + i),
                        )
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(e.prq_len(), 64);
        assert_eq!(e.stats().posted, 64);
    }

    #[test]
    fn backend_trait_drives_the_engine() {
        let mut boxed: Box<dyn MatchingBackend> = Box::new(engine());
        assert_eq!(boxed.backend_name(), "Optimistic-DPA");
        assert!(boxed.wants_offload_fallback());
        assert_eq!(boxed.block_size(), MatchConfig::small().block_threads);
        boxed
            .post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(4))
            .unwrap();
        let d = boxed.arrive_block(&[(env(0, 1), MsgHandle(0))]).unwrap();
        assert_eq!(d[0].matched(), Some(RecvHandle(4)));
        let mut stats = MatchStats::new();
        boxed.merge_stats(&mut stats);
        assert_eq!(stats.posted, 1);
        assert_eq!(stats.matched_on_arrival, 1);
        // The observability downcast the service layer relies on.
        assert!(boxed.as_any().downcast_ref::<OtmEngine>().is_some());
        // The command-queue half of the trait.
        assert!(boxed.supports_command_queue());
        boxed
            .submit_command(Command::Arrival {
                env: env(9, 9),
                msg: MsgHandle(1),
            })
            .unwrap();
        assert_eq!(boxed.pending_commands(), 1);
        let report = boxed.drain_commands();
        assert!(report.error.is_none());
        assert_eq!(
            report.outcomes,
            vec![CommandOutcome::Delivery(Delivery::Unexpected {
                msg: MsgHandle(1)
            })]
        );
        let state = boxed.drain_for_fallback().unwrap();
        assert!(state.receives.is_empty());
        assert_eq!(state.unexpected.len(), 1);
        assert!(state.pending.is_empty());
    }

    #[test]
    fn fallback_snapshot_carries_the_undrained_queue() {
        // The lost-receive/lost-arrival bug: commands accepted into the
        // submission queue but never drained MUST survive the fallback
        // migration inside the snapshot's `pending`, in submission order.
        let e = engine();
        e.post_shared(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))
            .unwrap();
        e.submit(Command::Post {
            pattern: ReceivePattern::exact(Rank(1), Tag(1)),
            handle: RecvHandle(1),
        })
        .unwrap();
        e.submit(Command::Arrival {
            env: env(2, 2),
            msg: MsgHandle(0),
        })
        .unwrap();
        let state = e.drain_for_fallback();
        assert_eq!(
            state.receives,
            vec![(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))]
        );
        assert_eq!(
            state.pending,
            vec![
                Command::Post {
                    pattern: ReceivePattern::exact(Rank(1), Tag(1)),
                    handle: RecvHandle(1),
                },
                Command::Arrival {
                    env: env(2, 2),
                    msg: MsgHandle(0),
                },
            ]
        );
    }

    #[test]
    fn drain_on_stopped_engine_surfaces_commands_terminally() {
        // A retry loop on a dead engine must terminate: the drain reports
        // EngineStopped as terminal and hands the commands over instead of
        // requeueing them forever.
        let e = engine();
        e.submit(Command::Arrival {
            env: env(0, 0),
            msg: MsgHandle(0),
        })
        .unwrap();
        e.submit(Command::Post {
            pattern: ReceivePattern::exact(Rank(1), Tag(1)),
            handle: RecvHandle(1),
        })
        .unwrap();
        e.shutdown();
        let report = e.drain();
        assert_eq!(report.error, Some(MatchError::EngineStopped));
        assert!(report.is_terminal());
        assert!(report.outcomes.is_empty());
        assert_eq!(report.unapplied.len(), 2);
        assert!(matches!(report.unapplied[0], Command::Arrival { .. }));
        assert!(matches!(report.unapplied[1], Command::Post { .. }));
        // The queue is empty now — a second drain is a clean no-op, not an
        // infinite EngineStopped spin.
        assert_eq!(e.pending_commands(), 0);
        let again = e.drain();
        assert!(again.error.is_none());
        assert!(again.unapplied.is_empty());
        // Submitting to a stopped engine is refused outright.
        assert_eq!(
            e.submit(Command::Arrival {
                env: env(0, 0),
                msg: MsgHandle(9),
            }),
            Err(MatchError::EngineStopped)
        );
    }

    #[test]
    fn retryable_drain_error_still_requeues() {
        // Single-lane engine: each arrival is its own block, so the first
        // one fills the 1-slot unexpected store and the second block is
        // rejected by the capacity pre-check.
        let e = OtmEngine::new(
            MatchConfig::small()
                .with_block_threads(1)
                .with_max_unexpected(1),
        )
        .unwrap();
        for i in 0..2u64 {
            e.submit(Command::Arrival {
                env: env(0, i as u32),
                msg: MsgHandle(i),
            })
            .unwrap();
        }
        // A retryable error: the failing command goes back to the queue
        // front and nothing is surfaced.
        let report = e.drain();
        assert_eq!(report.error, Some(MatchError::UnexpectedStoreFull));
        assert!(!report.is_terminal());
        assert!(report.unapplied.is_empty());
        assert_eq!(e.pending_commands(), 1);
        // Free capacity, retry: the drain resumes where it stopped.
        assert_eq!(
            e.post_shared(ReceivePattern::any_any(), RecvHandle(0))
                .unwrap(),
            PostResult::Matched(MsgHandle(0))
        );
        let retry = e.drain();
        assert!(retry.error.is_none());
        assert_eq!(retry.outcomes.len(), 1);
    }

    #[test]
    fn pipelined_drain_interleaves_with_racing_submitters() {
        // Submissions racing with an in-flight drain must neither deadlock
        // nor get lost: whatever the first drain's entry snapshot missed is
        // picked up by a follow-up drain.
        let e = OtmEngine::new(
            MatchConfig::small()
                .with_max_receives(4096)
                .with_max_unexpected(4096),
        )
        .unwrap();
        const PER_THREAD: u64 = 200;
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let e = &e;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        e.submit(Command::Arrival {
                            env: env(t as u32, (i % 7) as u32),
                            msg: MsgHandle(t * PER_THREAD + i),
                        })
                        .unwrap();
                    }
                });
            }
            let e = &e;
            s.spawn(move || {
                let mut applied = 0usize;
                while applied < (2 * PER_THREAD) as usize {
                    let report = e.drain();
                    assert!(report.error.is_none(), "drain failed: {:?}", report.error);
                    applied += report.outcomes.len();
                }
            });
        });
        assert_eq!(e.pending_commands(), 0);
        assert_eq!(e.umq_len(), 2 * PER_THREAD as usize);
    }
}
