//! Feature-gated engine observability.
//!
//! [`EngineMetrics`] is the engine's handle to the `otm-metrics` registry:
//! search-depth and block-latency histograms, per-resolution-path counters
//! (no-conflict / fast path / slow path — the NC, WC-FP and WC-SP series
//! of Fig. 8), and, with the `trace-events` feature, a bounded ring of
//! timeline events.
//!
//! With the default `metrics` feature the struct carries `Arc` handles
//! resolved once at engine construction, so the per-message cost is a few
//! relaxed atomic adds. With `--no-default-features` the same type is a
//! zero-sized struct whose methods are empty: instrumentation calls
//! compile away entirely and the matching fast path is untouched (the
//! `disabled_metrics_are_zero_sized` test pins this down).

#[cfg(feature = "metrics")]
mod imp {
    use otm_metrics::{Counter, Histogram, Registry, RegistrySnapshot};
    use std::sync::Arc;

    /// Events retained by the timeline ring before overwriting.
    #[cfg(feature = "trace-events")]
    const TRACE_CAPACITY: usize = 64 * 1024;

    /// Lifecycle span events retained before overwriting (each message
    /// contributes a handful: posted/enqueued/packed/matched).
    #[cfg(feature = "trace-events")]
    pub(crate) const SPAN_CAPACITY: usize = 256 * 1024;

    /// Cheap-to-clone handle to the engine's metric instruments.
    #[derive(Debug, Clone)]
    pub struct EngineMetrics {
        registry: Registry,
        search_depth: Arc<Histogram>,
        block_latency_ns: Arc<Histogram>,
        block_occupancy: Arc<Histogram>,
        umq_match_depth: Arc<Histogram>,
        no_conflict: Arc<Counter>,
        fast_path: Arc<Counter>,
        slow_path: Arc<Counter>,
        post_match: Arc<Counter>,
        matched: Arc<Counter>,
        conflicts: Arc<Counter>,
        trace_dropped: Arc<Counter>,
        #[cfg(feature = "trace-events")]
        trace: Arc<otm_metrics::TraceRing>,
        #[cfg(feature = "trace-events")]
        spans: Arc<otm_metrics::SpanRecorder>,
        #[cfg(feature = "trace-events")]
        span_dropped: Arc<Counter>,
    }

    impl Default for EngineMetrics {
        fn default() -> Self {
            Self::new()
        }
    }

    impl EngineMetrics {
        /// Creates a fresh registry with the engine's instruments.
        pub fn new() -> Self {
            let registry = Registry::new();
            Self {
                search_depth: registry.histogram("otm_search_depth"),
                block_latency_ns: registry.histogram("otm_block_latency_ns"),
                block_occupancy: registry.histogram("otm_block_occupancy"),
                umq_match_depth: registry.histogram("otm_umq_match_depth"),
                no_conflict: registry
                    .counter_with("otm_resolutions_total", vec![("path", "nc".into())]),
                fast_path: registry
                    .counter_with("otm_resolutions_total", vec![("path", "wc_fp".into())]),
                slow_path: registry
                    .counter_with("otm_resolutions_total", vec![("path", "wc_sp".into())]),
                post_match: registry
                    .counter_with("otm_resolutions_total", vec![("path", "post".into())]),
                matched: registry.counter("otm_matched_total"),
                conflicts: registry.counter("otm_conflicts_total"),
                trace_dropped: registry.counter("otm_trace_dropped_total"),
                #[cfg(feature = "trace-events")]
                trace: Arc::new(otm_metrics::TraceRing::new(TRACE_CAPACITY)),
                #[cfg(feature = "trace-events")]
                spans: Arc::new(otm_metrics::SpanRecorder::new(SPAN_CAPACITY)),
                #[cfg(feature = "trace-events")]
                span_dropped: registry.counter("otm_span_dropped_total"),
                registry,
            }
        }

        /// Records one optimistic-search depth sample.
        #[inline]
        pub fn record_search_depth(&self, depth: u64) {
            self.search_depth.record(depth);
        }

        /// Records the UMQ depth examined by a post-time match.
        #[inline]
        pub fn record_umq_match_depth(&self, depth: u64) {
            self.umq_match_depth.record(depth);
        }

        /// Counts a message resolved without entering conflict resolution.
        #[inline]
        pub fn count_no_conflict(&self) {
            self.no_conflict.inc();
        }

        /// Counts a conflict resolved via the fast path (WC-FP).
        #[inline]
        pub fn count_fast_path(&self) {
            self.fast_path.inc();
        }

        /// Counts a conflict resolved via the slow path (WC-SP).
        #[inline]
        pub fn count_slow_path(&self) {
            self.slow_path.inc();
        }

        /// Counts a receive matched at post time against the UMQ — the
        /// fourth resolution path, which never enters a block.
        #[inline]
        pub fn count_post_match(&self) {
            self.post_match.inc();
        }

        /// Counts one matched (receive, message) pair, whatever the path.
        /// The flight recorder's invariant: this total equals the sum of
        /// the four `otm_resolutions_total` path counters.
        #[inline]
        pub fn count_matched(&self) {
            self.matched.inc();
        }

        /// Counts a directly detected booking conflict.
        #[inline]
        pub fn count_conflict(&self) {
            self.conflicts.inc();
        }

        /// Starts a block-latency measurement.
        #[inline]
        pub fn timer(&self) -> BlockTimer {
            BlockTimer(std::time::Instant::now())
        }

        /// Ends a block-latency measurement and records it (nanoseconds).
        #[inline]
        pub fn observe_block(&self, timer: BlockTimer) {
            self.block_latency_ns
                .record(timer.0.elapsed().as_nanos() as u64);
        }

        /// Records how many arrivals an executed block carried — the direct
        /// evidence of how well the drain's packing fills blocks.
        #[inline]
        pub fn record_block_occupancy(&self, arrivals: u64) {
            self.block_occupancy.record(arrivals);
        }

        /// Records a per-communicator staged-lane depth observed during a
        /// drain. Two gauges per lane: `otm_drain_lane_depth` follows the
        /// *current* depth — the drain resets it to 0 when the lane empties,
        /// so a communicator that goes quiet reads 0 and the drain is
        /// visible in Fig. 6/7-style artifacts — while
        /// `otm_drain_lane_depth_peak` keeps the all-time high-water mark
        /// (`set_max` never lowers it). Resolves the labeled gauges through
        /// the registry — called once per drain refill, not per message, so
        /// the lookup is off the hot path.
        pub fn record_lane_depth(&self, comm: u16, depth: u64) {
            self.registry
                .gauge_with("otm_drain_lane_depth", vec![("comm", comm.to_string())])
                .set(depth as i64);
            self.registry
                .gauge_with(
                    "otm_drain_lane_depth_peak",
                    vec![("comm", comm.to_string())],
                )
                .set_max(depth as i64);
        }

        /// Records a communicator's submission-ring occupancy observed at a
        /// drain refill: `otm_submission_ring_depth` follows the current
        /// occupancy, `otm_submission_ring_depth_peak` the high-water mark.
        /// Persistently high occupancy (near the configured ring capacity)
        /// means submitters are outrunning the drain and seeing
        /// `SubmissionRingFull` backpressure.
        pub fn record_ring_depth(&self, comm: u16, depth: u64) {
            self.registry
                .gauge_with(
                    "otm_submission_ring_depth",
                    vec![("comm", comm.to_string())],
                )
                .set(depth as i64);
            self.registry
                .gauge_with(
                    "otm_submission_ring_depth_peak",
                    vec![("comm", comm.to_string())],
                )
                .set_max(depth as i64);
        }

        /// The underlying registry (for embedding into a larger exporter).
        pub fn registry(&self) -> &Registry {
            &self.registry
        }

        /// Copies out all engine metrics.
        pub fn snapshot(&self) -> RegistrySnapshot {
            self.registry.snapshot()
        }

        /// Pushes a timeline event (no-op unless `trace-events` is on).
        /// Overwritten events are accounted in `otm_trace_dropped_total`
        /// rather than lost silently.
        #[inline]
        pub fn trace_push(&self, worker: u32, kind: otm_metrics::EventKind) {
            #[cfg(feature = "trace-events")]
            if self.trace.push(worker, kind) {
                self.trace_dropped.inc();
            }
            #[cfg(not(feature = "trace-events"))]
            let _ = (worker, kind, &self.trace_dropped);
        }

        /// The timeline ring.
        #[cfg(feature = "trace-events")]
        pub fn trace_ring(&self) -> &otm_metrics::TraceRing {
            &self.trace
        }

        /// Stamps a lifecycle span event on `subject` (a message or
        /// receive handle). Ring overflow is accounted in
        /// `otm_span_dropped_total`.
        #[cfg(feature = "trace-events")]
        #[inline]
        pub fn span_push(&self, subject: u64, kind: otm_metrics::SpanKind) {
            if self.spans.push(subject, kind) {
                self.span_dropped.inc();
            }
        }

        /// The lifecycle span recorder.
        #[cfg(feature = "trace-events")]
        pub fn spans(&self) -> &otm_metrics::SpanRecorder {
            &self.spans
        }
    }

    /// In-flight block-latency measurement (see [`EngineMetrics::timer`]).
    #[derive(Debug)]
    pub struct BlockTimer(std::time::Instant);
}

#[cfg(not(feature = "metrics"))]
mod imp {
    /// No-op stand-in: all instrumentation compiles away.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct EngineMetrics;

    /// No-op stand-in for the block-latency timer.
    #[derive(Debug, Clone, Copy)]
    pub struct BlockTimer;

    impl EngineMetrics {
        /// Creates the no-op handle.
        pub fn new() -> Self {
            EngineMetrics
        }

        /// No-op.
        #[inline]
        pub fn record_search_depth(&self, _depth: u64) {}

        /// No-op.
        #[inline]
        pub fn record_umq_match_depth(&self, _depth: u64) {}

        /// No-op.
        #[inline]
        pub fn count_no_conflict(&self) {}

        /// No-op.
        #[inline]
        pub fn count_fast_path(&self) {}

        /// No-op.
        #[inline]
        pub fn count_slow_path(&self) {}

        /// No-op.
        #[inline]
        pub fn count_post_match(&self) {}

        /// No-op.
        #[inline]
        pub fn count_matched(&self) {}

        /// No-op.
        #[inline]
        pub fn count_conflict(&self) {}

        /// No-op.
        #[inline]
        pub fn timer(&self) -> BlockTimer {
            BlockTimer
        }

        /// No-op.
        #[inline]
        pub fn observe_block(&self, _timer: BlockTimer) {}

        /// No-op.
        #[inline]
        pub fn record_block_occupancy(&self, _arrivals: u64) {}

        /// No-op.
        #[inline]
        pub fn record_lane_depth(&self, _comm: u16, _depth: u64) {}

        /// No-op.
        #[inline]
        pub fn record_ring_depth(&self, _comm: u16, _depth: u64) {}
    }
}

pub use imp::{BlockTimer, EngineMetrics};

/// Pushes a timeline event when `trace-events` is enabled; expands to
/// nothing otherwise. Usable from any engine-internal context holding an
/// [`EngineMetrics`].
#[cfg(feature = "trace-events")]
macro_rules! trace_event {
    ($metrics:expr, $worker:expr, $kind:ident) => {
        $metrics.trace_push($worker as u32, ::otm_metrics::EventKind::$kind)
    };
}

/// No-op expansion: `trace-events` is disabled.
#[cfg(not(feature = "trace-events"))]
macro_rules! trace_event {
    ($metrics:expr, $worker:expr, $kind:ident) => {{
        let _ = &$metrics;
        let _ = $worker;
    }};
}

pub(crate) use trace_event;

/// Stamps a lifecycle span event when `trace-events` is enabled; expands
/// to nothing otherwise. `SpanKind`, `MatchPath` and `RECV_SUBJECT_BIT`
/// are in scope inside the `$subject` and `$kind` expressions, so call
/// sites read `span_event!(m, h, SpanKind::Matched { path: MatchPath::Nc })`.
#[cfg(feature = "trace-events")]
macro_rules! span_event {
    ($metrics:expr, $subject:expr, $kind:expr) => {{
        #[allow(unused_imports)]
        use ::otm_metrics::{MatchPath, SpanKind, RECV_SUBJECT_BIT};
        $metrics.span_push(($subject) as u64, $kind)
    }};
}

/// No-op expansion: `trace-events` is disabled (the `$subject` and `$kind`
/// tokens are discarded unevaluated, so they may reference `otm_metrics`
/// items that do not exist in this configuration).
#[cfg(not(feature = "trace-events"))]
macro_rules! span_event {
    ($metrics:expr, $subject:expr, $kind:expr) => {{
        let _ = &$metrics;
    }};
}

pub(crate) use span_event;

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_metrics_are_zero_sized() {
        // The acceptance gate for `--no-default-features`: the handle the
        // engine and every worker carry must occupy no space, proving the
        // instrumentation is compile-time erased from the hot path.
        assert_eq!(std::mem::size_of::<EngineMetrics>(), 0);
        assert_eq!(std::mem::size_of::<BlockTimer>(), 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn instruments_are_registered_and_recorded() {
        let m = EngineMetrics::new();
        m.record_search_depth(3);
        m.count_no_conflict();
        m.count_fast_path();
        m.count_slow_path();
        m.count_post_match();
        m.count_matched();
        m.count_matched();
        m.count_conflict();
        let t = m.timer();
        m.observe_block(t);
        m.record_block_occupancy(4);
        m.record_lane_depth(1, 7);
        m.record_lane_depth(1, 3); // peak keeps the high-water mark, current follows
        m.record_ring_depth(1, 5);
        m.record_ring_depth(1, 2);
        let snap = m.snapshot();
        assert_eq!(snap.hists["otm_search_depth"].count, 1);
        assert_eq!(snap.hists["otm_block_latency_ns"].count, 1);
        assert_eq!(snap.hists["otm_block_occupancy"].count, 1);
        assert_eq!(snap.hists["otm_block_occupancy"].sum, 4);
        assert_eq!(snap.gauges["otm_drain_lane_depth_peak{comm=\"1\"}"], 7);
        assert_eq!(snap.gauges["otm_drain_lane_depth{comm=\"1\"}"], 3);
        assert_eq!(snap.gauges["otm_submission_ring_depth_peak{comm=\"1\"}"], 5);
        assert_eq!(snap.gauges["otm_submission_ring_depth{comm=\"1\"}"], 2);
        // A lane that empties decays the current gauge to 0; the peak stays.
        m.record_lane_depth(1, 0);
        let snap = m.snapshot();
        assert_eq!(snap.gauges["otm_drain_lane_depth{comm=\"1\"}"], 0);
        assert_eq!(snap.gauges["otm_drain_lane_depth_peak{comm=\"1\"}"], 7);
        assert_eq!(snap.counters["otm_resolutions_total{path=\"nc\"}"], 1);
        assert_eq!(snap.counters["otm_resolutions_total{path=\"wc_fp\"}"], 1);
        assert_eq!(snap.counters["otm_resolutions_total{path=\"wc_sp\"}"], 1);
        assert_eq!(snap.counters["otm_resolutions_total{path=\"post\"}"], 1);
        assert_eq!(snap.counters["otm_matched_total"], 2);
        assert_eq!(snap.counters["otm_conflicts_total"], 1);
        assert_eq!(snap.counters["otm_trace_dropped_total"], 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn clones_share_instruments() {
        let a = EngineMetrics::new();
        let b = a.clone();
        b.record_search_depth(1);
        assert_eq!(a.snapshot().hists["otm_search_depth"].count, 1);
    }

    #[cfg(feature = "trace-events")]
    #[test]
    fn trace_macro_pushes_events() {
        let m = EngineMetrics::new();
        trace_event!(m, 2usize, ConflictDetected);
        let events = m.trace_ring().dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].worker, 2);
        assert_eq!(events[0].kind, ::otm_metrics::EventKind::ConflictDetected);
    }

    #[cfg(feature = "trace-events")]
    #[test]
    fn span_macro_stamps_lifecycle_events() {
        let m = EngineMetrics::new();
        span_event!(m, 7u32, SpanKind::Posted);
        span_event!(
            m,
            7u32,
            SpanKind::Matched {
                path: MatchPath::Nc
            }
        );
        let spans = m.spans().dump();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].subject, 7);
        assert_eq!(spans[0].kind, ::otm_metrics::SpanKind::Posted);
        assert_eq!(
            spans[1].kind,
            ::otm_metrics::SpanKind::Matched {
                path: ::otm_metrics::MatchPath::Nc
            }
        );
        assert_eq!(m.snapshot().counters["otm_span_dropped_total"], 0);
    }

    #[cfg(feature = "trace-events")]
    #[test]
    fn span_overflow_is_accounted_not_silent() {
        let m = EngineMetrics::new();
        for i in 0..(super::imp::SPAN_CAPACITY as u64 + 5) {
            m.span_push(i, ::otm_metrics::SpanKind::Enqueued);
        }
        assert_eq!(m.spans().dropped(), 5);
        assert_eq!(m.snapshot().counters["otm_span_dropped_total"], 5);
    }
}
