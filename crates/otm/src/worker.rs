//! The block worker: one persistent thread per lane running the optimistic
//! matching protocol of §III.
//!
//! Lifecycle: wait for a new epoch → (if this lane is active) run the lane
//! algorithm → report done. The lane algorithm is documented step by step in
//! [`run_lane`]; its correctness argument lives in DESIGN.md §5 and is
//! enforced end-to-end by the oracle property tests.

use crate::block::{below_mask, result_code, BlockShared, LaneData};
use crate::metrics::{span_event, trace_event, EngineMetrics};
use crate::stats::OtmStats;
use crate::table::{state, DescId};
use otm_base::MatchConfig;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Context handed to each worker thread at spawn.
pub(crate) struct WorkerCtx {
    pub shared: Arc<BlockShared>,
    pub stats: Arc<OtmStats>,
    pub metrics: EngineMetrics,
    pub config: MatchConfig,
    pub lane: usize,
}

/// Worker thread entry point.
pub(crate) fn worker_main(ctx: WorkerCtx) {
    let mut seen_epoch = 0u64;
    loop {
        // Wait for the coordinator to publish a new block (or stop).
        {
            let mut control = ctx.shared.control.lock();
            loop {
                if control.stop {
                    return;
                }
                if control.epoch > seen_epoch {
                    seen_epoch = control.epoch;
                    break;
                }
                ctx.shared.start_cv.wait(&mut control);
            }
        }

        let active = {
            let lanes = ctx.shared.lanes.read();
            let active = lanes.len();
            if ctx.lane < active {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_lane(&ctx, &lanes[ctx.lane]);
                }));
                if outcome.is_err() {
                    // Poison the engine and release anyone waiting on this
                    // lane's barrier bits so the block can drain.
                    ctx.shared.poisoned.store(true, Ordering::SeqCst);
                    let bit = 1u64 << ctx.lane;
                    ctx.shared.booked.fetch_or(bit, Ordering::SeqCst);
                    ctx.shared.detected.fetch_or(bit, Ordering::SeqCst);
                    ctx.shared.settled.fetch_or(bit, Ordering::SeqCst);
                }
            }
            active
        };

        // Report completion. Inactive lanes report too — the coordinator
        // waits for the full pool so that no stale worker can be inside
        // `lanes` when the next block is written.
        let mut control = ctx.shared.control.lock();
        control.done += 1;
        if control.done == pool_size(active, ctx.config.block_threads) {
            ctx.shared.done_cv.notify_one();
        }
    }
}

/// How many workers report done for a block: the whole pool.
#[inline]
pub(crate) fn pool_size(_active: usize, pool: usize) -> usize {
    pool
}

/// Runs one lane on the coordinator's own thread with the same poisoning
/// discipline as the pooled path. Used by 1-thread engines.
pub(crate) fn worker_main_inline(ctx: &WorkerCtx, lane_data: &LaneData) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_lane(ctx, lane_data);
    }));
    if outcome.is_err() {
        ctx.shared.poisoned.store(true, Ordering::SeqCst);
        let bit = 1u64 << ctx.lane;
        ctx.shared.booked.fetch_or(bit, Ordering::SeqCst);
        ctx.shared.detected.fetch_or(bit, Ordering::SeqCst);
        ctx.shared.settled.fetch_or(bit, Ordering::SeqCst);
    }
}

/// The per-lane matching protocol (§III-C, §III-D).
///
/// Also callable from the coordinator itself: a 1-thread engine runs its
/// single lane inline (one DPA execution unit, no handoff), which
/// `OtmEngine::process_block` uses when `block_threads == 1`.
pub(crate) fn run_lane(ctx: &WorkerCtx, lane_data: &LaneData) {
    let shared = &ctx.shared;
    let lane = ctx.lane;
    let bit = 1u64 << lane;
    let below = below_mask(lane);
    let epoch = shared.epoch.load(Ordering::Acquire);
    let comm = &lane_data.comm;
    let table = &comm.table;
    let prq = &comm.prq;

    // §VII: a communicator asserted with `mpi_assert_allow_overtaking`
    // waives the ordering constraints — no booking, no barrier, no
    // conflict resolution; any pattern-correct pairing is acceptable.
    if comm.hints.allow_overtaking {
        run_lane_relaxed(ctx, lane_data, epoch);
        return;
    }

    // Phase 1 — optimistic search (§III-C): find the oldest matching
    // receive across the four indexes, as if no other message existed.
    // Hint-banned index classes are skipped.
    let skip_mask = if ctx.config.early_booking_check {
        below
    } else {
        0
    };
    let search = prq.search_hinted(
        &lane_data.env,
        &lane_data.hashes,
        table,
        skip_mask,
        comm.hints,
    );
    ctx.stats.record_search(search.depth);
    ctx.metrics.record_search_depth(search.depth as u64);

    // Phase 2 — book the candidate: set our bit in its booking bitmap.
    if let Some(cand) = search.candidate {
        table.slot(cand.desc).book(lane);
        shared.booked_desc[lane].store(cand.desc, Ordering::Release);
    }

    // Phase 3 — partial barrier (§III-D1): wait for every earlier lane to
    // finish booking. Later lanes cannot steal our receive (C2 gives us
    // precedence), so we do not wait for them.
    shared.booked.fetch_or(bit, Ordering::AcqRel);
    BlockShared::wait_bits(&shared.booked, below);

    // Phase 4 — conflict detection (§III-D2). A direct conflict means a
    // lower lane booked our candidate (it wins: lowest id first). Skipping
    // a lower-booked receive during the search is also a conflict: the
    // skipped receive may come back to us if its booker resolves away.
    let direct = search.skipped_booked
        || search
            .candidate
            .map(|c| table.slot(c.desc).booking() & below != 0)
            .unwrap_or(false);
    if search.skipped_booked {
        shared.forced.fetch_or(bit, Ordering::AcqRel);
    }
    if direct {
        shared.conflicted.fetch_or(bit, Ordering::AcqRel);
        ctx.stats.direct_conflicts.fetch_add(1, Ordering::Relaxed);
        ctx.metrics.count_conflict();
        trace_event!(ctx.metrics, lane, ConflictDetected);
    }
    shared.detected.fetch_or(bit, Ordering::AcqRel);
    BlockShared::wait_bits(&shared.detected, below);

    // "If a thread i detects a conflict, then all other threads j > i need
    // to enter the conflict resolution phase" — a resolving lower thread
    // may re-match onto our candidate, and it has precedence (§III-D2).
    let lower_conflicts = shared.conflicted.load(Ordering::Acquire) & below;
    let resolve = direct || lower_conflicts != 0;

    let result = if !resolve {
        match search.candidate {
            Some(cand) => {
                // No lane below us booked this receive and none of them will
                // re-match (none conflicted), so consuming cannot fail.
                let ok = table.slot(cand.desc).try_consume(epoch);
                debug_assert!(ok, "unconflicted consume lost a race");
                if ok {
                    ctx.stats.optimistic_ok.fetch_add(1, Ordering::Relaxed);
                    ctx.metrics.count_no_conflict();
                    ctx.metrics.count_matched();
                    span_event!(
                        ctx.metrics,
                        lane_data.handle.0,
                        SpanKind::Matched {
                            path: MatchPath::Nc
                        }
                    );
                    finish_consume(ctx, lane_data, cand.desc);
                    cand.desc as u64
                } else {
                    // Defensive: fall through to the slow path.
                    resolve_slow(ctx, lane_data, below, epoch)
                }
            }
            None => result_code::UNEXPECTED,
        }
    } else {
        if !direct {
            ctx.stats
                .induced_resolutions
                .fetch_add(1, Ordering::Relaxed);
        }
        resolve_conflict(ctx, lane_data, &search, below, epoch)
    };

    // Phase 6 — settle: publish the result and release later lanes'
    // slow-path waits.
    shared.results[lane].store(result, Ordering::Release);
    shared.settled.fetch_or(bit, Ordering::AcqRel);
}

/// The relaxed lane protocol for `mpi_assert_allow_overtaking`
/// communicators (§VII): search, CAS-consume, done. The lane still
/// publishes its barrier bits so strict lanes in the same block (on other
/// communicators) never stall on it.
fn run_lane_relaxed(ctx: &WorkerCtx, lane_data: &LaneData, epoch: u64) {
    let shared = &ctx.shared;
    let bit = 1u64 << ctx.lane;
    let comm = &lane_data.comm;
    // Release strict peers immediately: this lane books nothing and never
    // conflicts with anyone (its communicator's receives are invisible to
    // strict lanes, which always run on other communicators).
    shared.booked.fetch_or(bit, Ordering::AcqRel);
    shared.detected.fetch_or(bit, Ordering::AcqRel);
    let mut first = true;
    let result = loop {
        let out = comm.prq.search_hinted(
            &lane_data.env,
            &lane_data.hashes,
            &comm.table,
            0,
            comm.hints,
        );
        if first {
            ctx.stats.record_search(out.depth);
            first = false;
        }
        match out.candidate {
            None => break result_code::UNEXPECTED,
            Some(c) => {
                if comm.table.slot(c.desc).try_consume(epoch) {
                    ctx.stats.optimistic_ok.fetch_add(1, Ordering::Relaxed);
                    ctx.metrics.count_no_conflict();
                    ctx.metrics.count_matched();
                    span_event!(
                        ctx.metrics,
                        lane_data.handle.0,
                        SpanKind::Matched {
                            path: MatchPath::Nc
                        }
                    );
                    finish_consume(ctx, lane_data, c.desc);
                    break c.desc as u64;
                }
                // Another relaxed lane took it; any other receive is fine.
            }
        }
    };
    shared.results[ctx.lane].store(result, Ordering::Release);
    shared.settled.fetch_or(bit, Ordering::AcqRel);
}

/// Conflict resolution (§III-D3): fast path when eligible, slow path
/// otherwise.
fn resolve_conflict(
    ctx: &WorkerCtx,
    lane_data: &LaneData,
    search: &crate::index::SearchOutcome,
    below: u64,
    epoch: u64,
) -> u64 {
    let shared = &ctx.shared;
    let table = &lane_data.comm.table;
    let prq = &lane_data.comm.prq;

    // Fast path (§III-D3a). Sound when:
    //  * we have a candidate and did not skip anything ourselves,
    //  * no lower lane skipped anything (their re-search could reach an
    //    older receive and upset the rank assignment),
    //  * every lower lane booked OUR candidate — then lane j will end up
    //    with the j-th receive of the sequence, deterministically, and our
    //    own rank equals our lane index,
    //  * the sequence of compatible receives is long enough for our rank.
    // Fast path additionally requires lazy removal: the rank walk counts
    // same-sequence entries consumed in this block as steps (they are being
    // taken by lower-ranked lanes), which is only sound while consumed
    // entries stay linked in the chain. Eager removal unlinks them
    // concurrently and would shift the walk's target (a C2 violation), so
    // eager-removal configurations always resolve through the slow path.
    if ctx.config.fast_path && ctx.config.lazy_removal && !search.skipped_booked {
        if let Some(cand) = search.candidate {
            let no_lower_skips = shared.forced.load(Ordering::Acquire) & below == 0;
            let all_lower_booked = table.slot(cand.desc).booking() & below == below;
            if no_lower_skips && all_lower_booked {
                let payload = table.slot(cand.desc).payload();
                let rank = below.count_ones() as usize;
                if let Some(target) =
                    prq.walk_sequence(payload.home, cand.desc, rank, payload.seq, table, epoch)
                {
                    if table.slot(target).try_consume(epoch) {
                        ctx.stats.fast_path.fetch_add(1, Ordering::Relaxed);
                        ctx.metrics.count_fast_path();
                        ctx.metrics.count_matched();
                        span_event!(
                            ctx.metrics,
                            lane_data.handle.0,
                            SpanKind::Matched {
                                path: MatchPath::WcFp
                            }
                        );
                        trace_event!(ctx.metrics, ctx.lane, FastPathShift);
                        finish_consume(ctx, lane_data, target);
                        return target as u64;
                    }
                }
            }
        }
    }

    resolve_slow(ctx, lane_data, below, epoch)
}

/// Slow path (§III-D3b): wait for every lower lane to settle, then
/// re-search. At that point the consumed flags of all earlier messages are
/// final, so the oldest posted matching receive is exactly the sequential
/// assignment for this message.
fn resolve_slow(ctx: &WorkerCtx, lane_data: &LaneData, below: u64, epoch: u64) -> u64 {
    let shared = &ctx.shared;
    let table = &lane_data.comm.table;
    let prq = &lane_data.comm.prq;

    BlockShared::wait_bits(&shared.settled, below);
    ctx.stats.slow_path.fetch_add(1, Ordering::Relaxed);
    trace_event!(ctx.metrics, ctx.lane, SlowPathSerialize);
    loop {
        let out = prq.research(
            &lane_data.env,
            &lane_data.hashes,
            table,
            lane_data.comm.hints,
        );
        match out.candidate {
            None => return result_code::UNEXPECTED,
            Some(c) => {
                if table.slot(c.desc).try_consume(epoch) {
                    // The WC-SP *resolution* counter fires only on a
                    // successful consume (a slow-path entry that goes
                    // unexpected resolved nothing), keeping the invariant
                    // `otm_matched_total == Σ otm_resolutions_total{path}`.
                    // `stats.slow_path` above still counts entries.
                    ctx.metrics.count_slow_path();
                    ctx.metrics.count_matched();
                    span_event!(
                        ctx.metrics,
                        lane_data.handle.0,
                        SpanKind::Matched {
                            path: MatchPath::WcSp
                        }
                    );
                    finish_consume(ctx, lane_data, c.desc);
                    return c.desc as u64;
                }
                // A concurrent fast-path lane above us took it between our
                // read and our CAS; re-search (it targets a different rank,
                // so this terminates).
            }
        }
    }
}

/// Post-consumption bookkeeping: with eager removal the consuming thread
/// unlinks the descriptor from its bin immediately, serializing on the bin's
/// write lock — the overhead lazy removal avoids (§IV-D). With lazy removal
/// the tombstone stays until the coordinator's block-end sweep.
fn finish_consume(ctx: &WorkerCtx, lane_data: &LaneData, desc: DescId) {
    if !ctx.config.lazy_removal {
        let payload = lane_data.comm.table.slot(desc).payload();
        debug_assert_eq!(lane_data.comm.table.slot(desc).state(), state::CONSUMED);
        lane_data.comm.prq.unlink(payload.home, desc);
    }
}
