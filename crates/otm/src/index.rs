//! The four posted-receive index structures of §III-B and the searches the
//! block threads run over them.
//!
//! * no wildcards — hash table keyed on `(src, tag)`;
//! * source wildcard — hash table keyed on `tag`;
//! * tag wildcard — hash table keyed on `src`;
//! * both wildcards — a single ordered list.
//!
//! Within a bin, receives appear in posting order, so the first live match
//! in a chain is the oldest for that key — constraint C1 holds inside an
//! index by construction (§III-C). Across indexes, the post labels
//! arbitrate. Chains are `RwLock`ed vectors: block threads search under
//! shared locks (concurrently), while insertions (coordinator) and unlinks
//! take the write lock — the "remove lock" of the paper's per-bin layout.

use crate::table::{state, DescId, IndexHome, ReceiveTable};
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::hash::{bin_of, hash_src, hash_src_tag, hash_tag};
use otm_base::{
    CommHints, Envelope, InlineHashes, PostLabel, ReceivePattern, SeqId, WildcardClass,
};
use parking_lot::RwLock;

/// A candidate found by an index search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The descriptor slot.
    pub desc: DescId,
    /// Its post label, used for cross-index arbitration.
    pub label: PostLabel,
}

/// Result of searching all four indexes for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// The oldest matching live receive, if any.
    pub candidate: Option<Candidate>,
    /// Live entries examined across all four indexes (the queue-depth
    /// statistic of Fig. 7).
    pub depth: usize,
    /// Whether the early-booking check skipped at least one receive that a
    /// lower-id thread had booked (§IV-D). A thread that skipped must treat
    /// itself as conflicted and resolve via the slow path — the skipped
    /// receive might become available again if the booker resolves away.
    pub skipped_booked: bool,
}

/// The four index structures for one communicator's posted receives.
#[derive(Debug)]
pub struct PrqIndexes {
    bins: usize,
    no_wild: Box<[RwLock<Vec<DescId>>]>,
    src_wild: Box<[RwLock<Vec<DescId>>]>,
    tag_wild: Box<[RwLock<Vec<DescId>>]>,
    both_wild: RwLock<Vec<DescId>>,
}

fn make_bins(bins: usize) -> Box<[RwLock<Vec<DescId>>]> {
    (0..bins).map(|_| RwLock::new(Vec::new())).collect()
}

impl PrqIndexes {
    /// Creates empty indexes with `bins` bins per hash table.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "index tables need at least one bin");
        PrqIndexes {
            bins,
            no_wild: make_bins(bins),
            src_wild: make_bins(bins),
            tag_wild: make_bins(bins),
            both_wild: RwLock::new(Vec::new()),
        }
    }

    /// Number of bins per hash table.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Computes the home (class and bin) for a receive pattern.
    pub fn home_of(&self, pattern: &ReceivePattern) -> IndexHome {
        let class = pattern.wildcard_class();
        let bin = match class {
            WildcardClass::None => {
                let (SourceSel::Rank(src), TagSel::Tag(tag)) = (pattern.src, pattern.tag) else {
                    unreachable!("class None has concrete src and tag");
                };
                bin_of(hash_src_tag(src, tag, pattern.comm), self.bins)
            }
            WildcardClass::SrcWild => {
                let TagSel::Tag(tag) = pattern.tag else {
                    unreachable!("class SrcWild has a concrete tag");
                };
                bin_of(hash_tag(tag, pattern.comm), self.bins)
            }
            WildcardClass::TagWild => {
                let SourceSel::Rank(src) = pattern.src else {
                    unreachable!("class TagWild has a concrete src");
                };
                bin_of(hash_src(src, pattern.comm), self.bins)
            }
            WildcardClass::BothWild => 0,
        };
        IndexHome { class, bin }
    }

    fn chain(&self, home: IndexHome) -> &RwLock<Vec<DescId>> {
        match home.class {
            WildcardClass::None => &self.no_wild[home.bin],
            WildcardClass::SrcWild => &self.src_wild[home.bin],
            WildcardClass::TagWild => &self.tag_wild[home.bin],
            WildcardClass::BothWild => &self.both_wild,
        }
    }

    /// Appends a freshly allocated descriptor to its home chain
    /// (coordinator context: receive posting).
    pub fn insert(&self, home: IndexHome, desc: DescId) {
        self.chain(home).write().push(desc);
    }

    /// Unlinks a descriptor from its home chain. Used for eager removal by
    /// consuming threads (when lazy removal is off) and by the coordinator's
    /// block-end sweep.
    pub fn unlink(&self, home: IndexHome, desc: DescId) {
        let mut chain = self.chain(home).write();
        if let Some(pos) = chain.iter().position(|&d| d == desc) {
            chain.remove(pos);
        }
    }

    /// Sweeps every tombstone (CONSUMED slot) out of the chain containing
    /// `home`, returning the removed ids. This is the "clean up the list"
    /// step of the paper's lazy removal (§IV-D), run by whoever wins the
    /// chain's write lock.
    pub fn sweep(&self, home: IndexHome, table: &ReceiveTable) -> Vec<DescId> {
        let mut chain = self.chain(home).write();
        let mut removed = Vec::new();
        chain.retain(|&d| {
            if table.slot(d).state() == state::CONSUMED {
                removed.push(d);
                false
            } else {
                true
            }
        });
        removed
    }

    /// Searches one chain for the oldest live receive matching `env`.
    ///
    /// Returns the candidate (if any), the number of live entries examined,
    /// and whether the early-booking check skipped a lower-booked entry.
    fn search_chain(
        &self,
        home: IndexHome,
        env: &Envelope,
        table: &ReceiveTable,
        below_mask: u64,
    ) -> (Option<Candidate>, usize, bool) {
        let chain = self.chain(home).read();
        let mut depth = 0usize;
        let mut skipped = false;
        for &desc in chain.iter() {
            let slot = table.slot(desc);
            if slot.state() != state::POSTED {
                continue;
            }
            depth += 1;
            let payload = slot.payload();
            if !payload.pattern.matches(env) {
                continue;
            }
            // Early-booking check (§IV-D): a receive already booked by a
            // lower-id thread can never be consumed by this thread in the
            // optimistic phase.
            if below_mask != 0 && slot.booking() & below_mask != 0 {
                skipped = true;
                continue;
            }
            return (
                Some(Candidate {
                    desc,
                    label: payload.label,
                }),
                depth,
                skipped,
            );
        }
        (None, depth, skipped)
    }

    /// The optimistic search of §III-C: all four indexes are probed with the
    /// appropriate keys and the oldest candidate (minimum post label) wins.
    ///
    /// `below_mask` is nonzero only when the early-booking check is enabled:
    /// it holds the bits of all lower-id lanes, and matching receives booked
    /// by any of them are skipped (reported via
    /// [`SearchOutcome::skipped_booked`]).
    pub fn search(
        &self,
        env: &Envelope,
        hashes: &InlineHashes,
        table: &ReceiveTable,
        below_mask: u64,
    ) -> SearchOutcome {
        self.search_hinted(env, hashes, table, below_mask, CommHints::NONE)
    }

    /// [`PrqIndexes::search`] under communicator hints (§VII): index
    /// classes the hints rule out can never hold a receive and are skipped
    /// entirely, saving up to three of the four probes.
    pub fn search_hinted(
        &self,
        env: &Envelope,
        hashes: &InlineHashes,
        table: &ReceiveTable,
        below_mask: u64,
        hints: CommHints,
    ) -> SearchOutcome {
        let homes = [
            IndexHome {
                class: WildcardClass::None,
                bin: bin_of(hashes.src_tag, self.bins),
            },
            IndexHome {
                class: WildcardClass::SrcWild,
                bin: bin_of(hashes.tag, self.bins),
            },
            IndexHome {
                class: WildcardClass::TagWild,
                bin: bin_of(hashes.src, self.bins),
            },
            IndexHome {
                class: WildcardClass::BothWild,
                bin: 0,
            },
        ];
        let mut best: Option<Candidate> = None;
        let mut depth = 0usize;
        let mut skipped = false;
        for home in homes {
            if !hints.permits(home.class) {
                continue;
            }
            let (cand, d, s) = self.search_chain(home, env, table, below_mask);
            depth += d;
            skipped |= s;
            best = match (best, cand) {
                (Some(a), Some(b)) if b.label < a.label => Some(b),
                (None, b) => b,
                (a, _) => a,
            };
        }
        SearchOutcome {
            candidate: best,
            depth,
            skipped_booked: skipped,
        }
    }

    /// Fast-path shift (§III-D3a, Fig. 4): starting from `cand` (the head
    /// candidate every thread booked), walk `rank` steps down its home
    /// chain. Each step must stay in the same sequence of compatible
    /// receives (`seq`); entries consumed *in the current block* count as
    /// steps (they are being taken by lower-ranked threads). Returns the
    /// descriptor at the requested rank, or `None` if the sequence is too
    /// short or interrupted — the caller must fall back to the slow path.
    pub fn walk_sequence(
        &self,
        cand_home: IndexHome,
        cand: DescId,
        rank: usize,
        seq: SeqId,
        table: &ReceiveTable,
        epoch: u64,
    ) -> Option<DescId> {
        if rank == 0 {
            return Some(cand);
        }
        let chain = self.chain(cand_home).read();
        let start = chain.iter().position(|&d| d == cand)?;
        let mut remaining = rank;
        for &desc in chain.iter().skip(start + 1) {
            let slot = table.slot(desc);
            let st = slot.state();
            // Same-sequence receives are consecutive posts, hence adjacent
            // in the chain; a different sequence id ends the walk.
            if st == state::FREE {
                return None;
            }
            if slot.payload().seq != seq {
                return None;
            }
            if st == state::CONSUMED && slot.consumed_epoch() != epoch {
                // A same-sequence receive consumed in an older block would
                // contradict oldest-first consumption; be conservative.
                return None;
            }
            remaining -= 1;
            if remaining == 0 {
                return Some(desc);
            }
        }
        None
    }

    /// The slow-path re-search (§III-D3b): by the time a thread runs this,
    /// every lower thread has settled, so the oldest *posted* matching
    /// receive is exactly what the sequential semantics assign to this
    /// message. Booking bits are ignored (they may be stale).
    pub fn research(
        &self,
        env: &Envelope,
        hashes: &InlineHashes,
        table: &ReceiveTable,
        hints: CommHints,
    ) -> SearchOutcome {
        self.search_hinted(env, hashes, table, 0, hints)
    }

    /// Total live receives across all chains (test/diagnostic helper; takes
    /// every lock, so not for the hot path).
    pub fn live_count(&self, table: &ReceiveTable) -> usize {
        let mut n = 0;
        for group in [&self.no_wild, &self.src_wild, &self.tag_wild] {
            for bin in group.iter() {
                n += bin
                    .read()
                    .iter()
                    .filter(|&&d| table.slot(d).is_posted())
                    .count();
            }
        }
        n += self
            .both_wild
            .read()
            .iter()
            .filter(|&&d| table.slot(d).is_posted())
            .count();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Payload;
    use otm_base::{Rank, Tag};

    fn setup(bins: usize) -> (PrqIndexes, ReceiveTable) {
        (PrqIndexes::new(bins), ReceiveTable::new(64))
    }

    fn post(
        idx: &PrqIndexes,
        table: &ReceiveTable,
        pattern: ReceivePattern,
        label: u64,
        seq: u64,
    ) -> DescId {
        let home = idx.home_of(&pattern);
        let desc = table
            .allocate(Payload {
                pattern,
                label: PostLabel(label),
                seq: SeqId(seq),
                handle: label,
                home,
            })
            .unwrap();
        idx.insert(home, desc);
        desc
    }

    fn search(idx: &PrqIndexes, table: &ReceiveTable, env: Envelope) -> SearchOutcome {
        idx.search(&env, &InlineHashes::of(&env), table, 0)
    }

    #[test]
    fn finds_exact_receive() {
        let (idx, table) = setup(16);
        let d = post(&idx, &table, ReceivePattern::exact(Rank(1), Tag(2)), 0, 0);
        let out = search(&idx, &table, Envelope::world(Rank(1), Tag(2)));
        assert_eq!(out.candidate.unwrap().desc, d);
    }

    #[test]
    fn misses_when_nothing_matches() {
        let (idx, table) = setup(16);
        post(&idx, &table, ReceivePattern::exact(Rank(1), Tag(2)), 0, 0);
        let out = search(&idx, &table, Envelope::world(Rank(1), Tag(3)));
        assert!(out.candidate.is_none());
    }

    #[test]
    fn cross_index_arbitration_picks_minimum_label() {
        let (idx, table) = setup(16);
        // Both-wildcard receive posted first must beat an exact one.
        let wild = post(&idx, &table, ReceivePattern::any_any(), 0, 0);
        let exact = post(&idx, &table, ReceivePattern::exact(Rank(1), Tag(2)), 1, 1);
        let out = search(&idx, &table, Envelope::world(Rank(1), Tag(2)));
        assert_eq!(out.candidate.unwrap().desc, wild);
        // Consume the wildcard; the exact one is next.
        table.slot(wild).try_consume(1);
        let out = search(&idx, &table, Envelope::world(Rank(1), Tag(2)));
        assert_eq!(out.candidate.unwrap().desc, exact);
    }

    #[test]
    fn all_four_classes_are_probed() {
        let (idx, table) = setup(16);
        let e = Envelope::world(Rank(3), Tag(4));
        for (label, pattern) in [
            ReceivePattern::exact(Rank(3), Tag(4)),
            ReceivePattern::any_source(Tag(4)),
            ReceivePattern::any_tag(Rank(3)),
            ReceivePattern::any_any(),
        ]
        .into_iter()
        .enumerate()
        {
            let d = post(&idx, &table, pattern, label as u64 + 10, label as u64);
            let out = search(&idx, &table, e);
            // Each earlier-posted receive keeps winning (smaller label).
            let expected = if label == 0 {
                d
            } else {
                out.candidate.unwrap().desc
            };
            assert_eq!(out.candidate.unwrap().desc, expected);
        }
        // Consume them one by one; each class must surface in label order.
        let mut seen = Vec::new();
        while let Some(c) = search(&idx, &table, e).candidate {
            seen.push(c.label.0);
            table.slot(c.desc).try_consume(1);
        }
        assert_eq!(seen, vec![10, 11, 12, 13]);
    }

    #[test]
    fn within_bin_order_is_post_order() {
        let (idx, table) = setup(16);
        let first = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(0)), 5, 0);
        let _second = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(0)), 6, 0);
        let out = search(&idx, &table, Envelope::world(Rank(0), Tag(0)));
        assert_eq!(out.candidate.unwrap().desc, first);
    }

    #[test]
    fn depth_counts_live_entries_only() {
        let (idx, table) = setup(1); // force everything into one bin
        let a = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(0)), 0, 0);
        post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(1)), 1, 1);
        post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(2)), 2, 2);
        let out = search(&idx, &table, Envelope::world(Rank(0), Tag(2)));
        assert_eq!(out.depth, 3);
        // Tombstone the head: depth shrinks.
        table.slot(a).try_consume(1);
        let out = search(&idx, &table, Envelope::world(Rank(0), Tag(2)));
        assert_eq!(out.depth, 2);
    }

    #[test]
    fn early_booking_check_skips_and_reports() {
        let (idx, table) = setup(16);
        let a = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(0)), 0, 0);
        let b = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(0)), 1, 0);
        // Lane 0 books the head; lane 2 searches with the check enabled.
        table.slot(a).book(0);
        let e = Envelope::world(Rank(0), Tag(0));
        let below_mask = (1u64 << 2) - 1;
        let out = idx.search(&e, &InlineHashes::of(&e), &table, below_mask);
        assert_eq!(out.candidate.unwrap().desc, b);
        assert!(out.skipped_booked);
        // Without the check the head is still the candidate.
        let out = idx.search(&e, &InlineHashes::of(&e), &table, 0);
        assert_eq!(out.candidate.unwrap().desc, a);
        assert!(!out.skipped_booked);
    }

    #[test]
    fn sweep_removes_tombstones_only() {
        let (idx, table) = setup(1);
        let a = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(0)), 0, 0);
        let b = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(1)), 1, 1);
        table.slot(a).try_consume(3);
        let home = idx.home_of(&ReceivePattern::exact(Rank(0), Tag(0)));
        let removed = idx.sweep(home, &table);
        assert_eq!(removed, vec![a]);
        let out = search(&idx, &table, Envelope::world(Rank(0), Tag(1)));
        assert_eq!(out.candidate.unwrap().desc, b);
        assert_eq!(out.depth, 1);
    }

    #[test]
    fn unlink_removes_a_specific_descriptor() {
        let (idx, table) = setup(1);
        let a = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(0)), 0, 0);
        let b = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(0)), 1, 0);
        let home = idx.home_of(&ReceivePattern::exact(Rank(0), Tag(0)));
        idx.unlink(home, a);
        let out = search(&idx, &table, Envelope::world(Rank(0), Tag(0)));
        assert_eq!(out.candidate.unwrap().desc, b);
    }

    #[test]
    fn walk_sequence_shifts_by_rank() {
        let (idx, table) = setup(16);
        let p = ReceivePattern::exact(Rank(0), Tag(0));
        let ids: Vec<DescId> = (0..4).map(|i| post(&idx, &table, p, i, 7)).collect();
        let home = idx.home_of(&p);
        for (rank, &expect) in ids.iter().enumerate() {
            let got = idx.walk_sequence(home, ids[0], rank, SeqId(7), &table, 1);
            assert_eq!(got, Some(expect), "rank {rank}");
        }
        // Rank beyond the sequence fails.
        assert_eq!(
            idx.walk_sequence(home, ids[0], 4, SeqId(7), &table, 1),
            None
        );
    }

    #[test]
    fn walk_sequence_counts_entries_consumed_this_block() {
        let (idx, table) = setup(16);
        let p = ReceivePattern::exact(Rank(0), Tag(0));
        let ids: Vec<DescId> = (0..3).map(|i| post(&idx, &table, p, i, 9)).collect();
        let home = idx.home_of(&p);
        // A lower thread of the current block (epoch 5) already consumed the
        // middle receive; it still counts as a step.
        table.slot(ids[1]).try_consume(5);
        assert_eq!(
            idx.walk_sequence(home, ids[0], 2, SeqId(9), &table, 5),
            Some(ids[2])
        );
        // But a tombstone from an older block aborts the walk.
        let (idx2, table2) = setup(16);
        let ids2: Vec<DescId> = (0..3).map(|i| post(&idx2, &table2, p, i, 9)).collect();
        table2.slot(ids2[1]).try_consume(2);
        assert_eq!(
            idx2.walk_sequence(home, ids2[0], 2, SeqId(9), &table2, 5),
            None
        );
    }

    #[test]
    fn walk_sequence_stops_at_sequence_boundary() {
        let (idx, table) = setup(1); // one bin: both sequences share a chain
        let p1 = ReceivePattern::exact(Rank(0), Tag(0));
        let p2 = ReceivePattern::exact(Rank(0), Tag(1));
        let a = post(&idx, &table, p1, 0, 0);
        let _b = post(&idx, &table, p2, 1, 1);
        let home = idx.home_of(&p1);
        assert_eq!(idx.walk_sequence(home, a, 1, SeqId(0), &table, 1), None);
    }

    #[test]
    fn live_count_tracks_postings_and_consumption() {
        let (idx, table) = setup(8);
        let a = post(&idx, &table, ReceivePattern::exact(Rank(0), Tag(0)), 0, 0);
        post(&idx, &table, ReceivePattern::any_any(), 1, 1);
        assert_eq!(idx.live_count(&table), 2);
        table.slot(a).try_consume(1);
        assert_eq!(idx.live_count(&table), 1);
    }
}
