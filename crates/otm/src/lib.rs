//! **Optimistic Tag Matching** — the core contribution of *"Offloaded MPI
//! message matching: an optimistic approach"* (García et al., SC 2024).
//!
//! The engine matches a stream of incoming MPI messages against posted
//! receives on a lightweight, highly-parallel accelerator model. Blocks of
//! `N` consecutive messages are matched *optimistically* in parallel — as if
//! no other message were being matched — and the MPI ordering constraints
//! are restored afterwards by a conflict-detection and -resolution protocol:
//!
//! 1. **Indexing (§III-B).** Posted receives are split by wildcard usage
//!    into four structures: a hash table keyed on `(src, tag)`, one keyed on
//!    `tag` (source wildcard), one keyed on `src` (tag wildcard), and an
//!    ordered list (both wildcards). Every receive carries a monotone post
//!    label; candidates from different indexes are arbitrated by label.
//! 2. **Optimistic matching (§III-C).** Thread *i* of a block searches the
//!    four indexes for the oldest matching receive and *books* it by setting
//!    bit *i* in the receive's booking bitmap.
//! 3. **Partial barrier (§III-D1).** Thread *i* waits only for threads
//!    *j < i* (earlier messages) to finish booking — later messages can
//!    never steal its receive.
//! 4. **Conflict detection (§III-D2).** A lower bit in the booked receive's
//!    bitmap means an earlier message won the receive; moreover, once *any*
//!    lower thread conflicts, every later thread must also resolve, because
//!    the re-matching lower thread may steal its candidate.
//! 5. **Conflict resolution (§III-D3).** The *fast path* applies when all
//!    threads booked the head of a sequence of compatible receives: thread
//!    with booking-rank *r* shifts to the receive *r* positions down the
//!    sequence, checked via sequence ids. Otherwise the *slow path*
//!    serializes: wait for all lower threads to settle, then re-search.
//!
//! The crate is a faithful host-side implementation of the algorithm; the
//! `dpa-sim` crate embeds it behind a completion-queue/queue-pair interface
//! to model the BlueField-3 DPA deployment of §IV.
//!
//! # Example
//!
//! ```
//! use otm::{Delivery, OtmEngine};
//! use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};
//! use mpi_matching::{MsgHandle, RecvHandle};
//!
//! let mut engine = OtmEngine::new(MatchConfig::small()).unwrap();
//! // The host posts two receives through the command queue.
//! engine.post(ReceivePattern::exact(Rank(0), Tag(7)), RecvHandle(0)).unwrap();
//! engine.post(ReceivePattern::any_source(Tag(9)), RecvHandle(1)).unwrap();
//! // A block of messages arrives and is matched in parallel.
//! let deliveries = engine
//!     .process_block(&[
//!         (Envelope::world(Rank(0), Tag(7)), MsgHandle(0)),
//!         (Envelope::world(Rank(3), Tag(9)), MsgHandle(1)),
//!     ])
//!     .unwrap();
//! assert_eq!(deliveries[0], Delivery::Matched { msg: MsgHandle(0), recv: RecvHandle(0) });
//! assert_eq!(deliveries[1], Delivery::Matched { msg: MsgHandle(1), recv: RecvHandle(1) });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod command;
pub mod engine;
pub mod index;
pub mod metrics;
pub mod ring;
pub mod scheduler;
pub mod shard;
pub mod stats;
pub mod table;
pub mod umq;
mod worker;

pub use command::{Command, CommandOutcome, CommandQueue, DrainReport};
pub use engine::{Delivery, FallbackState, OtmEngine, SequentialOtm};
pub use metrics::EngineMetrics;
pub use stats::{OtmStats, StatsSnapshot};
