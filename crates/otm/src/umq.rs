//! The unexpected-message store (§IV-C).
//!
//! A message with no matching receive is kept until a matching receive is
//! posted. The store mirrors the posted-receive organisation, with one
//! twist: "an unexpected message is indexed in *each* of these data
//! structures, while a posted receive is indexed in only one of them" —
//! because the message cannot know which wildcard class the future receive
//! will use. When a receive is posted, only the index corresponding to its
//! class is searched.
//!
//! The store is only ever accessed from the coordinator side (receive
//! posting and block-end unexpected insertion are serialized with block
//! execution), so it needs no internal synchronization.
//!
//! Entries live in a slab addressed by `(slot, generation)` references; a
//! matched entry frees its slot immediately and bumps the generation, so
//! stale references in the other three index structures are recognized and
//! dropped the next time their bin is scanned (with a global compaction once
//! stale references accumulate).

use mpi_matching::MsgHandle;
use otm_base::envelope::{SourceSel, TagSel};
use otm_base::hash::{bin_of, hash_src, hash_src_tag, hash_tag};
use otm_base::{ArrivalSeq, Envelope, MatchError, ReceivePattern, WildcardClass};
use std::collections::VecDeque;

/// Reference to a slab entry: slot index plus the generation it was
/// allocated under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryRef {
    slot: u32,
    gen: u32,
}

#[derive(Debug, Clone)]
struct UmqEntry {
    env: Envelope,
    handle: MsgHandle,
    arrival: ArrivalSeq,
    gen: u32,
    live: bool,
}

/// A found unexpected message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UmqMatch {
    /// The message's handle.
    pub handle: MsgHandle,
    /// Its arrival sequence number.
    pub arrival: ArrivalSeq,
    /// Live entries examined during the search.
    pub depth: usize,
}

/// The unexpected-message store for one communicator (see module docs).
#[derive(Debug)]
pub struct UnexpectedStore {
    bins: usize,
    capacity: usize,
    slab: Vec<UmqEntry>,
    free: Vec<u32>,
    by_src_tag: Box<[VecDeque<EntryRef>]>,
    by_tag: Box<[VecDeque<EntryRef>]>,
    by_src: Box<[VecDeque<EntryRef>]>,
    order: VecDeque<EntryRef>,
    live: usize,
    stale_refs: usize,
}

fn make_bins(bins: usize) -> Box<[VecDeque<EntryRef>]> {
    (0..bins).map(|_| VecDeque::new()).collect()
}

impl UnexpectedStore {
    /// Creates a store with `bins` bins per index and room for `capacity`
    /// simultaneously waiting messages.
    pub fn new(bins: usize, capacity: usize) -> Self {
        assert!(bins > 0, "UMQ index tables need at least one bin");
        UnexpectedStore {
            bins,
            capacity,
            slab: Vec::new(),
            free: Vec::new(),
            by_src_tag: make_bins(bins),
            by_tag: make_bins(bins),
            by_src: make_bins(bins),
            order: VecDeque::new(),
            live: 0,
            stale_refs: 0,
        }
    }

    /// Number of messages currently waiting.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no messages are waiting.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Remaining capacity (messages that can still be stored).
    pub fn available(&self) -> usize {
        self.capacity - self.live
    }

    /// Inserts an unexpected message into all four indexes.
    ///
    /// Fails with [`MatchError::UnexpectedStoreFull`] at capacity — the
    /// resource-exhaustion condition that forces fallback to software tag
    /// matching (§IV-E).
    pub fn insert(
        &mut self,
        env: Envelope,
        handle: MsgHandle,
        arrival: ArrivalSeq,
    ) -> Result<(), MatchError> {
        if self.live >= self.capacity {
            return Err(MatchError::UnexpectedStoreFull);
        }
        let slot = if let Some(slot) = self.free.pop() {
            let e = &mut self.slab[slot as usize];
            e.env = env;
            e.handle = handle;
            e.arrival = arrival;
            e.live = true;
            slot
        } else {
            let slot = self.slab.len() as u32;
            self.slab.push(UmqEntry {
                env,
                handle,
                arrival,
                gen: 0,
                live: true,
            });
            slot
        };
        let r = EntryRef {
            slot,
            gen: self.slab[slot as usize].gen,
        };
        self.by_src_tag[bin_of(hash_src_tag(env.src, env.tag, env.comm), self.bins)].push_back(r);
        self.by_tag[bin_of(hash_tag(env.tag, env.comm), self.bins)].push_back(r);
        self.by_src[bin_of(hash_src(env.src, env.comm), self.bins)].push_back(r);
        self.order.push_back(r);
        self.live += 1;
        Ok(())
    }

    /// Searches for the oldest waiting message matching a newly posted
    /// receive, consuming it on a hit. Only the index matching the
    /// pattern's wildcard class is searched (§IV-C).
    pub fn match_post(&mut self, pattern: &ReceivePattern) -> Option<UmqMatch> {
        let bin_idx = match pattern.wildcard_class() {
            WildcardClass::None => {
                let (SourceSel::Rank(src), TagSel::Tag(tag)) = (pattern.src, pattern.tag) else {
                    unreachable!("class None has concrete src and tag");
                };
                Some((
                    0usize,
                    bin_of(hash_src_tag(src, tag, pattern.comm), self.bins),
                ))
            }
            WildcardClass::SrcWild => {
                let TagSel::Tag(tag) = pattern.tag else {
                    unreachable!("class SrcWild has a concrete tag");
                };
                Some((1, bin_of(hash_tag(tag, pattern.comm), self.bins)))
            }
            WildcardClass::TagWild => {
                let SourceSel::Rank(src) = pattern.src else {
                    unreachable!("class TagWild has a concrete src");
                };
                Some((2, bin_of(hash_src(src, pattern.comm), self.bins)))
            }
            WildcardClass::BothWild => None,
        };
        let result = {
            let refs = match bin_idx {
                Some((0, b)) => &mut self.by_src_tag[b],
                Some((1, b)) => &mut self.by_tag[b],
                Some((2, b)) => &mut self.by_src[b],
                None => &mut self.order,
                _ => unreachable!(),
            };
            Self::scan(&mut self.slab, refs, pattern, &mut self.stale_refs)
        };
        if let Some((slot, m)) = result {
            self.live -= 1;
            // The generation bump at consumption already invalidated the
            // stale references in the other three views, so the slot is
            // immediately safe to reuse.
            self.reclaim(slot);
            if self.stale_refs > 4 * self.capacity.max(16) {
                self.compact();
            }
            return Some(m);
        }
        None
    }

    /// Scans one reference deque; consumes and returns the first live
    /// match. References are only ever *popped from the front* — an O(1)
    /// deque operation — never removed from the middle: a stale or consumed
    /// reference in the interior stays behind as a tombstone (recognized by
    /// its generation mismatch) until a later front pop or the global
    /// compaction sweeps it. The old `VecDeque::remove(i)` shifted the tail
    /// on every hit, turning heavy-wildcard churn quadratic.
    fn scan(
        slab: &mut [UmqEntry],
        refs: &mut VecDeque<EntryRef>,
        pattern: &ReceivePattern,
        stale_refs: &mut usize,
    ) -> Option<(u32, UmqMatch)> {
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < refs.len() {
            let r = refs[i];
            let entry = &mut slab[r.slot as usize];
            if entry.gen != r.gen || !entry.live {
                if i == 0 {
                    refs.pop_front();
                    *stale_refs = stale_refs.saturating_sub(1);
                } else {
                    // Interior tombstone: skip it, leave it counted.
                    i += 1;
                }
                continue;
            }
            depth += 1;
            if pattern.matches(&entry.env) {
                entry.live = false;
                entry.gen = entry.gen.wrapping_add(1);
                let m = UmqMatch {
                    handle: entry.handle,
                    arrival: entry.arrival,
                    depth,
                };
                let slot = r.slot;
                if i == 0 {
                    refs.pop_front();
                    // The other three indexes now hold stale references.
                    *stale_refs += 3;
                } else {
                    // The consumed entry's reference becomes a tombstone
                    // here too (the generation bump above invalidated it),
                    // so all four views now hold one.
                    *stale_refs += 4;
                }
                return Some((slot, m));
            }
            i += 1;
        }
        None
    }

    /// Marks the freed slot reusable (called from the match path and the
    /// compaction sweep); stale references elsewhere are resolved by
    /// generation mismatch.
    fn reclaim(&mut self, slot: u32) {
        self.free.push(slot);
    }

    /// Drops every stale reference from every index and reclaims dead slots.
    fn compact(&mut self) {
        let slab = &mut self.slab;
        let mut dropped = 0usize;
        let mut purge = |refs: &mut VecDeque<EntryRef>| {
            let before = refs.len();
            refs.retain(|r| {
                let e = &slab[r.slot as usize];
                e.gen == r.gen && e.live
            });
            dropped += before - refs.len();
        };
        for group in [&mut self.by_src_tag, &mut self.by_tag, &mut self.by_src] {
            for refs in group.iter_mut() {
                purge(refs);
            }
        }
        purge(&mut self.order);
        self.stale_refs = 0;
        // Reclaim every dead slot not already on the free list.
        let free_set: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        let dead: Vec<u32> = self
            .slab
            .iter()
            .enumerate()
            .filter(|(i, e)| !e.live && !free_set.contains(&(*i as u32)))
            .map(|(i, _)| i as u32)
            .collect();
        for slot in dead {
            self.reclaim(slot);
        }
        let _ = dropped;
    }

    /// Drains every waiting message in arrival order. Used by the software
    /// fallback to migrate state off the device.
    pub fn drain(&mut self) -> Vec<(Envelope, MsgHandle)> {
        let mut out = Vec::with_capacity(self.live);
        for r in std::mem::take(&mut self.order) {
            let e = &mut self.slab[r.slot as usize];
            if e.gen == r.gen && e.live {
                e.live = false;
                e.gen = e.gen.wrapping_add(1);
                out.push((e.env, e.handle));
            }
        }
        self.live = 0;
        self.compact();
        out
    }

    /// Non-destructive probe (`MPI_Iprobe` semantics): the oldest waiting
    /// message matching `pattern`, if any. Searches the arrival-order view
    /// read-only (no stale-reference purging).
    pub fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.order.iter().find_map(|r| {
            let e = &self.slab[r.slot as usize];
            (e.gen == r.gen && e.live && pattern.matches(&e.env)).then_some(e.handle)
        })
    }

    /// Waiting messages in arrival order (diagnostics and tests).
    pub fn waiting(&self) -> Vec<MsgHandle> {
        self.order
            .iter()
            .filter(|r| {
                let e = &self.slab[r.slot as usize];
                e.gen == r.gen && e.live
            })
            .map(|r| self.slab[r.slot as usize].handle)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::{Rank, Tag};

    fn env(src: u32, tag: u32) -> Envelope {
        Envelope::world(Rank(src), Tag(tag))
    }

    #[test]
    fn insert_then_match_exact() {
        let mut u = UnexpectedStore::new(16, 8);
        u.insert(env(1, 2), MsgHandle(0), ArrivalSeq(0)).unwrap();
        let m = u
            .match_post(&ReceivePattern::exact(Rank(1), Tag(2)))
            .unwrap();
        assert_eq!(m.handle, MsgHandle(0));
        assert!(u.is_empty());
    }

    #[test]
    fn miss_leaves_store_untouched() {
        let mut u = UnexpectedStore::new(16, 8);
        u.insert(env(1, 2), MsgHandle(0), ArrivalSeq(0)).unwrap();
        assert!(u
            .match_post(&ReceivePattern::exact(Rank(1), Tag(3)))
            .is_none());
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn every_wildcard_class_can_find_the_message() {
        for pattern in [
            ReceivePattern::exact(Rank(1), Tag(2)),
            ReceivePattern::any_source(Tag(2)),
            ReceivePattern::any_tag(Rank(1)),
            ReceivePattern::any_any(),
        ] {
            let mut u = UnexpectedStore::new(16, 8);
            u.insert(env(1, 2), MsgHandle(7), ArrivalSeq(3)).unwrap();
            let m = u
                .match_post(&pattern)
                .unwrap_or_else(|| panic!("miss for {pattern}"));
            assert_eq!(m.handle, MsgHandle(7));
            assert_eq!(m.arrival, ArrivalSeq(3));
        }
    }

    #[test]
    fn c2_oldest_matching_message_wins() {
        let mut u = UnexpectedStore::new(16, 8);
        u.insert(env(1, 2), MsgHandle(0), ArrivalSeq(0)).unwrap();
        u.insert(env(1, 2), MsgHandle(1), ArrivalSeq(1)).unwrap();
        let m = u
            .match_post(&ReceivePattern::exact(Rank(1), Tag(2)))
            .unwrap();
        assert_eq!(m.handle, MsgHandle(0));
        let m = u
            .match_post(&ReceivePattern::exact(Rank(1), Tag(2)))
            .unwrap();
        assert_eq!(m.handle, MsgHandle(1));
    }

    #[test]
    fn capacity_forces_fallback() {
        let mut u = UnexpectedStore::new(4, 2);
        u.insert(env(0, 0), MsgHandle(0), ArrivalSeq(0)).unwrap();
        u.insert(env(0, 1), MsgHandle(1), ArrivalSeq(1)).unwrap();
        assert_eq!(
            u.insert(env(0, 2), MsgHandle(2), ArrivalSeq(2)),
            Err(MatchError::UnexpectedStoreFull)
        );
        // Draining one makes room again.
        u.match_post(&ReceivePattern::exact(Rank(0), Tag(0)))
            .unwrap();
        u.insert(env(0, 2), MsgHandle(2), ArrivalSeq(2)).unwrap();
    }

    #[test]
    fn stale_references_are_skipped_in_other_indexes() {
        let mut u = UnexpectedStore::new(16, 8);
        u.insert(env(1, 2), MsgHandle(0), ArrivalSeq(0)).unwrap();
        u.insert(env(3, 2), MsgHandle(1), ArrivalSeq(1)).unwrap();
        // Consume message 0 via the exact index; the tag index still holds a
        // stale reference to it.
        u.match_post(&ReceivePattern::exact(Rank(1), Tag(2)))
            .unwrap();
        // The ANY_SOURCE search over the tag index must skip it and find 1.
        let m = u.match_post(&ReceivePattern::any_source(Tag(2))).unwrap();
        assert_eq!(m.handle, MsgHandle(1));
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_references() {
        let mut u = UnexpectedStore::new(1, 8); // one bin: maximal aliasing
        u.insert(env(1, 1), MsgHandle(0), ArrivalSeq(0)).unwrap();
        u.match_post(&ReceivePattern::exact(Rank(1), Tag(1)))
            .unwrap();
        // Force a compaction cycle to reclaim the slot, then reuse it.
        u.compact();
        u.insert(env(2, 2), MsgHandle(1), ArrivalSeq(1)).unwrap();
        // Searching for the OLD message must miss: the old references were
        // invalidated by the generation bump even though the slot is reused.
        assert!(u
            .match_post(&ReceivePattern::exact(Rank(1), Tag(1)))
            .is_none());
        let m = u
            .match_post(&ReceivePattern::exact(Rank(2), Tag(2)))
            .unwrap();
        assert_eq!(m.handle, MsgHandle(1));
    }

    #[test]
    fn depth_counts_live_entries_in_searched_index_only() {
        let mut u = UnexpectedStore::new(1, 16);
        for i in 0..5u64 {
            u.insert(env(0, i as u32), MsgHandle(i), ArrivalSeq(i))
                .unwrap();
        }
        let m = u
            .match_post(&ReceivePattern::exact(Rank(0), Tag(4)))
            .unwrap();
        assert_eq!(m.depth, 5);
    }

    #[test]
    fn waiting_lists_messages_in_arrival_order() {
        let mut u = UnexpectedStore::new(8, 8);
        u.insert(env(0, 0), MsgHandle(0), ArrivalSeq(0)).unwrap();
        u.insert(env(1, 1), MsgHandle(1), ArrivalSeq(1)).unwrap();
        u.insert(env(2, 2), MsgHandle(2), ArrivalSeq(2)).unwrap();
        u.match_post(&ReceivePattern::exact(Rank(1), Tag(1)))
            .unwrap();
        assert_eq!(u.waiting(), vec![MsgHandle(0), MsgHandle(2)]);
    }

    #[test]
    fn interior_matches_leave_tombstones_not_shifts() {
        let mut u = UnexpectedStore::new(1, 8); // one bin: all refs share a deque
        for i in 0..4u64 {
            u.insert(env(0, i as u32), MsgHandle(i), ArrivalSeq(i))
                .unwrap();
        }
        // Consume the *last* message: its reference sits in the interior of
        // the scanned deque, so it must stay behind as a tombstone instead
        // of shifting the tail (the old quadratic `VecDeque::remove`).
        assert_eq!(u.by_src_tag[0].len(), 4);
        u.match_post(&ReceivePattern::exact(Rank(0), Tag(3)))
            .unwrap();
        assert_eq!(
            u.by_src_tag[0].len(),
            4,
            "interior consumption must not shift the deque"
        );
        assert_eq!(u.stale_refs, 4, "all four views hold a tombstone");
        // The tombstone is invisible to every later operation.
        assert_eq!(u.waiting(), vec![MsgHandle(0), MsgHandle(1), MsgHandle(2)]);
        assert!(u
            .match_post(&ReceivePattern::exact(Rank(0), Tag(3)))
            .is_none());
        // Front consumption still pops eagerly (O(1)).
        u.match_post(&ReceivePattern::exact(Rank(0), Tag(0)))
            .unwrap();
        assert_eq!(u.by_src_tag[0].len(), 3);
    }

    #[test]
    fn wildcard_churn_keeps_reference_deques_bounded() {
        // Reverse-order wildcard consumption: every match hits the interior
        // of the scanned deque, the worst case for tombstone accumulation.
        // Compaction (triggered by the stale-reference counter) must keep
        // every view bounded while matching stays correct.
        let mut u = UnexpectedStore::new(1, 32);
        for round in 0..300u64 {
            for i in 0..4u64 {
                u.insert(
                    env(0, i as u32),
                    MsgHandle(round * 4 + i),
                    ArrivalSeq(round * 4 + i),
                )
                .unwrap();
            }
            for i in (0..4u64).rev() {
                let m = u
                    .match_post(&ReceivePattern::any_source(Tag(i as u32)))
                    .unwrap();
                assert_eq!(m.handle, MsgHandle(round * 4 + i));
            }
        }
        assert!(u.is_empty());
        let bound = 4 * 32 + 32; // compaction threshold plus live slack
        assert!(u.order.len() <= bound, "order grew to {}", u.order.len());
        assert!(
            u.by_tag[0].len() <= bound,
            "by_tag grew to {}",
            u.by_tag[0].len()
        );
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut u = UnexpectedStore::new(4, 32);
        for round in 0..200u64 {
            for i in 0..8u64 {
                u.insert(
                    env((i % 3) as u32, (i % 5) as u32),
                    MsgHandle(round * 8 + i),
                    ArrivalSeq(round * 8 + i),
                )
                .unwrap();
            }
            for i in 0..8u64 {
                let p = ReceivePattern::exact(Rank((i % 3) as u32), Tag((i % 5) as u32));
                assert!(u.match_post(&p).is_some(), "round {round}, i {i}");
            }
        }
        assert!(u.is_empty());
        assert!(u.slab.len() <= 64, "slab grew to {}", u.slab.len());
    }
}
