//! Bounded per-communicator submission rings (§IV-E command queues).
//!
//! One [`CommandRing`] hangs off every `CommShard`: host threads submitting
//! commands for that communicator push onto its ring without touching any
//! other communicator's state, and the drain coordinator pops from the
//! consumer end. The layout is the classic bounded MPMC ring of per-slot
//! sequence stamps (Vyukov): each slot carries an atomic *stamp* that encodes
//! which lap of the ring last wrote or read it, so producers and the consumer
//! coordinate through slot-local loads instead of one shared lock.
//!
//! Because the crate forbids `unsafe`, the value cell of each slot is a
//! `parking_lot::Mutex<Option<_>>` rather than an `UnsafeCell`. The mutex is
//! *never contended*: the stamp protocol guarantees at most one thread owns a
//! slot's cell at any time, so every lock acquisition is the uncontended
//! fast path (one CAS on the lock byte). All cross-thread coordination —
//! including full/empty detection — still happens on the stamps and on the
//! head/tail counters, which is what makes submission wait-free in practice:
//! a producer claims a slot with a single `fetch`-style CAS on `tail` and
//! never waits for other producers to finish publishing.
//!
//! A full ring is a *backpressure signal*, not a blocking condition:
//! [`CommandRing::push`] hands the command back so the caller can surface
//! `MatchError::SubmissionRingFull` and retry after a drain frees slots.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::command::Command;

/// Pads the wrapped value to a 64-byte cache line so the hot atomics
/// (per-slot stamps, head, tail) don't false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CachePadded<T>(T);

/// One ring slot: the stamp encodes the slot's lap state, the cell holds the
/// ticketed command while the slot is occupied.
///
/// Stamp protocol for the slot at index `i = pos & mask`:
/// - `stamp == pos`      → empty, writable by the producer that claims `pos`
/// - `stamp == pos + 1`  → full, readable by the consumer at `pos`
/// - anything else       → the slot belongs to a different lap (ring full
///   from the producer's view, empty from the consumer's)
#[derive(Debug)]
struct Slot {
    stamp: AtomicUsize,
    cell: Mutex<Option<(u64, Command)>>,
}

/// A bounded multi-producer single-consumer ring of ticketed commands.
///
/// Tickets are the global submission sequence numbers assigned by the
/// `CommandQueue` facade; the drain merges ring heads by ticket to recover
/// the global submission order when it needs it (consecutive packing).
#[derive(Debug)]
pub struct CommandRing {
    slots: Box<[CachePadded<Slot>]>,
    mask: usize,
    /// Next position a producer will claim.
    tail: CachePadded<AtomicUsize>,
    /// Next position the consumer will read.
    head: CachePadded<AtomicUsize>,
}

impl CommandRing {
    /// A ring with at least `capacity` slots (rounded up to a power of two,
    /// minimum 2 so head/tail arithmetic stays trivially correct).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| {
                CachePadded(Slot {
                    stamp: AtomicUsize::new(i),
                    cell: Mutex::new(None),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        CommandRing {
            slots,
            mask: cap - 1,
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Number of slots (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pushes a ticketed command; on a full ring the command is handed back
    /// so the caller can surface retryable backpressure instead of blocking.
    pub fn push(&self, ticket: u64, cmd: Command) -> Result<(), (u64, Command)> {
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask].0;
            let stamp = slot.stamp.load(Ordering::Acquire);
            let diff = stamp as isize - pos as isize;
            if diff == 0 {
                // The slot is writable at `pos`; claim it by advancing tail.
                match self.tail.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own the slot exclusively until the stamp below
                        // publishes it, so this lock never contends.
                        *slot.cell.lock() = Some((ticket, cmd));
                        slot.stamp.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                // The consumer hasn't freed this slot from the previous lap:
                // the ring is full. Hand the command back as backpressure.
                return Err((ticket, cmd));
            } else {
                // Another producer claimed `pos` already; chase the tail.
                pos = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest published command, or `None` if the ring is empty.
    ///
    /// A slot that a producer has claimed but not yet published reads as
    /// empty — the command logically belongs to the *next* drain, exactly
    /// like a submit that raced past the drain's last queue inspection on
    /// the mutex path.
    pub fn pop(&self) -> Option<(u64, Command)> {
        let mut pos = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask].0;
            let stamp = slot.stamp.load(Ordering::Acquire);
            let diff = stamp as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.head.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = slot.cell.lock().take();
                        slot.stamp
                            .store(pos.wrapping_add(self.slots.len()), Ordering::Release);
                        debug_assert!(value.is_some(), "stamped slot must hold a value");
                        return value;
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                // Slot not yet published: the ring is (transiently) empty.
                return None;
            } else {
                pos = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// The ticket at the ring's head without consuming it, or `None` when
    /// the ring has no published head. The drain's k-way merge uses this to
    /// pick the lane with the globally oldest command.
    pub fn peek_ticket(&self) -> Option<u64> {
        let pos = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[pos & self.mask].0;
        if slot.stamp.load(Ordering::Acquire) != pos.wrapping_add(1) {
            return None;
        }
        // Published and the consumer is single (the drain gate serializes
        // drains), so the value cannot disappear between the stamp check and
        // this read.
        slot.cell.lock().as_ref().map(|(ticket, _)| *ticket)
    }

    /// Number of commands currently in the ring (racy under concurrent
    /// producers — a monitoring snapshot, not a synchronization primitive).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently holds no commands (same caveat as
    /// [`CommandRing::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every published command, oldest first.
    pub fn drain(&self) -> VecDeque<(u64, Command)> {
        let mut out = VecDeque::new();
        while let Some(entry) = self.pop() {
            out.push_back(entry);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_matching::MsgHandle;
    use otm_base::{CommId, Envelope, Rank, Tag};

    fn arrival(seq: u64) -> Command {
        Command::Arrival {
            env: Envelope::new(Rank(0), Tag(7), CommId(1)),
            msg: MsgHandle(seq),
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(CommandRing::new(0).capacity(), 2);
        assert_eq!(CommandRing::new(1).capacity(), 2);
        assert_eq!(CommandRing::new(3).capacity(), 4);
        assert_eq!(CommandRing::new(1024).capacity(), 1024);
        assert_eq!(CommandRing::new(1025).capacity(), 2048);
    }

    #[test]
    fn push_pop_preserves_fifo_order() {
        let ring = CommandRing::new(8);
        for i in 0..5 {
            ring.push(i, arrival(i)).unwrap();
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5u64 {
            let (ticket, cmd) = ring.pop().expect("value present");
            assert_eq!(ticket, i);
            assert!(matches!(cmd, Command::Arrival { msg, .. } if msg.0 == i));
        }
        assert!(ring.pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_hands_the_command_back() {
        let ring = CommandRing::new(2);
        ring.push(0, arrival(0)).unwrap();
        ring.push(1, arrival(1)).unwrap();
        let (ticket, cmd) = ring.push(2, arrival(2)).unwrap_err();
        assert_eq!(ticket, 2);
        assert!(matches!(cmd, Command::Arrival { msg, .. } if msg.0 == 2));
        // Freeing one slot makes the retry succeed.
        assert_eq!(ring.pop().unwrap().0, 0);
        ring.push(2, cmd).unwrap();
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn peek_ticket_tracks_the_head_without_consuming() {
        let ring = CommandRing::new(4);
        assert_eq!(ring.peek_ticket(), None);
        ring.push(10, arrival(0)).unwrap();
        ring.push(11, arrival(1)).unwrap();
        assert_eq!(ring.peek_ticket(), Some(10));
        assert_eq!(ring.peek_ticket(), Some(10), "peek does not consume");
        ring.pop().unwrap();
        assert_eq!(ring.peek_ticket(), Some(11));
        ring.pop().unwrap();
        assert_eq!(ring.peek_ticket(), None);
    }

    #[test]
    fn ring_survives_many_wraparound_laps() {
        let ring = CommandRing::new(4);
        for lap in 0..100u64 {
            for i in 0..4 {
                ring.push(lap * 4 + i, arrival(lap * 4 + i)).unwrap();
            }
            assert!(ring.push(u64::MAX, arrival(0)).is_err(), "ring is full");
            for i in 0..4 {
                assert_eq!(ring.pop().unwrap().0, lap * 4 + i);
            }
            assert!(ring.is_empty());
        }
    }

    #[test]
    fn drain_empties_in_order() {
        let ring = CommandRing::new(8);
        for i in 0..6 {
            ring.push(i, arrival(i)).unwrap();
        }
        let drained = ring.drain();
        assert_eq!(
            drained.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert!(ring.is_empty());
    }

    #[test]
    fn concurrent_producers_deliver_every_command_exactly_once() {
        use std::sync::Arc;
        let ring = Arc::new(CommandRing::new(1024));
        let producers = 4;
        let per_producer = 200u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        let ticket = p as u64 * per_producer + i;
                        let mut entry = (ticket, arrival(ticket));
                        loop {
                            match ring.push(entry.0, entry.1) {
                                Ok(()) => break,
                                Err(back) => {
                                    entry = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut tickets: Vec<u64> = ring.drain().into_iter().map(|(t, _)| t).collect();
        tickets.sort_unstable();
        assert_eq!(
            tickets,
            (0..producers as u64 * per_producer).collect::<Vec<_>>()
        );
    }
}
