//! Shared state coordinating one block of parallel matching.
//!
//! The coordinator (the thread owning [`OtmEngine`](crate::engine::OtmEngine))
//! publishes a block of up to `N` messages, wakes the persistent worker
//! pool, and waits for every active lane to settle. Within a block, workers
//! synchronize through three monotone bitmaps that implement the paper's
//! partial barriers (§III-D1):
//!
//! * `booked` — lane *i* has finished its optimistic search and booked its
//!   candidate; lane *i* waits for all bits `j < i` before conflict
//!   detection;
//! * `detected` — lane *i* has published its conflict flags; waiting on the
//!   lower bits makes the `conflicted`/`forced` flag bitmaps of all earlier
//!   lanes readable;
//! * `settled` — lane *i* has produced its final result; the slow path
//!   waits on the lower bits before re-searching.
//!
//! All bitmaps are reset by the coordinator between blocks, while no worker
//! is inside the block — workers are gated by the epoch in [`Control`].

use crate::index::PrqIndexes;
use crate::table::ReceiveTable;
use mpi_matching::MsgHandle;
use otm_base::{Envelope, InlineHashes};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-communicator matching state shared with the workers.
#[derive(Debug)]
pub struct CommShared {
    /// The fixed-size receive descriptor table.
    pub table: ReceiveTable,
    /// The four posted-receive index structures.
    pub prq: PrqIndexes,
    /// The communicator's matching hints (§VII). Fixed at communicator
    /// creation, like the DPA resources themselves (§IV-E).
    pub hints: otm_base::CommHints,
}

/// One lane's input for the current block.
#[derive(Debug, Clone)]
pub struct LaneData {
    /// The incoming message's envelope.
    pub env: Envelope,
    /// The caller's message handle.
    pub handle: MsgHandle,
    /// Sender-side inline hashes (§IV-D).
    pub hashes: InlineHashes,
    /// The communicator state the message matches against (pre-resolved by
    /// the coordinator so workers never touch the communicator map).
    pub comm: Arc<CommShared>,
}

/// Lane result encoding stored in [`BlockShared::results`].
pub mod result_code {
    /// Lane has not produced a result yet.
    pub const UNSET: u64 = u64::MAX;
    /// The message was unexpected.
    pub const UNEXPECTED: u64 = u64::MAX - 1;
    // Any other value is the matched descriptor id.
}

/// Epoch/stop gate between the coordinator and the workers.
#[derive(Debug, Default)]
pub struct Control {
    /// Current block number; workers run a block when this exceeds the last
    /// epoch they processed.
    pub epoch: u64,
    /// Lanes that finished the current block.
    pub done: usize,
    /// Tells workers to exit.
    pub stop: bool,
}

/// All state shared between the coordinator and the worker pool.
#[derive(Debug)]
pub struct BlockShared {
    /// Gate + done counting.
    pub control: Mutex<Control>,
    /// Workers wait here for a new epoch.
    pub start_cv: Condvar,
    /// The coordinator waits here for `done == active`.
    pub done_cv: Condvar,
    /// The block's lanes. Written by the coordinator strictly between
    /// blocks.
    pub lanes: RwLock<Vec<LaneData>>,
    /// Monotone block number used to stamp consumed descriptors.
    pub epoch: AtomicU64,
    /// Partial-barrier bitmap: optimistic phase finished.
    pub booked: AtomicU64,
    /// Partial-barrier bitmap: conflict flags published.
    pub detected: AtomicU64,
    /// Partial-barrier bitmap: final result produced.
    pub settled: AtomicU64,
    /// Flag bitmap: lane detected a direct conflict.
    pub conflicted: AtomicU64,
    /// Flag bitmap: lane skipped a lower-booked receive during the search
    /// (early-booking check) — poisons the fast path of later lanes.
    pub forced: AtomicU64,
    /// Per-lane result (see [`result_code`]).
    pub results: Vec<AtomicU64>,
    /// Per-lane descriptor booked in the optimistic phase (`u32::MAX` =
    /// none); the coordinator clears these bitmaps at block end.
    pub booked_desc: Vec<AtomicU32>,
    /// Set when a worker panicked; the engine refuses further work.
    pub poisoned: AtomicBool,
}

impl BlockShared {
    /// Creates the shared state for a pool of `n_lanes` workers.
    pub fn new(n_lanes: usize) -> Self {
        BlockShared {
            control: Mutex::new(Control::default()),
            start_cv: Condvar::new(),
            done_cv: Condvar::new(),
            lanes: RwLock::new(Vec::new()),
            epoch: AtomicU64::new(0),
            booked: AtomicU64::new(0),
            detected: AtomicU64::new(0),
            settled: AtomicU64::new(0),
            conflicted: AtomicU64::new(0),
            forced: AtomicU64::new(0),
            results: (0..n_lanes)
                .map(|_| AtomicU64::new(result_code::UNSET))
                .collect(),
            booked_desc: (0..n_lanes).map(|_| AtomicU32::new(u32::MAX)).collect(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Resets the per-block state. Coordinator context, no block in flight.
    pub fn reset_for_block(&self) {
        self.booked.store(0, Ordering::Relaxed);
        self.detected.store(0, Ordering::Relaxed);
        self.settled.store(0, Ordering::Relaxed);
        self.conflicted.store(0, Ordering::Relaxed);
        self.forced.store(0, Ordering::Relaxed);
        for r in &self.results {
            r.store(result_code::UNSET, Ordering::Relaxed);
        }
        for b in &self.booked_desc {
            b.store(u32::MAX, Ordering::Relaxed);
        }
    }

    /// Spin-waits until every bit of `mask` is set in `bitmap`.
    ///
    /// Intra-block waits are expected to be short (the peer threads are
    /// running the same few-microsecond phases), so we spin briefly with a
    /// CPU relaxation hint; past that, the peer is evidently not running
    /// (fewer cores than lanes — this simulation host, unlike a 256-thread
    /// DPA, may be heavily oversubscribed), so we yield on every further
    /// iteration to let the scheduler run it.
    #[inline]
    pub fn wait_bits(bitmap: &AtomicU64, mask: u64) {
        let mut spins = 0u32;
        while bitmap.load(Ordering::Acquire) & mask != mask {
            if spins < 32 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Bit mask of all lanes strictly below `lane`.
#[inline]
pub fn below_mask(lane: usize) -> u64 {
    (1u64 << lane) - 1
}

/// Bit mask of `n` active lanes (lanes `0..n`).
#[inline]
pub fn active_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_cover_expected_lanes() {
        assert_eq!(below_mask(0), 0);
        assert_eq!(below_mask(3), 0b111);
        assert_eq!(active_mask(0), 0);
        assert_eq!(active_mask(4), 0b1111);
        assert_eq!(active_mask(64), u64::MAX);
    }

    #[test]
    fn reset_clears_everything() {
        let s = BlockShared::new(4);
        s.booked.store(7, Ordering::Relaxed);
        s.conflicted.store(3, Ordering::Relaxed);
        s.results[2].store(5, Ordering::Relaxed);
        s.booked_desc[1].store(9, Ordering::Relaxed);
        s.reset_for_block();
        assert_eq!(s.booked.load(Ordering::Relaxed), 0);
        assert_eq!(s.conflicted.load(Ordering::Relaxed), 0);
        assert_eq!(s.results[2].load(Ordering::Relaxed), result_code::UNSET);
        assert_eq!(s.booked_desc[1].load(Ordering::Relaxed), u32::MAX);
    }

    #[test]
    fn wait_bits_returns_once_mask_is_set() {
        use std::sync::Arc;
        let bitmap = Arc::new(AtomicU64::new(0));
        let b2 = Arc::clone(&bitmap);
        let setter = std::thread::spawn(move || {
            for i in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(1));
                b2.fetch_or(1 << i, Ordering::Release);
            }
        });
        BlockShared::wait_bits(&bitmap, 0b111);
        assert_eq!(bitmap.load(Ordering::Acquire) & 0b111, 0b111);
        setter.join().unwrap();
    }
}
