//! The fixed-size receive descriptor table (§III-B).
//!
//! "Receive descriptors are stored in a fixed-size table, where the size of
//! the table determines the maximum number of receives that can be posted at
//! the same time." Each slot holds the matching payload (pattern, post
//! label, sequence id, user handle, home index location) plus the atomics
//! the parallel protocol operates on: the lifecycle state, the *booking
//! bitmap* (one bit per block thread, §III-C) and the epoch of the block
//! that consumed the receive (needed to keep fast-path rank walks stable
//! while tombstones from older blocks are skipped).
//!
//! Slot allocation and release happen only on the coordinator side (receive
//! posting and block-end cleanup are serialized with block execution), so
//! the free list lives outside this shared structure; workers only ever
//! read payloads and update atomics.

use otm_base::{MatchError, PostLabel, ReceivePattern, SeqId, WildcardClass};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Index of a descriptor slot within the table.
pub type DescId = u32;

/// Lifecycle states of a descriptor slot.
pub mod state {
    /// Slot is unused and on the free list.
    pub const FREE: u8 = 0;
    /// Slot holds a posted, not-yet-matched receive.
    pub const POSTED: u8 = 1;
    /// Slot's receive has been matched; the slot is a tombstone until the
    /// coordinator unlinks and frees it.
    pub const CONSUMED: u8 = 2;
}

/// Where a posted receive was indexed, so consumption can unlink it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexHome {
    /// Which of the four index structures holds the receive.
    pub class: WildcardClass,
    /// Bin within the class's table (0 for the both-wildcard list).
    pub bin: usize,
}

/// The matching payload of a posted receive.
///
/// Written by the coordinator when the slot is allocated (under the write
/// lock) and read by block workers during searches (under read locks);
/// workers never write it.
#[derive(Debug, Clone, Copy)]
pub struct Payload {
    /// What this receive matches.
    pub pattern: ReceivePattern,
    /// Posting-order label arbitrating C1 across indexes (§III-C).
    pub label: PostLabel,
    /// Sequence id of the run of compatible receives this one belongs to
    /// (§III-D3a).
    pub seq: SeqId,
    /// Caller's receive handle, returned on a match.
    pub handle: u64,
    /// Where the receive is indexed.
    pub home: IndexHome,
}

/// One slot of the descriptor table.
#[derive(Debug)]
pub struct Slot {
    payload: RwLock<Payload>,
    state: AtomicU8,
    /// Booking bitmap: bit *i* set means block thread *i* optimistically
    /// booked this receive (§III-C). Cleared by the coordinator at block end
    /// so bitmaps stay monotone *within* a block — the fast-path rank
    /// computation depends on that.
    booking: AtomicU64,
    /// Block number during which the receive was consumed. Fast-path rank
    /// walks count entries consumed in the *current* block (they are being
    /// taken by lower-ranked threads) but skip older tombstones.
    consumed_epoch: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            payload: RwLock::new(Payload {
                pattern: ReceivePattern::any_any(),
                label: PostLabel::ZERO,
                seq: SeqId::ZERO,
                handle: 0,
                home: IndexHome {
                    class: WildcardClass::BothWild,
                    bin: 0,
                },
            }),
            state: AtomicU8::new(state::FREE),
            booking: AtomicU64::new(0),
            consumed_epoch: AtomicU64::new(0),
        }
    }

    /// Reads the payload (shared lock; uncontended in the common case).
    #[inline]
    pub fn payload(&self) -> Payload {
        *self.payload.read()
    }

    /// Current lifecycle state.
    #[inline]
    pub fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    /// Whether the slot currently holds a live (posted) receive.
    #[inline]
    pub fn is_posted(&self) -> bool {
        self.state() == state::POSTED
    }

    /// Books this receive for block thread `lane`, returning the bitmap
    /// value *before* the booking.
    #[inline]
    pub fn book(&self, lane: usize) -> u64 {
        self.booking.fetch_or(1u64 << lane, Ordering::AcqRel)
    }

    /// Loads the booking bitmap.
    #[inline]
    pub fn booking(&self) -> u64 {
        self.booking.load(Ordering::Acquire)
    }

    /// Clears the booking bitmap (block-end cleanup).
    #[inline]
    pub fn clear_booking(&self) {
        self.booking.store(0, Ordering::Release);
    }

    /// Attempts to consume the receive: `POSTED → CONSUMED`, stamping the
    /// consuming block's epoch. Returns `true` on success; `false` means
    /// another thread consumed it first.
    #[inline]
    pub fn try_consume(&self, epoch: u64) -> bool {
        // Stamp the epoch before publishing CONSUMED so any thread that
        // observes the state also observes a correct epoch.
        self.consumed_epoch.store(epoch, Ordering::Release);
        self.state
            .compare_exchange(
                state::POSTED,
                state::CONSUMED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// The epoch stamped by [`Slot::try_consume`]. Meaningful only while the
    /// state is `CONSUMED`.
    #[inline]
    pub fn consumed_epoch(&self) -> u64 {
        self.consumed_epoch.load(Ordering::Acquire)
    }
}

/// The fixed-size descriptor table plus its coordinator-owned free list.
#[derive(Debug)]
pub struct ReceiveTable {
    slots: Box<[Slot]>,
    /// Free slot ids. Only the coordinator allocates and frees, always
    /// outside the parallel block phase, so no lock is needed — the table is
    /// carried behind an `Arc` and this field behind the engine's `&mut`.
    free: parking_lot::Mutex<Vec<DescId>>,
}

impl ReceiveTable {
    /// Creates a table with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::new()).collect();
        let free: Vec<DescId> = (0..capacity as DescId).rev().collect();
        ReceiveTable {
            slots: slots.into_boxed_slice(),
            free: parking_lot::Mutex::new(free),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently allocated (posted or tombstoned).
    pub fn allocated(&self) -> usize {
        self.slots.len() - self.free.lock().len()
    }

    /// Accesses a slot by id.
    #[inline]
    pub fn slot(&self, id: DescId) -> &Slot {
        &self.slots[id as usize]
    }

    /// Allocates a slot, writes its payload, and publishes it as `POSTED`.
    ///
    /// Returns [`MatchError::ReceiveTableFull`] when the table is exhausted —
    /// the condition under which the MPI implementation must fall back to
    /// software tag matching (§III-B).
    pub fn allocate(&self, payload: Payload) -> Result<DescId, MatchError> {
        let id = self.free.lock().pop().ok_or(MatchError::ReceiveTableFull)?;
        let slot = &self.slots[id as usize];
        debug_assert_eq!(slot.state(), state::FREE);
        *slot.payload.write() = payload;
        slot.booking.store(0, Ordering::Relaxed);
        slot.state.store(state::POSTED, Ordering::Release);
        Ok(id)
    }

    /// Snapshot of every posted receive's payload, in no particular order
    /// (coordinator context, no block in flight). Used by the software
    /// fallback to migrate state off the device.
    pub fn posted_snapshot(&self) -> Vec<Payload> {
        self.slots
            .iter()
            .filter(|s| s.state() == state::POSTED)
            .map(|s| s.payload())
            .collect()
    }

    /// Releases a consumed slot back to the free list.
    ///
    /// Must only be called after the slot has been unlinked from its index
    /// chain and no block is in flight (coordinator context).
    pub fn release(&self, id: DescId) {
        let slot = &self.slots[id as usize];
        debug_assert_eq!(slot.state(), state::CONSUMED);
        slot.state.store(state::FREE, Ordering::Release);
        slot.booking.store(0, Ordering::Relaxed);
        self.free.lock().push(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::{Rank, Tag};

    fn payload(tag: u32) -> Payload {
        Payload {
            pattern: ReceivePattern::exact(Rank(0), Tag(tag)),
            label: PostLabel(u64::from(tag)),
            seq: SeqId(0),
            handle: u64::from(tag),
            home: IndexHome {
                class: WildcardClass::None,
                bin: 3,
            },
        }
    }

    #[test]
    fn allocate_publishes_posted_payload() {
        let t = ReceiveTable::new(4);
        let id = t.allocate(payload(9)).unwrap();
        let slot = t.slot(id);
        assert!(slot.is_posted());
        assert_eq!(slot.payload().handle, 9);
        assert_eq!(slot.payload().home.bin, 3);
        assert_eq!(t.allocated(), 1);
    }

    #[test]
    fn table_capacity_is_enforced() {
        let t = ReceiveTable::new(2);
        t.allocate(payload(0)).unwrap();
        t.allocate(payload(1)).unwrap();
        assert_eq!(t.allocate(payload(2)), Err(MatchError::ReceiveTableFull));
    }

    #[test]
    fn release_recycles_slots() {
        let t = ReceiveTable::new(1);
        let id = t.allocate(payload(0)).unwrap();
        assert!(t.slot(id).try_consume(5));
        t.release(id);
        assert_eq!(t.allocated(), 0);
        let id2 = t.allocate(payload(1)).unwrap();
        assert_eq!(id, id2, "single slot must be reused");
        assert_eq!(t.slot(id2).payload().handle, 1);
        assert_eq!(t.slot(id2).booking(), 0, "booking cleared on reuse");
    }

    #[test]
    fn consume_is_single_winner() {
        let t = ReceiveTable::new(1);
        let id = t.allocate(payload(0)).unwrap();
        assert!(t.slot(id).try_consume(7));
        assert!(!t.slot(id).try_consume(8), "second consume must fail");
        assert_eq!(t.slot(id).state(), state::CONSUMED);
    }

    #[test]
    fn consumed_epoch_is_stamped() {
        let t = ReceiveTable::new(1);
        let id = t.allocate(payload(0)).unwrap();
        t.slot(id).try_consume(42);
        assert_eq!(t.slot(id).consumed_epoch(), 42);
    }

    #[test]
    fn booking_sets_lane_bits_and_reports_prior() {
        let t = ReceiveTable::new(1);
        let id = t.allocate(payload(0)).unwrap();
        let slot = t.slot(id);
        assert_eq!(slot.book(3), 0, "first booking sees empty bitmap");
        assert_eq!(slot.book(0), 1 << 3, "second booking sees the first");
        assert_eq!(slot.booking(), (1 << 3) | 1);
        slot.clear_booking();
        assert_eq!(slot.booking(), 0);
    }

    #[test]
    fn concurrent_bookings_all_land() {
        use std::sync::Arc;
        let t = Arc::new(ReceiveTable::new(1));
        let id = t.allocate(payload(0)).unwrap();
        let mut handles = Vec::new();
        for lane in 0..32usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                t.slot(id).book(lane);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.slot(id).booking(), (1u64 << 32) - 1);
    }

    #[test]
    fn concurrent_consume_has_exactly_one_winner() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let t = Arc::new(ReceiveTable::new(1));
        let id = t.allocate(payload(0)).unwrap();
        let wins = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let t = Arc::clone(&t);
            let wins = Arc::clone(&wins);
            handles.push(std::thread::spawn(move || {
                if t.slot(id).try_consume(1) {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1);
    }
}
