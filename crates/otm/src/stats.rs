//! Engine statistics: conflict behaviour, resolution paths, search depths.
//!
//! The message-rate benchmark of Fig. 8 distinguishes the no-conflict case
//! (optimistic matching succeeds outright), the with-conflict fast-path case
//! (WC-FP) and the with-conflict slow-path case (WC-SP); these counters let
//! the harness verify which path actually ran.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters shared between the engine coordinator and its block
/// workers.
#[derive(Debug, Default)]
pub struct OtmStats {
    /// Blocks processed.
    pub blocks: AtomicU64,
    /// Messages processed.
    pub messages: AtomicU64,
    /// Messages matched to a receive during block processing.
    pub matched: AtomicU64,
    /// Messages that became unexpected.
    pub unexpected: AtomicU64,
    /// Messages whose optimistic match was consumed without entering
    /// conflict resolution.
    pub optimistic_ok: AtomicU64,
    /// Threads that detected a direct conflict (a lower-id thread booked
    /// their candidate, or the early-booking check skipped a receive).
    pub direct_conflicts: AtomicU64,
    /// Threads that entered resolution only because a lower thread
    /// conflicted.
    pub induced_resolutions: AtomicU64,
    /// Conflicts resolved via the fast path (§III-D3a).
    pub fast_path: AtomicU64,
    /// Conflicts resolved via the slow path (§III-D3b).
    pub slow_path: AtomicU64,
    /// Sum of optimistic-search depths (live entries examined).
    pub search_depth_sum: AtomicU64,
    /// Number of optimistic searches.
    pub search_count: AtomicU64,
    /// Maximum optimistic-search depth.
    pub search_depth_max: AtomicU64,
    /// Receives that matched an unexpected message at post time.
    pub matched_on_post: AtomicU64,
    /// Receives posted into the index structures.
    pub posted: AtomicU64,
    /// Sum of UMQ search depths at post time.
    pub umq_depth_sum: AtomicU64,
    /// Number of UMQ searches.
    pub umq_search_count: AtomicU64,
}

impl OtmStats {
    /// Records one optimistic search of the given depth.
    #[inline]
    pub fn record_search(&self, depth: usize) {
        let d = depth as u64;
        self.search_depth_sum.fetch_add(d, Ordering::Relaxed);
        self.search_count.fetch_add(1, Ordering::Relaxed);
        self.search_depth_max.fetch_max(d, Ordering::Relaxed);
    }

    /// Takes a coherent-enough snapshot for reporting (individual counters
    /// are read relaxed; exact cross-counter consistency is not needed for
    /// statistics).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            blocks: self.blocks.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            matched: self.matched.load(Ordering::Relaxed),
            unexpected: self.unexpected.load(Ordering::Relaxed),
            optimistic_ok: self.optimistic_ok.load(Ordering::Relaxed),
            direct_conflicts: self.direct_conflicts.load(Ordering::Relaxed),
            induced_resolutions: self.induced_resolutions.load(Ordering::Relaxed),
            fast_path: self.fast_path.load(Ordering::Relaxed),
            slow_path: self.slow_path.load(Ordering::Relaxed),
            search_depth_sum: self.search_depth_sum.load(Ordering::Relaxed),
            search_count: self.search_count.load(Ordering::Relaxed),
            search_depth_max: self.search_depth_max.load(Ordering::Relaxed),
            matched_on_post: self.matched_on_post.load(Ordering::Relaxed),
            posted: self.posted.load(Ordering::Relaxed),
            umq_depth_sum: self.umq_depth_sum.load(Ordering::Relaxed),
            umq_search_count: self.umq_search_count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`OtmStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field meanings documented on OtmStats
pub struct StatsSnapshot {
    pub blocks: u64,
    pub messages: u64,
    pub matched: u64,
    pub unexpected: u64,
    pub optimistic_ok: u64,
    pub direct_conflicts: u64,
    pub induced_resolutions: u64,
    pub fast_path: u64,
    pub slow_path: u64,
    pub search_depth_sum: u64,
    pub search_count: u64,
    pub search_depth_max: u64,
    pub matched_on_post: u64,
    pub posted: u64,
    pub umq_depth_sum: u64,
    pub umq_search_count: u64,
}

impl StatsSnapshot {
    /// Mean optimistic-search depth.
    pub fn mean_search_depth(&self) -> f64 {
        if self.search_count == 0 {
            0.0
        } else {
            self.search_depth_sum as f64 / self.search_count as f64
        }
    }

    /// Fraction of messages that resolved a conflict (either path).
    pub fn conflict_rate(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            (self.fast_path + self.slow_path) as f64 / self.messages as f64
        }
    }

    /// Counters accumulated since `prev` was taken (saturating per field,
    /// so snapshots from a restarted engine never underflow).
    ///
    /// `search_depth_max` is a high-water mark, not a counter: the delta
    /// keeps the current value, which upper-bounds the interval's maximum.
    pub fn delta(&self, prev: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            blocks: self.blocks.saturating_sub(prev.blocks),
            messages: self.messages.saturating_sub(prev.messages),
            matched: self.matched.saturating_sub(prev.matched),
            unexpected: self.unexpected.saturating_sub(prev.unexpected),
            optimistic_ok: self.optimistic_ok.saturating_sub(prev.optimistic_ok),
            direct_conflicts: self.direct_conflicts.saturating_sub(prev.direct_conflicts),
            induced_resolutions: self
                .induced_resolutions
                .saturating_sub(prev.induced_resolutions),
            fast_path: self.fast_path.saturating_sub(prev.fast_path),
            slow_path: self.slow_path.saturating_sub(prev.slow_path),
            search_depth_sum: self.search_depth_sum.saturating_sub(prev.search_depth_sum),
            search_count: self.search_count.saturating_sub(prev.search_count),
            search_depth_max: self.search_depth_max,
            matched_on_post: self.matched_on_post.saturating_sub(prev.matched_on_post),
            posted: self.posted.saturating_sub(prev.posted),
            umq_depth_sum: self.umq_depth_sum.saturating_sub(prev.umq_depth_sum),
            umq_search_count: self.umq_search_count.saturating_sub(prev.umq_search_count),
        }
    }

    /// Component-wise sum of two snapshots (counters add, the depth
    /// high-water mark takes the maximum) — for aggregating engines, e.g.
    /// one per simulated rank.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            blocks: self.blocks + other.blocks,
            messages: self.messages + other.messages,
            matched: self.matched + other.matched,
            unexpected: self.unexpected + other.unexpected,
            optimistic_ok: self.optimistic_ok + other.optimistic_ok,
            direct_conflicts: self.direct_conflicts + other.direct_conflicts,
            induced_resolutions: self.induced_resolutions + other.induced_resolutions,
            fast_path: self.fast_path + other.fast_path,
            slow_path: self.slow_path + other.slow_path,
            search_depth_sum: self.search_depth_sum + other.search_depth_sum,
            search_count: self.search_count + other.search_count,
            search_depth_max: self.search_depth_max.max(other.search_depth_max),
            matched_on_post: self.matched_on_post + other.matched_on_post,
            posted: self.posted + other.posted,
            umq_depth_sum: self.umq_depth_sum + other.umq_depth_sum,
            umq_search_count: self.umq_search_count + other.umq_search_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_search_accumulates() {
        let s = OtmStats::default();
        s.record_search(4);
        s.record_search(2);
        let snap = s.snapshot();
        assert_eq!(snap.search_depth_sum, 6);
        assert_eq!(snap.search_count, 2);
        assert_eq!(snap.search_depth_max, 4);
        assert!((snap.mean_search_depth() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_rates_are_zero() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.mean_search_depth(), 0.0);
        assert_eq!(snap.conflict_rate(), 0.0);
    }

    #[test]
    fn conflict_rate_counts_both_paths() {
        let snap = StatsSnapshot {
            messages: 10,
            fast_path: 2,
            slow_path: 3,
            ..Default::default()
        };
        assert!((snap.conflict_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_counters_keeps_max() {
        let prev = StatsSnapshot {
            blocks: 2,
            messages: 10,
            matched: 8,
            search_depth_sum: 20,
            search_count: 10,
            search_depth_max: 9,
            ..Default::default()
        };
        let cur = StatsSnapshot {
            blocks: 5,
            messages: 25,
            matched: 21,
            search_depth_sum: 45,
            search_count: 25,
            search_depth_max: 9,
            ..Default::default()
        };
        let d = cur.delta(&prev);
        assert_eq!(d.blocks, 3);
        assert_eq!(d.messages, 15);
        assert_eq!(d.matched, 13);
        assert_eq!(d.search_depth_sum, 25);
        assert_eq!(d.search_count, 15);
        assert_eq!(d.search_depth_max, 9, "max carries over, not subtracted");
        assert!((d.mean_search_depth() - 25.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn delta_saturates_across_engine_restarts() {
        let prev = StatsSnapshot {
            messages: 100,
            ..Default::default()
        };
        let cur = StatsSnapshot {
            messages: 10,
            ..Default::default()
        };
        assert_eq!(cur.delta(&prev).messages, 0);
    }

    #[test]
    fn delta_of_self_is_empty() {
        let s = OtmStats::default();
        s.record_search(4);
        s.blocks.fetch_add(2, Ordering::Relaxed);
        let snap = s.snapshot();
        let d = snap.delta(&snap);
        assert_eq!(d.blocks, 0);
        assert_eq!(d.search_count, 0);
        assert_eq!(d.search_depth_sum, 0);
    }

    #[test]
    fn merge_sums_counters_maxes_depth() {
        let a = StatsSnapshot {
            blocks: 1,
            messages: 4,
            fast_path: 2,
            search_depth_max: 3,
            ..Default::default()
        };
        let b = StatsSnapshot {
            blocks: 2,
            messages: 6,
            slow_path: 1,
            search_depth_max: 7,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.blocks, 3);
        assert_eq!(m.messages, 10);
        assert_eq!(m.fast_path, 2);
        assert_eq!(m.slow_path, 1);
        assert_eq!(m.search_depth_max, 7);
        // merge + delta round-trip: (a ∪ b) minus a leaves b's counters.
        let back = m.delta(&a);
        assert_eq!(back.blocks, b.blocks);
        assert_eq!(back.messages, b.messages);
        assert_eq!(back.slow_path, b.slow_path);
    }
}
