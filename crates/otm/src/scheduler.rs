//! The drain's block-packing scheduler (§IV-E execution-group scheduling).
//!
//! MPI matching is communicator-local: the outcome of every command is a
//! deterministic function of its *communicator's* command order, and commands
//! on different communicators are independent. The scheduler exploits that
//! freedom to keep optimistic blocks full under mixed traffic: a bounded
//! window of queued commands is staged into per-communicator FIFO *lanes*,
//! posts at lane heads are emitted first (a post can never be hoisted over
//! an earlier command of its own communicator), and then arrivals are pulled
//! from lane heads *across* communicators into one block of up to
//! `block_threads` messages.
//!
//! Lane service order rotates: a cursor advances by one lane per emitted
//! block, so under sustained capacity pressure every lane periodically gets
//! first claim on block slots (and on post emission) instead of the lowest
//! `CommId` persistently winning. The rotation is deterministic — a given
//! admission sequence always produces the same steps.
//!
//! With [`PackingPolicy::Consecutive`] the scheduler degrades to the
//! pre-reordering behaviour — a single global FIFO where any post (or the
//! window edge) cuts the arrival run short — which is what the fig8 A/B
//! comparison measures.
//!
//! Every staged command keeps the global submission ticket the command
//! queue stamped it with, so the drain can report outcomes in submission
//! order and, on error, requeue the unapplied tail exactly as the
//! strict-FIFO drain did.

use mpi_matching::{MsgHandle, RecvHandle};
use otm_base::config::PackingPolicy;
use otm_base::{CommId, Envelope, ReceivePattern};
use std::collections::{BTreeMap, VecDeque};

use crate::command::{comm_of, Command};

/// One unit of work the scheduler hands the drain: a single post, or a block
/// of arrivals ready to match in parallel. Each element carries its global
/// submission index.
#[derive(Debug, PartialEq, Eq)]
pub enum PackingStep {
    /// Apply one posted receive.
    Post {
        /// Global submission index of the post command.
        idx: u64,
        /// The receive's matching pattern.
        pattern: ReceivePattern,
        /// The caller's handle for the receive.
        handle: RecvHandle,
    },
    /// Match these arrivals as one optimistic block (at most `block_threads`
    /// of them, in a FIFO-safe order).
    Block {
        /// `(submission index, envelope, message)` per lane.
        msgs: Vec<(u64, Envelope, MsgHandle)>,
    },
}

/// Stages a window of queued commands and carves it into [`PackingStep`]s.
///
/// Invariants:
/// * commands of one communicator leave in their admission (= submission)
///   order — the per-communicator FIFO oracle;
/// * every `next_step` call consumes at least one staged command, so a
///   drain loop that refills and steps cannot livelock;
/// * [`PackingScheduler::into_unapplied`] returns everything still staged,
///   sorted by submission index — the requeue/fallback contract.
///
/// Under [`PackingPolicy::CrossComm`] a post on one communicator no longer
/// cuts another communicator's arrival run short — the post is hoisted and
/// the block refills across lanes:
///
/// ```
/// use otm::scheduler::{PackingScheduler, PackingStep};
/// use otm::Command;
/// use otm_base::{CommId, Envelope, PackingPolicy, Rank, ReceivePattern, Tag};
/// use mpi_matching::{MsgHandle, RecvHandle};
///
/// let arrival = |comm, i| Command::Arrival {
///     env: Envelope::new(Rank(0), Tag(i as u32), CommId(comm)),
///     msg: MsgHandle(i),
/// };
/// let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 4);
/// s.admit(
///     vec![
///         arrival(1, 0),
///         // A comm-2 post interleaved into comm 1's arrival stream...
///         Command::Post {
///             pattern: ReceivePattern::new(Rank(0), Tag(9), CommId(2)),
///             handle: RecvHandle(9),
///         },
///         arrival(1, 1),
///     ]
///     .into_iter()
///     .enumerate()
///     .map(|(ticket, cmd)| (ticket as u64, cmd))
///     .collect(),
/// );
/// // ...is emitted first (nothing earlier on comm 2 outranks it)...
/// assert!(matches!(s.next_step(), Some(PackingStep::Post { idx: 1, .. })));
/// // ...and comm 1's arrivals still form one uncut block.
/// match s.next_step() {
///     Some(PackingStep::Block { msgs }) => assert_eq!(msgs.len(), 2),
///     other => panic!("expected a block, got {other:?}"),
/// }
/// assert_eq!(s.staged(), 0);
/// ```
#[derive(Debug)]
pub struct PackingScheduler {
    policy: PackingPolicy,
    /// Block capacity (`block_threads`).
    capacity: usize,
    /// Cap on the arrivals one lane may contribute to a single cross-comm
    /// block (`None` = greedy fill up to `capacity`). The fairness hook the
    /// matchd deficit round-robin composes with: with a quota of `q`, a
    /// block drawn from `k` non-empty lanes carries at most `q` messages of
    /// any one communicator, so a deep (flooding) lane cannot monopolise
    /// block after block while shallow lanes wait.
    lane_quota: Option<usize>,
    /// Rotation cursor: which lane (in ascending-`CommId` rank) is served
    /// first. Advances by one per emitted block, never on posts, so the
    /// rotation cadence is one lane per unit of block capacity handed out.
    cursor: usize,
    /// Total staged commands across all lanes / the FIFO.
    staged: usize,
    /// Consecutive policy: the single global FIFO.
    fifo: VecDeque<(u64, Command)>,
    /// CrossComm policy: one FIFO lane per communicator. `BTreeMap` so lane
    /// iteration (and thus post emission and block assembly) is in stable
    /// `CommId` order — deterministic for a given admission sequence.
    lanes: BTreeMap<CommId, VecDeque<(u64, Command)>>,
}

impl PackingScheduler {
    /// A scheduler for blocks of up to `capacity` (= `block_threads`)
    /// arrivals, packed under `policy`.
    pub fn new(policy: PackingPolicy, capacity: usize) -> Self {
        PackingScheduler {
            policy,
            capacity: capacity.max(1),
            lane_quota: None,
            cursor: 0,
            staged: 0,
            fifo: VecDeque::new(),
            lanes: BTreeMap::new(),
        }
    }

    /// Caps the arrivals one lane contributes per cross-comm block. A quota
    /// of `Some(0)` is clamped to 1 — every step must still be able to
    /// consume a command (the no-livelock invariant). No effect under
    /// [`PackingPolicy::Consecutive`], which has a single lane by
    /// construction.
    #[must_use]
    pub fn with_lane_quota(mut self, quota: Option<usize>) -> Self {
        self.lane_quota = quota.map(|q| q.max(1));
        self
    }

    /// Number of staged commands not yet emitted.
    pub fn staged(&self) -> usize {
        self.staged
    }

    /// Admits a popped chunk of ticketed commands — the ticket is the global
    /// submission sequence number the command queue stamped at submit time.
    /// Chunks must be admitted in pop (= per-communicator submission) order.
    pub fn admit(&mut self, cmds: VecDeque<(u64, Command)>) {
        self.staged += cmds.len();
        for (idx, cmd) in cmds {
            match self.policy {
                PackingPolicy::Consecutive => self.fifo.push_back((idx, cmd)),
                PackingPolicy::CrossComm => self
                    .lanes
                    .entry(comm_of(&cmd))
                    .or_default()
                    .push_back((idx, cmd)),
            }
        }
    }

    /// Current per-lane staged depth, for the lane-depth gauge. Empty under
    /// the consecutive policy (there are no lanes to observe).
    pub fn lane_depths(&self) -> impl Iterator<Item = (CommId, usize)> + '_ {
        self.lanes
            .iter()
            .filter(|(_, lane)| !lane.is_empty())
            .map(|(&comm, lane)| (comm, lane.len()))
    }

    /// Number of lanes currently held in the map. Emptied lanes are pruned
    /// on both the post and the block path, so this tracks the *live*
    /// communicators in the window, not every communicator ever staged.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Lane keys in service order: ascending `CommId` rotated so the lane at
    /// the cursor is served first.
    fn rotated_keys(&self) -> Vec<CommId> {
        let mut keys: Vec<CommId> = self.lanes.keys().copied().collect();
        if !keys.is_empty() {
            let start = self.cursor % keys.len();
            keys.rotate_left(start);
        }
        keys
    }

    /// Carves the next step off the staged window, or `None` when empty.
    pub fn next_step(&mut self) -> Option<PackingStep> {
        match self.policy {
            PackingPolicy::Consecutive => self.next_step_consecutive(),
            PackingPolicy::CrossComm => self.next_step_cross_comm(),
        }
    }

    /// Strict global FIFO: a post at the head goes out alone; otherwise the
    /// head run of arrivals (cut by the next post or the window edge) forms
    /// the block.
    fn next_step_consecutive(&mut self) -> Option<PackingStep> {
        let &(idx, head) = self.fifo.front()?;
        if let Command::Post { pattern, handle } = head {
            self.fifo.pop_front();
            self.staged -= 1;
            return Some(PackingStep::Post {
                idx,
                pattern,
                handle,
            });
        }
        let mut msgs = Vec::new();
        while msgs.len() < self.capacity {
            match self.fifo.front() {
                Some(&(idx, Command::Arrival { env, msg })) => {
                    self.fifo.pop_front();
                    self.staged -= 1;
                    msgs.push((idx, env, msg));
                }
                _ => break,
            }
        }
        Some(PackingStep::Block { msgs })
    }

    /// Cross-communicator packing. Posts first: emitting every lane-head
    /// post before assembling a block guarantees no arrival is matched ahead
    /// of an earlier post on its own communicator. Then one block is pulled
    /// greedily from the arrival runs at the lane heads, in rotated lane
    /// order, up to capacity; the cursor advances one lane per block so no
    /// lane persistently goes first under capacity pressure.
    fn next_step_cross_comm(&mut self) -> Option<PackingStep> {
        let keys = self.rotated_keys();
        for comm in &keys {
            let lane = self.lanes.get_mut(comm).expect("key came from the map");
            if let Some(&(idx, Command::Post { pattern, handle })) = lane.front() {
                lane.pop_front();
                self.staged -= 1;
                // Prune here too: a lane fully drained by post-only steps
                // must not linger empty to be rescanned by every later step.
                if lane.is_empty() {
                    self.lanes.remove(comm);
                }
                return Some(PackingStep::Post {
                    idx,
                    pattern,
                    handle,
                });
            }
        }
        let quota = self.lane_quota.unwrap_or(self.capacity);
        let mut msgs = Vec::new();
        for comm in &keys {
            let lane = self.lanes.get_mut(comm).expect("key came from the map");
            let mut taken = 0;
            while msgs.len() < self.capacity && taken < quota {
                match lane.front() {
                    Some(&(idx, Command::Arrival { env, msg })) => {
                        lane.pop_front();
                        self.staged -= 1;
                        taken += 1;
                        msgs.push((idx, env, msg));
                    }
                    // A post (or lane exhaustion) ends this lane's run; the
                    // post waits for the next step so its communicator's
                    // FIFO order holds.
                    _ => break,
                }
            }
            if msgs.len() == self.capacity {
                break;
            }
        }
        self.lanes.retain(|_, lane| !lane.is_empty());
        if msgs.is_empty() {
            None
        } else {
            self.cursor = self.cursor.wrapping_add(1);
            Some(PackingStep::Block { msgs })
        }
    }

    /// Tears the scheduler down, returning every still-staged command with
    /// its submission index, sorted by index (= original submission order).
    pub fn into_unapplied(self) -> Vec<(u64, Command)> {
        let mut out: Vec<(u64, Command)> = match self.policy {
            PackingPolicy::Consecutive => self.fifo.into_iter().collect(),
            PackingPolicy::CrossComm => self
                .lanes
                .into_values()
                .flat_map(|lane| lane.into_iter())
                .collect(),
        };
        out.sort_unstable_by_key(|&(idx, _)| idx);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::{Rank, Tag};

    fn arrival(comm: u16, i: u64) -> Command {
        Command::Arrival {
            env: Envelope::new(Rank(0), Tag(i as u32), CommId(comm)),
            msg: MsgHandle(i),
        }
    }

    fn post(comm: u16, i: u64) -> Command {
        Command::Post {
            pattern: ReceivePattern::new(Rank(0), Tag(i as u32), CommId(comm)),
            handle: RecvHandle(i),
        }
    }

    fn admit_all(s: &mut PackingScheduler, cmds: Vec<Command>) {
        s.admit(
            cmds.into_iter()
                .enumerate()
                .map(|(ticket, cmd)| (ticket as u64, cmd))
                .collect(),
        );
    }

    fn block_indices(step: PackingStep) -> Vec<u64> {
        match step {
            PackingStep::Block { msgs } => msgs.iter().map(|&(idx, _, _)| idx).collect(),
            other => panic!("expected a block, got {other:?}"),
        }
    }

    #[test]
    fn consecutive_cuts_blocks_at_posts() {
        let mut s = PackingScheduler::new(PackingPolicy::Consecutive, 4);
        admit_all(
            &mut s,
            vec![arrival(1, 0), arrival(1, 1), post(1, 0), arrival(1, 2)],
        );
        assert_eq!(block_indices(s.next_step().unwrap()), vec![0, 1]);
        assert!(matches!(
            s.next_step(),
            Some(PackingStep::Post { idx: 2, .. })
        ));
        assert_eq!(block_indices(s.next_step().unwrap()), vec![3]);
        assert_eq!(s.next_step(), None);
        assert_eq!(s.staged(), 0);
    }

    #[test]
    fn cross_comm_fills_blocks_across_lanes() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 4);
        // Interleaved: comm1 arrival, comm2 post, comm1 arrival, comm2
        // arrival — the post is hoisted, then one full block forms.
        admit_all(
            &mut s,
            vec![arrival(1, 0), post(2, 0), arrival(1, 1), arrival(2, 2)],
        );
        assert!(matches!(
            s.next_step(),
            Some(PackingStep::Post { idx: 1, .. })
        ));
        assert_eq!(block_indices(s.next_step().unwrap()), vec![0, 2, 3]);
        assert_eq!(s.next_step(), None);
    }

    #[test]
    fn cross_comm_never_reorders_within_a_lane() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 8);
        // comm1: A0, P, A1 — the post must go before A1 but after A0's
        // block... actually A0 is an arrival at the head, so the first step
        // is the post-free block of [A0], never [A0, A1].
        admit_all(&mut s, vec![arrival(1, 0), post(1, 1), arrival(1, 2)]);
        assert_eq!(block_indices(s.next_step().unwrap()), vec![0]);
        assert!(matches!(
            s.next_step(),
            Some(PackingStep::Post { idx: 1, .. })
        ));
        assert_eq!(block_indices(s.next_step().unwrap()), vec![2]);
    }

    #[test]
    fn cross_comm_respects_capacity() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 2);
        admit_all(
            &mut s,
            vec![arrival(1, 0), arrival(1, 1), arrival(2, 2), arrival(2, 3)],
        );
        assert_eq!(block_indices(s.next_step().unwrap()), vec![0, 1]);
        assert_eq!(block_indices(s.next_step().unwrap()), vec![2, 3]);
        assert_eq!(s.next_step(), None);
    }

    #[test]
    fn every_step_consumes_at_least_one_command() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 4);
        admit_all(
            &mut s,
            vec![post(1, 0), post(2, 1), arrival(3, 2), post(3, 3)],
        );
        while s.staged() > 0 {
            let before = s.staged();
            assert!(s.next_step().is_some());
            assert!(s.staged() < before, "a step must consume commands");
        }
        assert_eq!(s.next_step(), None);
    }

    #[test]
    fn into_unapplied_restores_submission_order() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 4);
        let cmds = vec![
            arrival(2, 0),
            post(1, 1),
            arrival(1, 2),
            arrival(2, 3),
            post(2, 4),
        ];
        admit_all(&mut s, cmds.clone());
        // Consume one step (the comm-1 post), then tear down.
        assert!(matches!(
            s.next_step(),
            Some(PackingStep::Post { idx: 1, .. })
        ));
        let rest: Vec<Command> = s.into_unapplied().into_iter().map(|(_, c)| c).collect();
        assert_eq!(rest, vec![cmds[0], cmds[2], cmds[3], cmds[4]]);
    }

    #[test]
    fn lane_quota_bounds_one_lanes_share_of_a_block() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 8).with_lane_quota(Some(2));
        // Lane 1 is flooded (5 arrivals), lane 2 has one message behind it.
        admit_all(
            &mut s,
            vec![
                arrival(1, 0),
                arrival(1, 1),
                arrival(1, 2),
                arrival(1, 3),
                arrival(1, 4),
                arrival(2, 5),
            ],
        );
        // Each block carries at most 2 of lane 1's arrivals, so lane 2's
        // message rides in the very first block instead of waiting out the
        // flood.
        assert_eq!(block_indices(s.next_step().unwrap()), vec![0, 1, 5]);
        assert_eq!(block_indices(s.next_step().unwrap()), vec![2, 3]);
        assert_eq!(block_indices(s.next_step().unwrap()), vec![4]);
        assert_eq!(s.next_step(), None);
        assert_eq!(s.staged(), 0);
    }

    #[test]
    fn lane_quota_zero_is_clamped_so_steps_still_consume() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 4).with_lane_quota(Some(0));
        admit_all(&mut s, vec![arrival(1, 0), arrival(1, 1)]);
        while s.staged() > 0 {
            let before = s.staged();
            assert!(s.next_step().is_some());
            assert!(s.staged() < before, "a step must consume commands");
        }
    }

    #[test]
    fn lane_quota_preserves_per_lane_fifo() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 4).with_lane_quota(Some(1));
        admit_all(
            &mut s,
            vec![arrival(1, 0), arrival(2, 1), arrival(1, 2), arrival(2, 3)],
        );
        let mut seen: Vec<u64> = Vec::new();
        while let Some(step) = s.next_step() {
            seen.extend(block_indices(step));
        }
        // Per-lane order: 0 before 2 (lane 1), 1 before 3 (lane 2).
        let pos = |i: u64| seen.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn rotation_balances_service_on_a_symmetric_two_lane_flood() {
        // Two identical lanes flooded past capacity: the ascending-CommId
        // scan served lane 1 exclusively until it ran dry; the rotating
        // cursor must hand the lanes first claim alternately, keeping the
        // served counts within one block of each other at every boundary.
        let capacity = 4;
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, capacity);
        let mut cmds = Vec::new();
        for i in 0..20u64 {
            cmds.push(arrival(1, 2 * i));
            cmds.push(arrival(2, 2 * i + 1));
        }
        admit_all(&mut s, cmds);
        let (mut served1, mut served2) = (0i64, 0i64);
        while let Some(step) = s.next_step() {
            match step {
                PackingStep::Block { msgs } => {
                    for &(_, env, _) in &msgs {
                        match env.comm {
                            CommId(1) => served1 += 1,
                            CommId(2) => served2 += 1,
                            other => panic!("unexpected lane {other:?}"),
                        }
                    }
                }
                other => panic!("flood has no posts, got {other:?}"),
            }
            assert!(
                (served1 - served2).unsigned_abs() as usize <= capacity,
                "lane service skewed: {served1} vs {served2}"
            );
        }
        assert_eq!(served1, 20);
        assert_eq!(served2, 20);
    }

    #[test]
    fn rotation_is_deterministic() {
        let cmds: Vec<Command> = (0..12u64)
            .map(|i| arrival((i % 3) as u16 + 1, i))
            .collect();
        let run = || {
            let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 2);
            admit_all(&mut s, cmds.clone());
            let mut blocks = Vec::new();
            while let Some(step) = s.next_step() {
                blocks.push(block_indices(step));
            }
            blocks
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn post_only_steps_prune_emptied_lanes() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 4);
        admit_all(&mut s, vec![post(2, 0), arrival(1, 1)]);
        assert_eq!(s.lane_count(), 2);
        // Lane 2 is drained by the post step alone — no block ever touches
        // it — and must leave the map immediately, not linger empty.
        assert!(matches!(
            s.next_step(),
            Some(PackingStep::Post { idx: 0, .. })
        ));
        assert_eq!(s.lane_count(), 1);
        assert_eq!(s.lane_depths().count(), 1);
        assert_eq!(block_indices(s.next_step().unwrap()), vec![1]);
        assert_eq!(s.lane_count(), 0);
    }

    #[test]
    fn lane_depths_report_staged_backlog() {
        let mut s = PackingScheduler::new(PackingPolicy::CrossComm, 4);
        admit_all(&mut s, vec![arrival(1, 0), arrival(1, 1), arrival(2, 2)]);
        let depths: Vec<(CommId, usize)> = s.lane_depths().collect();
        assert_eq!(depths, vec![(CommId(1), 2), (CommId(2), 1)]);
        let mut c = PackingScheduler::new(PackingPolicy::Consecutive, 4);
        admit_all(&mut c, vec![arrival(1, 0)]);
        assert_eq!(c.lane_depths().count(), 0);
    }
}
