//! Feature-gated service observability.
//!
//! [`ServiceMetrics`] is the matching service's handle to the `otm-metrics`
//! registry: completion-queue poll counters, queue-depth gauges (CQ
//! backlog, bounce-pool occupancy, unexpected-store size) with their peak
//! twins, and counters for the two NIC-memory pressure events of §IV —
//! bounce-buffer exhaustion and fallback to software matching.
//!
//! Like the engine-side [`otm::EngineMetrics`], the whole struct compiles
//! to a zero-sized no-op under `--no-default-features`, so the simulator's
//! receive path carries no instrumentation cost when observability is off.

#[cfg(feature = "metrics")]
mod imp {
    use otm_metrics::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};
    use std::sync::Arc;

    /// Events retained by the timeline ring before overwriting.
    #[cfg(feature = "trace-events")]
    const TRACE_CAPACITY: usize = 16 * 1024;

    /// Lifecycle span events retained before overwriting (retransmissions
    /// and fallback replays are rare next to matches, so the service ring
    /// can stay small).
    #[cfg(feature = "trace-events")]
    const SPAN_CAPACITY: usize = 64 * 1024;

    /// Synthetic span subject for feedback-controller knob changes. The
    /// controller has no message identity; `u64::MAX` cannot collide with a
    /// message handle or a `RECV_SUBJECT_BIT`-tagged receive handle.
    #[cfg(feature = "trace-events")]
    const CONTROLLER_SUBJECT: u64 = u64::MAX;

    /// Cheap-to-clone handle to the service's metric instruments.
    #[derive(Debug, Clone)]
    pub struct ServiceMetrics {
        registry: Registry,
        cq_polls: Arc<Counter>,
        completions: Arc<Counter>,
        bounce_spills: Arc<Counter>,
        fallbacks: Arc<Counter>,
        cq_depth: Arc<Gauge>,
        cq_depth_peak: Arc<Gauge>,
        bounce_in_use: Arc<Gauge>,
        bounce_in_use_peak: Arc<Gauge>,
        unexpected_depth: Arc<Gauge>,
        wire_drops: Arc<Counter>,
        wire_dups: Arc<Counter>,
        wire_reorders: Arc<Counter>,
        wire_delays: Arc<Counter>,
        rx_duplicates: Arc<Counter>,
        rx_gaps: Arc<Counter>,
        rx_staged: Arc<Counter>,
        rx_stage_overflow: Arc<Counter>,
        acks: Arc<Counter>,
        knob_changes: Arc<Counter>,
        retransmits: Arc<Counter>,
        drain_retries: Arc<Counter>,
        ring_backpressure: Arc<Counter>,
        fallback_escalations: Arc<Counter>,
        backoff_polls: Arc<Histogram>,
        trace_dropped: Arc<Counter>,
        #[cfg(feature = "trace-events")]
        trace: Arc<otm_metrics::TraceRing>,
        #[cfg(feature = "trace-events")]
        spans: Arc<otm_metrics::SpanRecorder>,
        #[cfg(feature = "trace-events")]
        span_dropped: Arc<Counter>,
    }

    impl Default for ServiceMetrics {
        fn default() -> Self {
            Self::new()
        }
    }

    impl ServiceMetrics {
        /// Creates a fresh registry with the service's instruments.
        pub fn new() -> Self {
            let registry = Registry::new();
            Self {
                cq_polls: registry.counter("dpa_cq_polls_total"),
                completions: registry.counter("dpa_completions_total"),
                bounce_spills: registry.counter("dpa_bounce_spills_total"),
                fallbacks: registry.counter("dpa_fallbacks_total"),
                cq_depth: registry.gauge("dpa_cq_depth"),
                cq_depth_peak: registry.gauge("dpa_cq_depth_peak"),
                bounce_in_use: registry.gauge("dpa_bounce_in_use"),
                bounce_in_use_peak: registry.gauge("dpa_bounce_in_use_peak"),
                unexpected_depth: registry.gauge("dpa_unexpected_depth"),
                wire_drops: registry.counter("dpa_wire_drops_total"),
                wire_dups: registry.counter("dpa_wire_dups_total"),
                wire_reorders: registry.counter("dpa_wire_reorders_total"),
                wire_delays: registry.counter("dpa_wire_delays_total"),
                rx_duplicates: registry.counter("dpa_rx_duplicates_total"),
                rx_gaps: registry.counter("dpa_rx_gaps_total"),
                rx_staged: registry.counter("dpa_rx_staged_total"),
                rx_stage_overflow: registry.counter("dpa_rx_stage_overflow_total"),
                acks: registry.counter("dpa_acks_total"),
                knob_changes: registry.counter("dpa_knob_changes_total"),
                retransmits: registry.counter("dpa_retransmits_total"),
                drain_retries: registry.counter("dpa_drain_retries_total"),
                ring_backpressure: registry.counter("dpa_ring_backpressure_total"),
                fallback_escalations: registry.counter("dpa_fallback_escalations_total"),
                backoff_polls: registry.histogram("dpa_backoff_polls"),
                trace_dropped: registry.counter("dpa_trace_dropped_total"),
                #[cfg(feature = "trace-events")]
                trace: Arc::new(otm_metrics::TraceRing::new(TRACE_CAPACITY)),
                #[cfg(feature = "trace-events")]
                spans: Arc::new(otm_metrics::SpanRecorder::new(SPAN_CAPACITY)),
                #[cfg(feature = "trace-events")]
                span_dropped: registry.counter("dpa_span_dropped_total"),
                registry,
            }
        }

        /// Counts one completion-queue poll.
        #[inline]
        pub fn count_poll(&self) {
            self.cq_polls.inc();
        }

        /// Counts receives completed by one progress call.
        #[inline]
        pub fn add_completions(&self, n: u64) {
            self.completions.add(n);
        }

        /// Counts one bounce-pool exhaustion (a message had to wait on the
        /// wire because NIC staging memory ran out).
        #[inline]
        pub fn count_spill(&self) {
            self.bounce_spills.inc();
        }

        /// Counts one migration to host software matching (§IV-E).
        #[inline]
        pub fn count_fallback(&self) {
            self.fallbacks.inc();
        }

        /// Updates the queue-depth gauges and their peak twins.
        #[inline]
        pub fn observe_queues(&self, cq: usize, bounce: usize, unexpected: usize) {
            self.cq_depth.set(cq as i64);
            self.cq_depth_peak.set_max(cq as i64);
            self.bounce_in_use.set(bounce as i64);
            self.bounce_in_use_peak.set_max(bounce as i64);
            self.unexpected_depth.set(unexpected as i64);
        }

        /// Counts one fault-injected packet drop on the wire.
        #[inline]
        pub fn count_wire_drop(&self) {
            self.wire_drops.inc();
        }

        /// Counts one fault-injected packet duplication on the wire.
        #[inline]
        pub fn count_wire_dup(&self) {
            self.wire_dups.inc();
        }

        /// Counts one fault-injected out-of-order release on the wire.
        #[inline]
        pub fn count_wire_reorder(&self) {
            self.wire_reorders.inc();
        }

        /// Counts one fault-injected in-order delay on the wire.
        #[inline]
        pub fn count_wire_delay(&self) {
            self.wire_delays.inc();
        }

        /// Counts one duplicate sequenced packet discarded at the receiver
        /// (`seq` below the expected counter).
        #[inline]
        pub fn count_rx_duplicate(&self) {
            self.rx_duplicates.inc();
        }

        /// Counts one out-of-order sequenced packet discarded at the
        /// receiver (`seq` above the expected counter — a gap the go-back-N
        /// retransmit will fill).
        #[inline]
        pub fn count_rx_gap(&self) {
            self.rx_gaps.inc();
        }

        /// Counts one out-of-order sequenced packet staged by the
        /// selective-repeat receiver (held for in-order delivery instead of
        /// discarded).
        #[inline]
        pub fn count_rx_staged(&self) {
            self.rx_staged.inc();
        }

        /// Counts one out-of-order packet discarded because the staging
        /// buffer was full (selective repeat degrades to the go-back-N
        /// discard for that packet).
        #[inline]
        pub fn count_rx_stage_overflow(&self) {
            self.rx_stage_overflow.inc();
        }

        /// Counts one cumulative acknowledgement sent or consumed.
        #[inline]
        pub fn count_ack(&self) {
            self.acks.inc();
        }

        /// Records one feedback-controller knob actuation: counted in
        /// `dpa_knob_changes_total` (always) and stamped as a
        /// `knob_changed` lifecycle span (under `trace-events`) so runs
        /// stay reproducible from the trace alone.
        #[inline]
        pub fn knob_changed(&self, knob: otm_metrics::KnobKind, from: u64, to: u64) {
            self.knob_changes.inc();
            #[cfg(feature = "trace-events")]
            if self.spans.push(
                CONTROLLER_SUBJECT,
                otm_metrics::SpanKind::KnobChanged { knob, from, to },
            ) {
                self.span_dropped.inc();
            }
            #[cfg(not(feature = "trace-events"))]
            let _ = (knob, from, to);
        }

        /// Counts packets retransmitted by a go-back-N window resend.
        #[inline]
        pub fn add_retransmits(&self, n: u64) {
            self.retransmits.add(n);
        }

        /// Counts one retry of a failed command-queue drain.
        #[inline]
        pub fn count_drain_retry(&self) {
            self.drain_retries.inc();
        }

        /// Counts one submission rejected by a full per-communicator ring
        /// (the engine's wait-free backpressure signal): the service drains
        /// inline to free slots and retries the push.
        #[inline]
        pub fn count_ring_backpressure(&self) {
            self.ring_backpressure.inc();
        }

        /// Counts one retry-budget exhaustion that escalated to software
        /// fallback (as opposed to an explicit caller-invoked fallback).
        #[inline]
        pub fn count_fallback_escalation(&self) {
            self.fallback_escalations.inc();
        }

        /// Records the backoff length (in virtual polls) applied before a
        /// retry or retransmit.
        #[inline]
        pub fn observe_backoff(&self, polls: u64) {
            self.backoff_polls.record(polls);
        }

        /// The underlying registry (for embedding into a larger exporter).
        pub fn registry(&self) -> &Registry {
            &self.registry
        }

        /// Copies out all service metrics.
        pub fn snapshot(&self) -> RegistrySnapshot {
            self.registry.snapshot()
        }

        /// Pushes a timeline event (no-op unless `trace-events` is on).
        /// Overwritten events are accounted in `dpa_trace_dropped_total`
        /// rather than lost silently.
        #[inline]
        pub fn trace_push(&self, worker: u32, kind: otm_metrics::EventKind) {
            #[cfg(feature = "trace-events")]
            if self.trace.push(worker, kind) {
                self.trace_dropped.inc();
            }
            #[cfg(not(feature = "trace-events"))]
            let _ = (worker, kind, &self.trace_dropped);
        }

        /// The timeline ring.
        #[cfg(feature = "trace-events")]
        pub fn trace_ring(&self) -> &otm_metrics::TraceRing {
            &self.trace
        }

        /// Stamps a `retransmitted{attempt}` lifecycle span on wire packet
        /// `seq` (no-op unless `trace-events` is on). Ring overflow is
        /// accounted in `dpa_span_dropped_total`.
        #[inline]
        pub fn span_retransmitted(&self, seq: u64, attempt: u32) {
            #[cfg(feature = "trace-events")]
            if self
                .spans
                .push(seq, otm_metrics::SpanKind::Retransmitted { attempt })
            {
                self.span_dropped.inc();
            }
            #[cfg(not(feature = "trace-events"))]
            let _ = (seq, attempt);
        }

        /// Stamps a `fell_back` lifecycle span on `subject` — a message
        /// being replayed into the software matcher during fallback (no-op
        /// unless `trace-events` is on).
        #[inline]
        pub fn span_fell_back(&self, subject: u64) {
            #[cfg(feature = "trace-events")]
            if self.spans.push(subject, otm_metrics::SpanKind::FellBack) {
                self.span_dropped.inc();
            }
            #[cfg(not(feature = "trace-events"))]
            let _ = subject;
        }

        /// [`ServiceMetrics::span_fell_back`] for a *receive* handle: the
        /// subject is namespaced with [`otm_metrics::RECV_SUBJECT_BIT`] so
        /// it cannot collide with a message sharing the same raw id.
        #[inline]
        pub fn span_fell_back_recv(&self, recv: u64) {
            #[cfg(feature = "trace-events")]
            self.span_fell_back(otm_metrics::RECV_SUBJECT_BIT | recv);
            #[cfg(not(feature = "trace-events"))]
            let _ = recv;
        }

        /// The service's lifecycle span recorder.
        #[cfg(feature = "trace-events")]
        pub fn spans(&self) -> &otm_metrics::SpanRecorder {
            &self.spans
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    /// No-op stand-in: all instrumentation compiles away.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct ServiceMetrics;

    impl ServiceMetrics {
        /// Creates the no-op handle.
        pub fn new() -> Self {
            ServiceMetrics
        }

        /// No-op.
        #[inline]
        pub fn count_poll(&self) {}

        /// No-op.
        #[inline]
        pub fn add_completions(&self, _n: u64) {}

        /// No-op.
        #[inline]
        pub fn count_spill(&self) {}

        /// No-op.
        #[inline]
        pub fn count_fallback(&self) {}

        /// No-op.
        #[inline]
        pub fn observe_queues(&self, _cq: usize, _bounce: usize, _unexpected: usize) {}

        /// No-op.
        #[inline]
        pub fn count_wire_drop(&self) {}

        /// No-op.
        #[inline]
        pub fn count_wire_dup(&self) {}

        /// No-op.
        #[inline]
        pub fn count_wire_reorder(&self) {}

        /// No-op.
        #[inline]
        pub fn count_wire_delay(&self) {}

        /// No-op.
        #[inline]
        pub fn count_rx_duplicate(&self) {}

        /// No-op.
        #[inline]
        pub fn count_rx_gap(&self) {}

        /// No-op.
        #[inline]
        pub fn count_rx_staged(&self) {}

        /// No-op.
        #[inline]
        pub fn count_rx_stage_overflow(&self) {}

        /// No-op.
        #[inline]
        pub fn count_ack(&self) {}

        /// No-op.
        #[inline]
        pub fn add_retransmits(&self, _n: u64) {}

        /// No-op.
        #[inline]
        pub fn count_drain_retry(&self) {}

        /// No-op.
        #[inline]
        pub fn count_ring_backpressure(&self) {}

        /// No-op.
        #[inline]
        pub fn count_fallback_escalation(&self) {}

        /// No-op.
        #[inline]
        pub fn observe_backoff(&self, _polls: u64) {}

        /// No-op.
        #[inline]
        pub fn span_retransmitted(&self, _seq: u64, _attempt: u32) {}

        /// No-op.
        #[inline]
        pub fn span_fell_back(&self, _subject: u64) {}

        /// No-op.
        #[inline]
        pub fn span_fell_back_recv(&self, _recv: u64) {}
    }
}

pub use imp::ServiceMetrics;

/// Pushes a service timeline event when `trace-events` is enabled; expands
/// to nothing otherwise.
#[cfg(feature = "trace-events")]
macro_rules! service_trace_event {
    ($metrics:expr, $worker:expr, $kind:ident) => {
        $metrics.trace_push($worker as u32, ::otm_metrics::EventKind::$kind)
    };
}

/// No-op expansion: `trace-events` is disabled.
#[cfg(not(feature = "trace-events"))]
macro_rules! service_trace_event {
    ($metrics:expr, $worker:expr, $kind:ident) => {{
        let _ = &$metrics;
        let _ = $worker;
    }};
}

pub(crate) use service_trace_event;

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_service_metrics_are_zero_sized() {
        assert_eq!(std::mem::size_of::<ServiceMetrics>(), 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn queue_gauges_track_current_and_peak() {
        let m = ServiceMetrics::new();
        m.observe_queues(5, 3, 1);
        m.observe_queues(2, 7, 0);
        let snap = m.snapshot();
        assert_eq!(snap.gauges["dpa_cq_depth"], 2, "gauge follows the last set");
        assert_eq!(
            snap.gauges["dpa_cq_depth_peak"], 5,
            "peak is a high-water mark"
        );
        assert_eq!(snap.gauges["dpa_bounce_in_use"], 7);
        assert_eq!(snap.gauges["dpa_bounce_in_use_peak"], 7);
        assert_eq!(snap.gauges["dpa_unexpected_depth"], 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn pressure_counters_accumulate() {
        let m = ServiceMetrics::new();
        m.count_poll();
        m.count_poll();
        m.add_completions(4);
        m.count_spill();
        m.count_fallback();
        let snap = m.snapshot();
        assert_eq!(snap.counters["dpa_cq_polls_total"], 2);
        assert_eq!(snap.counters["dpa_completions_total"], 4);
        assert_eq!(snap.counters["dpa_bounce_spills_total"], 1);
        assert_eq!(snap.counters["dpa_fallbacks_total"], 1);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn fault_and_reliability_instruments_accumulate() {
        let m = ServiceMetrics::new();
        m.count_wire_drop();
        m.count_wire_dup();
        m.count_wire_reorder();
        m.count_wire_delay();
        m.count_rx_duplicate();
        m.count_rx_gap();
        m.count_rx_staged();
        m.count_rx_staged();
        m.count_rx_stage_overflow();
        m.count_ack();
        m.add_retransmits(3);
        m.count_drain_retry();
        m.count_fallback_escalation();
        m.observe_backoff(4);
        m.observe_backoff(8);
        let snap = m.snapshot();
        assert_eq!(snap.counters["dpa_wire_drops_total"], 1);
        assert_eq!(snap.counters["dpa_wire_dups_total"], 1);
        assert_eq!(snap.counters["dpa_wire_reorders_total"], 1);
        assert_eq!(snap.counters["dpa_wire_delays_total"], 1);
        assert_eq!(snap.counters["dpa_rx_duplicates_total"], 1);
        assert_eq!(snap.counters["dpa_rx_gaps_total"], 1);
        assert_eq!(snap.counters["dpa_rx_staged_total"], 2);
        assert_eq!(snap.counters["dpa_rx_stage_overflow_total"], 1);
        assert_eq!(snap.counters["dpa_acks_total"], 1);
        assert_eq!(snap.counters["dpa_retransmits_total"], 3);
        assert_eq!(snap.counters["dpa_drain_retries_total"], 1);
        assert_eq!(snap.counters["dpa_fallback_escalations_total"], 1);
        let hist = &snap.hists["dpa_backoff_polls"];
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 12);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn knob_changes_are_counted_and_stamped() {
        let m = ServiceMetrics::new();
        m.knob_changed(otm_metrics::KnobKind::ReliabilityWindow, 64, 32);
        m.knob_changed(otm_metrics::KnobKind::PackingWindow, 0, 128);
        let snap = m.snapshot();
        assert_eq!(snap.counters["dpa_knob_changes_total"], 2);
        #[cfg(feature = "trace-events")]
        {
            let spans = m.spans().dump();
            assert_eq!(spans.len(), 2);
            assert_eq!(spans[0].subject, u64::MAX);
            assert_eq!(
                spans[0].kind,
                otm_metrics::SpanKind::KnobChanged {
                    knob: otm_metrics::KnobKind::ReliabilityWindow,
                    from: 64,
                    to: 32,
                }
            );
        }
    }

    #[cfg(feature = "trace-events")]
    #[test]
    fn service_spans_capture_reliability_events() {
        let m = ServiceMetrics::new();
        m.span_retransmitted(9, 1);
        m.span_fell_back(4);
        let spans = m.spans().dump();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].subject, 9);
        assert_eq!(
            spans[0].kind,
            otm_metrics::SpanKind::Retransmitted { attempt: 1 }
        );
        assert_eq!(spans[1].subject, 4);
        assert_eq!(spans[1].kind, otm_metrics::SpanKind::FellBack);
        let snap = m.snapshot();
        assert_eq!(snap.counters["dpa_trace_dropped_total"], 0);
        assert_eq!(snap.counters["dpa_span_dropped_total"], 0);
    }
}
