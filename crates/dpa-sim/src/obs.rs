//! Feature-gated service observability.
//!
//! [`ServiceMetrics`] is the matching service's handle to the `otm-metrics`
//! registry: completion-queue poll counters, queue-depth gauges (CQ
//! backlog, bounce-pool occupancy, unexpected-store size) with their peak
//! twins, and counters for the two NIC-memory pressure events of §IV —
//! bounce-buffer exhaustion and fallback to software matching.
//!
//! Like the engine-side [`otm::EngineMetrics`], the whole struct compiles
//! to a zero-sized no-op under `--no-default-features`, so the simulator's
//! receive path carries no instrumentation cost when observability is off.

#[cfg(feature = "metrics")]
mod imp {
    use otm_metrics::{Counter, Gauge, Registry, RegistrySnapshot};
    use std::sync::Arc;

    /// Events retained by the timeline ring before overwriting.
    #[cfg(feature = "trace-events")]
    const TRACE_CAPACITY: usize = 16 * 1024;

    /// Cheap-to-clone handle to the service's metric instruments.
    #[derive(Debug, Clone)]
    pub struct ServiceMetrics {
        registry: Registry,
        cq_polls: Arc<Counter>,
        completions: Arc<Counter>,
        bounce_spills: Arc<Counter>,
        fallbacks: Arc<Counter>,
        cq_depth: Arc<Gauge>,
        cq_depth_peak: Arc<Gauge>,
        bounce_in_use: Arc<Gauge>,
        bounce_in_use_peak: Arc<Gauge>,
        unexpected_depth: Arc<Gauge>,
        #[cfg(feature = "trace-events")]
        trace: Arc<otm_metrics::TraceRing>,
    }

    impl Default for ServiceMetrics {
        fn default() -> Self {
            Self::new()
        }
    }

    impl ServiceMetrics {
        /// Creates a fresh registry with the service's instruments.
        pub fn new() -> Self {
            let registry = Registry::new();
            Self {
                cq_polls: registry.counter("dpa_cq_polls_total"),
                completions: registry.counter("dpa_completions_total"),
                bounce_spills: registry.counter("dpa_bounce_spills_total"),
                fallbacks: registry.counter("dpa_fallbacks_total"),
                cq_depth: registry.gauge("dpa_cq_depth"),
                cq_depth_peak: registry.gauge("dpa_cq_depth_peak"),
                bounce_in_use: registry.gauge("dpa_bounce_in_use"),
                bounce_in_use_peak: registry.gauge("dpa_bounce_in_use_peak"),
                unexpected_depth: registry.gauge("dpa_unexpected_depth"),
                #[cfg(feature = "trace-events")]
                trace: Arc::new(otm_metrics::TraceRing::new(TRACE_CAPACITY)),
                registry,
            }
        }

        /// Counts one completion-queue poll.
        #[inline]
        pub fn count_poll(&self) {
            self.cq_polls.inc();
        }

        /// Counts receives completed by one progress call.
        #[inline]
        pub fn add_completions(&self, n: u64) {
            self.completions.add(n);
        }

        /// Counts one bounce-pool exhaustion (a message had to wait on the
        /// wire because NIC staging memory ran out).
        #[inline]
        pub fn count_spill(&self) {
            self.bounce_spills.inc();
        }

        /// Counts one migration to host software matching (§IV-E).
        #[inline]
        pub fn count_fallback(&self) {
            self.fallbacks.inc();
        }

        /// Updates the queue-depth gauges and their peak twins.
        #[inline]
        pub fn observe_queues(&self, cq: usize, bounce: usize, unexpected: usize) {
            self.cq_depth.set(cq as i64);
            self.cq_depth_peak.set_max(cq as i64);
            self.bounce_in_use.set(bounce as i64);
            self.bounce_in_use_peak.set_max(bounce as i64);
            self.unexpected_depth.set(unexpected as i64);
        }

        /// The underlying registry (for embedding into a larger exporter).
        pub fn registry(&self) -> &Registry {
            &self.registry
        }

        /// Copies out all service metrics.
        pub fn snapshot(&self) -> RegistrySnapshot {
            self.registry.snapshot()
        }

        /// Pushes a timeline event (no-op unless `trace-events` is on).
        #[inline]
        pub fn trace_push(&self, worker: u32, kind: otm_metrics::EventKind) {
            #[cfg(feature = "trace-events")]
            self.trace.push(worker, kind);
            #[cfg(not(feature = "trace-events"))]
            let _ = (worker, kind);
        }

        /// The timeline ring.
        #[cfg(feature = "trace-events")]
        pub fn trace_ring(&self) -> &otm_metrics::TraceRing {
            &self.trace
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    /// No-op stand-in: all instrumentation compiles away.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct ServiceMetrics;

    impl ServiceMetrics {
        /// Creates the no-op handle.
        pub fn new() -> Self {
            ServiceMetrics
        }

        /// No-op.
        #[inline]
        pub fn count_poll(&self) {}

        /// No-op.
        #[inline]
        pub fn add_completions(&self, _n: u64) {}

        /// No-op.
        #[inline]
        pub fn count_spill(&self) {}

        /// No-op.
        #[inline]
        pub fn count_fallback(&self) {}

        /// No-op.
        #[inline]
        pub fn observe_queues(&self, _cq: usize, _bounce: usize, _unexpected: usize) {}
    }
}

pub use imp::ServiceMetrics;

/// Pushes a service timeline event when `trace-events` is enabled; expands
/// to nothing otherwise.
#[cfg(feature = "trace-events")]
macro_rules! service_trace_event {
    ($metrics:expr, $worker:expr, $kind:ident) => {
        $metrics.trace_push($worker as u32, ::otm_metrics::EventKind::$kind)
    };
}

/// No-op expansion: `trace-events` is disabled.
#[cfg(not(feature = "trace-events"))]
macro_rules! service_trace_event {
    ($metrics:expr, $worker:expr, $kind:ident) => {{
        let _ = &$metrics;
        let _ = $worker;
    }};
}

pub(crate) use service_trace_event;

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_service_metrics_are_zero_sized() {
        assert_eq!(std::mem::size_of::<ServiceMetrics>(), 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn queue_gauges_track_current_and_peak() {
        let m = ServiceMetrics::new();
        m.observe_queues(5, 3, 1);
        m.observe_queues(2, 7, 0);
        let snap = m.snapshot();
        assert_eq!(snap.gauges["dpa_cq_depth"], 2, "gauge follows the last set");
        assert_eq!(
            snap.gauges["dpa_cq_depth_peak"], 5,
            "peak is a high-water mark"
        );
        assert_eq!(snap.gauges["dpa_bounce_in_use"], 7);
        assert_eq!(snap.gauges["dpa_bounce_in_use_peak"], 7);
        assert_eq!(snap.gauges["dpa_unexpected_depth"], 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn pressure_counters_accumulate() {
        let m = ServiceMetrics::new();
        m.count_poll();
        m.count_poll();
        m.add_completions(4);
        m.count_spill();
        m.count_fallback();
        let snap = m.snapshot();
        assert_eq!(snap.counters["dpa_cq_polls_total"], 2);
        assert_eq!(snap.counters["dpa_completions_total"], 4);
        assert_eq!(snap.counters["dpa_bounce_spills_total"], 1);
        assert_eq!(snap.counters["dpa_fallbacks_total"], 1);
    }
}
