//! `matchd` — the long-lived multi-tenant matching server layer.
//!
//! The paper's offloaded matcher (§IV-E) is a shared NIC-resident resource:
//! many communicators — and, one level up, many *tenants* — contend on one
//! sharded engine with fixed descriptor tables. Everything above a
//! per-test harness therefore needs three things the bare
//! [`crate::service::MatchingService`] does not provide:
//!
//! * a **server** that owns the engine for the long haul and drives it on a
//!   deterministic tick loop ([`server::MatchServer`]);
//! * **tenant sessions** with bounded ingress queues and explicit
//!   admission — `Admitted` / `Backpressured` / `Rejected` — so flow
//!   control lives at the offload boundary instead of in each caller
//!   ([`tenant::TenantSession`]);
//! * a **fair drain**: deficit round-robin across tenants, composed with
//!   the engine's per-lane block quota
//!   ([`otm_base::MatchConfig::lane_quota`]), so one flooding tenant is
//!   provably unable to starve the rest.
//!
//! The loss-free software fallback is untouched by this layer: commands
//! from every tenant share the service's single submission queue, so a
//! mid-tick migration replays them all through the existing
//! `FallbackState::pending` path, per-tenant FIFO intact.

pub mod server;
pub mod tenant;

pub use server::{MatchServer, MatchdConfig, TenantConfig, TickReport};
pub use tenant::{Admission, TenantId, TenantSession, TenantStats};
