//! Tenant sessions: the client half of the `matchd` server.
//!
//! A tenant is one client of the long-lived matching server — an MPI
//! process, a library layer, a benchmark actor — identified by a
//! [`TenantId`] and (usually) pinned to its own communicator. Each session
//! owns a **bounded ingress queue** shared with the server: submissions are
//! admitted synchronously ([`Admission::Admitted`]), pushed back with a
//! retry hint when the queue is full ([`Admission::Backpressured`]), or
//! refused outright ([`Admission::Rejected`] — closed session, cross-tenant
//! communicator, sends on a server without a loopback wire).
//!
//! Admission is the flow-control boundary the NIC-offload literature puts
//! *at* the offload resource rather than in each caller: a flooding tenant
//! fills its own ingress and is backpressured there, before its commands
//! can crowd the shared engine's command queue; the server's deficit
//! round-robin (see [`super::server`]) bounds what an admitted backlog can
//! drain per tick.
//!
//! Receive handles are minted **at admission time** in a per-tenant
//! namespace (tenant id in the high bits), ticks before the drain applies
//! the post — that is what lets a session hand its caller the handle
//! immediately while staying fully asynchronous, and what lets the server
//! route completions back without a side table.

use crate::service::CompletedReceive;
use mpi_matching::RecvHandle;
use otm_base::{CommId, Envelope, Rank, ReceivePattern, Tag};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Identifies one tenant of a [`super::MatchServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

/// Bit position of the tenant namespace in a [`RecvHandle`].
const TENANT_SHIFT: u32 = 48;

impl TenantId {
    /// Mints the `seq`-th receive handle of this tenant's namespace. The
    /// tenant id (biased by one so tenant 0 stays distinct from the
    /// service's own `reserve_recv` counter) occupies the high 16 bits:
    /// namespaces of different tenants — and of the service itself — are
    /// disjoint by construction.
    pub fn handle(self, seq: u64) -> RecvHandle {
        debug_assert!(seq < 1 << TENANT_SHIFT, "tenant handle space exhausted");
        RecvHandle(((self.0 as u64 + 1) << TENANT_SHIFT) | seq)
    }

    /// Recovers the tenant a handle was minted for, or `None` for handles
    /// outside any tenant namespace (the service's plain counter).
    pub fn of_handle(handle: RecvHandle) -> Option<TenantId> {
        match handle.0 >> TENANT_SHIFT {
            0 => None,
            t => Some(TenantId((t - 1) as u16)),
        }
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The server's synchronous answer to one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission<T> {
    /// The request is in the tenant's ingress queue and will reach the
    /// engine when the fair drain schedules it.
    Admitted(T),
    /// The tenant's bounded ingress is full. Retry in `retry_after` ticks —
    /// the time the drain needs, at this tenant's quantum, to open a slot.
    /// Nothing was enqueued.
    Backpressured {
        /// Server ticks to wait before retrying.
        retry_after: u64,
    },
    /// The request can never be admitted (closed session, pattern on
    /// another tenant's communicator, send without a loopback wire).
    /// Nothing was enqueued.
    Rejected {
        /// Why the request was refused.
        reason: &'static str,
    },
}

impl<T> Admission<T> {
    /// Unwraps an admitted value; panics with the admission decision
    /// otherwise. For tests and callers whose sessions are sized to never
    /// push back.
    pub fn expect_admitted(self, context: &str) -> T {
        match self {
            Admission::Admitted(v) => v,
            Admission::Backpressured { retry_after } => {
                panic!("{context}: backpressured (retry_after={retry_after})")
            }
            Admission::Rejected { reason } => panic!("{context}: rejected ({reason})"),
        }
    }

    /// Whether the request was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted(_))
    }
}

/// One request waiting in a tenant's ingress queue.
#[derive(Debug, Clone)]
pub(super) enum TenantRequest {
    /// A receive to post, under the handle minted at admission.
    Post {
        pattern: ReceivePattern,
        handle: RecvHandle,
    },
    /// An eager message to put on the server's loopback wire (the tenant's
    /// send half in a single-process harness).
    Send { env: Envelope, payload: Vec<u8> },
}

/// Per-tenant counters, readable at any time through
/// [`TenantSession::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests admitted into the ingress queue.
    pub admitted: u64,
    /// Requests pushed back with [`Admission::Backpressured`].
    pub backpressured: u64,
    /// Requests refused with [`Admission::Rejected`].
    pub rejected: u64,
    /// Requests the fair drain has moved from the ingress into the engine.
    pub drained: u64,
    /// Receives completed and delivered to this session.
    pub completed: u64,
    /// Current ingress queue depth.
    pub ingress_depth: usize,
}

/// Per-tenant labeled instruments, registered in the service's registry so
/// they ride the same snapshot/Prometheus path as everything else.
#[cfg(feature = "metrics")]
pub(super) struct TenantInstruments {
    pub admitted: std::sync::Arc<otm_metrics::Counter>,
    pub backpressured: std::sync::Arc<otm_metrics::Counter>,
    pub rejected: std::sync::Arc<otm_metrics::Counter>,
    pub drained: std::sync::Arc<otm_metrics::Counter>,
    pub completions: std::sync::Arc<otm_metrics::Counter>,
    pub ingress_depth: std::sync::Arc<otm_metrics::Gauge>,
}

#[cfg(feature = "metrics")]
impl TenantInstruments {
    pub(super) fn new(registry: &otm_metrics::Registry, id: TenantId) -> Self {
        let labels = || vec![("tenant", id.to_string())];
        TenantInstruments {
            admitted: registry.counter_with("matchd_admitted_total", labels()),
            backpressured: registry.counter_with("matchd_backpressured_total", labels()),
            rejected: registry.counter_with("matchd_rejected_total", labels()),
            drained: registry.counter_with("matchd_drained_total", labels()),
            completions: registry.counter_with("matchd_completions_total", labels()),
            ingress_depth: registry.gauge_with("matchd_ingress_depth", labels()),
        }
    }
}

/// The state one tenant shares with the server (behind a mutex: sessions
/// submit from the client side, the tick loop drains from the server side).
pub(super) struct TenantShared {
    pub ingress: VecDeque<TenantRequest>,
    /// Ingress bound; submissions beyond it are backpressured.
    pub capacity: usize,
    /// DRR quantum: requests this tenant may drain per scheduling round.
    pub quantum: usize,
    /// Next handle sequence number in this tenant's namespace.
    pub next_seq: u64,
    /// Whether the tenant can put sends on the server's loopback wire.
    pub sends_enabled: bool,
    pub closed: bool,
    pub stats: TenantStats,
    /// Completions the server routed to this tenant, awaiting pickup.
    pub completions: VecDeque<CompletedReceive>,
    #[cfg(feature = "metrics")]
    pub instruments: TenantInstruments,
}

/// A tenant's handle on the server: submit posts and sends, collect
/// completions. Cloning yields another handle on the *same* session (same
/// ingress queue, same stats) — useful for splitting the submit and the
/// collect half across owners.
#[derive(Clone)]
pub struct TenantSession {
    pub(super) id: TenantId,
    /// The communicator this session is pinned to (`None` = unpinned: the
    /// cluster nodes run one private tenant over world traffic).
    pub(super) comm: Option<CommId>,
    pub(super) shared: Arc<Mutex<TenantShared>>,
}

impl TenantSession {
    /// This session's tenant id.
    pub fn tenant(&self) -> TenantId {
        self.id
    }

    /// The communicator the session is pinned to, if any.
    pub fn comm(&self) -> Option<CommId> {
        self.comm
    }

    /// Submits a receive post. On admission the receive's handle — minted
    /// in this tenant's namespace — is returned immediately; the post
    /// reaches the engine when the server's fair drain schedules it.
    pub fn submit_post(&self, pattern: ReceivePattern) -> Admission<RecvHandle> {
        let mut s = self.shared.lock().expect("tenant lock");
        if s.closed {
            return Self::reject(&mut s, "session closed");
        }
        if self.comm.is_some_and(|comm| pattern.comm != comm) {
            return Self::reject(&mut s, "pattern not on the tenant's communicator");
        }
        if let Some(retry_after) = Self::backpressure(&mut s) {
            return Admission::Backpressured { retry_after };
        }
        let handle = self.id.handle(s.next_seq);
        s.next_seq += 1;
        Self::admit(&mut s, TenantRequest::Post { pattern, handle });
        Admission::Admitted(handle)
    }

    /// Submits an eager message addressed to this server (source rank = the
    /// tenant id, communicator = the session's pin, or world when
    /// unpinned). The payload goes onto the server's loopback wire when the
    /// fair drain schedules it; refused on servers without one.
    pub fn submit_send(&self, tag: Tag, payload: Vec<u8>) -> Admission<()> {
        let mut s = self.shared.lock().expect("tenant lock");
        if s.closed {
            return Self::reject(&mut s, "session closed");
        }
        if !s.sends_enabled {
            return Self::reject(&mut s, "server has no loopback wire");
        }
        if let Some(retry_after) = Self::backpressure(&mut s) {
            return Admission::Backpressured { retry_after };
        }
        let src = Rank(self.id.0 as u32);
        let env = match self.comm {
            Some(comm) => Envelope::new(src, tag, comm),
            None => Envelope::world(src, tag),
        };
        Self::admit(&mut s, TenantRequest::Send { env, payload });
        Admission::Admitted(())
    }

    /// Takes every completion the server has delivered to this tenant so
    /// far, oldest first.
    pub fn take_completions(&self) -> Vec<CompletedReceive> {
        let mut s = self.shared.lock().expect("tenant lock");
        s.completions.drain(..).collect()
    }

    /// Completions delivered but not yet taken.
    pub fn completions_len(&self) -> usize {
        self.shared.lock().expect("tenant lock").completions.len()
    }

    /// A snapshot of the session's counters.
    pub fn stats(&self) -> TenantStats {
        let s = self.shared.lock().expect("tenant lock");
        let mut stats = s.stats;
        stats.ingress_depth = s.ingress.len();
        stats
    }

    /// Closes the session: subsequent submissions are rejected. Requests
    /// already admitted still drain, and completions remain collectable.
    pub fn close(&self) {
        self.shared.lock().expect("tenant lock").closed = true;
    }

    fn reject<T>(s: &mut TenantShared, reason: &'static str) -> Admission<T> {
        s.stats.rejected += 1;
        #[cfg(feature = "metrics")]
        s.instruments.rejected.inc();
        Admission::Rejected { reason }
    }

    /// `Some(retry_after)` when the ingress is full: the ticks the drain
    /// needs, at this tenant's quantum, to free the overflow.
    fn backpressure(s: &mut TenantShared) -> Option<u64> {
        if s.ingress.len() < s.capacity {
            return None;
        }
        let overflow = (s.ingress.len() + 1 - s.capacity) as u64;
        let retry_after = overflow.div_ceil(s.quantum.max(1) as u64).max(1);
        s.stats.backpressured += 1;
        #[cfg(feature = "metrics")]
        s.instruments.backpressured.inc();
        Some(retry_after)
    }

    fn admit(s: &mut TenantShared, req: TenantRequest) {
        s.ingress.push_back(req);
        s.stats.admitted += 1;
        #[cfg(feature = "metrics")]
        {
            s.instruments.admitted.inc();
            s.instruments.ingress_depth.set(s.ingress.len() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_namespaces_are_disjoint_and_reversible() {
        let a = TenantId(0).handle(7);
        let b = TenantId(1).handle(7);
        assert_ne!(a, b);
        assert_eq!(TenantId::of_handle(a), Some(TenantId(0)));
        assert_eq!(TenantId::of_handle(b), Some(TenantId(1)));
        // Plain service handles (low counter values) belong to no tenant.
        assert_eq!(TenantId::of_handle(RecvHandle(42)), None);
    }
}
