//! The `matchd` server: a long-lived, multi-tenant owner of one matching
//! service.
//!
//! The server wraps a [`MatchingService`] (and through it the sharded
//! offloaded engine) and runs a deterministic virtual-time **tick loop**.
//! One [`MatchServer::tick`] is one scheduling round:
//!
//! 1. **fair drain** — a deficit-round-robin pass over the tenants moves
//!    admitted requests from each bounded ingress queue into the engine
//!    (posts through the reserved-handle session path of
//!    [`MatchingService::post_recv_queued_reserved`], sends onto the
//!    loopback wire), at most `deficit` per tenant per round;
//! 2. **progress** — one [`MatchingService::progress`] call polls the NIC
//!    and drains the engine's command queue (where the per-lane quota of
//!    [`otm_base::MatchConfig::lane_quota`] keeps cross-communicator blocks
//!    fair *inside* the engine);
//! 3. **completion delivery** — completed receives are routed back to their
//!    tenants by the namespace bits of their handles;
//! 4. **observation** — per-tenant gauges are refreshed and, at the series
//!    cadence, a per-tenant sample lands next to the service's global one.
//!
//! Fairness composes across the two layers: DRR bounds how many of a
//! flooding tenant's requests *enter* the engine per tick, and the lane
//! quota bounds how much of each optimistic block the flooder's lane can
//! own once inside. A well-behaved tenant's ingress therefore keeps
//! draining at its own quantum no matter how hard a neighbour floods — the
//! flooder's excess lands on its *own* bounded ingress and is answered with
//! [`Admission::Backpressured`](super::tenant::Admission::Backpressured).
//!
//! Virtual time is the tick counter (which advances the service's poll
//! clock in lockstep), so a given submission schedule replays identically —
//! the same determinism contract as the rest of the simulator.

use super::tenant::{TenantId, TenantRequest, TenantSession, TenantShared, TenantStats};
use crate::bounce::BouncePool;
use crate::memory::DeviceMemory;
use crate::nic::RecvNic;
use crate::rdma::{connected_pair, eager_packet, QueuePair, RdmaDomain};
use crate::service::{MatchingService, ServiceError};
use otm_base::{CommId, MatchConfig, MatchError};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

#[cfg(feature = "metrics")]
use super::tenant::TenantInstruments;

/// Per-tenant knobs applied at [`MatchServer::open_tenant_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Ingress bound: submissions beyond it are backpressured.
    pub capacity: usize,
    /// DRR quantum: requests drained per scheduling round.
    pub quantum: usize,
    /// Pin the session to this communicator (posts on any other are
    /// rejected, sends are stamped with it). `None` leaves the session
    /// unpinned — world traffic, no isolation check.
    pub comm: Option<CommId>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            capacity: 1024,
            quantum: 64,
            comm: None,
        }
    }
}

/// Server-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchdConfig {
    /// Defaults for [`MatchServer::open_tenant`].
    pub tenant: TenantConfig,
    /// Deficit cap, in quanta: how much unused credit an idle-then-bursty
    /// tenant may bank. Bounds the burst one tenant can inject in a single
    /// round after saving up.
    pub deficit_cap_quanta: u64,
    /// Attaches the self-tuning [`crate::FeedbackController`] (default
    /// tuning) to the underlying service, so each tick's progress call can
    /// adjust the drain-retry budget and the engine's packing knobs from
    /// observed registry deltas. Opt-in (default `false`): a server under
    /// an external fairness harness may prefer fixed knobs. No effect
    /// without the `metrics` feature.
    pub self_tuning: bool,
}

impl Default for MatchdConfig {
    fn default() -> Self {
        MatchdConfig {
            tenant: TenantConfig::default(),
            deficit_cap_quanta: 4,
            self_tuning: false,
        }
    }
}

/// What one [`MatchServer::tick`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// The tick's ordinal (1-based).
    pub tick: u64,
    /// Requests the fair drain moved out of tenant ingress queues.
    pub drained: usize,
    /// Receives completed by this tick's progress call.
    pub completed: usize,
}

struct TenantEntry {
    id: TenantId,
    shared: Arc<Mutex<TenantShared>>,
    /// DRR credit carried between rounds (reset when the ingress empties).
    deficit: u64,
    #[cfg(feature = "metrics")]
    series: Option<otm_metrics::SeriesRecorder>,
}

/// The long-lived multi-tenant matching server (see module docs).
pub struct MatchServer {
    service: MatchingService,
    /// Loopback wire into the service's NIC, for tenant self-sends.
    /// Servers adopted around an externally wired service (the cluster
    /// nodes) have none; their tenants' sends are rejected at admission.
    wire: Option<QueuePair>,
    tenants: Vec<TenantEntry>,
    config: MatchdConfig,
    ticks: u64,
    #[cfg(feature = "metrics")]
    series_cadence: Option<u64>,
}

impl MatchServer {
    /// A standalone server: builds its own loopback wire, NIC and offloaded
    /// engine from `match_config` (charged against a fresh BlueField-3
    /// budget), with the command-queue session path enabled.
    pub fn new(match_config: MatchConfig, config: MatchdConfig) -> Result<Self, MatchError> {
        let (tx, rx) = connected_pair();
        let nic = RecvNic::new(
            rx,
            BouncePool::new(1024, mpi_matching::protocol::DEFAULT_EAGER_THRESHOLD),
        );
        let mut budget = DeviceMemory::bluefield3_l3();
        let mut service =
            MatchingService::offloaded(nic, RdmaDomain::new(), match_config, &mut budget)?;
        service
            .enable_command_queue()
            .expect("the offloaded engine has a command queue");
        Ok(Self::with_service(service, Some(tx), config))
    }

    /// Adopts an existing service — the path the cluster nodes take, where
    /// the NIC is already wired into a mesh. `wire`, when given, is a send
    /// endpoint into the service's NIC used for tenant self-sends.
    pub fn with_service(
        #[allow(unused_mut)] mut service: MatchingService,
        wire: Option<QueuePair>,
        config: MatchdConfig,
    ) -> Self {
        #[cfg(feature = "metrics")]
        if config.self_tuning {
            service.attach_controller(crate::control::FeedbackController::with_defaults());
        }
        MatchServer {
            service,
            wire,
            tenants: Vec::new(),
            config,
            ticks: 0,
            #[cfg(feature = "metrics")]
            series_cadence: None,
        }
    }

    /// Opens a tenant session with the server-default [`TenantConfig`].
    pub fn open_tenant(&mut self) -> TenantSession {
        self.open_tenant_with(self.config.tenant)
    }

    /// Opens a tenant session with explicit knobs. Tenant ids are assigned
    /// in open order, starting at 0.
    pub fn open_tenant_with(&mut self, tenant: TenantConfig) -> TenantSession {
        let id = TenantId(self.tenants.len() as u16);
        let shared = Arc::new(Mutex::new(TenantShared {
            ingress: VecDeque::new(),
            capacity: tenant.capacity.max(1),
            quantum: tenant.quantum.max(1),
            next_seq: 0,
            sends_enabled: self.wire.is_some(),
            closed: false,
            stats: TenantStats::default(),
            completions: VecDeque::new(),
            #[cfg(feature = "metrics")]
            instruments: TenantInstruments::new(self.service.metrics().registry(), id),
        }));
        self.tenants.push(TenantEntry {
            id,
            shared: Arc::clone(&shared),
            deficit: 0,
            #[cfg(feature = "metrics")]
            series: self.series_cadence.map(otm_metrics::SeriesRecorder::new),
        });
        TenantSession {
            id,
            comm: tenant.comm,
            shared,
        }
    }

    /// Number of tenants opened so far.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The server's virtual clock: completed ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The wrapped service (engine stats, backend name, NIC access).
    pub fn service(&self) -> &MatchingService {
        &self.service
    }

    /// Mutable access to the wrapped service.
    pub fn service_mut(&mut self) -> &mut MatchingService {
        &mut self.service
    }

    /// One scheduling round (see module docs): fair drain → progress →
    /// completion delivery → observation.
    pub fn tick(&mut self) -> Result<TickReport, ServiceError> {
        self.ticks += 1;
        let mut drained = 0usize;
        let cap_quanta = self.config.deficit_cap_quanta.max(1);
        for i in 0..self.tenants.len() {
            // Pop this round's batch under the tenant lock, apply it after
            // dropping the lock (sessions submitting concurrently only ever
            // contend on the short pop). Drain accounting happens *after*
            // dispatch: a post bounced by engine backpressure is requeued
            // below and must not count as drained.
            let batch: Vec<TenantRequest> = {
                let entry = &mut self.tenants[i];
                let mut shared = entry.shared.lock().expect("tenant lock");
                if shared.ingress.is_empty() {
                    // Classic DRR: an empty queue forfeits its credit, so
                    // idle tenants cannot bank unbounded bursts.
                    entry.deficit = 0;
                    continue;
                }
                let quantum = shared.quantum as u64;
                entry.deficit = (entry.deficit + quantum).min(quantum * cap_quanta);
                let take = (entry.deficit as usize).min(shared.ingress.len());
                let batch: Vec<TenantRequest> = shared.ingress.drain(..take).collect();
                entry.deficit -= batch.len() as u64;
                if shared.ingress.is_empty() {
                    entry.deficit = 0;
                }
                batch
            };
            let mut batch: VecDeque<TenantRequest> = batch.into();
            let mut dispatched = 0usize;
            while let Some(req) = batch.pop_front() {
                match req {
                    TenantRequest::Post { pattern, handle } => {
                        match self.service.post_recv_queued_reserved(pattern, handle) {
                            Ok(()) => {}
                            Err(ServiceError::Match(MatchError::SubmissionRingFull { .. })) => {
                                // The engine's per-communicator submission
                                // ring is full — retryable backpressure, not
                                // a failure. The bounced post and the rest of
                                // the batch go back to the FRONT of the
                                // tenant's ingress (they stay oldest, so
                                // per-tenant order holds) with their DRR
                                // credit refunded; this tick's progress call
                                // drains the ring, and until then the deeper
                                // ingress surfaces Admission::Backpressured
                                // with a retry hint to the tenant.
                                batch.push_front(TenantRequest::Post { pattern, handle });
                                break;
                            }
                            Err(e) => return Err(e),
                        }
                        dispatched += 1;
                    }
                    TenantRequest::Send { env, payload } => {
                        let wire = self
                            .wire
                            .as_ref()
                            .expect("sends are rejected at admission on wireless servers");
                        wire.send(eager_packet(env, payload))
                            .map_err(ServiceError::Rdma)?;
                        dispatched += 1;
                    }
                }
            }
            drained += dispatched;
            let entry = &mut self.tenants[i];
            entry.deficit += batch.len() as u64;
            let mut shared = entry.shared.lock().expect("tenant lock");
            for req in batch.into_iter().rev() {
                shared.ingress.push_front(req);
            }
            shared.stats.drained += dispatched as u64;
            #[cfg(feature = "metrics")]
            {
                shared.instruments.drained.add(dispatched as u64);
                shared
                    .instruments
                    .ingress_depth
                    .set(shared.ingress.len() as i64);
            }
        }
        let completed = self.service.progress()?;
        self.deliver_completions();
        #[cfg(feature = "metrics")]
        self.sample_tenant_series();
        Ok(TickReport {
            tick: self.ticks,
            drained,
            completed,
        })
    }

    /// Runs `n` ticks back to back.
    pub fn run_ticks(&mut self, n: u64) -> Result<(), ServiceError> {
        for _ in 0..n {
            self.tick()?;
        }
        Ok(())
    }

    /// Routes every completion the service produced to its tenant's
    /// outbox, by the namespace bits of the receive handle. A matchd
    /// server owns every post path, so a completion outside all tenant
    /// namespaces is a bug (a caller bypassed the sessions): it trips a
    /// debug assertion and is dropped rather than misdelivered.
    fn deliver_completions(&mut self) {
        for done in self.service.take_completed() {
            let Some(tenant) = TenantId::of_handle(done.recv) else {
                debug_assert!(
                    false,
                    "completion {:?} outside tenant namespaces",
                    done.recv
                );
                continue;
            };
            let Some(entry) = self.tenants.get(tenant.0 as usize) else {
                debug_assert!(false, "completion for unknown tenant {tenant}");
                continue;
            };
            debug_assert_eq!(entry.id, tenant, "tenant ids are open-order indices");
            let mut shared = entry.shared.lock().expect("tenant lock");
            shared.stats.completed += 1;
            #[cfg(feature = "metrics")]
            shared.instruments.completions.inc();
            shared.completions.push_back(done);
        }
    }

    /// The live `/metrics` exposition: the combined service + engine
    /// registries (including every per-tenant labeled instrument) rendered
    /// in the Prometheus text format. Scrapable between any two ticks;
    /// `None` without the `metrics` feature.
    pub fn prometheus(&self) -> Option<String> {
        self.service.observability_prometheus()
    }

    /// Attaches time-series sampling at `cadence` ticks: the service's
    /// global series plus one per-tenant section (ingress depth as the
    /// queue-depth curve, completions as the matched curve). Applies to
    /// already-open and future tenants.
    #[cfg(feature = "metrics")]
    pub fn attach_series(&mut self, cadence: u64) {
        self.series_cadence = Some(cadence);
        self.service
            .attach_series(otm_metrics::SeriesRecorder::new(cadence));
        for entry in &mut self.tenants {
            entry.series = Some(otm_metrics::SeriesRecorder::new(cadence));
        }
    }

    /// One synthesized per-tenant snapshot: the tenant's cumulative
    /// completions under the standard matched key, so
    /// [`otm_metrics::SeriesPoint::distill`] reads it like any engine
    /// snapshot.
    #[cfg(feature = "metrics")]
    fn tenant_snapshot(completed: u64) -> otm_metrics::RegistrySnapshot {
        let mut counters = std::collections::BTreeMap::new();
        counters.insert("otm_matched_total".to_string(), completed);
        otm_metrics::RegistrySnapshot {
            counters,
            gauges: std::collections::BTreeMap::new(),
            hists: std::collections::BTreeMap::new(),
        }
    }

    #[cfg(feature = "metrics")]
    fn sample_tenant_series(&mut self) {
        let t = self.ticks;
        for entry in &mut self.tenants {
            let Some(series) = &mut entry.series else {
                continue;
            };
            if !series.due(t) {
                continue;
            }
            let (depth, completed) = {
                let shared = entry.shared.lock().expect("tenant lock");
                (shared.ingress.len() as u64, shared.stats.completed)
            };
            series.sample(t, depth, &Self::tenant_snapshot(completed));
        }
    }

    /// Finishes the series: forces a terminal sample on the global and
    /// every per-tenant recorder, then renders the multi-section artifact
    /// of [`otm_metrics::tenant_sections_json`]. `None` when
    /// [`MatchServer::attach_series`] was never called.
    #[cfg(feature = "metrics")]
    pub fn finish_series(&mut self) -> Option<String> {
        self.series_cadence?;
        self.service.force_series_sample();
        let global = self.service.take_series()?;
        let mut sections: Vec<(String, otm_metrics::SeriesRecorder)> = Vec::new();
        let t = self.ticks;
        for entry in &mut self.tenants {
            let Some(series) = &mut entry.series else {
                continue;
            };
            let (depth, completed) = {
                let shared = entry.shared.lock().expect("tenant lock");
                (shared.ingress.len() as u64, shared.stats.completed)
            };
            series.force_sample(t, depth, &Self::tenant_snapshot(completed));
            sections.push((entry.id.to_string(), series.clone()));
        }
        let refs: Vec<(String, &otm_metrics::SeriesRecorder)> = sections
            .iter()
            .map(|(label, s)| (label.clone(), s))
            .collect();
        Some(otm_metrics::tenant_sections_json(&global, &refs))
    }
}

#[cfg(all(test, feature = "metrics"))]
mod tests {
    use super::*;
    use otm_base::{MatchConfig, PackingPolicy};

    #[test]
    fn self_tuning_server_attaches_the_controller_and_moves_knobs() {
        let mut server = MatchServer::new(
            MatchConfig::small(),
            MatchdConfig {
                self_tuning: true,
                ..MatchdConfig::default()
            },
        )
        .unwrap();
        let controller = server.service().controller().expect("controller attached");
        let interval = controller.interval_polls();
        // Two controller intervals of idle ticks: the first primes the
        // delta baseline, the second sees zero active lanes and pins
        // consecutive packing.
        for _ in 0..(2 * interval) {
            server.tick().unwrap();
        }
        let controller = server.service().controller().expect("still attached");
        assert_eq!(controller.packing(), PackingPolicy::Consecutive);
        assert!(controller.stats().knob_changes >= 1);
        let snap = server.service().metrics().snapshot();
        assert!(snap.counters["dpa_knob_changes_total"] >= 1);
        // Opt-out stays knob-free.
        let plain = MatchServer::new(MatchConfig::small(), MatchdConfig::default()).unwrap();
        assert!(plain.service().controller().is_none());
    }
}
