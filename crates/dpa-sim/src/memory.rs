//! The DPA device-memory budget (§IV-E).
//!
//! Matching state (index tables, descriptor table, bounce buffers) lives in
//! NIC memory, which is scarce: the BlueField-3 DPA works out of 1.5 MiB of
//! L2 and 3 MiB of L3. Each communicator allocates its own set of tables at
//! creation time; "if it is not possible to allocate DPA resources at
//! communicator creation time, the MPI implementation is expected to fall
//! back to software tag matching".

use otm_base::memory::Footprint;
use otm_base::MatchError;

/// A simple bump-accounted device-memory budget.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    used: u64,
}

impl DeviceMemory {
    /// A budget with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory { capacity, used: 0 }
    }

    /// A budget sized like the BlueField-3 DPA L3 cache (3 MiB), the
    /// capacity the paper compares footprints against.
    pub fn bluefield3_l3() -> Self {
        DeviceMemory::new(otm_base::memory::DPA_L3_BYTES)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Attempts to allocate `bytes`.
    pub fn try_alloc(&mut self, bytes: u64) -> Result<(), MatchError> {
        if bytes > self.available() {
            return Err(MatchError::OutOfDeviceMemory {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Attempts to allocate one communicator's matching state.
    pub fn try_alloc_comm(&mut self, fp: Footprint) -> Result<(), MatchError> {
        self.try_alloc(fp.total())
    }

    /// Releases `bytes` back to the budget.
    pub fn free(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.used, "freeing more than allocated");
        self.used = self.used.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let mut m = DeviceMemory::new(1000);
        m.try_alloc(400).unwrap();
        assert_eq!(m.used(), 400);
        assert_eq!(m.available(), 600);
        m.free(400);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn exhaustion_reports_fallback_error() {
        let mut m = DeviceMemory::new(100);
        m.try_alloc(90).unwrap();
        let err = m.try_alloc(20).unwrap_err();
        assert_eq!(
            err,
            MatchError::OutOfDeviceMemory {
                requested: 20,
                available: 10
            }
        );
    }

    #[test]
    fn paper_prototype_fits_the_l3_budget() {
        // 2048 bins, 1024 in-flight receives (§VI prototype).
        let mut m = DeviceMemory::bluefield3_l3();
        m.try_alloc_comm(Footprint::compute(2048, 1024)).unwrap();
        assert!(m.available() > 0);
    }

    #[test]
    fn many_communicators_eventually_exhaust_the_dpa() {
        // Each communicator gets its own tables (§IV-E); the budget bounds
        // how many can be offloaded before software fallback kicks in.
        let mut m = DeviceMemory::bluefield3_l3();
        let fp = Footprint::compute(128, 8 * 1024); // ~519.5 KiB each
        let mut offloaded = 0;
        while m.try_alloc_comm(fp).is_ok() {
            offloaded += 1;
        }
        // 3 MiB / ~519.5 KiB per communicator = 5 fully offloaded comms.
        assert_eq!(offloaded, 5);
    }
}
