//! Deterministic fault injection for the simulated delivery path.
//!
//! The paper's DPA handlers sit on a lossless fabric, so `dpa-sim`
//! historically delivered every wire packet exactly once and in order. A
//! production matching service cannot assume that: sPIN-style on-NIC
//! handlers must tolerate lossy links and stalled execution units. This
//! module interprets an [`otm_base::FaultPlan`] against the two places the
//! simulator can misbehave:
//!
//! * [`WireFaults`] wraps packet delivery into [`crate::nic::RecvNic`] —
//!   dropping, duplicating, reordering (within a bounded window) and
//!   delaying **sequenced** packets. Unsequenced control traffic (acks,
//!   legacy direct sends) passes through untouched, so only traffic that
//!   opted into the go-back-N protocol is ever perturbed.
//! * [`FaultInjectingBackend`] wraps a [`MatchingBackend`] — injecting
//!   transient retryable drain failures and silent worker stalls, the
//!   failure shapes the service's retry budget and fallback escalation
//!   must absorb.
//!
//! Everything is driven by the plan's seeded [`FaultRng`], so a given
//! `(seed, rates)` pair reproduces the exact same fault schedule run after
//! run — the property the chaos oracle uses to compare a faulty run with
//! its fault-free twin.

use crate::rdma::WirePacket;
use mpi_matching::backend::{
    BlockDelivery, DrainReport, FallbackState, MatchingBackend, PendingCommand,
};
use mpi_matching::stats::MatchStats;
use mpi_matching::{MsgHandle, PostResult, RecvHandle};
use otm_base::{Envelope, FaultPlan, FaultRng, MatchError, ReceivePattern};
use std::any::Any;

/// Counters of the faults a [`WireFaults`] instance actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireFaultStats {
    /// Packets silently dropped.
    pub drops: u64,
    /// Packets delivered twice.
    pub duplicates: u64,
    /// Packets released out of order.
    pub reorders: u64,
    /// Packets delivered late but in order.
    pub delays: u64,
}

impl WireFaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.drops + self.duplicates + self.reorders + self.delays
    }
}

/// A held-back packet: released once the delivery clock reaches `due`.
/// Remembers which queue pair it arrived on so the receiver can run its
/// per-QP sequence check and ack on the right endpoint.
#[derive(Debug)]
struct HeldPacket {
    due: u64,
    qp: usize,
    packet: WirePacket,
}

/// The wire-level interpreter of a [`FaultPlan`].
///
/// [`crate::nic::RecvNic`] consults this on every arriving packet:
/// [`WireFaults::admit`] decides the packet's fate and returns what to
/// deliver *now*; held packets (reordered or delayed) come back out of
/// [`WireFaults::pop_due`] once [`WireFaults::tick`] has advanced the
/// delivery clock far enough. The clock counts NIC polls, not wall time,
/// so runs are deterministic.
#[derive(Debug)]
pub struct WireFaults {
    plan: FaultPlan,
    rng: FaultRng,
    tick: u64,
    held: Vec<HeldPacket>,
    /// Remaining fault budget (`u64::MAX` when the plan is unbounded).
    budget: u64,
    stats: WireFaultStats,
    metrics: Option<crate::obs::ServiceMetrics>,
}

impl WireFaults {
    /// Builds the interpreter for `plan`. The plan should have passed
    /// [`FaultPlan::validate`]; zero-rate plans simply never inject.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = plan.rng();
        let budget = plan.max_faults.unwrap_or(u64::MAX);
        WireFaults {
            plan,
            rng,
            tick: 0,
            held: Vec::new(),
            budget,
            stats: WireFaultStats::default(),
            metrics: None,
        }
    }

    /// Attaches a metrics handle so injected faults show up as
    /// `dpa_wire_*_total` counters in a registry snapshot.
    pub fn attach_metrics(&mut self, metrics: crate::obs::ServiceMetrics) {
        self.metrics = Some(metrics);
    }

    /// Advances the delivery clock by one NIC poll.
    pub fn tick(&mut self) {
        self.tick += 1;
    }

    /// Decides the fate of a packet arriving on queue pair `qp` and
    /// returns the packets to deliver immediately (empty on drop/hold,
    /// two on duplication).
    ///
    /// Only sequenced packets are ever perturbed: acks and legacy
    /// unsequenced traffic pass through verbatim, so fault injection can
    /// only create conditions the go-back-N protocol is able to repair.
    pub fn admit(&mut self, qp: usize, packet: WirePacket) -> Vec<WirePacket> {
        if packet.seq.is_none() || self.budget == 0 {
            return vec![packet];
        }
        // One decision per fault kind, in a fixed order, so the schedule
        // depends only on the seed and the sequence of admitted packets.
        if self.rng.chance(self.plan.drop_permille) {
            self.budget -= 1;
            self.stats.drops += 1;
            if let Some(m) = &self.metrics {
                m.count_wire_drop();
            }
            return Vec::new();
        }
        if self.rng.chance(self.plan.duplicate_permille) {
            self.budget -= 1;
            self.stats.duplicates += 1;
            if let Some(m) = &self.metrics {
                m.count_wire_dup();
            }
            return vec![packet.clone(), packet];
        }
        if self.rng.chance(self.plan.reorder_permille) {
            self.budget -= 1;
            self.stats.reorders += 1;
            if let Some(m) = &self.metrics {
                m.count_wire_reorder();
            }
            let window = self.plan.reorder_window.max(1) as u64;
            let due = self.tick + 1 + self.rng.below(window);
            self.held.push(HeldPacket { due, qp, packet });
            return Vec::new();
        }
        if self.rng.chance(self.plan.delay_permille) {
            self.budget -= 1;
            self.stats.delays += 1;
            if let Some(m) = &self.metrics {
                m.count_wire_delay();
            }
            let due = self.tick + self.plan.delay_polls.max(1) as u64;
            self.held.push(HeldPacket { due, qp, packet });
            return Vec::new();
        }
        vec![packet]
    }

    /// Releases one held packet whose due time has passed, if any, with
    /// the queue pair it arrived on. Called repeatedly each poll so a
    /// staging failure can pause mid-release without losing packets.
    pub fn pop_due(&mut self) -> Option<(usize, WirePacket)> {
        let idx = self.held.iter().position(|h| h.due <= self.tick)?;
        let h = self.held.remove(idx);
        Some((h.qp, h.packet))
    }

    /// Packets currently held back (reordered or delayed, not yet due).
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// What was injected so far.
    pub fn stats(&self) -> WireFaultStats {
        self.stats
    }

    /// The plan this interpreter executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

/// Counters of the backend faults a [`FaultInjectingBackend`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendFaultStats {
    /// Drains that reported a transient retryable error without running.
    pub transient_failures: u64,
    /// Drains that silently made no progress (stalled worker).
    pub stalls: u64,
}

/// A [`MatchingBackend`] decorator that injects transient drain failures
/// and worker stalls according to a [`FaultPlan`].
///
/// A *transient failure* reports a retryable [`MatchError`] without popping
/// any command — exactly the contract a real engine honors on resource
/// exhaustion (commands requeue, a later drain resumes where this one
/// stopped). A *stall* returns an empty successful report: the drain "ran"
/// but a wedged worker made no progress. Both are repaired by the
/// service's retry loop; neither can corrupt matching state, which is what
/// the chaos oracle verifies.
///
/// The wrapper draws from its own decision stream (derived from the plan
/// seed) so wire faults and backend faults are independently reproducible.
pub struct FaultInjectingBackend {
    inner: Box<dyn MatchingBackend>,
    plan: FaultPlan,
    rng: FaultRng,
    budget: u64,
    stats: BackendFaultStats,
}

impl std::fmt::Debug for FaultInjectingBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjectingBackend")
            .field("inner", &self.inner.backend_name())
            .field("plan", &self.plan)
            .field("stats", &self.stats)
            .finish()
    }
}

impl FaultInjectingBackend {
    /// Wraps `inner`, injecting per `plan`. The decision stream is
    /// decorrelated from the wire stream by perturbing the seed.
    pub fn new(inner: Box<dyn MatchingBackend>, plan: FaultPlan) -> Self {
        let rng = FaultRng::new(otm_base::hash::mix64(plan.seed ^ 0xbac4_e9d5_fa17_0001));
        let budget = plan.max_faults.unwrap_or(u64::MAX);
        FaultInjectingBackend {
            inner,
            plan,
            rng,
            budget,
            stats: BackendFaultStats::default(),
        }
    }

    /// What was injected so far.
    pub fn stats(&self) -> BackendFaultStats {
        self.stats
    }
}

impl MatchingBackend for FaultInjectingBackend {
    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn post(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<PostResult, MatchError> {
        self.inner.post(pattern, handle)
    }

    fn arrive_block(
        &mut self,
        msgs: &[(Envelope, MsgHandle)],
    ) -> Result<Vec<BlockDelivery>, MatchError> {
        self.inner.arrive_block(msgs)
    }

    fn probe(&self, pattern: &ReceivePattern) -> Option<MsgHandle> {
        self.inner.probe(pattern)
    }

    fn prq_len(&self) -> usize {
        self.inner.prq_len()
    }

    fn umq_len(&self) -> usize {
        self.inner.umq_len()
    }

    fn merge_stats(&self, into: &mut MatchStats) {
        self.inner.merge_stats(into)
    }

    fn wants_offload_fallback(&self) -> bool {
        self.inner.wants_offload_fallback()
    }

    fn supports_command_queue(&self) -> bool {
        self.inner.supports_command_queue()
    }

    fn submit_command(&mut self, cmd: PendingCommand) -> Result<(), MatchError> {
        self.inner.submit_command(cmd)
    }

    fn drain_commands(&mut self) -> DrainReport {
        if self.budget > 0 && self.rng.chance(self.plan.transient_fail_permille) {
            self.budget -= 1;
            self.stats.transient_failures += 1;
            // A transient device hiccup: no command was popped, so the
            // retryable-error contract holds trivially — a retry resumes
            // exactly where the queue stands.
            return DrainReport {
                outcomes: Vec::new(),
                error: Some(MatchError::OutOfDeviceMemory {
                    requested: 0,
                    available: 0,
                }),
                unapplied: Vec::new(),
            };
        }
        if self.budget > 0 && self.rng.chance(self.plan.stall_permille) {
            self.budget -= 1;
            self.stats.stalls += 1;
            // A stalled worker: the drain returns having done nothing.
            return DrainReport::default();
        }
        self.inner.drain_commands()
    }

    fn pending_commands(&self) -> usize {
        self.inner.pending_commands()
    }

    fn drain_for_fallback(self: Box<Self>) -> Result<FallbackState, MatchError> {
        self.inner.drain_for_fallback()
    }

    fn as_any(&self) -> &dyn Any {
        // Deliberately exposes the *inner* backend: observability
        // downcasts (e.g. the service reading the optimistic engine's
        // device counters) should see through the fault decorator.
        self.inner.as_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdma::{ack_packet, eager_packet};
    use otm_base::{Rank, Tag};

    fn sequenced(seq: u64) -> WirePacket {
        eager_packet(Envelope::world(Rank(0), Tag(seq as u32)), vec![seq as u8]).with_seq(seq)
    }

    #[test]
    fn inert_plan_passes_everything_through() {
        let mut w = WireFaults::new(FaultPlan::default());
        for seq in 0..100 {
            let out = w.admit(0, sequenced(seq));
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].seq, Some(seq));
        }
        assert_eq!(w.stats().total(), 0);
        assert_eq!(w.held_len(), 0);
    }

    #[test]
    fn unsequenced_traffic_is_never_perturbed() {
        let plan = FaultPlan::new(1).with_drop_permille(1000);
        let mut w = WireFaults::new(plan);
        let out = w.admit(0, ack_packet(5));
        assert_eq!(out.len(), 1, "acks bypass fault injection");
        let out = w.admit(0, eager_packet(Envelope::world(Rank(0), Tag(0)), vec![]));
        assert_eq!(out.len(), 1, "unsequenced data bypasses fault injection");
        assert_eq!(w.stats().drops, 0);
    }

    #[test]
    fn certain_drop_rate_drops_every_sequenced_packet() {
        let mut w = WireFaults::new(FaultPlan::new(2).with_drop_permille(1000));
        for seq in 0..10 {
            assert!(w.admit(0, sequenced(seq)).is_empty());
        }
        assert_eq!(w.stats().drops, 10);
    }

    #[test]
    fn duplication_delivers_the_packet_twice() {
        let mut w = WireFaults::new(FaultPlan::new(3).with_duplicate_permille(1000));
        let out = w.admit(0, sequenced(7));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(w.stats().duplicates, 1);
    }

    #[test]
    fn reordered_packets_release_within_the_window() {
        let plan = FaultPlan::new(4)
            .with_reorder_permille(1000)
            .with_reorder_window(3);
        let mut w = WireFaults::new(plan);
        assert!(w.admit(3, sequenced(0)).is_empty());
        assert_eq!(w.held_len(), 1);
        // The packet must come back out within `reorder_window` ticks.
        let mut released = None;
        for _ in 0..4 {
            w.tick();
            if let Some((qp, p)) = w.pop_due() {
                assert_eq!(qp, 3, "release remembers the arrival QP");
                released = Some(p);
                break;
            }
        }
        assert_eq!(released.expect("released within window").seq, Some(0));
        assert_eq!(w.held_len(), 0);
        assert_eq!(w.stats().reorders, 1);
    }

    #[test]
    fn delayed_packets_release_after_exactly_delay_polls() {
        let plan = FaultPlan::new(5)
            .with_delay_permille(1000)
            .with_delay_polls(2);
        let mut w = WireFaults::new(plan);
        assert!(w.admit(0, sequenced(0)).is_empty());
        w.tick();
        assert!(w.pop_due().is_none(), "not due after one poll");
        w.tick();
        assert_eq!(w.pop_due().expect("due after two polls").1.seq, Some(0));
    }

    #[test]
    fn fault_budget_bounds_total_injections() {
        let plan = FaultPlan::new(6)
            .with_drop_permille(1000)
            .with_max_faults(3);
        let mut w = WireFaults::new(plan);
        let mut delivered = 0;
        for seq in 0..10 {
            delivered += w.admit(0, sequenced(seq)).len();
        }
        assert_eq!(w.stats().drops, 3, "budget caps injections");
        assert_eq!(delivered, 7, "post-budget packets sail through");
    }

    #[test]
    fn same_seed_injects_the_same_schedule() {
        let plan = FaultPlan::new(99)
            .with_drop_permille(300)
            .with_duplicate_permille(300)
            .with_reorder_permille(200)
            .with_reorder_window(4);
        let run = |plan: FaultPlan| {
            let mut w = WireFaults::new(plan);
            let mut fates = Vec::new();
            for seq in 0..200 {
                fates.push(w.admit(0, sequenced(seq)).len());
            }
            (fates, w.stats())
        };
        let (fates_a, stats_a) = run(plan.clone());
        let (fates_b, stats_b) = run(plan);
        assert_eq!(fates_a, fates_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.total() > 0, "rates this high must inject something");
    }

    #[test]
    fn transient_backend_failure_is_retryable_and_consumes_nothing() {
        use mpi_matching::traditional::TraditionalMatcher;
        let plan = FaultPlan::new(7).with_transient_fail_permille(1000);
        let mut b = FaultInjectingBackend::new(Box::new(TraditionalMatcher::new()), plan);
        let report = b.drain_commands();
        assert!(report.outcomes.is_empty());
        assert!(report.error.as_ref().is_some_and(|e| e.is_retryable()));
        assert!(report.unapplied.is_empty());
        assert_eq!(b.stats().transient_failures, 1);
    }

    #[test]
    fn stalled_backend_drain_reports_silent_no_progress() {
        use mpi_matching::traditional::TraditionalMatcher;
        let plan = FaultPlan::new(8).with_stall_permille(1000);
        let mut b = FaultInjectingBackend::new(Box::new(TraditionalMatcher::new()), plan);
        let report = b.drain_commands();
        assert!(report.outcomes.is_empty());
        assert!(report.error.is_none());
        assert_eq!(b.stats().stalls, 1);
    }

    #[test]
    fn fault_wrapper_delegates_matching_faithfully() {
        use mpi_matching::traditional::TraditionalMatcher;
        let plan = FaultPlan::new(9).with_transient_fail_permille(500);
        let mut b = FaultInjectingBackend::new(Box::new(TraditionalMatcher::new()), plan);
        assert_eq!(b.backend_name(), "MPI-CPU");
        b.post(ReceivePattern::exact(Rank(0), Tag(1)), RecvHandle(0))
            .unwrap();
        let d = b
            .arrive_block(&[(Envelope::world(Rank(0), Tag(1)), MsgHandle(0))])
            .unwrap();
        assert_eq!(d[0].matched(), Some(RecvHandle(0)));
        assert_eq!(b.prq_len(), 0);
    }
}
