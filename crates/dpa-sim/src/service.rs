//! The receive-side matching service: matching backend + protocol handling.
//!
//! The service is generic over [`MatchingBackend`]: it holds a
//! `Box<dyn MatchingBackend>` and drives posts, arrival blocks, stats and
//! the software-fallback migration purely through the trait. The trait
//! objects it ships with are the three configurations Fig. 8 compares:
//!
//! * **Optimistic-DPA** — the offloaded engine: blocks of up to `N`
//!   completions are matched in parallel by [`otm::OtmEngine`]; the host CPU
//!   does no matching work;
//! * **MPI-CPU** — the traditional linked-list matcher running on the host,
//!   one completion at a time;
//! * **RDMA-CPU** — no matching at all: completions are consumed in arrival
//!   order (the transport ceiling: "a reference baseline where no matching
//!   is performed").
//!
//! After a match, the service drives the protocol stage of §IV-B through the
//! checked state machines of [`mpi_matching::protocol`]: eager payloads are
//! copied out of the bounce buffer; rendezvous payloads are pulled with an
//! RDMA READ against the sender's registered region. Unexpected messages
//! have their staged bytes (or RTS descriptor) moved into the unexpected
//! store so the bounce buffer frees immediately (§IV-C).

use crate::memory::DeviceMemory;
use crate::nic::{Completion, NicError, RecvNic};
use crate::obs::{service_trace_event, ServiceMetrics};
use crate::rdma::{PayloadKind, RdmaDomain, RdmaError};
use mpi_matching::protocol::{Action, EagerTransfer, ProtocolStateError, RendezvousTransfer, Rts};
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::{
    CommandOutcome, MatchingBackend, MsgHandle, PendingCommand, PostResult, RdmaNoOp, RecvHandle,
};
use otm::{Delivery, OtmEngine};
use otm_base::memory::Footprint;
use otm_base::{Envelope, MatchConfig, MatchError, ReceivePattern};
use std::collections::HashMap;

/// A receive that completed: matched, protocol executed, data delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedReceive {
    /// The receive handle returned by [`MatchingService::post_recv`].
    pub recv: RecvHandle,
    /// The matched message's envelope.
    pub env: Envelope,
    /// The delivered payload (the "user buffer" after the copy / RDMA read).
    pub data: Vec<u8>,
}

/// Errors surfaced by the service.
#[derive(Debug)]
pub enum ServiceError {
    /// Receive path failure.
    Nic(NicError),
    /// Matching failure (resource exhaustion ⇒ software fallback).
    Match(MatchError),
    /// Rendezvous RDMA read failure.
    Rdma(RdmaError),
    /// Protocol state machine violation (a bug, surfaced loudly).
    Protocol(ProtocolStateError),
    /// The software-fallback replay violated a migration invariant (e.g. a
    /// drained receive or message matched while the snapshot was being
    /// replayed). The service stays poisoned: running on after a spurious
    /// match would silently corrupt the MPI matching order.
    FallbackReplay(String),
    /// The sender-side reliability protocol gave up (transport failure or
    /// retry-budget exhaustion on an unacknowledged window).
    Reliability(crate::reliable::ReliabilityError),
    /// A `matchd` tenant session refused the request at admission
    /// (backpressured or rejected). Callers that treat their session as
    /// always-admitting — the cluster nodes run one private tenant with a
    /// generous ingress — surface the refusal as this error instead of
    /// retrying.
    Admission(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Nic(e) => write!(f, "nic: {e}"),
            ServiceError::Match(e) => write!(f, "match: {e}"),
            ServiceError::Rdma(e) => write!(f, "rdma: {e}"),
            ServiceError::Protocol(e) => write!(f, "protocol: {e}"),
            ServiceError::FallbackReplay(msg) => write!(f, "fallback replay: {msg}"),
            ServiceError::Reliability(e) => write!(f, "reliability: {e}"),
            ServiceError::Admission(msg) => write!(f, "admission: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<crate::reliable::ReliabilityError> for ServiceError {
    fn from(e: crate::reliable::ReliabilityError) -> Self {
        ServiceError::Reliability(e)
    }
}

impl From<NicError> for ServiceError {
    fn from(e: NicError) -> Self {
        ServiceError::Nic(e)
    }
}
impl From<MatchError> for ServiceError {
    fn from(e: MatchError) -> Self {
        ServiceError::Match(e)
    }
}
impl From<RdmaError> for ServiceError {
    fn from(e: RdmaError) -> Self {
        ServiceError::Rdma(e)
    }
}
impl From<ProtocolStateError> for ServiceError {
    fn from(e: ProtocolStateError) -> Self {
        ServiceError::Protocol(e)
    }
}

/// Payload-relevant state of an unexpected message, after its bounce buffer
/// has been released (§IV-C: for eager the bytes are copied to the
/// unexpected store; for rendezvous the stored data carries what the RDMA
/// read will need).
#[derive(Debug, Clone)]
enum StoredPayload {
    Eager(Vec<u8>),
    Rts { rts: Rts, head: Vec<u8> },
}

#[derive(Debug, Clone)]
struct StoredMessage {
    env: Envelope,
    payload: StoredPayload,
}

/// The placeholder installed while the offloaded backend is drained for the
/// software fallback. If the replay completes, a software matcher replaces
/// it; if the drain fails, the poison stays and every subsequent matching
/// operation reports [`MatchError::EngineStopped`] — the service never runs
/// with silently half-migrated state.
struct PoisonedBackend;

impl MatchingBackend for PoisonedBackend {
    fn backend_name(&self) -> &'static str {
        "Poisoned"
    }

    fn post(&mut self, _: ReceivePattern, _: RecvHandle) -> Result<PostResult, MatchError> {
        Err(MatchError::EngineStopped)
    }

    fn arrive_block(&mut self, _: &[(Envelope, MsgHandle)]) -> Result<Vec<Delivery>, MatchError> {
        Err(MatchError::EngineStopped)
    }

    fn probe(&self, _: &ReceivePattern) -> Option<MsgHandle> {
        None
    }

    fn prq_len(&self) -> usize {
        0
    }

    fn umq_len(&self) -> usize {
        0
    }

    fn merge_stats(&self, _: &mut mpi_matching::MatchStats) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The receive-side matching service (see module docs).
pub struct MatchingService {
    backend: Box<dyn MatchingBackend>,
    nic: RecvNic,
    domain: RdmaDomain,
    next_recv: u64,
    completed: Vec<CompletedReceive>,
    unexpected: HashMap<MsgHandle, StoredMessage>,
    /// Payloads of arrivals submitted into the backend's command queue but
    /// not yet applied by a drain. Staging host-side releases the bounce
    /// buffer at submit time (§IV-C) and lets a fallback replay the queued
    /// arrival with its payload intact.
    inflight: HashMap<MsgHandle, StoredMessage>,
    /// Whether [`MatchingService::progress`] routes arrivals through the
    /// backend's command queue instead of matching blocks synchronously.
    use_queue: bool,
    /// How many times a retryable drain error is retried within one
    /// [`MatchingService::progress`] call before escalating to software
    /// fallback. Transient device failures (a busy worker, a momentary
    /// memory squeeze) clear on retry; genuine exhaustion burns through the
    /// budget and migrates.
    retry_budget: u32,
    fellback: bool,
    metrics: ServiceMetrics,
    /// Virtual clock: one tick per [`MatchingService::progress`] call (the
    /// simulator measures time in polls).
    polls: u64,
    /// Rolling time-series sampler, when a caller attached one: snapshots
    /// the combined registry at a fixed poll cadence.
    #[cfg(feature = "metrics")]
    series: Option<otm_metrics::SeriesRecorder>,
    /// Self-tuning feedback controller, when a caller attached one: ticks
    /// at its own poll cadence, observing registry deltas and actuating
    /// the drain-retry budget, the engine's packing knobs, and the
    /// published reliability-window hint.
    #[cfg(feature = "metrics")]
    controller: Option<crate::control::FeedbackController>,
}

/// Default number of in-call retries for a retryable drain error before the
/// service escalates to software fallback.
pub const DEFAULT_DRAIN_RETRY_BUDGET: u32 = 3;

impl MatchingService {
    /// Creates a service around an arbitrary matching backend. This is the
    /// single construction path: the named constructors below only pick the
    /// backend (and, for the offloaded one, charge the memory budget).
    pub fn with_backend(
        mut nic: RecvNic,
        domain: RdmaDomain,
        backend: Box<dyn MatchingBackend>,
    ) -> Self {
        let metrics = ServiceMetrics::new();
        nic.attach_metrics(metrics.clone());
        MatchingService {
            backend,
            nic,
            domain,
            next_recv: 0,
            completed: Vec::new(),
            unexpected: HashMap::new(),
            inflight: HashMap::new(),
            use_queue: false,
            retry_budget: DEFAULT_DRAIN_RETRY_BUDGET,
            fellback: false,
            metrics,
            polls: 0,
            #[cfg(feature = "metrics")]
            series: None,
            #[cfg(feature = "metrics")]
            controller: None,
        }
    }

    /// Routes arrivals through the backend's asynchronous command queue
    /// (§IV-E's QP command path): each completion's payload is staged
    /// host-side (releasing its bounce buffer immediately, §IV-C), the
    /// arrival is submitted, and a drain at the end of each
    /// [`MatchingService::progress`] call applies the queue in submission
    /// order. Refused if the backend has no command queue.
    pub fn enable_command_queue(&mut self) -> Result<(), ServiceError> {
        if !self.backend.supports_command_queue() {
            return Err(ServiceError::Match(MatchError::InvalidConfig(format!(
                "the {} backend has no command queue",
                self.backend.backend_name()
            ))));
        }
        self.use_queue = true;
        Ok(())
    }

    /// Sets how many times a retryable drain error is retried within a
    /// single [`MatchingService::progress`] call before the service
    /// escalates to software fallback (default
    /// [`DEFAULT_DRAIN_RETRY_BUDGET`]). Each retry records one step of the
    /// exponential backoff schedule in the `dpa_backoff_polls` histogram —
    /// the simulator's clock is the poll count, so the backoff is recorded
    /// rather than slept.
    pub fn set_retry_budget(&mut self, budget: u32) {
        self.retry_budget = budget;
    }

    /// The current in-call drain retry budget.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// Creates the offloaded service, charging the communicator's matching
    /// state against the DPA memory budget. On
    /// [`MatchError::OutOfDeviceMemory`] the caller is expected to fall back
    /// to [`MatchingService::mpi_cpu`] (§IV-E).
    pub fn offloaded(
        nic: RecvNic,
        domain: RdmaDomain,
        config: MatchConfig,
        budget: &mut DeviceMemory,
    ) -> Result<Self, MatchError> {
        budget.try_alloc_comm(Footprint::compute(config.bins, config.max_receives))?;
        let engine = OtmEngine::new(config)?;
        Ok(Self::with_backend(nic, domain, Box::new(engine)))
    }

    /// Creates the offloaded service if the budget allows, otherwise falls
    /// back to host software matching — the fallback rule of §IV-E. The
    /// returned flag reports whether offloading succeeded.
    pub fn offloaded_or_fallback(
        nic: RecvNic,
        domain: RdmaDomain,
        config: MatchConfig,
        budget: &mut DeviceMemory,
    ) -> (Self, bool) {
        match budget.try_alloc_comm(Footprint::compute(config.bins, config.max_receives)) {
            Ok(()) => {
                let engine = OtmEngine::new(config).expect("validated config");
                (Self::with_backend(nic, domain, Box::new(engine)), true)
            }
            Err(_) => (Self::mpi_cpu(nic, domain), false),
        }
    }

    /// The host-CPU traditional matcher (MPI-CPU baseline).
    pub fn mpi_cpu(nic: RecvNic, domain: RdmaDomain) -> Self {
        Self::with_backend(nic, domain, Box::new(TraditionalMatcher::new()))
    }

    /// The no-matching transport ceiling (RDMA-CPU baseline).
    pub fn rdma_cpu(nic: RecvNic, domain: RdmaDomain) -> Self {
        Self::with_backend(nic, domain, Box::new(RdmaNoOp::new()))
    }

    /// Which backend is running (for reports).
    pub fn backend_name(&self) -> &'static str {
        self.backend.backend_name()
    }

    /// Engine statistics, when the backend is the offloaded engine.
    pub fn engine_stats(&self) -> Option<otm::StatsSnapshot> {
        self.backend
            .as_any()
            .downcast_ref::<OtmEngine>()
            .map(|e| e.stats())
    }

    /// The service's metric instruments (a no-op handle when the `metrics`
    /// feature is disabled).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// One combined registry snapshot: the service's queue gauges and
    /// pressure counters merged with — when the backend is the offloaded
    /// engine — the engine's search-depth/latency histograms and
    /// per-resolution-path counters.
    #[cfg(feature = "metrics")]
    pub fn observability_snapshot(&self) -> otm_metrics::RegistrySnapshot {
        let snap = self.metrics.snapshot();
        match self.backend.as_any().downcast_ref::<OtmEngine>() {
            Some(e) => snap.merge(&e.metrics_snapshot()),
            None => snap,
        }
    }

    /// Attaches a rolling time-series sampler: every `cadence` polls of
    /// [`MatchingService::progress`], the combined registry snapshot is
    /// distilled into one [`otm_metrics::SeriesPoint`]. The virtual clock
    /// is the service's poll count, so a given workload produces the same
    /// series on every run.
    #[cfg(feature = "metrics")]
    pub fn attach_series(&mut self, recorder: otm_metrics::SeriesRecorder) {
        self.series = Some(recorder);
    }

    /// Detaches and returns the time-series sampler, if one was attached.
    #[cfg(feature = "metrics")]
    pub fn take_series(&mut self) -> Option<otm_metrics::SeriesRecorder> {
        self.series.take()
    }

    /// Attaches the self-tuning feedback controller. Every
    /// `interval_polls` calls of [`MatchingService::progress`], the
    /// controller differences the combined registry snapshot against the
    /// previous interval and actuates its knobs: the drain-retry budget
    /// and the engine's packing policy/window are applied directly, and
    /// the reliability-window hint is published through
    /// [`MatchingService::reliability_window_hint`] for the harness that
    /// owns the [`crate::ReliableSender`]. Every applied movement is
    /// counted in `dpa_knob_changes_total` and stamped as a
    /// `knob_changed` span.
    #[cfg(feature = "metrics")]
    pub fn attach_controller(&mut self, controller: crate::control::FeedbackController) {
        self.controller = Some(controller);
    }

    /// The attached controller, if any.
    #[cfg(feature = "metrics")]
    pub fn controller(&self) -> Option<&crate::control::FeedbackController> {
        self.controller.as_ref()
    }

    /// Detaches and returns the feedback controller, if one was attached.
    #[cfg(feature = "metrics")]
    pub fn take_controller(&mut self) -> Option<crate::control::FeedbackController> {
        self.controller.take()
    }

    /// The controller's current reliability-window hint, when a controller
    /// is attached. The service does not own the sender side of the
    /// reliability protocol, so the harness driving both applies this to
    /// its [`crate::ReliableSender`] with `set_window_limit` after each
    /// poll.
    #[cfg(feature = "metrics")]
    pub fn reliability_window_hint(&self) -> Option<usize> {
        self.controller.as_ref().map(|c| c.window_hint())
    }

    /// Forces one terminal series sample at the current virtual time, so
    /// the last point's cumulative values equal the end-of-run registry
    /// snapshot regardless of where the cadence fell. No-op without an
    /// attached sampler.
    #[cfg(feature = "metrics")]
    pub fn force_series_sample(&mut self) {
        if self.series.is_some() {
            let snap = self.observability_snapshot();
            let depth = (self.nic.cq_len() + self.unexpected.len()) as u64;
            if let Some(series) = &mut self.series {
                series.force_sample(self.polls, depth, &snap);
            }
        }
    }

    /// The service's virtual clock: how many times
    /// [`MatchingService::progress`] has run.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// The offloaded engine's lifecycle span events (posted / enqueued /
    /// packed / matched), when the backend is the offloaded engine. The
    /// service's own spans (retransmitted / fell_back) live in
    /// [`MatchingService::metrics`]; both share one [`otm_metrics::now_ns`]
    /// timeline, so a harness can merge the two dumps by timestamp.
    #[cfg(feature = "trace-events")]
    pub fn engine_span_events(&self) -> Option<Vec<otm_metrics::SpanEvent>> {
        self.backend
            .as_any()
            .downcast_ref::<OtmEngine>()
            .map(|e| e.span_events())
    }

    /// The combined observability snapshot rendered as a JSON string, or
    /// `None` when the `metrics` feature is disabled. Callers that only
    /// forward the data (benchmark reports) can use this without any
    /// feature gating of their own.
    pub fn observability_json(&self) -> Option<String> {
        #[cfg(feature = "metrics")]
        {
            Some(self.observability_snapshot().to_json())
        }
        #[cfg(not(feature = "metrics"))]
        {
            None
        }
    }

    /// The combined observability snapshot rendered in the Prometheus text
    /// exposition format, or `None` when the `metrics` feature is disabled.
    /// This is what the `matchd` tick loop serves as its live `/metrics`
    /// endpoint: every scrape is a fresh walk of the registries, so
    /// per-tenant labeled instruments appear as soon as a tenant session
    /// touches them.
    pub fn observability_prometheus(&self) -> Option<String> {
        #[cfg(feature = "metrics")]
        {
            Some(self.observability_snapshot().to_prometheus())
        }
        #[cfg(not(feature = "metrics"))]
        {
            None
        }
    }

    /// Posts a receive. If an unexpected message already matches, the
    /// protocol runs immediately and the receive completes.
    ///
    /// When the offloaded engine's descriptor table fills up, the service
    /// transparently migrates all matching state to host software matching
    /// and retries — "if the number of posted receives exceeds this
    /// capacity, the application must fall back to software tag matching"
    /// (§III-B).
    pub fn post_recv(&mut self, pattern: ReceivePattern) -> Result<RecvHandle, ServiceError> {
        let handle = self.reserve_recv();
        self.post_recv_reserved(pattern, handle)?;
        Ok(handle)
    }

    /// Reserves the next receive handle from the service's own counter
    /// without posting anything. Client layers that must know a receive's
    /// identity *before* the post reaches the engine (the `matchd` tenant
    /// sessions hand handles out at admission time, ticks before the drain
    /// applies the post) reserve here — or mint handles in a disjoint
    /// namespace of their own — and post through
    /// [`MatchingService::post_recv_reserved`].
    pub fn reserve_recv(&mut self) -> RecvHandle {
        let handle = RecvHandle(self.next_recv);
        self.next_recv += 1;
        handle
    }

    /// Posts a receive under a caller-supplied handle — the engine-facing
    /// half of [`MatchingService::post_recv`]. The handle must be unique
    /// for the service's lifetime (reserved via
    /// [`MatchingService::reserve_recv`] or minted in a namespace that
    /// cannot collide with it); matching-order and fallback semantics are
    /// identical to `post_recv`.
    pub fn post_recv_reserved(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<(), ServiceError> {
        let matched = match self.backend.post(pattern, handle) {
            Ok(PostResult::Matched(msg)) => Some(msg),
            Ok(PostResult::Posted) => None,
            Err(MatchError::ReceiveTableFull) if self.backend.wants_offload_fallback() => {
                self.fall_back_to_software(Vec::new())?;
                match self.backend.post(pattern, handle)? {
                    PostResult::Matched(msg) => Some(msg),
                    PostResult::Posted => None,
                }
            }
            Err(e) => return Err(e.into()),
        };
        if let Some(msg) = matched {
            let stored = self
                .unexpected
                .remove(&msg)
                .expect("unexpected payload stored");
            let completed = self.run_protocol_from_store(handle, stored)?;
            self.completed.push(completed);
        }
        Ok(())
    }

    /// Posts a receive through the backend's command queue (§IV-E's
    /// asynchronous post command path): the post is enqueued and takes
    /// effect — possibly completing against a waiting unexpected message —
    /// at the next [`MatchingService::progress`] drain. Falls back to the
    /// synchronous [`MatchingService::post_recv`] when the command queue is
    /// not enabled or the backend has none, so callers can use this
    /// unconditionally.
    ///
    /// Queued posts interleave with queued arrivals in one submission
    /// stream, which is what lets the drain's packing scheduler reorder
    /// across communicators under mixed traffic.
    pub fn post_recv_queued(
        &mut self,
        pattern: ReceivePattern,
    ) -> Result<RecvHandle, ServiceError> {
        let handle = self.reserve_recv();
        self.post_recv_queued_reserved(pattern, handle)?;
        Ok(handle)
    }

    /// Posts a receive under a caller-supplied handle through the command
    /// queue — the session path the `matchd` server drains tenants into.
    /// Degrades to the synchronous
    /// [`MatchingService::post_recv_reserved`] when the queue is not
    /// enabled, exactly as [`MatchingService::post_recv_queued`] does.
    pub fn post_recv_queued_reserved(
        &mut self,
        pattern: ReceivePattern,
        handle: RecvHandle,
    ) -> Result<(), ServiceError> {
        if !(self.use_queue && self.backend.supports_command_queue()) {
            return self.post_recv_reserved(pattern, handle);
        }
        self.backend
            .submit_command(PendingCommand::Post { pattern, handle })
            .map_err(ServiceError::Match)
    }

    /// Migrates all matching state from the offloaded backend to a host
    /// software matcher (§III-B/§IV-E fallback), in two phases:
    ///
    /// 1. **State replay.** The drained unexpected messages, then the
    ///    drained receives. Both sides are mutually non-matching by
    ///    construction (each was checked against the other side when it was
    ///    recorded), so a match here means the snapshot is corrupt — the
    ///    replay aborts with [`ServiceError::FallbackReplay`] and the
    ///    poison stays installed.
    /// 2. **Pending replay.** The commands the backend accepted into its
    ///    submission queue but never applied: `extra_pending` first (what a
    ///    terminal [`mpi_matching::DrainReport`] surfaced — those commands
    ///    were popped before the snapshot was taken), then the snapshot's
    ///    own pending tail, in submission order. These are younger than the
    ///    state and *may* legitimately match during replay; any pair formed
    ///    runs its protocol with the payload staged in the in-flight stash
    ///    or the unexpected store.
    ///
    /// The migration is transactional: a [`PoisonedBackend`] holds the slot
    /// while the offloaded backend drains, and the software matcher is
    /// installed only once the full state AND every pending command have
    /// been replayed. If the drain or the replay fails, the poison stays —
    /// subsequent operations report [`MatchError::EngineStopped`] rather
    /// than silently matching against a partial state.
    fn fall_back_to_software(
        &mut self,
        extra_pending: Vec<PendingCommand>,
    ) -> Result<(), ServiceError> {
        let offloaded = std::mem::replace(
            &mut self.backend,
            Box::new(PoisonedBackend) as Box<dyn MatchingBackend>,
        );
        let state = offloaded.drain_for_fallback()?;
        let mut matcher: Box<dyn MatchingBackend> = Box::new(TraditionalMatcher::new());
        for (env, msg) in state.unexpected {
            self.metrics.span_fell_back(msg.0);
            let d = matcher
                .arrive_block(&[(env, msg)])
                .expect("software matcher is unbounded");
            if !matches!(d[0], Delivery::Unexpected { .. }) {
                return Err(ServiceError::FallbackReplay(format!(
                    "drained unexpected message {msg:?} ({env}) matched during state replay"
                )));
            }
        }
        for (pattern, recv) in state.receives {
            self.metrics.span_fell_back_recv(recv.0);
            let r = matcher
                .post(pattern, recv)
                .expect("software matcher is unbounded");
            if r != PostResult::Posted {
                return Err(ServiceError::FallbackReplay(format!(
                    "drained receive {recv:?} ({pattern}) matched during state replay"
                )));
            }
        }
        // Phase 2: replay the undrained commands. Pairs they form complete
        // through the normal protocol path; arrivals that stay unexpected
        // move their staged payloads into the unexpected store.
        let mut matched_pairs: Vec<(RecvHandle, MsgHandle)> = Vec::new();
        let mut still_unexpected: Vec<MsgHandle> = Vec::new();
        for cmd in extra_pending.into_iter().chain(state.pending) {
            match cmd {
                PendingCommand::Post { pattern, handle } => {
                    self.metrics.span_fell_back_recv(handle.0);
                    match matcher
                        .post(pattern, handle)
                        .expect("software matcher is unbounded")
                    {
                        PostResult::Matched(msg) => matched_pairs.push((handle, msg)),
                        PostResult::Posted => {}
                    }
                }
                PendingCommand::Arrival { env, msg } => {
                    self.metrics.span_fell_back(msg.0);
                    let d = matcher
                        .arrive_block(&[(env, msg)])
                        .expect("software matcher is unbounded");
                    match d[0] {
                        Delivery::Matched { recv, .. } => matched_pairs.push((recv, msg)),
                        Delivery::Unexpected { .. } => still_unexpected.push(msg),
                    }
                }
            }
        }
        for (recv, msg) in matched_pairs {
            let stored = self
                .inflight
                .remove(&msg)
                .or_else(|| self.unexpected.remove(&msg))
                .ok_or_else(|| {
                    ServiceError::FallbackReplay(format!(
                        "message {msg:?} matched during pending replay but has no stored payload"
                    ))
                })?;
            let done = self.run_protocol_from_store(recv, stored)?;
            self.completed.push(done);
        }
        for msg in still_unexpected {
            let stored = self.inflight.remove(&msg).ok_or_else(|| {
                ServiceError::FallbackReplay(format!(
                    "queued arrival {msg:?} has no staged payload"
                ))
            })?;
            self.unexpected.insert(msg, stored);
        }
        self.backend = matcher;
        self.fellback = true;
        self.metrics.count_fallback();
        Ok(())
    }

    /// Whether the service has fallen back to software matching.
    pub fn fell_back(&self) -> bool {
        self.fellback
    }

    /// Polls the NIC and matches everything that arrived. Returns the
    /// number of newly completed receives.
    pub fn progress(&mut self) -> Result<usize, ServiceError> {
        self.polls += 1;
        self.metrics.count_poll();
        if let Err(e) = self.nic.poll() {
            if matches!(e, NicError::Staging(_)) {
                self.metrics.count_spill();
                service_trace_event!(self.metrics, 0u32, BounceSpill);
            }
            return Err(e.into());
        }
        // Backlog at its largest: everything arrived, nothing matched yet.
        self.observe_queues();
        let before = self.completed.len();
        if self.use_queue && self.backend.supports_command_queue() {
            self.progress_queued()?;
        } else {
            loop {
                let block = self.nic.take_block(self.backend.block_size());
                if block.is_empty() {
                    break;
                }
                self.match_block(block)?;
            }
        }
        // Post-drain view: the CQ is empty, the unexpected store and any
        // still-staged bounce buffers reflect what matching left behind.
        self.observe_queues();
        let done = self.completed.len() - before;
        self.metrics.add_completions(done as u64);
        #[cfg(feature = "metrics")]
        if self.series.as_ref().is_some_and(|s| s.due(self.polls)) {
            // Sampled post-drain: queue_depth is the backlog matching left
            // behind (spilled CQ entries plus waiting unexpected messages).
            let snap = self.observability_snapshot();
            let depth = (self.nic.cq_len() + self.unexpected.len()) as u64;
            if let Some(series) = &mut self.series {
                series.sample(self.polls, depth, &snap);
            }
        }
        #[cfg(feature = "metrics")]
        self.run_controller();
        Ok(done)
    }

    /// One controller interval: observe the combined registry, tick the
    /// controller, apply what it decided. Runs at the controller's own
    /// poll cadence; a no-op when no controller is attached.
    #[cfg(feature = "metrics")]
    fn run_controller(&mut self) {
        let due = self
            .controller
            .as_ref()
            .is_some_and(|c| self.polls % c.interval_polls().max(1) == 0);
        if !due {
            return;
        }
        let snap = self.observability_snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        let occupancy = snap.hists.get("otm_block_occupancy");
        // A lane is active when its current-depth gauge is nonzero; the
        // peak gauges are excluded so a historically busy lane does not
        // keep cross-communicator packing pinned on.
        let active_lanes = snap
            .gauges
            .iter()
            .filter(|(name, depth)| name.starts_with("otm_drain_lane_depth{") && **depth > 0)
            .count() as u64;
        let obs = crate::control::Observation {
            polls: self.polls,
            retransmits: counter("dpa_retransmits_total"),
            acks: counter("dpa_acks_total"),
            ring_backpressure: counter("dpa_ring_backpressure_total"),
            drain_retries: counter("dpa_drain_retries_total"),
            backlog: (self.nic.cq_len() + self.unexpected.len()) as u64,
            occupancy_sum: occupancy.map_or(0, |h| h.sum),
            occupancy_count: occupancy.map_or(0, |h| h.count),
            active_lanes,
            block_capacity: self.backend.block_size() as u64,
        };
        let configured_window = self
            .backend
            .as_any()
            .downcast_ref::<OtmEngine>()
            .map(|e| e.configured_packing_window() as u64);
        let controller = self.controller.as_mut().expect("checked due above");
        if let Some(w) = configured_window {
            controller.set_default_packing_window(w);
        }
        let actions = controller.tick(obs);
        for action in actions {
            match action {
                crate::control::Action::ReliabilityWindow { from, to } => {
                    // The hint is published (the harness owns the sender);
                    // the span still marks the decision point.
                    self.metrics
                        .knob_changed(otm_metrics::KnobKind::ReliabilityWindow, from, to);
                }
                crate::control::Action::DrainRetryBudget { from, to } => {
                    self.retry_budget = to as u32;
                    self.metrics
                        .knob_changed(otm_metrics::KnobKind::DrainRetryBudget, from, to);
                }
                crate::control::Action::PackingPolicy { from, to } => {
                    if let Some(engine) = self.backend.as_any().downcast_ref::<OtmEngine>() {
                        engine.set_packing_override(Some(to));
                    }
                    self.metrics.knob_changed(
                        otm_metrics::KnobKind::PackingPolicy,
                        crate::control::encode_packing(from),
                        crate::control::encode_packing(to),
                    );
                }
                crate::control::Action::PackingWindow { from, to } => {
                    if let Some(engine) = self.backend.as_any().downcast_ref::<OtmEngine>() {
                        engine.set_packing_window_override(to as usize);
                    }
                    self.metrics
                        .knob_changed(otm_metrics::KnobKind::PackingWindow, from, to);
                }
            }
        }
    }

    /// The command-queue arrival path: stage every completion's payload
    /// host-side (releasing its bounce buffer, §IV-C), submit the arrival
    /// into the backend's queue, then drain and apply the outcomes.
    ///
    /// A drain stopped by resource exhaustion or a dead engine migrates to
    /// software matching — loss-free: the commands the drain could not
    /// apply (requeued for retryable errors, surfaced in the report for
    /// terminal ones) replay into the software matcher together with the
    /// drained state.
    fn progress_queued(&mut self) -> Result<(), ServiceError> {
        loop {
            let block = self.nic.take_block(self.backend.block_size());
            if block.is_empty() {
                break;
            }
            for completion in &block {
                let msg = completion.msg;
                Self::stash_unexpected(&mut self.nic, &mut self.inflight, msg, completion);
                if self.fellback {
                    // An inline drain below already migrated to software
                    // matching mid-poll; the software matcher has no command
                    // queue, so the staged arrival goes in directly.
                    self.deliver_stashed(completion.header.env, msg)?;
                } else {
                    self.submit_arrival(completion.header.env, msg)?;
                }
            }
        }
        if self.fellback {
            return Ok(());
        }
        self.drain_and_apply()
    }

    /// Submits one staged arrival into the backend's command queue. A full
    /// per-communicator submission ring is not an error but backpressure
    /// (§IV-E): the drain is the only consumer that frees slots, so run it
    /// inline and retry the push, bounded by the drain retry budget (an
    /// inline drain stalled by injected faults could otherwise spin here
    /// forever without freeing a slot).
    fn submit_arrival(&mut self, env: Envelope, msg: MsgHandle) -> Result<(), ServiceError> {
        let mut attempt: u32 = 0;
        loop {
            match self
                .backend
                .submit_command(PendingCommand::Arrival { env, msg })
            {
                Ok(()) => return Ok(()),
                Err(MatchError::SubmissionRingFull { .. }) if attempt <= self.retry_budget => {
                    attempt += 1;
                    self.metrics.count_ring_backpressure();
                    self.drain_and_apply()?;
                    if self.fellback {
                        // The inline drain escalated to software fallback;
                        // the arrival is already staged host-side, so it
                        // bypasses the (gone) command queue.
                        return self.deliver_stashed(env, msg);
                    }
                }
                Err(e) => return Err(ServiceError::Match(e)),
            }
        }
    }

    /// Delivers one already-staged arrival straight through the matcher,
    /// bypassing the command queue. Used after a mid-poll software
    /// fallback: the payload sits in the in-flight stash (its bounce buffer
    /// was released when it was staged), so the delivery applies exactly
    /// like a queued outcome would.
    fn deliver_stashed(&mut self, env: Envelope, msg: MsgHandle) -> Result<(), ServiceError> {
        let deliveries = self
            .backend
            .arrive_block(&[(env, msg)])
            .map_err(ServiceError::Match)?;
        for delivery in deliveries {
            self.apply_queue_outcome(CommandOutcome::Delivery(delivery))?;
        }
        Ok(())
    }

    /// Drains the backend's command queue and applies every outcome,
    /// retrying retryable drain errors up to the budget and escalating to
    /// software fallback when the backend asks for it.
    fn drain_and_apply(&mut self) -> Result<(), ServiceError> {
        let mut attempt: u32 = 0;
        loop {
            let report = self.backend.drain_commands();
            for outcome in report.outcomes {
                self.apply_queue_outcome(outcome)?;
            }
            match report.error {
                None => return Ok(()),
                Some(e) if e.is_retryable() && attempt < self.retry_budget => {
                    // A retryable drain error requeued the unapplied
                    // commands, so re-draining is safe. Record one step of
                    // the exponential backoff schedule (1, 2, 4, ... polls —
                    // the simulator's clock is the poll count, so the delay
                    // is recorded, not slept) and try again; transient
                    // device faults clear, genuine exhaustion burns the
                    // budget and escalates below.
                    attempt += 1;
                    self.metrics.count_drain_retry();
                    self.metrics.observe_backoff(1u64 << (attempt - 1).min(20));
                }
                Some(e)
                    if self.backend.wants_offload_fallback()
                        && (e.is_retryable() || e == MatchError::EngineStopped) =>
                {
                    // Retryable exhaustion requeued the unapplied commands
                    // (the fallback snapshot folds them in); a terminal
                    // EngineStopped surfaced them in the report — hand those
                    // over explicitly.
                    self.metrics.count_fallback_escalation();
                    return self.fall_back_to_software(report.unapplied);
                }
                Some(e) => return Err(e.into()),
            }
        }
    }

    /// Applies one drained command outcome: matched arrivals complete
    /// through the protocol with their staged payload, unexpected arrivals
    /// move from the in-flight stash into the unexpected store, and a
    /// queued post that matched completes against the waiting message's
    /// payload.
    fn apply_queue_outcome(&mut self, outcome: CommandOutcome) -> Result<(), ServiceError> {
        match outcome {
            CommandOutcome::Post {
                result: PostResult::Posted,
                ..
            } => Ok(()),
            CommandOutcome::Post {
                handle,
                result: PostResult::Matched(msg),
            } => {
                // A queued post matched a message already waiting in the
                // engine's UMQ. Its payload normally sits in the unexpected
                // store (the arrival's own outcome, applied earlier in
                // submission order, moved it there), but a drain cut short
                // by an error can leave the arrival applied inside the
                // engine with its outcome unreported — the payload is then
                // still in the in-flight stash, so consult both.
                let stored = self
                    .unexpected
                    .remove(&msg)
                    .or_else(|| self.inflight.remove(&msg))
                    .expect("matched message has a stored payload");
                let done = self.run_protocol_from_store(handle, stored)?;
                self.completed.push(done);
                Ok(())
            }
            CommandOutcome::Delivery(Delivery::Matched { msg, recv }) => {
                let stored = self
                    .inflight
                    .remove(&msg)
                    .expect("queued arrival has a staged payload");
                let done = self.run_protocol_from_store(recv, stored)?;
                self.completed.push(done);
                Ok(())
            }
            CommandOutcome::Delivery(Delivery::Unexpected { msg }) => {
                let stored = self
                    .inflight
                    .remove(&msg)
                    .expect("queued arrival has a staged payload");
                self.unexpected.insert(msg, stored);
                Ok(())
            }
        }
    }

    /// Samples the three queue-depth gauges (and their peaks).
    fn observe_queues(&self) {
        self.metrics.observe_queues(
            self.nic.cq_len(),
            self.nic.bounce_in_use(),
            self.unexpected.len(),
        );
    }

    fn match_block(&mut self, block: Vec<Completion>) -> Result<(), ServiceError> {
        let msgs: Vec<(Envelope, MsgHandle)> =
            block.iter().map(|c| (c.header.env, c.msg)).collect();
        let deliveries = match self.backend.arrive_block(&msgs) {
            Ok(d) => d,
            Err(MatchError::UnexpectedStoreFull) if self.backend.wants_offload_fallback() => {
                // The engine rejected the block atomically (its state is
                // untouched and no bounce buffer was consumed yet): migrate
                // to software matching and reprocess the very same block
                // there (§IV-E).
                self.fall_back_to_software(Vec::new())?;
                return self.match_block(block);
            }
            Err(e) => return Err(e.into()),
        };
        for (completion, delivery) in block.into_iter().zip(deliveries) {
            match delivery {
                Delivery::Matched { recv, .. } => {
                    let done = Self::run_protocol_from_bounce(
                        &mut self.nic,
                        &self.domain,
                        recv,
                        &completion,
                    )?;
                    self.completed.push(done);
                }
                Delivery::Unexpected { msg } => {
                    Self::stash_unexpected(&mut self.nic, &mut self.unexpected, msg, &completion);
                }
            }
        }
        Ok(())
    }

    /// Protocol handling for an expected message: eager copies out of the
    /// bounce buffer; rendezvous issues the RDMA read (and releases the
    /// sender's one-shot region afterwards). Frees the bounce buffer on
    /// every path, including errors.
    fn run_protocol_from_bounce(
        nic: &mut RecvNic,
        domain: &RdmaDomain,
        recv: RecvHandle,
        completion: &Completion,
    ) -> Result<CompletedReceive, ServiceError> {
        let data: Result<Vec<u8>, ServiceError> = (|| match completion.header.kind {
            PayloadKind::Eager { len } => {
                let mut t = EagerTransfer::staged(len);
                let Action::CopyToUser { len } = t.on_match()? else {
                    unreachable!("eager on_match requests the copy")
                };
                let data = nic.staged(completion.bounce)[..len].to_vec();
                t.on_copy_done()?;
                Ok(data)
            }
            PayloadKind::Rts {
                rkey,
                len,
                piggyback,
            } => {
                let rts = Rts {
                    rkey: rkey.0,
                    remote_addr: 0,
                    len,
                    piggyback,
                };
                let mut t = RendezvousTransfer::rts_received(rts);
                let Action::IssueRdmaRead {
                    remote_addr,
                    len: read_len,
                    ..
                } = t.on_match()?
                else {
                    unreachable!("rendezvous on_match requests the read")
                };
                let mut data = nic.staged(completion.bounce).to_vec();
                data.extend(domain.read(rkey, remote_addr as usize, read_len)?);
                t.on_read_complete()?;
                // The transfer is one-shot in this simulator: release the
                // sender's registered region so the fabric-wide domain does
                // not accumulate a region per rendezvous message.
                domain.deregister(rkey);
                Ok(data)
            }
            PayloadKind::Ack { .. } => {
                unreachable!("acks are consumed by the NIC receive path and never staged")
            }
        })();
        // The bounce buffer is NIC memory; leak it on an error path and the
        // receive ring eventually starves.
        nic.release(completion.bounce);
        Ok(CompletedReceive {
            recv,
            env: completion.header.env,
            data: data?,
        })
    }

    /// Moves an unexpected message's payload (or RTS descriptor) out of the
    /// bounce buffer into the unexpected store (§IV-C).
    fn stash_unexpected(
        nic: &mut RecvNic,
        store: &mut HashMap<MsgHandle, StoredMessage>,
        msg: MsgHandle,
        completion: &Completion,
    ) {
        let payload = match completion.header.kind {
            PayloadKind::Eager { len } => {
                StoredPayload::Eager(nic.staged(completion.bounce)[..len].to_vec())
            }
            PayloadKind::Rts {
                rkey,
                len,
                piggyback,
            } => StoredPayload::Rts {
                rts: Rts {
                    rkey: rkey.0,
                    remote_addr: 0,
                    len,
                    piggyback,
                },
                head: nic.staged(completion.bounce).to_vec(),
            },
            PayloadKind::Ack { .. } => {
                unreachable!("acks are consumed by the NIC receive path and never staged")
            }
        };
        nic.release(completion.bounce);
        store.insert(
            msg,
            StoredMessage {
                env: completion.header.env,
                payload,
            },
        );
    }

    /// Protocol handling for a receive that matched a stored unexpected
    /// message.
    fn run_protocol_from_store(
        &mut self,
        recv: RecvHandle,
        stored: StoredMessage,
    ) -> Result<CompletedReceive, ServiceError> {
        let data = match stored.payload {
            StoredPayload::Eager(bytes) => {
                let mut t = EagerTransfer::staged(bytes.len());
                t.on_match()?;
                t.on_copy_done()?;
                bytes
            }
            StoredPayload::Rts { rts, head } => {
                let mut t = RendezvousTransfer::rts_received(rts);
                let Action::IssueRdmaRead {
                    remote_addr,
                    len,
                    rkey,
                } = t.on_match()?
                else {
                    unreachable!("rendezvous on_match requests the read")
                };
                let mut data = head;
                data.extend(self.domain.read(
                    crate::rdma::RKey(rkey),
                    remote_addr as usize,
                    len,
                )?);
                t.on_read_complete()?;
                self.domain.deregister(crate::rdma::RKey(rkey));
                data
            }
        };
        Ok(CompletedReceive {
            recv,
            env: stored.env,
            data,
        })
    }

    /// Takes everything completed so far.
    pub fn take_completed(&mut self) -> Vec<CompletedReceive> {
        std::mem::take(&mut self.completed)
    }

    /// Completed receives waiting to be taken.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Unexpected messages currently stored.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    /// Access to the NIC (e.g. for sending acks from the receiver side).
    pub fn nic(&self) -> &RecvNic {
        &self.nic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounce::BouncePool;
    use crate::rdma::{connected_pair, eager_packet, rendezvous_packet, QueuePair};
    use otm_base::{Rank, Tag};

    fn setup(mode: &str) -> (QueuePair, RdmaDomain, MatchingService) {
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let svc = match mode {
            "otm" => {
                let mut budget = DeviceMemory::bluefield3_l3();
                MatchingService::offloaded(nic, domain.clone(), MatchConfig::small(), &mut budget)
                    .unwrap()
            }
            "cpu" => MatchingService::mpi_cpu(nic, domain.clone()),
            "rdma" => MatchingService::rdma_cpu(nic, domain.clone()),
            _ => unreachable!(),
        };
        (tx, domain, svc)
    }

    fn env(src: u32, tag: u32) -> Envelope {
        Envelope::world(Rank(src), Tag(tag))
    }

    #[test]
    fn eager_expected_path_delivers_payload() {
        for mode in ["otm", "cpu"] {
            let (tx, _domain, mut svc) = setup(mode);
            let recv = svc
                .post_recv(ReceivePattern::exact(Rank(0), Tag(1)))
                .unwrap();
            tx.send(eager_packet(env(0, 1), vec![10, 20, 30])).unwrap();
            assert_eq!(svc.progress().unwrap(), 1, "{mode}");
            let done = svc.take_completed();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].recv, recv);
            assert_eq!(done[0].data, vec![10, 20, 30]);
        }
    }

    #[test]
    fn eager_unexpected_path_delivers_on_post() {
        for mode in ["otm", "cpu"] {
            let (tx, _domain, mut svc) = setup(mode);
            tx.send(eager_packet(env(2, 9), vec![5; 16])).unwrap();
            assert_eq!(svc.progress().unwrap(), 0, "{mode}: no receive yet");
            assert_eq!(svc.unexpected_len(), 1);
            let recv = svc.post_recv(ReceivePattern::any_source(Tag(9))).unwrap();
            let done = svc.take_completed();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].recv, recv);
            assert_eq!(done[0].data, vec![5; 16]);
            assert_eq!(svc.unexpected_len(), 0);
        }
    }

    #[test]
    fn rendezvous_expected_path_pulls_via_rdma_read() {
        for mode in ["otm", "cpu"] {
            let (tx, domain, mut svc) = setup(mode);
            let recv = svc
                .post_recv(ReceivePattern::exact(Rank(0), Tag(2)))
                .unwrap();
            let payload: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
            let (pkt, _rkey) = rendezvous_packet(&domain, env(0, 2), payload.clone(), 16);
            tx.send(pkt).unwrap();
            assert_eq!(svc.progress().unwrap(), 1, "{mode}");
            let done = svc.take_completed();
            assert_eq!(done[0].recv, recv);
            assert_eq!(done[0].data, payload);
        }
    }

    #[test]
    fn rendezvous_unexpected_path_reads_at_post_time() {
        let (tx, domain, mut svc) = setup("otm");
        let payload: Vec<u8> = (0..100).collect();
        let (pkt, _rkey) = rendezvous_packet(&domain, env(1, 3), payload.clone(), 0);
        tx.send(pkt).unwrap();
        svc.progress().unwrap();
        assert_eq!(svc.unexpected_len(), 1);
        svc.post_recv(ReceivePattern::exact(Rank(1), Tag(3)))
            .unwrap();
        let done = svc.take_completed();
        assert_eq!(done[0].data, payload);
    }

    #[test]
    fn rdma_cpu_completes_without_matching() {
        let (tx, _domain, mut svc) = setup("rdma");
        tx.send(eager_packet(env(0, 0), vec![1])).unwrap();
        tx.send(eager_packet(env(5, 7), vec![2])).unwrap();
        assert_eq!(svc.progress().unwrap(), 2);
        let done = svc.take_completed();
        assert_eq!(done[0].recv, RecvHandle(0));
        assert_eq!(done[1].recv, RecvHandle(1));
        assert_eq!(done[0].data, vec![1]);
    }

    #[test]
    fn bursts_are_matched_in_blocks_by_the_offloaded_engine() {
        let (tx, _domain, mut svc) = setup("otm");
        let n = 12usize; // three blocks of the small config's 4 lanes
        let mut expected = Vec::new();
        for i in 0..n {
            expected.push(
                svc.post_recv(ReceivePattern::exact(Rank(0), Tag(i as u32)))
                    .unwrap(),
            );
        }
        for i in 0..n {
            tx.send(eager_packet(env(0, i as u32), vec![i as u8]))
                .unwrap();
        }
        assert_eq!(svc.progress().unwrap(), n);
        let done = svc.take_completed();
        let stats = svc.engine_stats().unwrap();
        assert!(
            stats.blocks >= 3,
            "burst must span several blocks: {stats:?}"
        );
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.recv, expected[i]);
            assert_eq!(d.data, vec![i as u8]);
        }
    }

    #[test]
    fn memory_budget_gates_offloading() {
        let (_tx, _domain, _svc) = setup("otm"); // sanity: the big budget works
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(4, 64));
        let mut tiny = DeviceMemory::new(1024); // far below the tables' cost
        let (svc, offloaded) =
            MatchingService::offloaded_or_fallback(nic, domain, MatchConfig::default(), &mut tiny);
        assert!(!offloaded, "tiny budget must force software fallback");
        assert_eq!(svc.backend_name(), "MPI-CPU");
        drop(tx);
    }

    #[test]
    fn backend_names_match_figure_8_labels() {
        let (_t1, _d1, a) = setup("otm");
        let (_t2, _d2, b) = setup("cpu");
        let (_t3, _d3, c) = setup("rdma");
        assert_eq!(a.backend_name(), "Optimistic-DPA");
        assert_eq!(b.backend_name(), "MPI-CPU");
        assert_eq!(c.backend_name(), "RDMA-CPU");
    }

    #[test]
    fn any_backend_can_be_injected_through_the_trait() {
        // The service no longer hard-codes its engines: anything
        // implementing MatchingBackend slots in. The binned matcher is not
        // one of the named constructors, which makes it a good probe.
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let backend = Box::new(mpi_matching::binned::BinnedMatcher::new(16));
        let mut svc = MatchingService::with_backend(nic, domain, backend);
        assert_eq!(svc.backend_name(), "Binned-CPU");
        assert!(svc.engine_stats().is_none(), "not the offloaded engine");
        let recv = svc
            .post_recv(ReceivePattern::exact(Rank(0), Tag(1)))
            .unwrap();
        tx.send(eager_packet(env(0, 1), vec![42])).unwrap();
        assert_eq!(svc.progress().unwrap(), 1);
        let done = svc.take_completed();
        assert_eq!(done[0].recv, recv);
        assert_eq!(done[0].data, vec![42]);
    }

    #[test]
    fn failed_fallback_drain_poisons_the_service() {
        /// A backend that demands the offload fallback but cannot deliver
        /// its state: the service must poison itself, not limp along.
        struct FailingBackend;
        impl MatchingBackend for FailingBackend {
            fn backend_name(&self) -> &'static str {
                "Failing"
            }
            fn post(&mut self, _: ReceivePattern, _: RecvHandle) -> Result<PostResult, MatchError> {
                Err(MatchError::ReceiveTableFull)
            }
            fn arrive_block(
                &mut self,
                _: &[(Envelope, MsgHandle)],
            ) -> Result<Vec<Delivery>, MatchError> {
                Err(MatchError::UnexpectedStoreFull)
            }
            fn probe(&self, _: &ReceivePattern) -> Option<MsgHandle> {
                None
            }
            fn prq_len(&self) -> usize {
                0
            }
            fn umq_len(&self) -> usize {
                0
            }
            fn merge_stats(&self, _: &mut mpi_matching::MatchStats) {}
            fn wants_offload_fallback(&self) -> bool {
                true
            }
            fn drain_for_fallback(
                self: Box<Self>,
            ) -> Result<mpi_matching::FallbackState, MatchError> {
                Err(MatchError::EngineStopped)
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }

        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let mut svc = MatchingService::with_backend(nic, domain, Box::new(FailingBackend));
        // The post triggers the fallback, whose drain fails: the error
        // surfaces and the poison is installed in place of the half-dead
        // backend.
        let err = svc
            .post_recv(ReceivePattern::exact(Rank(0), Tag(0)))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Match(MatchError::EngineStopped)
        ));
        assert_eq!(svc.backend_name(), "Poisoned");
        assert!(!svc.fell_back(), "the migration did not complete");
        // Every subsequent matching operation keeps failing loudly.
        let err = svc
            .post_recv(ReceivePattern::exact(Rank(0), Tag(1)))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Match(MatchError::EngineStopped)
        ));
        tx.send(eager_packet(env(0, 0), vec![1])).unwrap();
        assert!(svc.progress().is_err());
        drop(tx);
    }

    #[test]
    fn table_full_falls_back_to_software_transparently() {
        // A tiny descriptor table: the engine fills after 4 posts; the 5th
        // triggers migration to software matching. Everything posted before
        // AND after — plus the unexpected messages parked on the device —
        // must keep matching as if nothing happened.
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let mut budget = DeviceMemory::bluefield3_l3();
        let config = MatchConfig::small()
            .with_max_receives(4)
            .with_block_threads(2);
        let mut svc = MatchingService::offloaded(nic, domain, config, &mut budget).unwrap();

        // One unexpected message parks in the device-side store.
        tx.send(eager_packet(env(9, 9), vec![99])).unwrap();
        svc.progress().unwrap();
        assert_eq!(svc.unexpected_len(), 1);

        // Fill the table, then exceed it.
        let mut posted = Vec::new();
        for i in 0..4u32 {
            posted.push(
                svc.post_recv(ReceivePattern::exact(Rank(0), Tag(i)))
                    .unwrap(),
            );
        }
        assert!(!svc.fell_back());
        posted.push(
            svc.post_recv(ReceivePattern::exact(Rank(0), Tag(4)))
                .unwrap(),
        );
        assert!(svc.fell_back(), "5th post must trigger the §III-B fallback");
        assert_eq!(svc.backend_name(), "MPI-CPU");

        // All five receives (4 migrated + 1 post-fallback) still match, in
        // posted order per pattern.
        for i in 0..5u32 {
            tx.send(eager_packet(env(0, i), vec![i as u8])).unwrap();
        }
        assert_eq!(svc.progress().unwrap(), 5);
        let done = svc.take_completed();
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.recv, posted[i]);
            assert_eq!(d.data, vec![i as u8]);
        }

        // The migrated unexpected message matches a late post too.
        let late = svc
            .post_recv(ReceivePattern::exact(Rank(9), Tag(9)))
            .unwrap();
        let done = svc.take_completed();
        assert_eq!(done[0].recv, late);
        assert_eq!(done[0].data, vec![99]);
    }

    #[test]
    fn fallback_preserves_post_order_of_same_pattern_receives() {
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let mut budget = DeviceMemory::bluefield3_l3();
        let config = MatchConfig::small()
            .with_max_receives(3)
            .with_block_threads(2);
        let mut svc = MatchingService::offloaded(nic, domain, config, &mut budget).unwrap();
        // Three identical receives fill the table; the fourth (also
        // identical) lands on the software side. C1 must survive the
        // migration: messages match receives in original post order.
        let mut posted = Vec::new();
        for _ in 0..4 {
            posted.push(
                svc.post_recv(ReceivePattern::exact(Rank(1), Tag(1)))
                    .unwrap(),
            );
        }
        assert!(svc.fell_back());
        for i in 0..4u32 {
            tx.send(eager_packet(env(1, 1), vec![i as u8])).unwrap();
        }
        svc.progress().unwrap();
        let done = svc.take_completed();
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.recv, posted[i], "C1 across the fallback migration");
            assert_eq!(d.data, vec![i as u8]);
        }
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn observability_snapshot_tracks_queues_and_fallback() {
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let mut budget = DeviceMemory::bluefield3_l3();
        let config = MatchConfig::small()
            .with_max_receives(2)
            .with_block_threads(2);
        let mut svc = MatchingService::offloaded(nic, domain, config, &mut budget).unwrap();

        // One unexpected message, then two matched ones.
        tx.send(eager_packet(env(9, 9), vec![1])).unwrap();
        svc.progress().unwrap();
        for i in 0..2u32 {
            svc.post_recv(ReceivePattern::exact(Rank(0), Tag(i)))
                .unwrap();
            tx.send(eager_packet(env(0, i), vec![i as u8])).unwrap();
        }
        svc.progress().unwrap();

        let snap = svc.observability_snapshot();
        assert_eq!(snap.counters["dpa_cq_polls_total"], 2);
        assert_eq!(snap.counters["dpa_completions_total"], 2);
        assert!(snap.gauges["dpa_cq_depth_peak"] >= 1);
        assert!(snap.gauges["dpa_bounce_in_use_peak"] >= 1);
        assert_eq!(snap.gauges["dpa_unexpected_depth"], 1);
        // The merge pulls the engine's instruments into the same snapshot.
        assert!(snap.hists.contains_key("otm_search_depth"));
        assert_eq!(snap.counters["dpa_fallbacks_total"], 0);

        // Posting unmatched receives until the 2-entry table overflows
        // triggers the §IV-E fallback; the exact post that overflows
        // depends on lazy slot reclamation, so loop with a safety bound.
        for i in 0..16u32 {
            svc.post_recv(ReceivePattern::exact(Rank(3), Tag(i)))
                .unwrap();
            if svc.fell_back() {
                break;
            }
        }
        assert!(svc.fell_back());
        // After fallback the backend is software: the snapshot is the
        // service registry alone, and still machine-readable.
        let snap = svc.metrics().snapshot();
        assert_eq!(snap.counters["dpa_fallbacks_total"], 1);
        let json = svc.observability_json().expect("metrics enabled");
        assert!(json.contains("dpa_cq_depth_peak"));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn series_sampler_snapshots_at_poll_cadence() {
        let (tx, _domain, mut svc) = setup("otm");
        svc.attach_series(otm_metrics::SeriesRecorder::new(2));
        for i in 0..4u32 {
            svc.post_recv(ReceivePattern::exact(Rank(0), Tag(i)))
                .unwrap();
        }
        for round in 0..4u32 {
            tx.send(eager_packet(env(0, round), vec![round as u8]))
                .unwrap();
            svc.progress().unwrap();
        }
        // One straggler the table never matches, so queue_depth is visible.
        tx.send(eager_packet(env(9, 9), vec![])).unwrap();
        svc.progress().unwrap();
        svc.force_series_sample();
        let series = svc.take_series().expect("sampler attached");
        // The first sample is due immediately (poll 1), then every 2 polls;
        // the forced terminal sample coincides with the t=5 grid point and
        // replaces it, keeping `t` strictly increasing.
        let ts: Vec<u64> = series.points().iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![1, 3, 5]);
        // The terminal point's cumulative values equal the end-of-run
        // registry snapshot — the artifact's self-consistency guarantee.
        let last = series.last().expect("non-empty series");
        let snap = svc.observability_snapshot();
        let end = otm_metrics::SeriesPoint::distill(svc.polls(), 0, &snap);
        assert_eq!(last.matched, end.matched);
        assert_eq!(last.path_counts, end.path_counts);
        assert_eq!(last.retransmits, end.retransmits);
        assert_eq!(last.fallbacks, end.fallbacks);
        assert_eq!(last.queue_depth, 1, "the straggler sits in the store");
    }

    #[test]
    fn command_queue_path_matches_like_the_direct_path() {
        // Same traffic, queued arrival path: payloads still land on the
        // right receives, in order.
        let (tx, _domain, mut svc) = setup("otm");
        svc.enable_command_queue().unwrap();
        let n = 8usize;
        let mut posted = Vec::new();
        for i in 0..n {
            posted.push(
                svc.post_recv(ReceivePattern::exact(Rank(0), Tag(i as u32)))
                    .unwrap(),
            );
        }
        for i in 0..n {
            tx.send(eager_packet(env(0, i as u32), vec![i as u8]))
                .unwrap();
        }
        assert_eq!(svc.progress().unwrap(), n);
        let done = svc.take_completed();
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.recv, posted[i]);
            assert_eq!(d.data, vec![i as u8]);
        }
        // Unexpected messages survive the queue path too: payload staged at
        // submit time, moved to the store at drain time.
        tx.send(eager_packet(env(7, 7), vec![77])).unwrap();
        assert_eq!(svc.progress().unwrap(), 0);
        assert_eq!(svc.unexpected_len(), 1);
        let late = svc
            .post_recv(ReceivePattern::exact(Rank(7), Tag(7)))
            .unwrap();
        let done = svc.take_completed();
        assert_eq!(done[0].recv, late);
        assert_eq!(done[0].data, vec![77]);
    }

    #[test]
    fn queued_posts_complete_against_waiting_and_future_messages() {
        // Posts submitted through the command queue interleave with queued
        // arrivals in one submission stream and complete at drain time —
        // both when the message is already waiting in the device store and
        // when it arrives afterwards.
        let (tx, _domain, mut svc) = setup("otm");
        svc.enable_command_queue().unwrap();

        // Message first: arrival drains to the store, then the queued post
        // matches it on the next drain.
        tx.send(eager_packet(env(0, 1), vec![11])).unwrap();
        assert_eq!(svc.progress().unwrap(), 0);
        assert_eq!(svc.unexpected_len(), 1);
        let first = svc
            .post_recv_queued(ReceivePattern::exact(Rank(0), Tag(1)))
            .unwrap();
        assert_eq!(svc.progress().unwrap(), 1);
        let done = svc.take_completed();
        assert_eq!(done[0].recv, first);
        assert_eq!(done[0].data, vec![11]);

        // Post first: the queued post applies in the same drain as the
        // arrival behind it.
        let second = svc
            .post_recv_queued(ReceivePattern::any_source(Tag(2)))
            .unwrap();
        tx.send(eager_packet(env(3, 2), vec![22])).unwrap();
        assert_eq!(svc.progress().unwrap(), 1);
        let done = svc.take_completed();
        assert_eq!(done[0].recv, second);
        assert_eq!(done[0].data, vec![22]);

        // Without the queue enabled the call degrades to the synchronous
        // path and still works.
        let (tx2, _d2, mut sync_svc) = setup("otm");
        tx2.send(eager_packet(env(4, 4), vec![44])).unwrap();
        sync_svc.progress().unwrap();
        let h = sync_svc
            .post_recv_queued(ReceivePattern::exact(Rank(4), Tag(4)))
            .unwrap();
        let done = sync_svc.take_completed();
        assert_eq!(done[0].recv, h);
        assert_eq!(done[0].data, vec![44]);
    }

    #[test]
    fn command_queue_is_refused_by_synchronous_backends() {
        let (_tx, _domain, mut svc) = setup("cpu");
        assert!(matches!(
            svc.enable_command_queue(),
            Err(ServiceError::Match(MatchError::InvalidConfig(_)))
        ));
    }

    #[test]
    fn queued_arrivals_survive_fallback_under_store_pressure() {
        // The lost-arrival bug, end to end: arrivals are sitting in the
        // engine's submission queue when store pressure forces the software
        // fallback. Before the loss-free snapshot, those queued arrivals
        // were silently discarded; now every payload must be delivered.
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let mut budget = DeviceMemory::bluefield3_l3();
        let config = MatchConfig::small()
            .with_max_unexpected(2)
            .with_block_threads(2);
        let mut svc = MatchingService::offloaded(nic, domain, config, &mut budget).unwrap();
        svc.enable_command_queue().unwrap();

        // Five unmatched messages against a 2-slot device store: the first
        // block fills it, the next one trips UnexpectedStoreFull mid-drain
        // with the rest still queued.
        for i in 0..5u32 {
            tx.send(eager_packet(env(1, i), vec![i as u8])).unwrap();
        }
        assert_eq!(svc.progress().unwrap(), 0);
        assert!(svc.fell_back(), "store pressure must trigger the fallback");
        assert_eq!(svc.backend_name(), "MPI-CPU");
        assert_eq!(
            svc.unexpected_len(),
            5,
            "every queued arrival must survive the migration"
        );

        // All five payloads are intact and match in arrival order.
        let mut posted = Vec::new();
        for _ in 0..5 {
            posted.push(svc.post_recv(ReceivePattern::any_tag(Rank(1))).unwrap());
        }
        let done = svc.take_completed();
        assert_eq!(done.len(), 5);
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.recv, posted[i], "C1/C2 across the migration");
            assert_eq!(d.data, vec![i as u8]);
        }
    }

    #[test]
    fn fallback_replay_violation_is_a_real_error_and_keeps_the_poison() {
        /// A backend whose snapshot is corrupt: it hands back a receive and
        /// an unexpected message that match each other — the replay must
        /// refuse to install the software matcher.
        struct CorruptBackend;
        impl MatchingBackend for CorruptBackend {
            fn backend_name(&self) -> &'static str {
                "Corrupt"
            }
            fn post(&mut self, _: ReceivePattern, _: RecvHandle) -> Result<PostResult, MatchError> {
                Err(MatchError::ReceiveTableFull)
            }
            fn arrive_block(
                &mut self,
                _: &[(Envelope, MsgHandle)],
            ) -> Result<Vec<Delivery>, MatchError> {
                Err(MatchError::UnexpectedStoreFull)
            }
            fn probe(&self, _: &ReceivePattern) -> Option<MsgHandle> {
                None
            }
            fn prq_len(&self) -> usize {
                1
            }
            fn umq_len(&self) -> usize {
                1
            }
            fn merge_stats(&self, _: &mut mpi_matching::MatchStats) {}
            fn wants_offload_fallback(&self) -> bool {
                true
            }
            fn drain_for_fallback(
                self: Box<Self>,
            ) -> Result<mpi_matching::FallbackState, MatchError> {
                Ok(mpi_matching::FallbackState {
                    receives: vec![(ReceivePattern::exact(Rank(0), Tag(0)), RecvHandle(0))],
                    unexpected: vec![(Envelope::world(Rank(0), Tag(0)), MsgHandle(0))],
                    pending: Vec::new(),
                })
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }

        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let mut svc = MatchingService::with_backend(nic, domain, Box::new(CorruptBackend));
        let err = svc
            .post_recv(ReceivePattern::exact(Rank(9), Tag(9)))
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::FallbackReplay(_)),
            "got {err:?}"
        );
        assert_eq!(svc.backend_name(), "Poisoned");
        assert!(!svc.fell_back());
        // Still poisoned afterwards — no silent half-migrated matching.
        let err = svc
            .post_recv(ReceivePattern::exact(Rank(9), Tag(8)))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Match(MatchError::EngineStopped)
        ));
        drop(tx);
    }

    #[test]
    fn wc_burst_preserves_message_order_end_to_end() {
        // All receives identical, all messages identical: the with-conflict
        // scenario. Payloads reveal the pairing: message i must complete
        // receive i.
        let (tx, _domain, mut svc) = setup("otm");
        let n = 8usize;
        let mut posted = Vec::new();
        for _ in 0..n {
            posted.push(
                svc.post_recv(ReceivePattern::exact(Rank(0), Tag(0)))
                    .unwrap(),
            );
        }
        for i in 0..n {
            tx.send(eager_packet(env(0, 0), vec![i as u8])).unwrap();
        }
        assert_eq!(svc.progress().unwrap(), n);
        let mut done = svc.take_completed();
        done.sort_by_key(|c| c.recv);
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.recv, posted[i]);
            assert_eq!(d.data, vec![i as u8], "receive {i} must get message {i}");
        }
    }

    #[test]
    fn transient_drain_faults_clear_within_the_retry_budget() {
        use crate::fault::FaultInjectingBackend;
        use otm_base::FaultPlan;

        // Two transient device failures, then a perfect device: the in-call
        // retry loop absorbs them inside a single progress() and the
        // offloaded engine keeps running — no fallback, no caller-visible
        // error.
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let engine = OtmEngine::new(MatchConfig::small()).unwrap();
        let plan = FaultPlan::new(0x7a11)
            .with_transient_fail_permille(1000)
            .with_max_faults(2);
        let faulty = FaultInjectingBackend::new(Box::new(engine), plan);
        let mut svc = MatchingService::with_backend(nic, domain, Box::new(faulty));
        svc.enable_command_queue().unwrap();

        let mut posted = Vec::new();
        for i in 0..3u32 {
            posted.push(
                svc.post_recv(ReceivePattern::exact(Rank(0), Tag(i)))
                    .unwrap(),
            );
            tx.send(eager_packet(env(0, i), vec![i as u8])).unwrap();
        }
        assert_eq!(svc.progress().unwrap(), 3);
        assert!(!svc.fell_back(), "transient faults must not escalate");
        assert_eq!(svc.backend_name(), "Optimistic-DPA");
        let done = svc.take_completed();
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.recv, posted[i]);
            assert_eq!(d.data, vec![i as u8]);
        }
        #[cfg(feature = "metrics")]
        {
            let snap = svc.metrics().snapshot();
            assert_eq!(snap.counters["dpa_drain_retries_total"], 2);
            assert_eq!(snap.counters["dpa_fallback_escalations_total"], 0);
            assert_eq!(snap.hists["dpa_backoff_polls"].count, 2);
        }
    }

    #[test]
    fn tiny_submission_ring_backpressure_drains_inline_and_loses_nothing() {
        // A 2-slot submission ring cannot hold a whole arrival burst: the
        // third push bounces with SubmissionRingFull, the service drains
        // inline to free slots, and every message still completes in order
        // on the offloaded path — backpressure, not breakage.
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let engine = OtmEngine::new(MatchConfig::small().with_ring_capacity(2)).unwrap();
        let mut svc = MatchingService::with_backend(nic, domain, Box::new(engine));
        svc.enable_command_queue().unwrap();

        let n = 8u32;
        let mut posted = Vec::new();
        for i in 0..n {
            posted.push(
                svc.post_recv(ReceivePattern::exact(Rank(0), Tag(i)))
                    .unwrap(),
            );
            tx.send(eager_packet(env(0, i), vec![i as u8])).unwrap();
        }
        assert_eq!(svc.progress().unwrap(), n as usize);
        assert!(!svc.fell_back(), "ring backpressure must not escalate");
        assert_eq!(svc.backend_name(), "Optimistic-DPA");
        let done = svc.take_completed();
        assert_eq!(done.len(), n as usize);
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.recv, posted[i]);
            assert_eq!(d.data, vec![i as u8]);
        }
        #[cfg(feature = "metrics")]
        {
            let snap = svc.metrics().snapshot();
            assert!(
                snap.counters["dpa_ring_backpressure_total"] > 0,
                "the tiny ring must have rejected at least one push"
            );
            assert_eq!(snap.counters["dpa_fallback_escalations_total"], 0);
        }
    }

    #[test]
    fn retry_budget_exhaustion_escalates_to_software_fallback() {
        use crate::fault::FaultInjectingBackend;
        use otm_base::FaultPlan;

        // Every drain fails, forever: the retry budget burns down and the
        // service escalates to software fallback on its own — not because a
        // caller asked for it — with every queued post and arrival payload
        // surviving the migration.
        let (tx, rx) = connected_pair();
        let domain = RdmaDomain::new();
        let nic = RecvNic::new(rx, BouncePool::new(64, 256));
        let engine = OtmEngine::new(MatchConfig::small()).unwrap();
        let plan = FaultPlan::new(0xdead).with_transient_fail_permille(1000);
        let faulty = FaultInjectingBackend::new(Box::new(engine), plan);
        let mut svc = MatchingService::with_backend(nic, domain, Box::new(faulty));
        svc.enable_command_queue().unwrap();

        let mut posted = Vec::new();
        for i in 0..4u32 {
            posted.push(
                svc.post_recv_queued(ReceivePattern::exact(Rank(0), Tag(i)))
                    .unwrap(),
            );
        }
        for i in 0..4u32 {
            tx.send(eager_packet(env(0, i), vec![i as u8])).unwrap();
        }
        assert!(!svc.fell_back());
        assert_eq!(svc.progress().unwrap(), 4, "replay completes the pairs");
        assert!(
            svc.fell_back(),
            "budget exhaustion must trigger the §IV-E fallback"
        );
        assert_eq!(svc.backend_name(), "MPI-CPU");
        let done = svc.take_completed();
        assert_eq!(done.len(), 4, "no payload may be lost in the escalation");
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.recv, posted[i]);
            assert_eq!(d.data, vec![i as u8]);
        }
        #[cfg(feature = "metrics")]
        {
            let snap = svc.metrics().snapshot();
            assert_eq!(
                snap.counters["dpa_drain_retries_total"],
                u64::from(DEFAULT_DRAIN_RETRY_BUDGET)
            );
            assert_eq!(snap.counters["dpa_fallback_escalations_total"], 1);
        }
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn attached_controller_actuates_packing_and_counts_knob_changes() {
        use crate::control::{ControllerConfig, FeedbackController};
        use otm_base::PackingPolicy;

        let (tx, _domain, mut svc) = setup("otm");
        let config = ControllerConfig {
            interval_polls: 1,
            ..ControllerConfig::default()
        };
        svc.attach_controller(FeedbackController::new(
            config,
            crate::reliable::DEFAULT_WINDOW_LIMIT,
            PackingPolicy::CrossComm,
        ));
        assert_eq!(
            svc.reliability_window_hint(),
            Some(crate::reliable::DEFAULT_WINDOW_LIMIT)
        );
        tx.send(eager_packet(env(0, 1), vec![1])).unwrap();
        svc.progress().unwrap(); // priming interval: observe only
        svc.progress().unwrap(); // second interval: zero active lanes pins Consecutive
        assert_eq!(
            svc.controller().unwrap().packing(),
            PackingPolicy::Consecutive,
            "an idle single-lane service should drop cross-comm packing"
        );
        let snap = svc.metrics().snapshot();
        assert!(
            snap.counters["dpa_knob_changes_total"] >= 1,
            "the applied movement must be counted"
        );
        let controller = svc.take_controller().expect("controller attached");
        assert!(controller.stats().knob_changes >= 1);
        svc.progress().unwrap(); // detached: no further controller activity
    }
}
