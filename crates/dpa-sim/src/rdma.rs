//! An in-process RDMA transport model.
//!
//! Two endpoints exchange messages over a connected queue pair
//! (crossbeam channels standing in for the wire). Memory regions are
//! registered in a process-wide [`RdmaDomain`] under rkeys; RDMA READ pulls
//! registered bytes by `(rkey, offset, len)` — exactly the operation the
//! rendezvous protocol issues after a match (§IV-B). Message headers carry
//! the MPI envelope plus the sender-side inline hashes of §IV-D.

use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use otm_base::{Envelope, InlineHashes};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Remote key identifying a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RKey(pub u64);

/// Errors surfaced by the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdmaError {
    /// RDMA READ referenced an unknown rkey (region deregistered or never
    /// registered).
    InvalidRKey(u64),
    /// RDMA READ ran past the end of the region.
    OutOfBounds {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Region size.
        region: usize,
    },
    /// The peer's queue pair has been dropped.
    Disconnected,
}

impl std::fmt::Display for RdmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdmaError::InvalidRKey(k) => write!(f, "invalid rkey {k:#x}"),
            RdmaError::OutOfBounds {
                offset,
                len,
                region,
            } => {
                write!(
                    f,
                    "RDMA read [{offset}, {offset}+{len}) outside region of {region} bytes"
                )
            }
            RdmaError::Disconnected => write!(f, "queue pair disconnected"),
        }
    }
}

impl std::error::Error for RdmaError {}

/// A protection-domain-like registry of memory regions, shared by all
/// endpoints of a simulated fabric.
#[derive(Debug, Clone, Default)]
pub struct RdmaDomain {
    regions: Arc<RwLock<HashMap<u64, Arc<Vec<u8>>>>>,
    next_rkey: Arc<AtomicU64>,
}

impl RdmaDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        RdmaDomain::default()
    }

    /// Registers a buffer, returning its rkey. The buffer is immutable
    /// while registered (senders register their payload right before the
    /// RTS and deregister after the transfer is acknowledged).
    pub fn register(&self, data: Vec<u8>) -> RKey {
        let key = self.next_rkey.fetch_add(1, Ordering::Relaxed) + 1;
        self.regions.write().insert(key, Arc::new(data));
        RKey(key)
    }

    /// RDMA READ: copies `len` bytes starting at `offset` from the region.
    pub fn read(&self, rkey: RKey, offset: usize, len: usize) -> Result<Vec<u8>, RdmaError> {
        let region = self
            .regions
            .read()
            .get(&rkey.0)
            .cloned()
            .ok_or(RdmaError::InvalidRKey(rkey.0))?;
        let end = offset.checked_add(len).ok_or(RdmaError::OutOfBounds {
            offset,
            len,
            region: region.len(),
        })?;
        if end > region.len() {
            return Err(RdmaError::OutOfBounds {
                offset,
                len,
                region: region.len(),
            });
        }
        Ok(region[offset..offset + len].to_vec())
    }

    /// Deregisters a region. Reads against the rkey fail afterwards.
    pub fn deregister(&self, rkey: RKey) {
        self.regions.write().remove(&rkey.0);
    }

    /// Number of currently registered regions (diagnostics).
    pub fn region_count(&self) -> usize {
        self.regions.read().len()
    }
}

/// How a message's payload travels (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// The full payload rides in the packet.
    Eager {
        /// Payload length in bytes.
        len: usize,
    },
    /// Ready-To-Send descriptor: the payload is registered at the sender
    /// and will be pulled via RDMA READ after the match.
    Rts {
        /// rkey of the registered send buffer.
        rkey: RKey,
        /// Total payload length.
        len: usize,
        /// Bytes of head data piggybacked in the packet.
        piggyback: usize,
    },
    /// Reliability acknowledgement: the receiver has accepted every
    /// sequenced packet with `seq < cumulative` (i.e. `cumulative` is the
    /// next sequence number it expects). Acks are transport control
    /// traffic — they never reach the matching engine.
    Ack {
        /// The receiver's next expected sequence number.
        cumulative: u64,
        /// Selective-acknowledgement blocks describing sequenced packets
        /// held above `cumulative` in the receiver's staging buffer. Empty
        /// under go-back-N (the receiver discards out-of-order packets, so
        /// there is nothing to advertise).
        sack: SackBlocks,
    },
}

/// Maximum number of `[start, end)` ranges one ack can advertise. Four
/// blocks cover four independent holes; a wire hostile enough to fragment
/// the staging buffer further is repaired by the next ack's refreshed view.
pub const MAX_SACK_BLOCKS: usize = 4;

/// Fixed-size set of selective-acknowledgement ranges carried in an ack.
///
/// Each block is a half-open `[start, end)` run of sequence numbers the
/// receiver holds in its out-of-order staging buffer. Fixed-size (rather
/// than a `Vec`) so `PayloadKind` stays `Copy`, matching real NIC ack
/// descriptors which budget a handful of SACK slots per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SackBlocks {
    blocks: [(u64, u64); MAX_SACK_BLOCKS],
    len: u8,
}

impl SackBlocks {
    /// An empty SACK set (what plain cumulative acks carry).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Appends a `[start, end)` block. Returns `false` (dropping the block)
    /// once all slots are used — later acks re-advertise the survivors.
    pub fn push(&mut self, start: u64, end: u64) -> bool {
        debug_assert!(start < end, "SACK blocks are non-empty half-open ranges");
        if (self.len as usize) < MAX_SACK_BLOCKS {
            self.blocks[self.len as usize] = (start, end);
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Number of blocks advertised.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no blocks are advertised.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the advertised `(start, end)` ranges.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.blocks[..self.len as usize].iter().copied()
    }

    /// Whether `seq` falls inside any advertised block.
    pub fn contains(&self, seq: u64) -> bool {
        self.iter().any(|(start, end)| seq >= start && seq < end)
    }

    /// Highest sequence number covered by any block, if one is advertised.
    /// The sender fast-retransmits holes below this watermark.
    pub fn highest(&self) -> Option<u64> {
        self.iter().map(|(_, end)| end - 1).max()
    }
}

/// The matching-relevant message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageHeader {
    /// The MPI envelope (source, tag, communicator).
    pub env: Envelope,
    /// Sender-side inline hash values (§IV-D).
    pub hashes: InlineHashes,
    /// Protocol selection and transfer descriptor.
    pub kind: PayloadKind,
}

/// One packet on the wire: header plus inline bytes (the eager payload, or
/// the rendezvous piggyback head).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePacket {
    /// Message header.
    pub header: MessageHeader,
    /// Inline bytes.
    pub inline: Vec<u8>,
    /// Reliability sequence number, stamped by a `ReliableSender`. `None`
    /// marks legacy/control traffic that bypasses the go-back-N protocol
    /// (and is never touched by fault injection, which only targets
    /// sequenced data packets).
    pub seq: Option<u64>,
    /// Global delivery sequence number across all of the *receiver's* queue
    /// pairs, stamped by a sender that participates in total-order delivery
    /// (the application-replay driver stamps the trace position here).
    /// Orthogonal to `seq`, which orders packets within one QP: `gseq`
    /// orders accepted packets across QPs when the receive NIC's
    /// total-order gate is enabled, and is ignored otherwise.
    pub gseq: Option<u64>,
}

impl WirePacket {
    /// Stamps a reliability sequence number on the packet.
    #[must_use]
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = Some(seq);
        self
    }

    /// Stamps a global (cross-QP) delivery sequence number on the packet,
    /// consumed by [`crate::nic::RecvNic`]'s total-order gate.
    #[must_use]
    pub fn with_gseq(mut self, gseq: u64) -> Self {
        self.gseq = Some(gseq);
        self
    }

    /// Whether the packet is a reliability acknowledgement.
    pub fn is_ack(&self) -> bool {
        matches!(self.header.kind, PayloadKind::Ack { .. })
    }
}

/// One endpoint of a connected queue pair.
#[derive(Debug)]
pub struct QueuePair {
    tx: Sender<WirePacket>,
    rx: Receiver<WirePacket>,
}

impl QueuePair {
    /// Sends a packet to the peer.
    pub fn send(&self, packet: WirePacket) -> Result<(), RdmaError> {
        self.tx.send(packet).map_err(|_| RdmaError::Disconnected)
    }

    /// Non-blocking receive of the next packet, if one has arrived.
    pub fn try_recv(&self) -> Result<Option<WirePacket>, RdmaError> {
        match self.rx.try_recv() {
            Ok(p) => Ok(Some(p)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(RdmaError::Disconnected),
        }
    }

    /// Blocking receive of the next packet.
    pub fn recv(&self) -> Result<WirePacket, RdmaError> {
        self.rx.recv().map_err(|_| RdmaError::Disconnected)
    }
}

/// Creates a connected pair of endpoints.
pub fn connected_pair() -> (QueuePair, QueuePair) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        QueuePair { tx: atx, rx: arx },
        QueuePair { tx: btx, rx: brx },
    )
}

/// Convenience: builds an eager packet for `env` carrying `payload`.
pub fn eager_packet(env: Envelope, payload: Vec<u8>) -> WirePacket {
    WirePacket {
        header: MessageHeader {
            env,
            hashes: InlineHashes::of(&env),
            kind: PayloadKind::Eager { len: payload.len() },
        },
        inline: payload,
        seq: None,
        gseq: None,
    }
}

/// Convenience: builds a cumulative reliability acknowledgement. The
/// envelope is a placeholder — acks are consumed by the transport layer
/// and never matched.
pub fn ack_packet(cumulative: u64) -> WirePacket {
    sack_packet(cumulative, SackBlocks::empty())
}

/// Convenience: builds a cumulative ack carrying selective-acknowledgement
/// blocks for the receiver's staged out-of-order packets.
pub fn sack_packet(cumulative: u64, sack: SackBlocks) -> WirePacket {
    let env = Envelope::world(otm_base::Rank(u32::MAX), otm_base::Tag(u32::MAX));
    WirePacket {
        header: MessageHeader {
            env,
            hashes: InlineHashes::of(&env),
            kind: PayloadKind::Ack { cumulative, sack },
        },
        inline: Vec::new(),
        seq: None,
        gseq: None,
    }
}

/// Convenience: registers `payload` in `domain` and builds the RTS packet,
/// piggybacking the first `piggyback` bytes. Returns the packet and the
/// rkey (the sender deregisters it once the sequence is acknowledged).
pub fn rendezvous_packet(
    domain: &RdmaDomain,
    env: Envelope,
    payload: Vec<u8>,
    piggyback: usize,
) -> (WirePacket, RKey) {
    let piggyback = piggyback.min(payload.len());
    let head = payload[..piggyback].to_vec();
    let len = payload.len();
    let rkey = domain.register(payload);
    (
        WirePacket {
            header: MessageHeader {
                env,
                hashes: InlineHashes::of(&env),
                kind: PayloadKind::Rts {
                    rkey,
                    len,
                    piggyback,
                },
            },
            inline: head,
            seq: None,
            gseq: None,
        },
        rkey,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::{Rank, Tag};

    fn env() -> Envelope {
        Envelope::world(Rank(0), Tag(1))
    }

    #[test]
    fn queue_pair_delivers_in_order() {
        let (a, b) = connected_pair();
        a.send(eager_packet(env(), vec![1])).unwrap();
        a.send(eager_packet(env(), vec![2])).unwrap();
        assert_eq!(b.recv().unwrap().inline, vec![1]);
        assert_eq!(b.recv().unwrap().inline, vec![2]);
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn both_directions_work() {
        let (a, b) = connected_pair();
        a.send(eager_packet(env(), vec![1])).unwrap();
        b.send(eager_packet(env(), vec![2])).unwrap();
        assert_eq!(b.recv().unwrap().inline, vec![1]);
        assert_eq!(a.recv().unwrap().inline, vec![2]);
    }

    #[test]
    fn disconnect_is_reported() {
        let (a, b) = connected_pair();
        drop(b);
        assert_eq!(
            a.send(eager_packet(env(), vec![])),
            Err(RdmaError::Disconnected)
        );
        assert_eq!(a.recv(), Err(RdmaError::Disconnected));
    }

    #[test]
    fn rdma_read_returns_registered_bytes() {
        let d = RdmaDomain::new();
        let rkey = d.register((0..100u8).collect());
        assert_eq!(d.read(rkey, 0, 4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(d.read(rkey, 96, 4).unwrap(), vec![96, 97, 98, 99]);
    }

    #[test]
    fn rdma_read_bounds_are_checked() {
        let d = RdmaDomain::new();
        let rkey = d.register(vec![0u8; 10]);
        assert!(matches!(
            d.read(rkey, 8, 4),
            Err(RdmaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn rdma_read_overflowing_range_is_rejected_not_wrapped() {
        let d = RdmaDomain::new();
        let rkey = d.register(vec![0u8; 10]);
        assert!(matches!(
            d.read(rkey, usize::MAX, 2),
            Err(RdmaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn deregistered_rkey_is_invalid() {
        let d = RdmaDomain::new();
        let rkey = d.register(vec![1, 2, 3]);
        d.deregister(rkey);
        assert_eq!(d.read(rkey, 0, 1), Err(RdmaError::InvalidRKey(rkey.0)));
        assert_eq!(d.region_count(), 0);
    }

    #[test]
    fn rkeys_are_unique_across_registrations() {
        let d = RdmaDomain::new();
        let a = d.register(vec![1]);
        let b = d.register(vec![2]);
        assert_ne!(a, b);
        assert_eq!(d.read(a, 0, 1).unwrap(), vec![1]);
        assert_eq!(d.read(b, 0, 1).unwrap(), vec![2]);
    }

    #[test]
    fn rendezvous_packet_piggybacks_head_bytes() {
        let d = RdmaDomain::new();
        let payload: Vec<u8> = (0..32).collect();
        let (pkt, rkey) = rendezvous_packet(&d, env(), payload, 8);
        assert_eq!(pkt.inline, (0..8).collect::<Vec<u8>>());
        match pkt.header.kind {
            PayloadKind::Rts {
                rkey: k,
                len,
                piggyback,
            } => {
                assert_eq!(k, rkey);
                assert_eq!(len, 32);
                assert_eq!(piggyback, 8);
            }
            _ => panic!("expected RTS"),
        }
        // The remainder is readable via RDMA.
        assert_eq!(d.read(rkey, 8, 24).unwrap(), (8..32).collect::<Vec<u8>>());
    }

    #[test]
    fn header_carries_inline_hashes() {
        let pkt = eager_packet(env(), vec![]);
        assert_eq!(pkt.header.hashes, InlineHashes::of(&env()));
    }

    #[test]
    fn packets_are_unsequenced_until_stamped() {
        let pkt = eager_packet(env(), vec![1, 2]);
        assert_eq!(pkt.seq, None);
        assert_eq!(pkt.with_seq(7).seq, Some(7));
    }

    #[test]
    fn global_sequence_is_orthogonal_to_the_per_qp_sequence() {
        let pkt = eager_packet(env(), vec![1]);
        assert_eq!(pkt.gseq, None, "unstamped until a sender opts in");
        let stamped = pkt.with_seq(3).with_gseq(41);
        assert_eq!(stamped.seq, Some(3));
        assert_eq!(stamped.gseq, Some(41));
    }

    #[test]
    fn ack_packets_are_control_traffic() {
        let ack = ack_packet(41);
        assert!(ack.is_ack());
        assert_eq!(ack.seq, None, "acks are themselves unsequenced");
        match ack.header.kind {
            PayloadKind::Ack { cumulative, sack } => {
                assert_eq!(cumulative, 41);
                assert!(sack.is_empty(), "plain cumulative acks carry no SACK");
            }
            _ => panic!("expected ack"),
        }
        assert!(!eager_packet(env(), vec![]).is_ack());
    }

    #[test]
    fn sack_blocks_bound_and_query() {
        let mut sack = SackBlocks::empty();
        assert!(sack.is_empty());
        assert_eq!(sack.highest(), None);
        assert!(sack.push(5, 7));
        assert!(sack.push(9, 10));
        assert!(sack.push(12, 20));
        assert!(sack.push(30, 31));
        assert!(!sack.push(40, 41), "fifth block is dropped, not stored");
        assert_eq!(sack.len(), MAX_SACK_BLOCKS);
        assert!(sack.contains(5) && sack.contains(6) && !sack.contains(7));
        assert!(sack.contains(19) && !sack.contains(20));
        assert!(!sack.contains(40), "overflowed block is not advertised");
        assert_eq!(sack.highest(), Some(30));
        assert_eq!(
            sack.iter().collect::<Vec<_>>(),
            vec![(5, 7), (9, 10), (12, 20), (30, 31)]
        );

        let pkt = sack_packet(3, sack);
        assert!(pkt.is_ack());
        match pkt.header.kind {
            PayloadKind::Ack { cumulative, sack } => {
                assert_eq!(cumulative, 3);
                assert_eq!(sack.len(), MAX_SACK_BLOCKS);
            }
            _ => panic!("expected ack"),
        }
    }
}
