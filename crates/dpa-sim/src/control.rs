//! The feedback controller: a self-tuning runtime loop in the OHMS
//! observe/actuate shape.
//!
//! Every control interval the service distills its registry counters and
//! queue gauges into one [`Observation`]; [`FeedbackController::tick`]
//! compares it against the previous interval and returns a (usually empty)
//! list of [`Action`]s — knob movements, never measurements. The service
//! applies each action to the live component that owns the knob and stamps
//! a `knob_changed` span, so every decision the controller makes is visible
//! on the same trace timeline as the messages it affected.
//!
//! The controller itself holds no references into the engine or the NIC:
//! it is a pure state machine over counter deltas, which keeps it trivially
//! testable and keeps the observe side (registry snapshots) decoupled from
//! the actuate side (atomic overrides, budget setters) — the same split the
//! offloaded hardware designs use between telemetry readout and doorbell
//! writes.
//!
//! All arithmetic is integer-only and driven by the virtual clock, so a
//! given workload produces the same knob trajectory on every run.

use otm_base::PackingPolicy;

use crate::reliable::{DEFAULT_WINDOW_LIMIT, MIN_WINDOW_LIMIT};

/// Tuning constants for the [`FeedbackController`]. The defaults are
/// deliberately conservative: the controller nudges knobs one step per
/// interval and never moves a knob outside the bounds given here.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// How many service polls between controller ticks.
    pub interval_polls: u64,
    /// Lower bound for the reliability-window hint.
    pub min_window: usize,
    /// Upper bound for the reliability-window hint.
    pub max_window: usize,
    /// Additive step when the wire looks clean.
    pub window_step: usize,
    /// Baseline drain-retry budget the controller decays back toward.
    pub base_retry_budget: u32,
    /// Ceiling for the drain-retry budget under sustained ring
    /// backpressure.
    pub max_retry_budget: u32,
    /// Occupancy saturation threshold, in percent of block capacity.
    /// Sustained average block occupancy at or above this widens the
    /// packing window.
    pub widen_occupancy_pct: u64,
    /// Occupancy relaxation threshold, in percent of block capacity.
    /// Average occupancy at or below this steps the packing-window
    /// override back toward the configured default.
    pub relax_occupancy_pct: u64,
    /// Ceiling for the packing-window override, as a multiple of the
    /// engine's configured default window.
    pub max_window_scale: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            interval_polls: 64,
            min_window: MIN_WINDOW_LIMIT,
            max_window: DEFAULT_WINDOW_LIMIT * 4,
            window_step: 4,
            base_retry_budget: crate::service::DEFAULT_DRAIN_RETRY_BUDGET,
            max_retry_budget: 8,
            widen_occupancy_pct: 90,
            relax_occupancy_pct: 50,
            max_window_scale: 4,
        }
    }
}

/// One interval's worth of observed state. Counters are cumulative (the
/// controller differences them itself); gauges are instantaneous.
#[derive(Debug, Clone, Copy, Default)]
pub struct Observation {
    /// The service's virtual clock (poll count) at sampling time.
    pub polls: u64,
    /// Cumulative sender retransmits (`dpa_retransmits_total`).
    pub retransmits: u64,
    /// Cumulative acks consumed (`dpa_acks_total`).
    pub acks: u64,
    /// Cumulative submission-ring backpressure events
    /// (`dpa_ring_backpressure_total`).
    pub ring_backpressure: u64,
    /// Cumulative in-call drain retries (`dpa_drain_retries_total`).
    pub drain_retries: u64,
    /// Post-drain backlog: spilled CQ entries plus waiting unexpected
    /// messages.
    pub backlog: u64,
    /// Cumulative sum of the engine's block-occupancy histogram.
    pub occupancy_sum: u64,
    /// Cumulative count of the engine's block-occupancy histogram.
    pub occupancy_count: u64,
    /// How many communicator lanes currently hold queued work.
    pub active_lanes: u64,
    /// The engine's block capacity (threads per matching block).
    pub block_capacity: u64,
}

/// A knob movement the controller wants applied. Each variant carries the
/// previous and new value so the applier can stamp a faithful
/// `knob_changed` span without re-deriving state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Resize the reliability sender's unacked-window cap.
    ReliabilityWindow {
        /// Previous window cap.
        from: u64,
        /// New window cap.
        to: u64,
    },
    /// Change the service's in-call drain retry budget.
    DrainRetryBudget {
        /// Previous budget.
        from: u64,
        /// New budget.
        to: u64,
    },
    /// Override the engine's packing policy.
    PackingPolicy {
        /// Previous policy.
        from: PackingPolicy,
        /// New policy.
        to: PackingPolicy,
    },
    /// Override the engine's cross-communicator packing window
    /// (`0` restores the configured default).
    PackingWindow {
        /// Previous override (`0` = default).
        from: u64,
        /// New override (`0` = default).
        to: u64,
    },
}

/// Lifetime counters for one controller instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Intervals evaluated (including the priming tick).
    pub ticks: u64,
    /// Total knob movements emitted.
    pub knob_changes: u64,
}

/// Encodes a packing policy as the `u64` a `knob_changed` span carries.
pub fn encode_packing(policy: PackingPolicy) -> u64 {
    match policy {
        PackingPolicy::Consecutive => 0,
        PackingPolicy::CrossComm => 1,
    }
}

/// The self-tuning control loop. See the module docs for the shape; the
/// per-knob rules are:
///
/// * **Reliability window** — multiplicative decrease, additive increase
///   on the sender's unacked-window cap, keyed on the ratio of retransmit
///   to ack deltas: a lossy interval (retransmits ≥ ¼ of acks) halves the
///   hint, a clean interval with forward progress grows it one step.
/// * **Drain retry budget** — grows one step per interval that saw new
///   ring backpressure or drain retries, and decays one step per quiet
///   interval back to the baseline.
/// * **Packing policy** — a single active lane makes cross-communicator
///   packing pure overhead, so the controller pins `Consecutive`; two or
///   more active lanes restore `CrossComm`.
/// * **Packing window** — sustained near-capacity block occupancy with a
///   standing backlog doubles the packing window (bounded); slack
///   occupancy steps the override back toward the configured default.
#[derive(Debug)]
pub struct FeedbackController {
    config: ControllerConfig,
    last: Option<Observation>,
    window_hint: usize,
    retry_budget: u32,
    packing: PackingPolicy,
    packing_window: u64,
    default_packing_window: u64,
    stats: ControllerStats,
}

impl FeedbackController {
    /// A controller that believes the current knob values are the given
    /// baselines. `window_hint` should match the live sender's cap and
    /// `packing` the engine's effective policy, so the first emitted
    /// action reflects a real change.
    pub fn new(config: ControllerConfig, window_hint: usize, packing: PackingPolicy) -> Self {
        Self {
            retry_budget: config.base_retry_budget,
            config,
            last: None,
            window_hint: window_hint.clamp(config.min_window, config.max_window),
            packing,
            packing_window: 0,
            default_packing_window: 0,
            stats: ControllerStats::default(),
        }
    }

    /// A controller with the default tuning, believing the sender runs at
    /// [`DEFAULT_WINDOW_LIMIT`] under cross-communicator packing.
    pub fn with_defaults() -> Self {
        Self::new(
            ControllerConfig::default(),
            DEFAULT_WINDOW_LIMIT,
            PackingPolicy::CrossComm,
        )
    }

    /// The controller's tuning constants.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// How many polls between ticks.
    pub fn interval_polls(&self) -> u64 {
        self.config.interval_polls
    }

    /// The current reliability-window hint. Harnesses that own the
    /// [`crate::ReliableSender`] read this after every service poll and
    /// apply it with `set_window_limit`.
    pub fn window_hint(&self) -> usize {
        self.window_hint
    }

    /// The current drain-retry budget the controller wants.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// The packing policy the controller wants.
    pub fn packing(&self) -> PackingPolicy {
        self.packing
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Evaluates one interval. The first call primes the delta baseline
    /// and emits nothing; later calls return the knob movements to apply,
    /// in a fixed order (window, retry budget, packing policy, packing
    /// window) so traces are comparable across runs.
    pub fn tick(&mut self, obs: Observation) -> Vec<Action> {
        self.stats.ticks += 1;
        let Some(last) = self.last.replace(obs) else {
            return Vec::new();
        };
        let mut actions = Vec::new();

        let d_retx = obs.retransmits.saturating_sub(last.retransmits);
        let d_acks = obs.acks.saturating_sub(last.acks);
        let old_window = self.window_hint;
        if d_retx > 0 && d_retx.saturating_mul(4) >= d_acks {
            // Lossy interval: back the window off multiplicatively.
            self.window_hint = (self.window_hint / 2).max(self.config.min_window);
        } else if d_retx == 0 && d_acks > 0 {
            // Clean interval with progress: reopen additively.
            self.window_hint =
                (self.window_hint + self.config.window_step).min(self.config.max_window);
        }
        if self.window_hint != old_window {
            actions.push(Action::ReliabilityWindow {
                from: old_window as u64,
                to: self.window_hint as u64,
            });
        }

        let d_pressure = obs.ring_backpressure.saturating_sub(last.ring_backpressure)
            + obs.drain_retries.saturating_sub(last.drain_retries);
        let old_budget = self.retry_budget;
        if d_pressure > 0 {
            self.retry_budget = (self.retry_budget + 1).min(self.config.max_retry_budget);
        } else if self.retry_budget > self.config.base_retry_budget {
            self.retry_budget -= 1;
        }
        if self.retry_budget != old_budget {
            actions.push(Action::DrainRetryBudget {
                from: old_budget as u64,
                to: self.retry_budget as u64,
            });
        }

        let wanted = if obs.active_lanes <= 1 {
            PackingPolicy::Consecutive
        } else {
            PackingPolicy::CrossComm
        };
        if wanted != self.packing {
            actions.push(Action::PackingPolicy {
                from: self.packing,
                to: wanted,
            });
            self.packing = wanted;
        }

        let d_occ_sum = obs.occupancy_sum.saturating_sub(last.occupancy_sum);
        let d_occ_count = obs.occupancy_count.saturating_sub(last.occupancy_count);
        if d_occ_count > 0 && obs.block_capacity > 0 {
            let avg_pct = d_occ_sum * 100 / (d_occ_count * obs.block_capacity);
            let default_w = self.default_packing_window.max(1);
            let cap = default_w * self.config.max_window_scale as u64;
            let old = self.packing_window;
            if avg_pct >= self.config.widen_occupancy_pct && obs.backlog > 0 {
                let current = if old == 0 { default_w } else { old };
                self.packing_window = (current * 2).min(cap);
            } else if avg_pct <= self.config.relax_occupancy_pct && old != 0 {
                let halved = old / 2;
                self.packing_window = if halved <= default_w { 0 } else { halved };
            }
            if self.packing_window != old {
                actions.push(Action::PackingWindow {
                    from: old,
                    to: self.packing_window,
                });
            }
        }

        self.stats.knob_changes += actions.len() as u64;
        actions
    }

    /// Tells the controller what the engine's configured (non-overridden)
    /// packing window is, so widening starts from the real default. Safe
    /// to call every tick; `0` leaves the previous value.
    pub fn set_default_packing_window(&mut self, window: u64) {
        if window > 0 {
            self.default_packing_window = window;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(polls: u64) -> Observation {
        Observation {
            polls,
            acks: polls,
            active_lanes: 2,
            block_capacity: 16,
            ..Observation::default()
        }
    }

    #[test]
    fn first_tick_primes_and_emits_nothing() {
        let mut c = FeedbackController::with_defaults();
        assert!(c.tick(quiet(64)).is_empty());
        assert_eq!(c.stats().ticks, 1);
        assert_eq!(c.stats().knob_changes, 0);
    }

    #[test]
    fn lossy_interval_halves_the_window_and_clean_intervals_reopen_it() {
        let mut c = FeedbackController::with_defaults();
        c.tick(quiet(64));
        let lossy = Observation {
            polls: 128,
            retransmits: 40,
            acks: 100,
            ..quiet(128)
        };
        let actions = c.tick(lossy);
        assert!(actions.contains(&Action::ReliabilityWindow { from: 64, to: 32 }));
        assert_eq!(c.window_hint(), 32);
        // A clean interval with ack progress grows it back one step.
        let clean = Observation {
            polls: 192,
            retransmits: 40,
            acks: 260,
            ..quiet(192)
        };
        let actions = c.tick(clean);
        assert!(actions.contains(&Action::ReliabilityWindow { from: 32, to: 36 }));
        assert_eq!(c.window_hint(), 36);
    }

    #[test]
    fn window_respects_the_configured_bounds() {
        let mut c = FeedbackController::with_defaults();
        c.tick(quiet(0));
        // Hammer losses: the hint floors at min_window.
        for i in 1..=20u64 {
            let obs = Observation {
                retransmits: i * 100,
                acks: i * 100,
                ..quiet(i * 64)
            };
            c.tick(obs);
        }
        assert_eq!(c.window_hint(), MIN_WINDOW_LIMIT);
        // Then a long clean run: the hint ceilings at max_window.
        for i in 21..=200u64 {
            let obs = Observation {
                retransmits: 2000,
                acks: i * 1000,
                ..quiet(i * 64)
            };
            c.tick(obs);
        }
        assert_eq!(c.window_hint(), DEFAULT_WINDOW_LIMIT * 4);
    }

    #[test]
    fn ring_pressure_grows_the_retry_budget_and_quiet_decays_it() {
        let mut c = FeedbackController::with_defaults();
        c.tick(quiet(64));
        for i in 1..=10u64 {
            let obs = Observation {
                ring_backpressure: i * 5,
                ..quiet(64 + i * 64)
            };
            c.tick(obs);
        }
        assert_eq!(c.retry_budget(), 8); // capped at max_retry_budget
        for i in 11..=20u64 {
            let obs = Observation {
                ring_backpressure: 50,
                ..quiet(64 + i * 64)
            };
            c.tick(obs);
        }
        assert_eq!(c.retry_budget(), crate::service::DEFAULT_DRAIN_RETRY_BUDGET);
    }

    #[test]
    fn single_lane_pins_consecutive_and_multi_lane_restores_crosscomm() {
        let mut c = FeedbackController::with_defaults();
        c.tick(quiet(64));
        let solo = Observation {
            active_lanes: 1,
            ..quiet(128)
        };
        let actions = c.tick(solo);
        assert!(actions.contains(&Action::PackingPolicy {
            from: PackingPolicy::CrossComm,
            to: PackingPolicy::Consecutive,
        }));
        // Same observation again: the packing decision is not repeated.
        let solo2 = Observation {
            active_lanes: 1,
            ..quiet(192)
        };
        assert!(!c
            .tick(solo2)
            .iter()
            .any(|a| matches!(a, Action::PackingPolicy { .. })));
        let busy = quiet(256);
        let actions = c.tick(busy);
        assert!(actions.contains(&Action::PackingPolicy {
            from: PackingPolicy::Consecutive,
            to: PackingPolicy::CrossComm,
        }));
    }

    #[test]
    fn saturated_occupancy_widens_the_packing_window_then_relaxes() {
        let mut c = FeedbackController::with_defaults();
        c.set_default_packing_window(32);
        c.tick(quiet(64));
        let hot = Observation {
            occupancy_sum: 15 * 10,
            occupancy_count: 10,
            backlog: 4,
            ..quiet(128)
        };
        let actions = c.tick(hot);
        assert!(actions.contains(&Action::PackingWindow { from: 0, to: 64 }));
        // Still saturated: doubles again, bounded at 4x the default.
        let hot2 = Observation {
            occupancy_sum: 15 * 20,
            occupancy_count: 20,
            backlog: 4,
            ..quiet(192)
        };
        let actions = c.tick(hot2);
        assert!(actions.contains(&Action::PackingWindow { from: 64, to: 128 }));
        let hot3 = Observation {
            occupancy_sum: 15 * 30,
            occupancy_count: 30,
            backlog: 4,
            ..quiet(256)
        };
        assert!(!c
            .tick(hot3)
            .iter()
            .any(|a| matches!(a, Action::PackingWindow { .. })));
        // Slack occupancy steps back down and eventually clears the
        // override entirely.
        let cool = Observation {
            occupancy_sum: 15 * 30 + 4 * 10,
            occupancy_count: 40,
            ..quiet(320)
        };
        let actions = c.tick(cool);
        assert!(actions.contains(&Action::PackingWindow { from: 128, to: 64 }));
        let cool2 = Observation {
            occupancy_sum: 15 * 30 + 4 * 20,
            occupancy_count: 50,
            ..quiet(384)
        };
        let actions = c.tick(cool2);
        assert!(actions.contains(&Action::PackingWindow { from: 64, to: 0 }));
    }

    #[test]
    fn knob_changes_are_counted() {
        let mut c = FeedbackController::with_defaults();
        c.tick(quiet(64));
        let solo = Observation {
            active_lanes: 1,
            retransmits: 50,
            acks: 100,
            ..quiet(128)
        };
        let n = c.tick(solo).len() as u64;
        assert!(n >= 2); // window shrink + packing flip
        assert_eq!(c.stats().knob_changes, n);
    }

    #[test]
    fn packing_policy_encoding_is_stable() {
        assert_eq!(encode_packing(PackingPolicy::Consecutive), 0);
        assert_eq!(encode_packing(PackingPolicy::CrossComm), 1);
    }
}
