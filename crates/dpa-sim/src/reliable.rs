//! Sender-side reliability: sequence numbers, cumulative acks, go-back-N
//! retransmission with an exponential-backoff retry budget.
//!
//! The receive side ([`crate::nic::RecvNic`]) accepts sequenced packets
//! only in order, discards duplicates and gaps, and returns cumulative
//! acknowledgements. [`ReliableSender`] is the matching sender half: it
//! stamps outgoing packets with consecutive sequence numbers, keeps the
//! unacknowledged window, and — when an ack fails to arrive within a
//! timeout — retransmits the whole window (go-back-N), doubling the
//! timeout each attempt until a retry budget is exhausted.
//!
//! Together the two halves guarantee the property the chaos oracle
//! checks: the receiver stages sequenced packets in exactly the order
//! they were sent, no matter what the faulty wire dropped, duplicated,
//! reordered or delayed. Message handles — and therefore every matching
//! outcome — are identical to a fault-free run.
//!
//! Time is virtual: the "clock" is the number of [`ReliableSender::poll`]
//! calls, mirroring the NIC's poll-driven delivery clock, so tests are
//! deterministic and never sleep.

use crate::obs::ServiceMetrics;
use crate::rdma::{ack_packet, PayloadKind, QueuePair, RdmaError, WirePacket};
use std::collections::VecDeque;

/// Default number of polls without progress before the first retransmit.
pub const DEFAULT_TIMEOUT_POLLS: u64 = 8;

/// Default cap on consecutive retransmit attempts for one window.
pub const DEFAULT_MAX_RETRIES: u32 = 16;

/// Ceiling on the exponentially growing timeout, in polls.
const MAX_TIMEOUT_POLLS: u64 = 1 << 20;

/// Why a [`ReliableSender`] gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReliabilityError {
    /// The transport failed outright.
    Rdma(RdmaError),
    /// The retry budget was exhausted: the window was retransmitted
    /// `retries` times without the cumulative ack advancing.
    BudgetExhausted {
        /// Retransmit attempts performed.
        retries: u32,
        /// Packets still unacknowledged.
        unacked: usize,
    },
}

impl std::fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReliabilityError::Rdma(e) => write!(f, "transport: {e}"),
            ReliabilityError::BudgetExhausted { retries, unacked } => write!(
                f,
                "retry budget exhausted after {retries} retransmits with {unacked} packets unacked"
            ),
        }
    }
}

impl std::error::Error for ReliabilityError {}

/// Counters of what the reliability protocol did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Data packets sent for the first time.
    pub sent: u64,
    /// Packets retransmitted by go-back-N window resends.
    pub retransmits: u64,
    /// Window resend events (each may retransmit several packets).
    pub resend_events: u64,
    /// Cumulative acknowledgements consumed.
    pub acks: u64,
    /// Total polls spent backing off (the virtual-time analogue of
    /// exponential-backoff delay).
    pub backoff_polls: u64,
}

/// The sender half of the go-back-N reliability protocol.
///
/// Wraps one [`QueuePair`] endpoint. Application packets go out through
/// [`ReliableSender::send`], which stamps them with the next sequence
/// number and keeps a copy in the unacked window. [`ReliableSender::poll`]
/// consumes incoming acks, returns any non-ack packets to the caller (the
/// reverse direction may carry application traffic, as the ping-pong
/// harness does), and drives the retransmit timer.
#[derive(Debug)]
pub struct ReliableSender {
    qp: QueuePair,
    next_seq: u64,
    /// Every sequenced packet `<= cumulative` ack received so far.
    acked: u64,
    window: VecDeque<(u64, WirePacket)>,
    timeout_polls: u64,
    base_timeout: u64,
    polls_since_progress: u64,
    retries: u32,
    max_retries: u32,
    stats: ReliabilityStats,
    metrics: Option<ServiceMetrics>,
}

impl ReliableSender {
    /// Wraps `qp` with the default timeout and retry budget.
    pub fn new(qp: QueuePair) -> Self {
        Self::with_limits(qp, DEFAULT_TIMEOUT_POLLS, DEFAULT_MAX_RETRIES)
    }

    /// Wraps `qp` with an explicit base timeout (polls before the first
    /// retransmit) and retry budget.
    pub fn with_limits(qp: QueuePair, timeout_polls: u64, max_retries: u32) -> Self {
        let timeout_polls = timeout_polls.max(1);
        ReliableSender {
            qp,
            next_seq: 0,
            acked: 0,
            window: VecDeque::new(),
            timeout_polls,
            base_timeout: timeout_polls,
            polls_since_progress: 0,
            retries: 0,
            max_retries,
            stats: ReliabilityStats::default(),
            metrics: None,
        }
    }

    /// Attaches a metrics handle so retransmits, acks and backoff show up
    /// in an `otm-metrics` registry snapshot.
    pub fn attach_metrics(&mut self, metrics: ServiceMetrics) {
        self.metrics = Some(metrics);
    }

    /// Sends one packet reliably: stamps it with the next sequence number,
    /// stores it in the unacked window, transmits.
    pub fn send(&mut self, packet: WirePacket) -> Result<(), ReliabilityError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let packet = packet.with_seq(seq);
        self.window.push_back((seq, packet.clone()));
        self.stats.sent += 1;
        self.qp.send(packet).map_err(ReliabilityError::Rdma)
    }

    /// Drives the protocol one step: consumes acks, advances the window,
    /// and retransmits on timeout. Returns any non-ack packets that
    /// arrived on the reverse direction — they belong to the application.
    pub fn poll(&mut self) -> Result<Vec<WirePacket>, ReliabilityError> {
        let mut app_packets = Vec::new();
        loop {
            match self.qp.try_recv().map_err(ReliabilityError::Rdma)? {
                None => break,
                Some(packet) => match packet.header.kind {
                    PayloadKind::Ack { cumulative } => {
                        self.stats.acks += 1;
                        if let Some(m) = &self.metrics {
                            m.count_ack();
                        }
                        if cumulative > self.acked {
                            self.acked = cumulative;
                            while self
                                .window
                                .front()
                                .is_some_and(|&(seq, _)| seq < cumulative)
                            {
                                self.window.pop_front();
                            }
                            // Progress: the backoff schedule resets.
                            self.polls_since_progress = 0;
                            self.retries = 0;
                            self.timeout_polls = self.base_timeout;
                        }
                    }
                    _ => app_packets.push(packet),
                },
            }
        }
        if self.window.is_empty() {
            self.polls_since_progress = 0;
            return Ok(app_packets);
        }
        self.polls_since_progress += 1;
        self.stats.backoff_polls += 1;
        if self.polls_since_progress >= self.timeout_polls {
            if self.retries >= self.max_retries {
                return Err(ReliabilityError::BudgetExhausted {
                    retries: self.retries,
                    unacked: self.window.len(),
                });
            }
            // Go-back-N: resend the whole unacked window in order and
            // double the timeout for the next attempt.
            let resent = self.window.len() as u64;
            for &(seq, ref packet) in &self.window {
                self.qp
                    .send(packet.clone())
                    .map_err(ReliabilityError::Rdma)?;
                if let Some(m) = &self.metrics {
                    // Span subject = wire sequence number; the attempt index
                    // is 1-based (attempt 1 is the first resend).
                    m.span_retransmitted(seq, self.retries + 1);
                }
            }
            self.stats.retransmits += resent;
            self.stats.resend_events += 1;
            if let Some(m) = &self.metrics {
                m.add_retransmits(resent);
                m.observe_backoff(self.timeout_polls);
            }
            self.retries += 1;
            self.polls_since_progress = 0;
            self.timeout_polls = (self.timeout_polls * 2).min(MAX_TIMEOUT_POLLS);
        }
        Ok(app_packets)
    }

    /// Polls until every sent packet is acknowledged or the retry budget
    /// runs out. `max_polls` bounds the loop for safety.
    pub fn flush(&mut self, max_polls: u64) -> Result<(), ReliabilityError> {
        for _ in 0..max_polls {
            if self.window.is_empty() {
                return Ok(());
            }
            self.poll()?;
        }
        if self.window.is_empty() {
            Ok(())
        } else {
            Err(ReliabilityError::BudgetExhausted {
                retries: self.retries,
                unacked: self.window.len(),
            })
        }
    }

    /// Packets sent but not yet cumulatively acknowledged.
    pub fn unacked(&self) -> usize {
        self.window.len()
    }

    /// The next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Protocol counters.
    pub fn stats(&self) -> ReliabilityStats {
        self.stats
    }

    /// The wrapped endpoint (e.g. for sending unsequenced control
    /// traffic that bypasses the reliability protocol).
    pub fn qp(&self) -> &QueuePair {
        &self.qp
    }
}

/// Builds the ack the receive side owes its peer and sends it on `qp`,
/// ignoring disconnection (an unreachable peer cannot use the ack anyway).
pub(crate) fn send_ack_best_effort(qp: &QueuePair, cumulative: u64) {
    let _ = qp.send(ack_packet(cumulative));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdma::{connected_pair, eager_packet};
    use otm_base::{Envelope, Rank, Tag};

    fn env(tag: u32) -> Envelope {
        Envelope::world(Rank(0), Tag(tag))
    }

    #[test]
    fn send_stamps_consecutive_sequence_numbers() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        s.send(eager_packet(env(0), vec![])).unwrap();
        s.send(eager_packet(env(1), vec![])).unwrap();
        assert_eq!(b.recv().unwrap().seq, Some(0));
        assert_eq!(b.recv().unwrap().seq, Some(1));
        assert_eq!(s.unacked(), 2);
    }

    #[test]
    fn cumulative_ack_advances_the_window() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        for i in 0..4 {
            s.send(eager_packet(env(i), vec![])).unwrap();
        }
        b.send(ack_packet(3)).unwrap();
        s.poll().unwrap();
        assert_eq!(s.unacked(), 1, "seqs 0..3 acked, seq 3 still out");
        b.send(ack_packet(4)).unwrap();
        s.poll().unwrap();
        assert_eq!(s.unacked(), 0);
        assert_eq!(s.stats().acks, 2);
    }

    #[test]
    fn timeout_triggers_a_full_window_resend() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 2, 4);
        s.send(eager_packet(env(0), vec![])).unwrap();
        s.send(eager_packet(env(1), vec![])).unwrap();
        // Drain the original transmissions; the receiver stays silent.
        assert!(b.try_recv().unwrap().is_some());
        assert!(b.try_recv().unwrap().is_some());
        s.poll().unwrap();
        s.poll().unwrap(); // second silent poll hits the timeout
        assert_eq!(s.stats().resend_events, 1);
        assert_eq!(s.stats().retransmits, 2, "go-back-N resends the window");
        assert_eq!(b.try_recv().unwrap().unwrap().seq, Some(0));
        assert_eq!(b.try_recv().unwrap().unwrap().seq, Some(1));
    }

    #[test]
    fn backoff_doubles_between_resends_and_resets_on_progress() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 1, 8);
        s.send(eager_packet(env(0), vec![])).unwrap();
        s.poll().unwrap(); // timeout 1 → resend, timeout now 2
        s.poll().unwrap(); // 1 of 2
        assert_eq!(s.stats().resend_events, 1, "second resend not yet due");
        s.poll().unwrap(); // 2 of 2 → resend, timeout now 4
        assert_eq!(s.stats().resend_events, 2);
        b.send(ack_packet(1)).unwrap();
        s.poll().unwrap();
        assert_eq!(s.unacked(), 0);
        // Progress reset the schedule: a new packet gets the base timeout.
        s.send(eager_packet(env(1), vec![])).unwrap();
        s.poll().unwrap();
        assert_eq!(s.stats().resend_events, 3, "base timeout again after reset");
    }

    #[cfg(feature = "trace-events")]
    #[test]
    fn resends_stamp_retransmitted_spans_per_packet() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 1, 8);
        let m = ServiceMetrics::new();
        s.attach_metrics(m.clone());
        s.send(eager_packet(env(0), vec![])).unwrap();
        s.send(eager_packet(env(1), vec![])).unwrap();
        assert!(b.try_recv().unwrap().is_some());
        assert!(b.try_recv().unwrap().is_some());
        s.poll().unwrap(); // timeout → first resend of the 2-packet window
        s.poll().unwrap();
        s.poll().unwrap(); // doubled timeout elapses → second resend
        let spans = m.spans().dump();
        use otm_metrics::SpanKind;
        let stamped: Vec<(u64, SpanKind)> = spans.iter().map(|s| (s.subject, s.kind)).collect();
        assert_eq!(
            stamped,
            vec![
                (0, SpanKind::Retransmitted { attempt: 1 }),
                (1, SpanKind::Retransmitted { attempt: 1 }),
                (0, SpanKind::Retransmitted { attempt: 2 }),
                (1, SpanKind::Retransmitted { attempt: 2 }),
            ],
            "one span per resent packet, attempt index per window resend"
        );
        assert_eq!(m.snapshot().counters["dpa_span_dropped_total"], 0);
    }

    #[test]
    fn retry_budget_exhaustion_is_reported() {
        let (a, _b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 1, 2);
        s.send(eager_packet(env(0), vec![])).unwrap();
        let mut err = None;
        for _ in 0..10 {
            if let Err(e) = s.poll() {
                err = Some(e);
                break;
            }
        }
        match err.expect("budget must run out") {
            ReliabilityError::BudgetExhausted { retries, unacked } => {
                assert_eq!(retries, 2);
                assert_eq!(unacked, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn non_ack_reverse_traffic_is_handed_back_to_the_caller() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        b.send(eager_packet(env(9), vec![42])).unwrap();
        b.send(ack_packet(0)).unwrap();
        let app = s.poll().unwrap();
        assert_eq!(app.len(), 1, "the eager packet belongs to the application");
        assert_eq!(app[0].inline, vec![42]);
    }

    #[test]
    fn flush_completes_once_acks_arrive() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        s.send(eager_packet(env(0), vec![])).unwrap();
        b.send(ack_packet(1)).unwrap();
        s.flush(16).unwrap();
        assert_eq!(s.unacked(), 0);
    }

    #[test]
    fn disconnected_peer_surfaces_a_transport_error() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        drop(b);
        assert!(matches!(
            s.send(eager_packet(env(0), vec![])),
            Err(ReliabilityError::Rdma(RdmaError::Disconnected))
        ));
    }
}
