//! Sender-side reliability: sequence numbers, cumulative acks with SACK
//! blocks, and mode-selected retransmission — selective repeat (default)
//! or go-back-N (the A/B baseline).
//!
//! The receive side ([`crate::nic::RecvNic`]) delivers sequenced packets
//! strictly in order, discards duplicates, and returns cumulative
//! acknowledgements; under selective repeat it additionally stages
//! out-of-order packets and advertises the staged runs as SACK blocks.
//! [`ReliableSender`] is the matching sender half: it stamps outgoing
//! packets with consecutive sequence numbers and keeps the
//! unacknowledged window. In [`ReliabilityMode::GoBackN`] a timeout
//! retransmits the whole window; in [`ReliabilityMode::SelectiveRepeat`]
//! SACKed packets are never resent — holes below the highest SACKed
//! sequence are fast-retransmitted (at most once per timeout epoch) and a
//! timeout resends only the still-unSACKed packets.
//!
//! The retransmit timer follows the smoothed round-trip estimate: packets
//! acknowledged without ever being retransmitted contribute RTT samples
//! (Karn's rule), the timeout is `srtt + 4·rttvar` (floored at the
//! configured base), doubles on each silent timeout, and — the decay half
//! of the schedule — snaps back to the estimate the moment an ack makes
//! progress, instead of staying pinned at the grown value. The unacked
//! window is sized adaptively (AIMD): it halves on timeout and reopens by
//! one on each ack that advances the cumulative edge, up to the
//! configured cap ([`ReliableSender::set_window_limit`]).
//!
//! Together the two halves guarantee the property the chaos oracle
//! checks: the receiver stages sequenced packets in exactly the order
//! they were sent, no matter what the faulty wire dropped, duplicated,
//! reordered or delayed. Message handles — and therefore every matching
//! outcome — are identical to a fault-free run in both modes.
//!
//! Time is virtual: the "clock" is the number of [`ReliableSender::poll`]
//! calls, mirroring the NIC's poll-driven delivery clock, so tests are
//! deterministic and never sleep.

use crate::obs::ServiceMetrics;
use crate::rdma::{sack_packet, PayloadKind, QueuePair, RdmaError, SackBlocks, WirePacket};
use otm_base::ReliabilityMode;
use std::collections::VecDeque;

/// Default number of polls without progress before the first retransmit
/// (also the floor of the RTT-driven timeout).
pub const DEFAULT_TIMEOUT_POLLS: u64 = 8;

/// Default cap on consecutive retransmit attempts for one window.
pub const DEFAULT_MAX_RETRIES: u32 = 16;

/// Default ceiling on packets in flight (the adaptive window's cap).
pub const DEFAULT_WINDOW_LIMIT: usize = 64;

/// The adaptive window never shrinks below this many packets.
pub const MIN_WINDOW_LIMIT: usize = 4;

/// Ceiling on the exponentially growing timeout, in polls.
const MAX_TIMEOUT_POLLS: u64 = 1 << 20;

/// Why a [`ReliableSender`] gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReliabilityError {
    /// The transport failed outright.
    Rdma(RdmaError),
    /// The retry budget was exhausted: the window was retransmitted
    /// `retries` times without the cumulative ack advancing.
    BudgetExhausted {
        /// Retransmit attempts performed.
        retries: u32,
        /// Packets still unacknowledged.
        unacked: usize,
    },
}

impl std::fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReliabilityError::Rdma(e) => write!(f, "transport: {e}"),
            ReliabilityError::BudgetExhausted { retries, unacked } => write!(
                f,
                "retry budget exhausted after {retries} retransmits with {unacked} packets unacked"
            ),
        }
    }
}

impl std::error::Error for ReliabilityError {}

/// Counters of what the reliability protocol did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Data packets sent for the first time.
    pub sent: u64,
    /// Packets retransmitted (timeout resends and fast retransmits).
    pub retransmits: u64,
    /// Resend events — timeouts or fast-retransmit bursts, each of which
    /// may retransmit several packets.
    pub resend_events: u64,
    /// Packets fast-retransmitted because a SACK exposed them as holes
    /// (a subset of `retransmits`; selective repeat only).
    pub fast_retransmits: u64,
    /// Cumulative acknowledgements consumed.
    pub acks: u64,
    /// Total polls spent backing off (the virtual-time analogue of
    /// exponential-backoff delay).
    pub backoff_polls: u64,
    /// RTT samples folded into the smoothed estimate (Karn-filtered:
    /// only packets acknowledged without ever being retransmitted).
    pub rtt_samples: u64,
}

/// One unacknowledged packet in flight.
#[derive(Debug)]
struct Inflight {
    seq: u64,
    packet: WirePacket,
    /// Covered by a SACK block: the receiver holds it, never resend.
    sacked: bool,
    /// Already fast-retransmitted in the current timeout epoch.
    fast_retx: bool,
    /// Times this packet was retransmitted (0 = only the original send).
    retx: u32,
    /// Virtual-time clock value of the last transmission.
    sent_at: u64,
}

/// The sender half of the reliability protocol.
///
/// Wraps one [`QueuePair`] endpoint. Application packets go out through
/// [`ReliableSender::send`], which stamps them with the next sequence
/// number and keeps a copy in the unacked window ([`ReliableSender::can_send`]
/// tells the caller when the adaptive window has room).
/// [`ReliableSender::poll`] consumes incoming acks, returns any non-ack
/// packets to the caller (the reverse direction may carry application
/// traffic, as the ping-pong harness does), and drives the retransmit
/// timer.
#[derive(Debug)]
pub struct ReliableSender {
    qp: QueuePair,
    mode: ReliabilityMode,
    next_seq: u64,
    /// Every sequenced packet `< cumulative` ack received so far.
    acked: u64,
    window: VecDeque<Inflight>,
    /// Virtual time: the number of `poll` calls so far.
    clock: u64,
    timeout_polls: u64,
    base_timeout: u64,
    /// Smoothed RTT estimate in polls (None until the first sample).
    srtt: Option<u64>,
    /// Smoothed RTT variance in polls.
    rttvar: u64,
    polls_since_progress: u64,
    retries: u32,
    max_retries: u32,
    /// Configured ceiling on packets in flight.
    window_cap: usize,
    /// Adaptive in-flight limit (AIMD under selective repeat; pinned to
    /// `window_cap` under go-back-N).
    cwnd: usize,
    stats: ReliabilityStats,
    metrics: Option<ServiceMetrics>,
}

impl ReliableSender {
    /// Wraps `qp` with the default timeout and retry budget, in the
    /// default [`ReliabilityMode`].
    pub fn new(qp: QueuePair) -> Self {
        Self::with_limits(qp, DEFAULT_TIMEOUT_POLLS, DEFAULT_MAX_RETRIES)
    }

    /// Wraps `qp` with an explicit base timeout (polls before the first
    /// retransmit; also the RTT-driven timeout's floor) and retry budget.
    pub fn with_limits(qp: QueuePair, timeout_polls: u64, max_retries: u32) -> Self {
        let timeout_polls = timeout_polls.max(1);
        ReliableSender {
            qp,
            mode: ReliabilityMode::default(),
            next_seq: 0,
            acked: 0,
            window: VecDeque::new(),
            clock: 0,
            timeout_polls,
            base_timeout: timeout_polls,
            srtt: None,
            rttvar: 0,
            polls_since_progress: 0,
            retries: 0,
            max_retries,
            window_cap: DEFAULT_WINDOW_LIMIT,
            cwnd: DEFAULT_WINDOW_LIMIT,
            stats: ReliabilityStats::default(),
            metrics: None,
        }
    }

    /// Selects the retransmission strategy. Switch before sending — a
    /// mid-stream switch leaves SACK state half-applied.
    #[must_use]
    pub fn with_mode(mut self, mode: ReliabilityMode) -> Self {
        debug_assert!(
            self.window.is_empty(),
            "switch reliability modes before traffic starts"
        );
        self.mode = mode;
        self
    }

    /// The configured retransmission strategy.
    pub fn mode(&self) -> ReliabilityMode {
        self.mode
    }

    /// Attaches a metrics handle so retransmits, acks and backoff show up
    /// in an `otm-metrics` registry snapshot.
    pub fn attach_metrics(&mut self, metrics: ServiceMetrics) {
        self.metrics = Some(metrics);
    }

    /// Sends one packet reliably: stamps it with the next sequence number,
    /// stores it in the unacked window, transmits. The caller is expected
    /// to gate on [`ReliableSender::can_send`]; sending past the adaptive
    /// window is allowed but forfeits its loss-avoidance.
    pub fn send(&mut self, packet: WirePacket) -> Result<(), ReliabilityError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let packet = packet.with_seq(seq);
        self.window.push_back(Inflight {
            seq,
            packet: packet.clone(),
            sacked: false,
            fast_retx: false,
            retx: 0,
            sent_at: self.clock,
        });
        self.stats.sent += 1;
        self.qp.send(packet).map_err(ReliabilityError::Rdma)
    }

    /// Whether the adaptive window has room for another `send`.
    pub fn can_send(&self) -> bool {
        self.window.len() < self.cwnd
    }

    /// The current adaptive in-flight limit.
    pub fn window_limit(&self) -> usize {
        self.cwnd
    }

    /// Sets the ceiling on packets in flight (e.g. from the feedback
    /// controller's hint). The adaptive limit is clamped into the new cap
    /// and can reopen up to it; under go-back-N the limit is pinned to
    /// the cap directly.
    pub fn set_window_limit(&mut self, cap: usize) {
        let cap = cap.max(MIN_WINDOW_LIMIT);
        self.window_cap = cap;
        self.cwnd = match self.mode {
            ReliabilityMode::GoBackN => cap,
            ReliabilityMode::SelectiveRepeat => self.cwnd.min(cap),
        };
    }

    /// The smoothed RTT estimate in polls, once a sample exists.
    pub fn srtt_polls(&self) -> Option<u64> {
        self.srtt
    }

    /// The configured base timeout (the RTT-driven timeout's floor).
    pub fn base_timeout(&self) -> u64 {
        self.base_timeout
    }

    /// The current retransmit timeout in polls (diagnostics; regression
    /// tests assert the post-recovery decay).
    pub fn current_timeout_polls(&self) -> u64 {
        self.timeout_polls
    }

    /// Folds one Karn-eligible RTT sample into the smoothed estimate.
    fn observe_rtt(&mut self, sample: u64) {
        let sample = sample.max(1);
        self.stats.rtt_samples += 1;
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = (sample / 2).max(1);
            }
            Some(srtt) => {
                self.rttvar = (3 * self.rttvar + srtt.abs_diff(sample)) / 4;
                self.srtt = Some((7 * srtt + sample) / 8);
            }
        }
    }

    /// The RTT-driven retransmit timeout: `srtt + 4·rttvar`, floored at
    /// the configured base and capped at the backoff ceiling. Before any
    /// sample exists this is just the base timeout.
    fn rto(&self) -> u64 {
        match self.srtt {
            None => self.base_timeout,
            Some(srtt) => {
                (srtt + (4 * self.rttvar).max(1)).clamp(self.base_timeout, MAX_TIMEOUT_POLLS)
            }
        }
    }

    /// Drives the protocol one step: consumes acks (cumulative edge +
    /// SACK blocks), fast-retransmits exposed holes, and retransmits on
    /// timeout. Returns any non-ack packets that arrived on the reverse
    /// direction — they belong to the application.
    pub fn poll(&mut self) -> Result<Vec<WirePacket>, ReliabilityError> {
        self.clock += 1;
        let mut app_packets = Vec::new();
        let mut progressed = false;
        loop {
            match self.qp.try_recv().map_err(ReliabilityError::Rdma)? {
                None => break,
                Some(packet) => match packet.header.kind {
                    PayloadKind::Ack { cumulative, sack } => {
                        self.stats.acks += 1;
                        if let Some(m) = &self.metrics {
                            m.count_ack();
                        }
                        if cumulative > self.acked {
                            self.acked = cumulative;
                            while self.window.front().is_some_and(|e| e.seq < cumulative) {
                                let e = self.window.pop_front().expect("front checked");
                                // Karn's rule: only never-retransmitted
                                // packets yield unambiguous RTT samples.
                                if e.retx == 0 {
                                    let sample = self.clock.saturating_sub(e.sent_at);
                                    self.observe_rtt(sample);
                                }
                            }
                            progressed = true;
                        }
                        if self.mode == ReliabilityMode::SelectiveRepeat && !sack.is_empty() {
                            let clock = self.clock;
                            let mut samples = Vec::new();
                            for e in &mut self.window {
                                if !e.sacked && sack.contains(e.seq) {
                                    e.sacked = true;
                                    // Freshly-SACKed never-retransmitted
                                    // packets are Karn-eligible too.
                                    if e.retx == 0 {
                                        samples.push(clock.saturating_sub(e.sent_at));
                                    }
                                }
                            }
                            for sample in samples {
                                self.observe_rtt(sample);
                            }
                        }
                    }
                    _ => app_packets.push(packet),
                },
            }
        }
        if progressed {
            // Progress: the backoff schedule decays back to the smoothed
            // estimate instead of staying pinned at the grown timeout,
            // and the adaptive window reopens by one.
            self.polls_since_progress = 0;
            self.retries = 0;
            self.timeout_polls = self.rto();
            if self.mode == ReliabilityMode::SelectiveRepeat {
                self.cwnd = (self.cwnd + 1).min(self.window_cap);
            }
        }
        if self.window.is_empty() {
            self.polls_since_progress = 0;
            return Ok(app_packets);
        }
        // Fast retransmit (selective repeat): a SACKed packet above an
        // unSACKed one is evidence the hole was lost, not delayed —
        // resend it now, at most once per timeout epoch.
        if self.mode == ReliabilityMode::SelectiveRepeat {
            let highest_sacked = self.window.iter().filter(|e| e.sacked).map(|e| e.seq).max();
            if let Some(h) = highest_sacked {
                let mut resent = 0u64;
                let clock = self.clock;
                for e in &mut self.window {
                    if e.seq >= h {
                        break;
                    }
                    if e.sacked || e.fast_retx {
                        continue;
                    }
                    self.qp
                        .send(e.packet.clone())
                        .map_err(ReliabilityError::Rdma)?;
                    e.fast_retx = true;
                    e.retx += 1;
                    e.sent_at = clock;
                    resent += 1;
                    if let Some(m) = &self.metrics {
                        m.span_retransmitted(e.seq, e.retx);
                    }
                }
                if resent > 0 {
                    self.stats.retransmits += resent;
                    self.stats.fast_retransmits += resent;
                    self.stats.resend_events += 1;
                    if let Some(m) = &self.metrics {
                        m.add_retransmits(resent);
                    }
                    // Give the retransmit a full timeout to land before
                    // escalating to a blanket resend.
                    self.polls_since_progress = 0;
                    return Ok(app_packets);
                }
            }
        }
        self.polls_since_progress += 1;
        self.stats.backoff_polls += 1;
        if self.polls_since_progress >= self.timeout_polls {
            if self.retries >= self.max_retries {
                return Err(ReliabilityError::BudgetExhausted {
                    retries: self.retries,
                    unacked: self.window.len(),
                });
            }
            // Timeout resend: the whole window under go-back-N, only the
            // unSACKed holes under selective repeat. The timeout doubles
            // for the next attempt and the adaptive window halves.
            let mut resent = 0u64;
            let clock = self.clock;
            for e in &mut self.window {
                if self.mode == ReliabilityMode::SelectiveRepeat && e.sacked {
                    continue;
                }
                self.qp
                    .send(e.packet.clone())
                    .map_err(ReliabilityError::Rdma)?;
                e.retx += 1;
                e.sent_at = clock;
                // The timeout resend supersedes fast retransmit: the
                // standing SACK evidence has already been acted on twice,
                // so further recovery is the backoff schedule's job.
                e.fast_retx = true;
                resent += 1;
                if let Some(m) = &self.metrics {
                    m.span_retransmitted(e.seq, e.retx);
                }
            }
            self.stats.retransmits += resent;
            self.stats.resend_events += 1;
            if let Some(m) = &self.metrics {
                m.add_retransmits(resent);
                m.observe_backoff(self.timeout_polls);
            }
            self.retries += 1;
            self.polls_since_progress = 0;
            self.timeout_polls = (self.timeout_polls * 2).min(MAX_TIMEOUT_POLLS);
            if self.mode == ReliabilityMode::SelectiveRepeat {
                self.cwnd = (self.cwnd / 2).max(MIN_WINDOW_LIMIT);
            }
        }
        Ok(app_packets)
    }

    /// Polls until every sent packet is acknowledged or the retry budget
    /// runs out. `max_polls` bounds the loop for safety.
    pub fn flush(&mut self, max_polls: u64) -> Result<(), ReliabilityError> {
        for _ in 0..max_polls {
            if self.window.is_empty() {
                return Ok(());
            }
            self.poll()?;
        }
        if self.window.is_empty() {
            Ok(())
        } else {
            Err(ReliabilityError::BudgetExhausted {
                retries: self.retries,
                unacked: self.window.len(),
            })
        }
    }

    /// Packets sent but not yet cumulatively acknowledged (SACKed packets
    /// still count until the cumulative edge passes them).
    pub fn unacked(&self) -> usize {
        self.window.len()
    }

    /// The next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Protocol counters.
    pub fn stats(&self) -> ReliabilityStats {
        self.stats
    }

    /// The wrapped endpoint (e.g. for sending unsequenced control
    /// traffic that bypasses the reliability protocol).
    pub fn qp(&self) -> &QueuePair {
        &self.qp
    }
}

/// Builds the ack the receive side owes its peer — cumulative edge plus
/// SACK blocks for staged runs — and sends it on `qp`, ignoring
/// disconnection (an unreachable peer cannot use the ack anyway).
pub(crate) fn send_sack_best_effort(qp: &QueuePair, cumulative: u64, sack: SackBlocks) {
    let _ = qp.send(sack_packet(cumulative, sack));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdma::{ack_packet, connected_pair, eager_packet};
    use otm_base::{Envelope, Rank, Tag};

    fn env(tag: u32) -> Envelope {
        Envelope::world(Rank(0), Tag(tag))
    }

    fn sack(blocks: &[(u64, u64)]) -> SackBlocks {
        let mut s = SackBlocks::empty();
        for &(start, end) in blocks {
            assert!(s.push(start, end));
        }
        s
    }

    /// Drains and returns the sequence numbers currently on the wire.
    fn drain_seqs(qp: &QueuePair) -> Vec<u64> {
        let mut seqs = Vec::new();
        while let Some(p) = qp.try_recv().unwrap() {
            seqs.push(p.seq.expect("sequenced"));
        }
        seqs
    }

    #[test]
    fn send_stamps_consecutive_sequence_numbers() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        s.send(eager_packet(env(0), vec![])).unwrap();
        s.send(eager_packet(env(1), vec![])).unwrap();
        assert_eq!(b.recv().unwrap().seq, Some(0));
        assert_eq!(b.recv().unwrap().seq, Some(1));
        assert_eq!(s.unacked(), 2);
    }

    #[test]
    fn cumulative_ack_advances_the_window() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        for i in 0..4 {
            s.send(eager_packet(env(i), vec![])).unwrap();
        }
        b.send(ack_packet(3)).unwrap();
        s.poll().unwrap();
        assert_eq!(s.unacked(), 1, "seqs 0..3 acked, seq 3 still out");
        b.send(ack_packet(4)).unwrap();
        s.poll().unwrap();
        assert_eq!(s.unacked(), 0);
        assert_eq!(s.stats().acks, 2);
    }

    #[test]
    fn timeout_triggers_a_full_window_resend() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 2, 4);
        s.send(eager_packet(env(0), vec![])).unwrap();
        s.send(eager_packet(env(1), vec![])).unwrap();
        // Drain the original transmissions; the receiver stays silent.
        assert!(b.try_recv().unwrap().is_some());
        assert!(b.try_recv().unwrap().is_some());
        s.poll().unwrap();
        s.poll().unwrap(); // second silent poll hits the timeout
        assert_eq!(s.stats().resend_events, 1);
        assert_eq!(s.stats().retransmits, 2, "nothing SACKed: full resend");
        assert_eq!(b.try_recv().unwrap().unwrap().seq, Some(0));
        assert_eq!(b.try_recv().unwrap().unwrap().seq, Some(1));
    }

    #[test]
    fn backoff_doubles_between_resends_and_resets_on_progress() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 1, 8);
        s.send(eager_packet(env(0), vec![])).unwrap();
        s.poll().unwrap(); // timeout 1 → resend, timeout now 2
        s.poll().unwrap(); // 1 of 2
        assert_eq!(s.stats().resend_events, 1, "second resend not yet due");
        s.poll().unwrap(); // 2 of 2 → resend, timeout now 4
        assert_eq!(s.stats().resend_events, 2);
        b.send(ack_packet(1)).unwrap();
        s.poll().unwrap();
        assert_eq!(s.unacked(), 0);
        // Progress reset the schedule: a new packet gets the base timeout.
        s.send(eager_packet(env(1), vec![])).unwrap();
        s.poll().unwrap();
        assert_eq!(s.stats().resend_events, 3, "base timeout again after reset");
    }

    #[test]
    fn sacked_packets_are_never_resent_and_holes_go_fast() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 4, 8);
        for i in 0..3 {
            s.send(eager_packet(env(i), vec![])).unwrap();
        }
        assert_eq!(drain_seqs(&b), vec![0, 1, 2]);
        // The receiver holds 1 and 2, the hole is 0.
        b.send(crate::rdma::sack_packet(0, sack(&[(1, 3)])))
            .unwrap();
        s.poll().unwrap();
        assert_eq!(drain_seqs(&b), vec![0], "only the hole is retransmitted");
        let st = s.stats();
        assert_eq!(st.fast_retransmits, 1);
        assert_eq!(st.retransmits, 1);
        assert_eq!(st.resend_events, 1);
        // The retransmit lands; the cumulative edge releases everything.
        b.send(ack_packet(3)).unwrap();
        s.poll().unwrap();
        assert_eq!(s.unacked(), 0);
    }

    #[test]
    fn fast_retransmit_fires_once_per_timeout_epoch() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 3, 8);
        for i in 0..2 {
            s.send(eager_packet(env(i), vec![])).unwrap();
        }
        drain_seqs(&b);
        b.send(crate::rdma::sack_packet(0, sack(&[(1, 2)])))
            .unwrap();
        s.poll().unwrap();
        assert_eq!(drain_seqs(&b), vec![0], "hole fast-retransmitted");
        // Duplicate SACKs must not trigger another fast retransmit.
        b.send(crate::rdma::sack_packet(0, sack(&[(1, 2)])))
            .unwrap();
        s.poll().unwrap();
        assert_eq!(drain_seqs(&b), vec![], "same epoch: no second fast retx");
        // The timeout epoch rolls over: the still-missing hole is resent
        // (selectively — the SACKed packet stays out of it), and the
        // standing SACK evidence does not re-trigger a fast retransmit
        // behind the timeout resend.
        s.poll().unwrap();
        s.poll().unwrap();
        s.poll().unwrap();
        assert_eq!(drain_seqs(&b), vec![0], "timeout resends only the hole");
        s.poll().unwrap();
        assert_eq!(drain_seqs(&b), vec![], "no fast retx echo after timeout");
        assert_eq!(s.stats().retransmits, 2);
        assert_eq!(s.stats().fast_retransmits, 1);
    }

    #[test]
    fn goback_n_mode_ignores_sack_and_resends_the_window() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 2, 8).with_mode(ReliabilityMode::GoBackN);
        for i in 0..3 {
            s.send(eager_packet(env(i), vec![])).unwrap();
        }
        drain_seqs(&b);
        b.send(crate::rdma::sack_packet(0, sack(&[(1, 3)])))
            .unwrap();
        s.poll().unwrap();
        assert_eq!(drain_seqs(&b), vec![], "go-back-N has no fast retransmit");
        s.poll().unwrap(); // timeout
        assert_eq!(
            drain_seqs(&b),
            vec![0, 1, 2],
            "blanket resend despite the SACK"
        );
        assert_eq!(s.stats().fast_retransmits, 0);
    }

    #[test]
    fn timeout_decays_to_the_rtt_estimate_after_recovery() {
        // Satellite regression: burst-drop grows the timeout; once the
        // wire turns clean, the next ack snaps it back to the smoothed
        // estimate instead of leaving it pinned at the doubled value.
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 2, 30);
        // Clean exchange: establish a ~1-poll RTT sample.
        s.send(eager_packet(env(0), vec![])).unwrap();
        b.send(ack_packet(1)).unwrap();
        s.poll().unwrap();
        assert_eq!(s.unacked(), 0);
        assert!(s.srtt_polls().is_some(), "clean ack produced a sample");
        // Burst loss: silence doubles the timeout repeatedly.
        s.send(eager_packet(env(1), vec![])).unwrap();
        for _ in 0..14 {
            s.poll().unwrap();
        }
        let grown = s.current_timeout_polls();
        assert!(grown >= 8, "backoff must have grown (got {grown})");
        // The wire recovers: one ack and the timeout decays.
        b.send(ack_packet(2)).unwrap();
        s.poll().unwrap();
        let decayed = s.current_timeout_polls();
        assert!(
            decayed < grown,
            "timeout must decay after progress ({decayed} !< {grown})"
        );
        assert!(
            decayed <= s.srtt_polls().unwrap() * 4 + s.base_timeout(),
            "decayed timeout tracks the RTT estimate, not the backoff"
        );
    }

    #[test]
    fn adaptive_window_halves_on_timeout_and_reopens_on_progress() {
        let (a, b) = connected_pair();
        // Base timeout of 4 so a progress poll is never also a timeout
        // poll (with a 1-poll timeout the two races obscure the window
        // dynamics under test).
        let mut s = ReliableSender::with_limits(a, 4, 30);
        s.set_window_limit(8);
        assert_eq!(s.window_limit(), 8);
        for i in 0..8 {
            s.send(eager_packet(env(i), vec![])).unwrap();
        }
        assert!(!s.can_send(), "window full");
        for _ in 0..4 {
            s.poll().unwrap(); // silence → timeout → multiplicative decrease
        }
        assert_eq!(s.window_limit(), 4);
        // Each cumulative advance reopens the window additively.
        for k in 1..=4u64 {
            b.send(ack_packet(2 * k)).unwrap();
            s.poll().unwrap();
        }
        assert_eq!(s.unacked(), 0);
        assert_eq!(s.window_limit(), 8, "reopened up to the cap");
        assert!(s.can_send());
    }

    #[test]
    fn goback_n_window_is_static() {
        let (a, _b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 1, 30).with_mode(ReliabilityMode::GoBackN);
        s.set_window_limit(8);
        s.send(eager_packet(env(0), vec![])).unwrap();
        s.poll().unwrap(); // timeout resend
        assert_eq!(s.window_limit(), 8, "go-back-N keeps the configured cap");
    }

    #[cfg(feature = "trace-events")]
    #[test]
    fn resends_stamp_retransmitted_spans_per_packet() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 1, 8);
        let m = ServiceMetrics::new();
        s.attach_metrics(m.clone());
        s.send(eager_packet(env(0), vec![])).unwrap();
        s.send(eager_packet(env(1), vec![])).unwrap();
        assert!(b.try_recv().unwrap().is_some());
        assert!(b.try_recv().unwrap().is_some());
        s.poll().unwrap(); // timeout → first resend of the 2-packet window
        s.poll().unwrap();
        s.poll().unwrap(); // doubled timeout elapses → second resend
        let spans = m.spans().dump();
        use otm_metrics::SpanKind;
        let stamped: Vec<(u64, SpanKind)> = spans.iter().map(|s| (s.subject, s.kind)).collect();
        assert_eq!(
            stamped,
            vec![
                (0, SpanKind::Retransmitted { attempt: 1 }),
                (1, SpanKind::Retransmitted { attempt: 1 }),
                (0, SpanKind::Retransmitted { attempt: 2 }),
                (1, SpanKind::Retransmitted { attempt: 2 }),
            ],
            "one span per resent packet, attempt index per window resend"
        );
        assert_eq!(m.snapshot().counters["dpa_span_dropped_total"], 0);
    }

    #[test]
    fn retry_budget_exhaustion_is_reported() {
        let (a, _b) = connected_pair();
        let mut s = ReliableSender::with_limits(a, 1, 2);
        s.send(eager_packet(env(0), vec![])).unwrap();
        let mut err = None;
        for _ in 0..10 {
            if let Err(e) = s.poll() {
                err = Some(e);
                break;
            }
        }
        match err.expect("budget must run out") {
            ReliabilityError::BudgetExhausted { retries, unacked } => {
                assert_eq!(retries, 2);
                assert_eq!(unacked, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn non_ack_reverse_traffic_is_handed_back_to_the_caller() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        b.send(eager_packet(env(9), vec![42])).unwrap();
        b.send(ack_packet(0)).unwrap();
        let app = s.poll().unwrap();
        assert_eq!(app.len(), 1, "the eager packet belongs to the application");
        assert_eq!(app[0].inline, vec![42]);
    }

    #[test]
    fn flush_completes_once_acks_arrive() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        s.send(eager_packet(env(0), vec![])).unwrap();
        b.send(ack_packet(1)).unwrap();
        s.flush(16).unwrap();
        assert_eq!(s.unacked(), 0);
    }

    #[test]
    fn disconnected_peer_surfaces_a_transport_error() {
        let (a, b) = connected_pair();
        let mut s = ReliableSender::new(a);
        drop(b);
        assert!(matches!(
            s.send(eager_packet(env(0), vec![])),
            Err(ReliabilityError::Rdma(RdmaError::Disconnected))
        ));
    }
}
