//! A simulated multi-node job: a full mesh of queue pairs, one matching
//! service per node.
//!
//! The paper's closing discussion (§VII) argues that offloading tag
//! matching unlocks offloading the operations *built on top of it* —
//! "collective operations, which are normally built on top of
//! point-to-point operations, and hence need matching to be performed in
//! order to be offloaded". The [`crate::collectives`] module implements
//! tree collectives over this cluster; every hop goes through the full
//! receive path (wire → bounce buffer → CQ → matching → protocol).

use crate::bounce::BouncePool;
use crate::matchd::{Admission, MatchServer, MatchdConfig, TenantConfig, TenantSession};
use crate::memory::DeviceMemory;
use crate::nic::RecvNic;
use crate::rdma::{
    connected_pair, eager_packet, rendezvous_packet, QueuePair, RdmaDomain, WirePacket,
};
use crate::reliable::{ReliabilityStats, ReliableSender};
use crate::service::{CompletedReceive, MatchingService, ServiceError};
use mpi_matching::traditional::TraditionalMatcher;
use mpi_matching::{MatchingBackend, RecvHandle};
use otm::OtmEngine;
use otm_base::hash::mix64;
use otm_base::memory::Footprint;
use otm_base::{Envelope, FaultPlan, MatchConfig, Rank, ReceivePattern, Tag};

/// Which matching backend every node of the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterBackend {
    /// Offloaded optimistic matching (per-node DPA budget willing).
    Offloaded,
    /// Host-CPU traditional matching.
    MpiCpu,
}

impl ClusterBackend {
    /// Builds one node's matching backend — the uniform trait-object path
    /// every node is constructed through. Offloaded nodes charge their
    /// tables against a fresh BlueField-3-sized DPA budget first.
    fn build(self, config: &MatchConfig) -> Box<dyn MatchingBackend> {
        match self {
            ClusterBackend::Offloaded => {
                let mut budget = DeviceMemory::bluefield3_l3();
                budget
                    .try_alloc_comm(Footprint::compute(config.bins, config.max_receives))
                    .expect("cluster tables fit the per-node DPA budget");
                Box::new(OtmEngine::new(config.clone()).expect("validated config"))
            }
            ClusterBackend::MpiCpu => Box::new(TraditionalMatcher::new()),
        }
    }
}

/// A node's send endpoint towards one peer: a bare queue pair on a
/// perfect wire, or a [`ReliableSender`] when the cluster runs a fault
/// plan (sequence numbers, cumulative acks, go-back-N retransmission).
enum PeerSender {
    Direct(QueuePair),
    /// Boxed: the sender's window + stats dwarf a bare queue pair.
    Reliable(Box<ReliableSender>),
}

impl PeerSender {
    fn send(&mut self, packet: WirePacket) -> Result<(), ServiceError> {
        match self {
            PeerSender::Direct(qp) => qp.send(packet).map_err(ServiceError::Rdma),
            PeerSender::Reliable(s) => s.send(packet).map_err(ServiceError::from),
        }
    }

    /// Drives the reliability protocol one step (acks in, retransmits
    /// out). A no-op on a direct endpoint.
    fn pump(&mut self) -> Result<(), ServiceError> {
        if let PeerSender::Reliable(s) = self {
            // The reverse direction of a mesh data link carries only acks
            // (each direction of the mesh has its own pair), so any app
            // packets the sender hands back can only be stray.
            let stray = s.poll()?;
            debug_assert!(stray.is_empty(), "mesh reverse path carries only acks");
        }
        Ok(())
    }

    fn stats(&self) -> ReliabilityStats {
        match self {
            PeerSender::Direct(_) => ReliabilityStats::default(),
            PeerSender::Reliable(s) => s.stats(),
        }
    }
}

/// One simulated node: a `matchd` client around its matching server, plus
/// send endpoints to every peer.
///
/// Since the matchd refactor a node no longer calls its
/// [`MatchingService`] directly: it runs a private [`MatchServer`] with a
/// single generously-sized tenant session, posts through the session's
/// admission path, and advances matching by ticking the server. The
/// node-facing API is unchanged; what changed is that every receive now
/// travels the same admission → fair drain → completion-delivery pipeline
/// a multi-tenant deployment uses.
pub struct ClusterNode {
    rank: Rank,
    server: MatchServer,
    /// The node's private tenant session on its own server.
    session: TenantSession,
    /// Send endpoint towards each peer (`None` at our own index).
    peers: Vec<Option<PeerSender>>,
    domain: RdmaDomain,
    /// Eager/rendezvous switchover for [`ClusterNode::send`].
    eager_threshold: usize,
}

impl ClusterNode {
    /// This node's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Posts a receive on this node, through the node's tenant session.
    /// The node's private tenant is sized so admission always succeeds; a
    /// refusal (which would take a pathological backlog) surfaces as
    /// [`ServiceError::Admission`] rather than being retried.
    pub fn post_recv(&mut self, pattern: ReceivePattern) -> Result<RecvHandle, ServiceError> {
        match self.session.submit_post(pattern) {
            Admission::Admitted(handle) => Ok(handle),
            Admission::Backpressured { retry_after } => Err(ServiceError::Admission(format!(
                "node tenant backpressured (retry_after={retry_after})"
            ))),
            Admission::Rejected { reason } => Err(ServiceError::Admission(format!(
                "node tenant rejected: {reason}"
            ))),
        }
    }

    /// Sends `payload` to `dest` with `tag`, choosing eager or rendezvous
    /// by size (§IV-B).
    pub fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<(), ServiceError> {
        let env = Envelope::world(self.rank, tag);
        let sender = self.peers[dest]
            .as_mut()
            .expect("no loopback sends in the mesh");
        if payload.len() <= self.eager_threshold {
            sender.send(eager_packet(env, payload))
        } else {
            let (pkt, _rkey) = rendezvous_packet(&self.domain, env, payload, 64);
            sender.send(pkt)
        }
    }

    /// Ticks this node's matching server (fair drain of the node tenant's
    /// queued posts, one NIC poll + match round, completion delivery) and
    /// returns the newly delivered receives. Also drives this node's
    /// reliable senders (acks in, retransmits out) when the cluster runs a
    /// fault plan.
    pub fn progress(&mut self) -> Result<Vec<CompletedReceive>, ServiceError> {
        self.server.tick()?;
        self.pump_senders()?;
        Ok(self.session.take_completions())
    }

    /// Drives every reliable send endpoint one step without touching the
    /// receive path. [`Cluster::progress_until`] pumps the *other* nodes
    /// through this so their dropped packets retransmit while one node is
    /// being progressed.
    pub fn pump_senders(&mut self) -> Result<(), ServiceError> {
        for peer in self.peers.iter_mut().flatten() {
            peer.pump()?;
        }
        Ok(())
    }

    /// Aggregate reliability-protocol counters over this node's send
    /// endpoints (all zero on a fault-free cluster).
    pub fn reliability_stats(&self) -> ReliabilityStats {
        let mut total = ReliabilityStats::default();
        for peer in self.peers.iter().flatten() {
            let s = peer.stats();
            total.sent += s.sent;
            total.retransmits += s.retransmits;
            total.resend_events += s.resend_events;
            total.acks += s.acks;
            total.backoff_polls += s.backoff_polls;
        }
        total
    }

    /// What this node's receive-side fault interpreter injected so far
    /// (`None` when the cluster runs no fault plan).
    pub fn wire_fault_stats(&self) -> Option<crate::fault::WireFaultStats> {
        self.server.service().nic().wire_fault_stats()
    }

    /// Engine statistics when offloaded.
    pub fn engine_stats(&self) -> Option<otm::StatsSnapshot> {
        self.server.service().engine_stats()
    }

    /// The backend label.
    pub fn backend_name(&self) -> &'static str {
        self.server.service().backend_name()
    }

    /// The node's matchd server (tick clock, Prometheus scrape, the
    /// wrapped service).
    pub fn server(&self) -> &MatchServer {
        &self.server
    }

    /// The node's tenant session stats (admissions, drains, completions).
    pub fn tenant_stats(&self) -> crate::matchd::TenantStats {
        self.session.stats()
    }
}

/// The simulated job (see module docs).
pub struct Cluster {
    nodes: Vec<ClusterNode>,
}

impl Cluster {
    /// Builds an `n`-node full-mesh cluster with the given matching
    /// backend on every node.
    ///
    /// Offloaded nodes each charge their tables against a fresh
    /// BlueField-3-sized DPA budget; `config.block_threads` is forced to 1
    /// (inline lanes) so large simulated clusters do not oversubscribe the
    /// simulation host with worker pools.
    pub fn new(n: usize, backend: ClusterBackend, config: MatchConfig) -> Self {
        Self::build(n, backend, config, None)
    }

    /// Builds an `n`-node cluster whose wires run the given fault plan.
    ///
    /// Every node's receive NIC interprets its own deterministically
    /// derived copy of `plan` (same plan, per-node seed — two clusters
    /// built from the same plan inject identical faults), and every send
    /// endpoint is wrapped in a [`ReliableSender`] so the go-back-N
    /// protocol recovers the drops, duplicates, reorders and delays.
    pub fn with_faults(
        n: usize,
        backend: ClusterBackend,
        config: MatchConfig,
        plan: FaultPlan,
    ) -> Self {
        Self::build(n, backend, config, Some(plan))
    }

    fn build(
        n: usize,
        backend: ClusterBackend,
        config: MatchConfig,
        faults: Option<FaultPlan>,
    ) -> Self {
        assert!(n >= 2, "a cluster needs at least two nodes");
        // peers_qp[i][j] = i's send endpoint to j.
        let mut send_eps: Vec<Vec<Option<QueuePair>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut recv_qps: Vec<Vec<QueuePair>> = (0..n).map(|_| Vec::new()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = connected_pair(); // a: i's side, b: j's side
                let (c, d) = connected_pair(); // c: j's side, d: i's side
                send_eps[i][j] = Some(a);
                recv_qps[j].push(b);
                send_eps[j][i] = Some(c);
                recv_qps[i].push(d);
            }
        }
        let config = config.with_block_threads(1);
        // One domain for the whole fabric: RDMA reads reach any peer's
        // registered region, as verbs rkeys do.
        let fabric = RdmaDomain::new();
        let nodes = send_eps
            .into_iter()
            .zip(recv_qps)
            .enumerate()
            .map(|(i, (peers, qps))| {
                let domain = fabric.clone();
                let mut qps = qps.into_iter();
                // Bounce buffers must hold the largest eager payload a
                // peer may send (anything bigger goes rendezvous).
                let mut nic = RecvNic::new(
                    qps.next().expect("n >= 2 gives every node a peer"),
                    BouncePool::new(
                        4 * n.max(16),
                        mpi_matching::protocol::DEFAULT_EAGER_THRESHOLD,
                    ),
                );
                for qp in qps {
                    nic.add_qp(qp);
                }
                if let Some(plan) = &faults {
                    // Same plan, per-node seed: the node index mixes into
                    // the plan's seed so every wire misbehaves differently
                    // yet the whole cluster replays identically from one
                    // root seed.
                    nic.set_faults(plan.clone().with_seed(mix64(plan.seed ^ (i as u64 + 1))));
                }
                let peers = peers
                    .into_iter()
                    .map(|ep| {
                        ep.map(|qp| {
                            if faults.is_some() {
                                PeerSender::Reliable(Box::new(ReliableSender::new(qp)))
                            } else {
                                PeerSender::Direct(qp)
                            }
                        })
                    })
                    .collect();
                let service =
                    MatchingService::with_backend(nic, domain.clone(), backend.build(&config));
                // The node is a matchd client of its own server: one
                // private tenant, sized so a node can queue a full job's
                // posts without ever seeing backpressure, drained whole
                // every tick (quantum = capacity). No loopback wire — the
                // node's sends go to its peers, never to itself.
                let mut server = MatchServer::with_service(service, None, MatchdConfig::default());
                let session = server.open_tenant_with(TenantConfig {
                    capacity: 1 << 16,
                    quantum: 1 << 16,
                    comm: None,
                });
                ClusterNode {
                    rank: Rank(i as u32),
                    server,
                    session,
                    peers,
                    domain,
                    eager_threshold: mpi_matching::protocol::DEFAULT_EAGER_THRESHOLD,
                }
            })
            .collect();
        Cluster { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster is empty (never: construction requires n ≥ 2).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Mutable access to one node.
    pub fn node_mut(&mut self, i: usize) -> &mut ClusterNode {
        &mut self.nodes[i]
    }

    /// Progresses node `i` until it has accumulated `want` completions
    /// (single-threaded event loop: the sends feeding it must already be on
    /// the wire). Every other node's reliable senders are pumped each
    /// iteration so dropped packets retransmit toward `i` — a no-op on a
    /// fault-free cluster.
    pub fn progress_until(
        &mut self,
        i: usize,
        want: usize,
    ) -> Result<Vec<CompletedReceive>, ServiceError> {
        let mut done = Vec::new();
        while done.len() < want {
            done.extend(self.nodes[i].progress()?);
            for j in 0..self.nodes.len() {
                if j != i {
                    self.nodes[j].pump_senders()?;
                }
            }
        }
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MatchConfig {
        MatchConfig::default()
            .with_max_receives(256)
            .with_max_unexpected(256)
            .with_bins(64)
    }

    #[test]
    fn mesh_wires_every_pair_in_both_directions() {
        let mut c = Cluster::new(4, ClusterBackend::MpiCpu, config());
        for src in 0..4 {
            for dst in 0..4 {
                if src == dst {
                    continue;
                }
                let tag = Tag((src * 4 + dst) as u32);
                c.node_mut(dst)
                    .post_recv(ReceivePattern::exact(Rank(src as u32), tag))
                    .unwrap();
                c.node_mut(src)
                    .send(dst, tag, vec![src as u8, dst as u8])
                    .unwrap();
                let done = c.progress_until(dst, 1).unwrap();
                assert_eq!(done[0].data, vec![src as u8, dst as u8], "{src}->{dst}");
            }
        }
    }

    #[test]
    fn offloaded_cluster_matches_end_to_end() {
        let mut c = Cluster::new(3, ClusterBackend::Offloaded, config());
        assert_eq!(c.node_mut(0).backend_name(), "Optimistic-DPA");
        // Everyone sends to node 0 with distinct tags; node 0 pre-posts.
        for src in 1..3 {
            c.node_mut(0)
                .post_recv(ReceivePattern::exact(Rank(src as u32), Tag(src as u32)))
                .unwrap();
        }
        for src in 1..3usize {
            c.node_mut(src)
                .send(0, Tag(src as u32), vec![src as u8; 8])
                .unwrap();
        }
        let done = c.progress_until(0, 2).unwrap();
        assert_eq!(done.len(), 2);
        let stats = c.node_mut(0).engine_stats().unwrap();
        assert_eq!(stats.matched, 2);
    }

    #[test]
    fn eager_payloads_up_to_the_threshold_cross_the_mesh() {
        // A payload between the old 4 KiB bounce size and the 8 KiB eager
        // threshold must stage cleanly (regression: it used to panic the
        // receiver's poll).
        let mut c = Cluster::new(2, ClusterBackend::Offloaded, config());
        let payload = vec![7u8; 6000];
        c.node_mut(1)
            .post_recv(ReceivePattern::exact(Rank(0), Tag(4)))
            .unwrap();
        c.node_mut(0).send(1, Tag(4), payload.clone()).unwrap();
        let done = c.progress_until(1, 1).unwrap();
        assert_eq!(done[0].data, payload);
    }

    #[test]
    fn rendezvous_payloads_cross_the_mesh() {
        let mut c = Cluster::new(2, ClusterBackend::Offloaded, config());
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        c.node_mut(1)
            .post_recv(ReceivePattern::exact(Rank(0), Tag(9)))
            .unwrap();
        c.node_mut(0).send(1, Tag(9), payload.clone()).unwrap();
        let done = c.progress_until(1, 1).unwrap();
        assert_eq!(done[0].data, payload);
    }

    #[test]
    fn faulty_mesh_delivers_everything_exactly_once_in_order() {
        // A hostile wire under every link: drops, duplicates and reorders
        // at 15% each. The reliable senders and the NIC's go-back-N
        // acceptance must deliver every payload exactly once, in per-link
        // send order, on all three nodes.
        let plan = FaultPlan::new(0xc1a5)
            .with_drop_permille(150)
            .with_duplicate_permille(150)
            .with_reorder_permille(150);
        let mut c = Cluster::with_faults(3, ClusterBackend::Offloaded, config(), plan);
        let per_link = 10u32;
        for dst in 0..3usize {
            for src in 0..3usize {
                if src == dst {
                    continue;
                }
                for k in 0..per_link {
                    c.node_mut(dst)
                        .post_recv(ReceivePattern::exact(Rank(src as u32), Tag(k)))
                        .unwrap();
                }
            }
        }
        for src in 0..3usize {
            for dst in 0..3usize {
                if src == dst {
                    continue;
                }
                for k in 0..per_link {
                    c.node_mut(src)
                        .send(dst, Tag(k), vec![src as u8, dst as u8, k as u8])
                        .unwrap();
                }
            }
        }
        for dst in 0..3usize {
            let done = c.progress_until(dst, 2 * per_link as usize).unwrap();
            assert_eq!(done.len(), 2 * per_link as usize);
            for d in done {
                assert_eq!(
                    d.data,
                    vec![d.env.src.0 as u8, dst as u8, d.env.tag.0 as u8],
                    "payload must agree with the matched envelope"
                );
            }
        }
        // The wire really was hostile and the protocol really did work.
        let injected: u64 = (0..3)
            .map(|i| c.node_mut(i).wire_fault_stats().unwrap().total())
            .sum();
        assert!(injected > 0, "the plan must have injected faults");
        let recovered: u64 = (0..3)
            .map(|i| c.node_mut(i).reliability_stats().retransmits)
            .sum();
        assert!(recovered > 0, "drops must have forced retransmissions");
    }
}
