//! Collective operations built on matched point-to-point messages —
//! the workload class §VII motivates: "offloading tag matching is a
//! necessary step to be able to offload the full chain of actions".
//!
//! Implemented over the [`crate::cluster`] mesh:
//!
//! * [`broadcast`] — binomial-tree broadcast from a root;
//! * [`reduce_sum`] — binomial-tree reduction of `u64` vectors to a root;
//! * [`allreduce_sum`] — reduce + broadcast.
//!
//! The cluster is single-threaded (a deterministic event loop), so every
//! hop is explicit: post the receive, send, progress the receiver until
//! the matched payload lands. Every one of those hops exercises the
//! complete offloaded path — wire, bounce buffer, completion queue,
//! optimistic matching, protocol handling.

use crate::cluster::Cluster;
use crate::service::ServiceError;
use otm_base::{Rank, ReceivePattern, Tag};

/// The binomial-tree parent of `rank` (relative to `root`, over `n`
/// nodes), or `None` for the root itself.
fn parent(rank: usize, root: usize, n: usize) -> Option<usize> {
    let rel = (rank + n - root) % n;
    if rel == 0 {
        return None;
    }
    // Clear the lowest set bit: the standard binomial-tree parent.
    let prel = rel & (rel - 1);
    Some((prel + root) % n)
}

/// The binomial-tree children of `rank` (relative to `root`, over `n`
/// nodes), in send order (largest subtree first).
fn children(rank: usize, root: usize, n: usize) -> Vec<usize> {
    let rel = (rank + n - root) % n;
    let mut out = Vec::new();
    let mut bit = 1usize;
    // Children are rel + 2^k for each k above rel's lowest set bit range.
    while bit < n {
        if rel & bit != 0 {
            break;
        }
        let child = rel | bit;
        if child < n {
            out.push((child + root) % n);
        }
        bit <<= 1;
    }
    out.reverse(); // largest subtree first, as classic MPI trees do
    out
}

/// Binomial-tree broadcast: `payload` travels from `root` to every node.
/// Returns each node's received copy (the root's entry is the original).
///
/// ```
/// use dpa_sim::{Cluster, ClusterBackend};
/// use dpa_sim::collectives::broadcast;
/// use otm_base::{MatchConfig, Tag};
///
/// let mut cluster = Cluster::new(4, ClusterBackend::Offloaded, MatchConfig::small());
/// let copies = broadcast(&mut cluster, 0, b"hello".to_vec(), Tag(1)).unwrap();
/// assert!(copies.iter().all(|c| c == b"hello"));
/// ```
pub fn broadcast(
    cluster: &mut Cluster,
    root: usize,
    payload: Vec<u8>,
    tag: Tag,
) -> Result<Vec<Vec<u8>>, ServiceError> {
    let n = cluster.len();
    assert!(root < n);
    // Every non-root pre-posts its receive from its tree parent — matching
    // must happen before the dependent forwarding can run (§VII).
    for rank in 0..n {
        if let Some(p) = parent(rank, root, n) {
            cluster
                .node_mut(rank)
                .post_recv(ReceivePattern::exact(Rank(p as u32), tag))?;
        }
    }
    let mut data: Vec<Option<Vec<u8>>> = vec![None; n];
    data[root] = Some(payload);
    // BFS order by tree depth: a node forwards once its copy has arrived.
    let mut frontier = vec![root];
    while let Some(rank) = frontier.pop() {
        let bytes = data[rank].clone().expect("frontier nodes hold data");
        for child in children(rank, root, n) {
            cluster.node_mut(rank).send(child, tag, bytes.clone())?;
            let done = cluster.progress_until(child, 1)?;
            data[child] = Some(done[0].data.clone());
            frontier.push(child);
        }
    }
    Ok(data
        .into_iter()
        .map(|d| d.expect("every node reached"))
        .collect())
}

fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn encode_u64s(vals: &[u64]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Binomial-tree reduction: element-wise sum of every node's `u64` vector,
/// delivered at `root`. `values[i]` is node `i`'s contribution.
pub fn reduce_sum(
    cluster: &mut Cluster,
    root: usize,
    values: &[Vec<u64>],
    tag: Tag,
) -> Result<Vec<u64>, ServiceError> {
    let n = cluster.len();
    assert_eq!(values.len(), n);
    let width = values[0].len();
    assert!(
        values.iter().all(|v| v.len() == width),
        "uniform vector width"
    );

    // Interior nodes post one receive per child; leaves send immediately.
    // Process in deepest-first order: a node reduces its subtree before
    // shipping the partial sum to its parent.
    let mut partial: Vec<Vec<u64>> = values.to_vec();
    // Order nodes by decreasing tree depth (relative rank popcount works
    // for binomial trees: deeper nodes have more set bits).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&r| std::cmp::Reverse(((r + n - root) % n).count_ones()));
    for &rank in &order {
        let kids = children(rank, root, n);
        if !kids.is_empty() {
            for &child in &kids {
                cluster
                    .node_mut(rank)
                    .post_recv(ReceivePattern::exact(Rank(child as u32), tag))?;
            }
            let done = cluster.progress_until(rank, kids.len())?;
            for c in done {
                for (acc, v) in partial[rank].iter_mut().zip(decode_u64s(&c.data)) {
                    *acc = acc.wrapping_add(v);
                }
            }
        }
        if let Some(p) = parent(rank, root, n) {
            let bytes = encode_u64s(&partial[rank]);
            cluster.node_mut(rank).send(p, tag, bytes)?;
        }
    }
    Ok(partial[root].clone())
}

/// Allreduce as reduce-to-root plus broadcast — every node ends with the
/// element-wise sum.
pub fn allreduce_sum(
    cluster: &mut Cluster,
    values: &[Vec<u64>],
    tag: Tag,
) -> Result<Vec<Vec<u64>>, ServiceError> {
    let total = reduce_sum(cluster, 0, values, tag)?;
    let copies = broadcast(cluster, 0, encode_u64s(&total), Tag(tag.0 ^ 0x8000_0000))?;
    Ok(copies.into_iter().map(|b| decode_u64s(&b)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBackend;
    use otm_base::MatchConfig;

    fn cluster(n: usize, backend: ClusterBackend) -> Cluster {
        Cluster::new(
            n,
            backend,
            MatchConfig::default()
                .with_max_receives(256)
                .with_max_unexpected(256)
                .with_bins(64),
        )
    }

    #[test]
    fn binomial_tree_is_well_formed_for_any_size() {
        for n in 2..20usize {
            for root in [0, 1, n - 1] {
                let mut reached = vec![false; n];
                reached[root] = true;
                // Walk the tree: every node must be some node's child
                // exactly once, and parent/children must be consistent.
                for rank in 0..n {
                    for child in children(rank, root, n) {
                        assert!(!reached[child], "n={n} root={root}: {child} reached twice");
                        reached[child] = true;
                        assert_eq!(parent(child, root, n), Some(rank));
                    }
                }
                assert!(
                    reached.iter().all(|&r| r),
                    "n={n} root={root}: unreached nodes"
                );
            }
        }
    }

    #[test]
    fn broadcast_reaches_every_node_offloaded() {
        let mut c = cluster(7, ClusterBackend::Offloaded);
        let payload = b"collectives need matching".to_vec();
        let copies = broadcast(&mut c, 2, payload.clone(), Tag(5)).unwrap();
        assert_eq!(copies.len(), 7);
        for copy in copies {
            assert_eq!(copy, payload);
        }
    }

    #[test]
    fn broadcast_works_on_cpu_backend_identically() {
        let payload = vec![9u8; 64];
        let mut a = cluster(6, ClusterBackend::Offloaded);
        let mut b = cluster(6, ClusterBackend::MpiCpu);
        let ca = broadcast(&mut a, 0, payload.clone(), Tag(1)).unwrap();
        let cb = broadcast(&mut b, 0, payload, Tag(1)).unwrap();
        assert_eq!(ca, cb);
    }

    #[test]
    fn reduce_sums_every_contribution() {
        let n = 5usize;
        let mut c = cluster(n, ClusterBackend::Offloaded);
        let values: Vec<Vec<u64>> = (0..n)
            .map(|r| vec![r as u64, 10 + r as u64, 100 * r as u64])
            .collect();
        let total = reduce_sum(&mut c, 0, &values, Tag(3)).unwrap();
        assert_eq!(total, vec![10, 60, 1000]);
    }

    #[test]
    fn allreduce_gives_everyone_the_same_sum() {
        let n = 8usize;
        let mut c = cluster(n, ClusterBackend::Offloaded);
        let values: Vec<Vec<u64>> = (0..n).map(|r| vec![1u64 << r]).collect();
        let results = allreduce_sum(&mut c, &values, Tag(7)).unwrap();
        for r in results {
            assert_eq!(r, vec![(1u64 << n) - 1]);
        }
    }

    #[test]
    fn large_payload_broadcast_uses_rendezvous() {
        // Payload above the eager threshold forces the rendezvous path on
        // every tree hop.
        let mut c = cluster(4, ClusterBackend::Offloaded);
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let copies = broadcast(&mut c, 0, payload.clone(), Tag(2)).unwrap();
        for copy in copies {
            assert_eq!(copy, payload);
        }
    }
}
