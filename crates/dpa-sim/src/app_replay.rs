//! End-to-end application replay: a Table II trace driven through the full
//! production path.
//!
//! The trace analyzer's [`otm_trace::replay::replay_engine`] feeds matchers
//! *directly* — posts and arrivals go straight into the engine with no wire
//! in between. This module closes the gap the paper's Fig. 6/7 evaluation
//! actually measures: every send of the application trace becomes a wire
//! packet that crosses a per-source-rank queue pair under the
//! [`crate::ReliableSender`] reliability protocol (either
//! [`ReliabilityMode`]), lands in the destination's [`RecvNic`] (optionally
//! behind a seeded [`FaultPlan`]), is staged into bounce buffers, submitted
//! through the service's command queue into the sharded engine's
//! per-communicator rings, cross-communicator packed, matched, and carried
//! to completion by the eager or rendezvous/RDMA-READ protocol of §IV-B.
//!
//! Like the engine-direct replay, destinations are replayed one at a time —
//! rank-major, each with a fresh NIC + engine + service — because matching
//! state is private to a rank. Memory stays flat for thousand-rank traces
//! while every arrival still crosses the complete stack.
//!
//! ## The ordering contract
//!
//! Matched-pairs equivalence against the engine-direct replay is only
//! provable if the engine observes posts and arrivals in trace order even
//! when the wire reorders, drops and duplicates packets. Two mechanisms
//! provide it:
//!
//! * every arrival is stamped with a global per-destination sequence number
//!   ([`crate::rdma::WirePacket::with_gseq`]) — its position in the
//!   destination's arrival stream — and the NIC's cross-QP **total-order
//!   gate** ([`RecvNic::enable_total_order`]) releases accepted packets to
//!   the completion queue strictly in that order;
//! * a post that follows in-flight arrivals waits for them to settle
//!   (senders fully acked, gate empty) before it is submitted, so the
//!   single submission stream interleaves posts and arrivals exactly as the
//!   trace does. Consecutive arrivals never wait on each other — bursts
//!   stay concurrent and keep the packing scheduler busy.
//!
//! The correctness oracle is [`engine_direct_pairs`]: the same trace pushed
//! straight into a fresh [`otm::SequentialOtm`] per destination. The pair
//! sets must be identical — clean wire or hostile, go-back-N or selective
//! repeat.

use crate::bounce::BouncePool;
use crate::nic::RecvNic;
use crate::rdma::{connected_pair, eager_packet, rendezvous_packet, RdmaDomain};
use crate::reliable::ReliableSender;
use crate::service::{CompletedReceive, MatchingService, ServiceError};
use mpi_matching::{BlockDelivery, MatchingBackend, MsgHandle, PostResult, RecvHandle};
use otm::OtmEngine;
use otm_base::{Envelope, FaultPlan, MatchConfig, ReceivePattern, ReliabilityMode};
use otm_trace::model::{AppTrace, MpiOp, TimedOp};
use std::collections::BTreeMap;

/// Ceiling on the simulated payload size a trace `count` maps to.
pub const MAX_PAYLOAD_BYTES: usize = 4096;

/// Payload bytes reserved for the message identity (a little-endian arrival
/// index), used by the matched-pairs oracle.
const ID_BYTES: usize = 8;

/// Parameters of an end-to-end application replay.
#[derive(Debug, Clone)]
pub struct AppReplayConfig {
    /// Reliability protocol the per-source senders and the NIC run.
    pub mode: ReliabilityMode,
    /// Seeded wire-fault plan installed on every destination NIC. Faults
    /// hit only sequenced packets, i.e. every replayed arrival.
    pub faults: Option<FaultPlan>,
    /// Bins per hash-table index of the engine (and the oracle).
    pub bins: usize,
    /// Largest payload (bytes) sent eagerly; larger messages take the
    /// rendezvous RTS + RDMA-READ path.
    pub eager_max: usize,
    /// Bytes of a rendezvous payload piggybacked on the RTS.
    pub piggyback: usize,
    /// When set (and the `metrics` feature is on), the destination with the
    /// most arrivals gets a queue-depth series sampler at this cadence (in
    /// service polls); the result lands in
    /// [`AppReplayReport::series_json`].
    pub series_cadence: Option<u64>,
}

impl Default for AppReplayConfig {
    fn default() -> Self {
        AppReplayConfig {
            mode: ReliabilityMode::SelectiveRepeat,
            faults: None,
            bins: 128,
            eager_max: 192,
            piggyback: 64,
            series_cadence: None,
        }
    }
}

impl AppReplayConfig {
    /// Selects the reliability mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ReliabilityMode) -> Self {
        self.mode = mode;
        self
    }

    /// Installs a wire-fault plan on every destination NIC.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the engine (and oracle) bin count.
    #[must_use]
    pub fn with_bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// Samples the busiest destination's queue depths at this cadence.
    #[must_use]
    pub fn with_series_cadence(mut self, cadence: u64) -> Self {
        self.series_cadence = Some(cadence);
        self
    }
}

/// A matched (receive, message) pair, locally numbered per destination:
/// `recv` is the receive's position in the destination's post stream and
/// `msg` the message's position in its arrival stream.
pub type MatchedPair = (u32, u64, u64);

/// Aggregated counters of one end-to-end replay (all destinations merged).
#[derive(Debug, Clone, Default)]
pub struct AppReplayReport {
    /// Application name (Table II).
    pub name: String,
    /// Number of processes in the trace.
    pub processes: usize,
    /// Reliability-mode label (`go-back-n` / `selective-repeat`).
    pub mode: String,
    /// Whether a wire-fault plan was installed.
    pub faulty: bool,
    /// Receives posted across all destinations.
    pub posts: u64,
    /// Messages driven end to end (posts' counterpart: trace sends).
    pub messages: u64,
    /// Messages that took the eager path.
    pub eager_messages: u64,
    /// Messages that took the rendezvous RTS + RDMA-READ path.
    pub rendezvous_messages: u64,
    /// Matched pairs completed by the service.
    pub completed: u64,
    /// Packets the fault layer dropped.
    pub wire_drops: u64,
    /// Packets the fault layer duplicated.
    pub wire_duplicates: u64,
    /// Packets the fault layer reordered.
    pub wire_reorders: u64,
    /// Packets the fault layer delayed.
    pub wire_delays: u64,
    /// Packets the senders retransmitted.
    pub retransmits: u64,
    /// SACK-triggered fast retransmits (subset of `retransmits`).
    pub fast_retransmits: u64,
    /// Timeout or fast-retransmit bursts.
    pub resend_events: u64,
    /// Cumulative acks the senders consumed.
    pub acks_received: u64,
    /// Polls the senders spent in exponential backoff.
    pub backoff_polls: u64,
    /// Retransmitted packets per dropped packet (0 when nothing dropped).
    pub retransmit_amplification: f64,
    /// Duplicates the NICs discarded.
    pub rx_duplicates: u64,
    /// Out-of-order packets go-back-N NICs discarded.
    pub rx_gaps: u64,
    /// Out-of-order packets selective-repeat NICs staged.
    pub rx_staged_out_of_order: u64,
    /// Acks the NICs sent.
    pub acks_sent: u64,
    /// Packets parked in the cross-QP total-order gate.
    pub gate_parked: u64,
    /// Packets the gate released to completion queues.
    pub gate_released: u64,
    /// No-conflict resolutions (0 without the `metrics` feature).
    pub path_nc: u64,
    /// Wildcard fast-path resolutions (0 without the `metrics` feature).
    pub path_wc_fp: u64,
    /// Wildcard slow-path resolutions (0 without the `metrics` feature).
    pub path_wc_sp: u64,
    /// Destinations that migrated to the software-fallback matcher.
    pub fallbacks: u64,
    /// Wall-clock seconds for the whole replay.
    pub elapsed_secs: f64,
    /// End-to-end message rate (`messages / elapsed_secs`).
    pub msgs_per_sec: f64,
    /// Queue-depth time series of the busiest destination, as JSON, when
    /// [`AppReplayConfig::series_cadence`] asked for one (always `None`
    /// without the `metrics` feature).
    pub series_json: Option<String>,
}

impl AppReplayReport {
    /// Renders the report as one JSON object (hand-rolled, like the other
    /// artifact rows in this workspace — dpa-sim does not link serde_json).
    pub fn to_json(&self) -> String {
        let series = match &self.series_json {
            Some(s) => s.clone(),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"app\":\"{}\",\"processes\":{},\"mode\":\"{}\",\"faulty\":{},",
                "\"posts\":{},\"messages\":{},\"eager_messages\":{},",
                "\"rendezvous_messages\":{},\"completed\":{},",
                "\"wire_drops\":{},\"wire_duplicates\":{},\"wire_reorders\":{},",
                "\"wire_delays\":{},\"retransmits\":{},\"fast_retransmits\":{},",
                "\"resend_events\":{},\"acks_received\":{},\"backoff_polls\":{},",
                "\"retransmit_amplification\":{:.3},\"rx_duplicates\":{},",
                "\"rx_gaps\":{},\"rx_staged_out_of_order\":{},\"acks_sent\":{},",
                "\"gate_parked\":{},\"gate_released\":{},",
                "\"path_nc\":{},\"path_wc_fp\":{},\"path_wc_sp\":{},",
                "\"fallbacks\":{},\"elapsed_secs\":{:.6},\"msgs_per_sec\":{:.1},",
                "\"series\":{}}}"
            ),
            self.name,
            self.processes,
            self.mode,
            self.faulty,
            self.posts,
            self.messages,
            self.eager_messages,
            self.rendezvous_messages,
            self.completed,
            self.wire_drops,
            self.wire_duplicates,
            self.wire_reorders,
            self.wire_delays,
            self.retransmits,
            self.fast_retransmits,
            self.resend_events,
            self.acks_received,
            self.backoff_polls,
            self.retransmit_amplification,
            self.rx_duplicates,
            self.rx_gaps,
            self.rx_staged_out_of_order,
            self.acks_sent,
            self.gate_parked,
            self.gate_released,
            self.path_nc,
            self.path_wc_fp,
            self.path_wc_sp,
            self.fallbacks,
            self.elapsed_secs,
            self.msgs_per_sec,
            series,
        )
    }
}

/// Everything one end-to-end replay produced.
#[derive(Debug, Clone)]
pub struct AppReplayOutcome {
    /// Aggregated counters.
    pub report: AppReplayReport,
    /// Every matched pair, sorted — directly comparable against
    /// [`engine_direct_pairs`].
    pub matched_pairs: Vec<MatchedPair>,
}

/// One destination's event stream, in global trace order.
enum Ev {
    Post(ReceivePattern),
    Arrive {
        src: otm_base::Rank,
        env: Envelope,
        bytes: usize,
    },
}

/// Maps a trace `count` (elements) to a simulated payload size in bytes —
/// at least [`ID_BYTES`] so the payload can carry the arrival index, capped
/// at [`MAX_PAYLOAD_BYTES`].
fn payload_len(count: u64) -> usize {
    usize::try_from(count)
        .unwrap_or(MAX_PAYLOAD_BYTES)
        .clamp(ID_BYTES, MAX_PAYLOAD_BYTES)
}

/// Builds the payload for the arrival at position `idx`: the index in the
/// first eight bytes (the oracle identity), an index-derived fill after.
fn payload_for(idx: u64, len: usize) -> Vec<u8> {
    let mut p = vec![idx as u8; len];
    p[..ID_BYTES].copy_from_slice(&idx.to_le_bytes());
    p
}

/// Recovers the arrival index from a completed payload.
fn payload_id(data: &[u8]) -> u64 {
    let mut id = [0u8; ID_BYTES];
    id.copy_from_slice(&data[..ID_BYTES]);
    u64::from_le_bytes(id)
}

/// Splits the trace into per-destination event streams: each destination's
/// own receive posts plus the sends targeting it, in global time order
/// (collectives and one-sided ops are ignored, as in the analyzer replays).
fn per_destination_events(trace: &AppTrace) -> Vec<Vec<Ev>> {
    let n = trace
        .ranks
        .iter()
        .map(|r| r.rank.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut per_rank: Vec<Vec<Ev>> = (0..n).map(|_| Vec::new()).collect();
    for (rank, TimedOp { op, .. }) in trace.merged_ops() {
        match op {
            MpiOp::Irecv { src, tag, comm, .. } | MpiOp::Recv { src, tag, comm, .. } => {
                per_rank[rank.0 as usize].push(Ev::Post(ReceivePattern { src, tag, comm }));
            }
            MpiOp::Isend {
                dest,
                tag,
                comm,
                count,
                ..
            }
            | MpiOp::Send {
                dest,
                tag,
                comm,
                count,
            } if (dest.0 as usize) < n => {
                per_rank[dest.0 as usize].push(Ev::Arrive {
                    src: rank,
                    env: Envelope {
                        src: rank,
                        tag,
                        comm,
                    },
                    bytes: payload_len(count),
                });
            }
            _ => {}
        }
    }
    per_rank
}

/// The matched-pairs oracle: the same per-destination event streams pushed
/// straight into a fresh [`otm::SequentialOtm`] each, no wire, no service.
/// Receive and message handles are numbered per destination exactly as the
/// end-to-end replay numbers them, so the sorted pair vectors of the two
/// paths are directly comparable.
///
/// ```
/// use dpa_sim::app_replay::{engine_direct_pairs, replay_app, AppReplayConfig};
/// use otm_trace::model::{AppTrace, MpiOp, RankTrace, TimedOp};
/// use otm_base::envelope::{SourceSel, TagSel};
/// use otm_base::{CommId, Rank, Tag};
///
/// // Rank 1 posts a wildcard receive; rank 0 sends the matching message.
/// let trace = AppTrace {
///     name: "doc".into(),
///     ranks: vec![
///         RankTrace {
///             rank: Rank(0),
///             ops: vec![TimedOp {
///                 time: 2.0,
///                 op: MpiOp::Send { dest: Rank(1), tag: Tag(7), comm: CommId::WORLD, count: 64 },
///             }],
///         },
///         RankTrace {
///             rank: Rank(1),
///             ops: vec![TimedOp {
///                 time: 1.0,
///                 op: MpiOp::Recv { src: SourceSel::Any, tag: TagSel::Tag(Tag(7)), comm: CommId::WORLD, count: 64 },
///             }],
///         },
///     ],
/// };
/// let end_to_end = replay_app(&trace, &AppReplayConfig::default()).unwrap();
/// assert_eq!(end_to_end.matched_pairs, engine_direct_pairs(&trace, 128));
/// ```
pub fn engine_direct_pairs(trace: &AppTrace, bins: usize) -> Vec<MatchedPair> {
    let mut pairs = Vec::new();
    for (dest, events) in per_destination_events(trace).iter().enumerate() {
        if events.is_empty() {
            continue;
        }
        let config = MatchConfig::default()
            .with_bins(bins)
            .with_block_threads(1)
            .with_max_receives(1 << 14)
            .with_max_unexpected(1 << 14);
        let mut engine: Box<dyn MatchingBackend> =
            Box::new(otm::SequentialOtm::new(config).expect("oracle replay configuration"));
        let (mut next_recv, mut next_msg) = (0u64, 0u64);
        for ev in events {
            match ev {
                Ev::Post(pattern) => {
                    let handle = RecvHandle(next_recv);
                    next_recv += 1;
                    if let PostResult::Matched(msg) = engine
                        .post(*pattern, handle)
                        .expect("oracle within engine capacity")
                    {
                        pairs.push((dest as u32, handle.0, msg.0));
                    }
                }
                Ev::Arrive { env, .. } => {
                    let msg = MsgHandle(next_msg);
                    next_msg += 1;
                    for d in engine
                        .arrive_block(&[(*env, msg)])
                        .expect("oracle within engine capacity")
                    {
                        if let BlockDelivery::Matched { msg, recv } = d {
                            pairs.push((dest as u32, recv.0, msg.0));
                        }
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

/// One destination's live transport endpoints: a reliable sender per source
/// rank that sends to it.
struct Senders {
    by_src: BTreeMap<u32, ReliableSender>,
}

impl Senders {
    /// Polls every sender once (ack intake + retransmit timers) and applies
    /// the service's controller window hint, if any.
    fn poll_all(&mut self, svc: &MatchingService) -> Result<(), ServiceError> {
        #[cfg(feature = "metrics")]
        let hint = svc.reliability_window_hint();
        #[cfg(not(feature = "metrics"))]
        let hint: Option<usize> = None;
        let _ = svc;
        for s in self.by_src.values_mut() {
            if let Some(h) = hint {
                s.set_window_limit(h);
            }
            let stray = s.poll().map_err(ServiceError::Reliability)?;
            debug_assert!(stray.is_empty(), "nothing sends app data back");
        }
        Ok(())
    }

    fn all_acked(&self) -> bool {
        self.by_src.values().all(|s| s.unacked() == 0)
    }
}

/// Collects the service's completions into the pair vector.
fn collect(dest: u32, done: Vec<CompletedReceive>, pairs: &mut Vec<MatchedPair>) {
    for c in done {
        pairs.push((dest, c.recv.0, payload_id(&c.data)));
    }
}

/// Runs the service and all senders until every arrival sent so far has
/// been accepted (senders fully acked) *and* released by the total-order
/// gate — the point at which the engine's submission stream provably
/// contains every prior arrival, so a post may follow.
fn settle(
    dest: u32,
    svc: &mut MatchingService,
    senders: &mut Senders,
    pairs: &mut Vec<MatchedPair>,
) -> Result<(), ServiceError> {
    loop {
        svc.progress()?;
        collect(dest, svc.take_completed(), pairs);
        senders.poll_all(svc)?;
        if senders.all_acked() && svc.nic().gate_parked_len() == 0 {
            // One more pass drains anything the final acks released.
            svc.progress()?;
            collect(dest, svc.take_completed(), pairs);
            return Ok(());
        }
    }
}

/// Replays one application trace end to end through the full production
/// path — per-source-rank queue pairs under the reliability protocol, the
/// receive NIC's staging and total-order gate, the service's command queue,
/// the sharded engine behind per-communicator submission rings, and the
/// eager/rendezvous payload protocol — one destination rank at a time.
///
/// The returned [`AppReplayOutcome::matched_pairs`] must equal
/// [`engine_direct_pairs`] on the same trace for any [`AppReplayConfig`]:
/// the wire, the faults and the reliability mode may change *how often*
/// packets cross, never *what matches*.
pub fn replay_app(
    trace: &AppTrace,
    cfg: &AppReplayConfig,
) -> Result<AppReplayOutcome, ServiceError> {
    let per_rank = per_destination_events(trace);
    let mut report = AppReplayReport {
        name: trace.name.clone(),
        processes: trace.processes(),
        mode: cfg.mode.label().to_string(),
        faulty: cfg.faults.is_some(),
        ..AppReplayReport::default()
    };
    let mut pairs: Vec<MatchedPair> = Vec::new();
    #[cfg(feature = "metrics")]
    let busiest = per_rank
        .iter()
        .enumerate()
        .max_by_key(|(_, evs)| {
            evs.iter()
                .filter(|e| matches!(e, Ev::Arrive { .. }))
                .count()
        })
        .map(|(d, _)| d);
    let start = std::time::Instant::now();

    for (dest, events) in per_rank.iter().enumerate() {
        if events.is_empty() {
            continue;
        }
        let posts = events.iter().filter(|e| matches!(e, Ev::Post(_))).count();
        let arrivals = events.len() - posts;
        report.posts += posts as u64;
        report.messages += arrivals as u64;

        // One queue pair (and one reliable sender) per source rank that
        // sends to this destination, in deterministic rank order.
        let mut sources: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                Ev::Arrive { src, .. } => Some(src.0),
                Ev::Post(_) => None,
            })
            .collect();
        sources.sort_unstable();
        sources.dedup();

        let buf = cfg.eager_max.max(cfg.piggyback).max(ID_BYTES);
        let pool = BouncePool::new(arrivals.clamp(64, 8192), buf);
        let mut senders = Senders {
            by_src: BTreeMap::new(),
        };
        let mut nic = match sources.split_first() {
            Some((first, rest)) => {
                let (tx, rx) = connected_pair();
                let mut nic = RecvNic::new(rx, pool);
                senders
                    .by_src
                    .insert(*first, ReliableSender::new(tx).with_mode(cfg.mode));
                for s in rest {
                    let (tx, rx) = connected_pair();
                    nic.add_qp(rx);
                    senders
                        .by_src
                        .insert(*s, ReliableSender::new(tx).with_mode(cfg.mode));
                }
                nic
            }
            // Post-only destination: the NIC still needs an endpoint.
            None => RecvNic::new(connected_pair().1, pool),
        };
        nic.set_reliability_mode(cfg.mode);
        nic.enable_total_order();
        if let Some(plan) = &cfg.faults {
            nic.set_faults(plan.clone());
        }

        let config = MatchConfig::default()
            .with_bins(cfg.bins)
            .with_max_receives(posts.max(1))
            .with_max_unexpected(arrivals.max(1));
        let engine = OtmEngine::new(config).map_err(ServiceError::Match)?;
        let domain = RdmaDomain::new();
        let mut svc = MatchingService::with_backend(nic, domain.clone(), Box::new(engine));
        svc.enable_command_queue()
            .expect("the offloaded engine has a command queue");
        #[cfg(feature = "metrics")]
        {
            svc.attach_controller(crate::control::FeedbackController::with_defaults());
            if let (Some(cadence), Some(b)) = (cfg.series_cadence, busiest) {
                if b == dest {
                    svc.attach_series(otm_metrics::SeriesRecorder::new(cadence.max(1)));
                }
            }
        }
        for s in senders.by_src.values_mut() {
            s.attach_metrics(svc.metrics().clone());
        }

        // ---- the event loop: posts and arrivals in trace order ----------
        let mut gseq = 0u64;
        let mut dirty = false;
        for ev in events {
            match ev {
                Ev::Post(pattern) => {
                    if dirty {
                        settle(dest as u32, &mut svc, &mut senders, &mut pairs)?;
                        dirty = false;
                    }
                    svc.post_recv_queued(*pattern)?;
                }
                Ev::Arrive { src, env, bytes } => {
                    // Window backpressure: progress the whole path (all
                    // senders — a parked packet may wait on another QP's
                    // retransmission) until this sender has room.
                    while !senders.by_src[&src.0].can_send() {
                        svc.progress()?;
                        collect(dest as u32, svc.take_completed(), &mut pairs);
                        senders.poll_all(&svc)?;
                    }
                    let payload = payload_for(gseq, *bytes);
                    let pkt = if *bytes <= cfg.eager_max {
                        report.eager_messages += 1;
                        eager_packet(*env, payload)
                    } else {
                        report.rendezvous_messages += 1;
                        // The service RDMA-READs the tail and deregisters
                        // the region once the payload is delivered.
                        rendezvous_packet(&domain, *env, payload, cfg.piggyback).0
                    };
                    senders
                        .by_src
                        .get_mut(&src.0)
                        .expect("sender exists for every arrival source")
                        .send(pkt.with_gseq(gseq))
                        .map_err(ServiceError::Reliability)?;
                    gseq += 1;
                    dirty = true;
                }
            }
        }
        settle(dest as u32, &mut svc, &mut senders, &mut pairs)?;

        // ---- per-destination accounting ---------------------------------
        #[cfg(feature = "metrics")]
        {
            svc.force_series_sample();
            if let Some(series) = svc.take_series() {
                report.series_json = Some(series.to_json());
            }
            let snap = svc.observability_snapshot();
            let path = |p: &str| {
                snap.counters
                    .get(&format!("otm_resolutions_total{{path=\"{p}\"}}"))
                    .copied()
                    .unwrap_or(0)
            };
            report.path_nc += path("nc");
            report.path_wc_fp += path("wc_fp");
            report.path_wc_sp += path("wc_sp");
        }
        let wire = svc.nic().wire_fault_stats().unwrap_or_default();
        report.wire_drops += wire.drops;
        report.wire_duplicates += wire.duplicates;
        report.wire_reorders += wire.reorders;
        report.wire_delays += wire.delays;
        let rx = svc.nic().rx_stats();
        report.rx_duplicates += rx.duplicates;
        report.rx_gaps += rx.gaps;
        report.rx_staged_out_of_order += rx.staged_out_of_order;
        report.acks_sent += rx.acks_sent;
        report.gate_parked += rx.gate_parked;
        report.gate_released += rx.gate_released;
        for s in senders.by_src.values() {
            let rel = s.stats();
            report.retransmits += rel.retransmits;
            report.fast_retransmits += rel.fast_retransmits;
            report.resend_events += rel.resend_events;
            report.acks_received += rel.acks;
            report.backoff_polls += rel.backoff_polls;
        }
        report.fallbacks += u64::from(svc.fell_back());
    }

    report.elapsed_secs = start.elapsed().as_secs_f64();
    report.msgs_per_sec = report.messages as f64 / report.elapsed_secs.max(f64::EPSILON);
    report.retransmit_amplification = if report.wire_drops > 0 {
        report.retransmits as f64 / report.wire_drops as f64
    } else {
        0.0
    };
    pairs.sort_unstable();
    report.completed = pairs.len() as u64;
    Ok(AppReplayOutcome {
        report,
        matched_pairs: pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use otm_base::envelope::{SourceSel, TagSel};
    use otm_base::{CommId, Rank, Tag};
    use otm_trace::model::{RankTrace, ReqId};

    /// Three ranks into one: wildcard receives, an unexpected arrival, a
    /// rendezvous-sized payload, and a post-only tail receive.
    fn cross_traffic_trace() -> AppTrace {
        let send = |t: f64, dest: u32, tag: u32, count: u64| TimedOp {
            time: t,
            op: MpiOp::Send {
                dest: Rank(dest),
                tag: Tag(tag),
                comm: CommId::WORLD,
                count,
            },
        };
        let recv = |t: f64, src: SourceSel, tag: TagSel, count: u64| TimedOp {
            time: t,
            op: MpiOp::Irecv {
                src,
                tag,
                comm: CommId::WORLD,
                count,
                request: ReqId(0),
            },
        };
        AppTrace {
            name: "cross-traffic".into(),
            ranks: vec![
                RankTrace {
                    rank: Rank(0),
                    ops: vec![
                        send(1.0, 2, 5, 16),
                        send(3.0, 2, 6, 1024), // rendezvous-sized
                        send(5.0, 2, 7, 16),   // stays unexpected
                    ],
                },
                RankTrace {
                    rank: Rank(1),
                    ops: vec![send(2.0, 2, 5, 16), send(4.0, 2, 9, 16)],
                },
                RankTrace {
                    rank: Rank(2),
                    ops: vec![
                        recv(0.5, SourceSel::Any, TagSel::Tag(Tag(5)), 16),
                        recv(0.6, SourceSel::Any, TagSel::Tag(Tag(5)), 16),
                        recv(2.5, SourceSel::Rank(Rank(0)), TagSel::Tag(Tag(6)), 1024),
                        recv(3.5, SourceSel::Any, TagSel::Tag(Tag(9)), 16),
                        recv(9.0, SourceSel::Any, TagSel::Tag(Tag(99)), 16), // never matches
                    ],
                },
            ],
        }
    }

    #[test]
    fn clean_wire_replay_matches_the_engine_direct_oracle() {
        let trace = cross_traffic_trace();
        let out = replay_app(&trace, &AppReplayConfig::default()).unwrap();
        assert_eq!(out.matched_pairs, engine_direct_pairs(&trace, 128));
        assert_eq!(out.report.messages, 5);
        assert_eq!(out.report.posts, 5);
        assert_eq!(out.report.completed, 4, "tag 7 stays unexpected");
        assert_eq!(out.report.rendezvous_messages, 1);
        assert_eq!(out.report.eager_messages, 4);
        assert_eq!(out.report.gate_released, 5, "every arrival crossed the gate");
    }

    #[test]
    fn hostile_wire_replay_matches_the_oracle_in_both_modes() {
        let trace = cross_traffic_trace();
        let oracle = engine_direct_pairs(&trace, 128);
        for mode in [ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat] {
            let cfg = AppReplayConfig::default().with_mode(mode).with_faults(
                FaultPlan::new(0xa99)
                    .with_drop_permille(150)
                    .with_duplicate_permille(120)
                    .with_reorder_permille(120)
                    .with_reorder_window(4),
            );
            let out = replay_app(&trace, &cfg).unwrap();
            assert_eq!(out.matched_pairs, oracle, "mode {mode:?}");
        }
    }

    #[test]
    fn report_json_is_one_object_with_the_schema_fields() {
        let trace = cross_traffic_trace();
        let out = replay_app(&trace, &AppReplayConfig::default()).unwrap();
        let json = out.report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"app\":", "\"mode\":", "\"messages\":", "\"completed\":",
            "\"rendezvous_messages\":", "\"retransmit_amplification\":",
            "\"gate_released\":", "\"path_nc\":", "\"series\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn payload_identity_survives_the_clamp() {
        assert_eq!(payload_len(0), ID_BYTES);
        assert_eq!(payload_len(1 << 40), MAX_PAYLOAD_BYTES);
        let p = payload_for(7, 16);
        assert_eq!(p.len(), 16);
        assert_eq!(payload_id(&p), 7);
    }
}
