//! The Fig. 8 message-rate harness.
//!
//! "We run a ping-pong benchmark, where a node sends a sequence of k = 100
//! messages to its peer. Once the peer receives (and matches) all messages
//! in a sequence, it replies with an acknowledgment. We measure the message
//! rate as k divided by the time from when the first message is sent to when
//! the acknowledgment is received. For each run, we repeat the sequence 500
//! times. We test two main scenarios: all posted receives have different
//! source rank and tag combination (no-conflict, NC), or all receives have
//! the same source rank and tag (with-conflict, WC)."
//!
//! The WC scenario is run twice against the offloaded engine: with the fast
//! conflict-resolution path enabled (WC-FP) and disabled (WC-SP).

use crate::bounce::BouncePool;
use crate::memory::DeviceMemory;
use crate::nic::RecvNic;
use crate::rdma::{connected_pair, eager_packet, RdmaDomain};
use crate::service::MatchingService;
use otm_base::{Envelope, MatchConfig, Rank, ReceivePattern, Tag};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Receive/message scenario of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Every receive has a distinct `(src, tag)` combination — the
    /// best case for optimistic matching (receives spread over the bins).
    NoConflict,
    /// Every receive has the same `(src, tag)` — maximal conflict pressure.
    WithConflict,
}

/// Matching backend under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchMode {
    /// Offloaded optimistic matching; `fast_path` selects WC-FP vs WC-SP in
    /// the with-conflict scenario.
    OptimisticDpa {
        /// Enable the fast conflict-resolution path.
        fast_path: bool,
    },
    /// Traditional linked-list matching on the host CPU.
    MpiCpu,
    /// No matching: raw transport ceiling.
    RdmaCpu,
}

impl MatchMode {
    /// The Fig. 8 series label for this mode/scenario combination.
    pub fn label(&self, scenario: Scenario) -> &'static str {
        match (self, scenario) {
            (MatchMode::OptimisticDpa { .. }, Scenario::NoConflict) => "Optimistic-DPA NC",
            (MatchMode::OptimisticDpa { fast_path: true }, Scenario::WithConflict) => {
                "Optimistic-DPA WC-FP"
            }
            (MatchMode::OptimisticDpa { fast_path: false }, Scenario::WithConflict) => {
                "Optimistic-DPA WC-SP"
            }
            (MatchMode::MpiCpu, _) => "MPI-CPU",
            (MatchMode::RdmaCpu, _) => "RDMA-CPU",
        }
    }
}

/// Harness parameters (defaults are the paper's §VI settings).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingPongConfig {
    /// Messages per sequence (paper: 100).
    pub k: usize,
    /// Sequence repetitions (paper: 500).
    pub repeats: usize,
    /// Eager payload bytes (small messages).
    pub payload: usize,
    /// Receive scenario.
    pub scenario: Scenario,
    /// Maximum in-flight receives the engine is configured for
    /// (paper: 1024; hash tables are sized at twice this).
    pub inflight: usize,
    /// Block threads for the offloaded engine (paper: 32).
    pub block_threads: usize,
}

impl Default for PingPongConfig {
    fn default() -> Self {
        PingPongConfig {
            k: 100,
            repeats: 500,
            payload: 8,
            scenario: Scenario::NoConflict,
            inflight: 1024,
            block_threads: 32,
        }
    }
}

/// Result of one harness run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingPongResult {
    /// Series label ("Optimistic-DPA NC", "MPI-CPU", ...).
    pub label: String,
    /// Messages matched per second.
    pub msgs_per_sec: f64,
    /// Total messages exchanged.
    pub total_messages: u64,
    /// Total measured time (sum of per-sequence times).
    pub elapsed: Duration,
    /// Engine statistics for offloaded runs (verifies which path ran).
    pub engine_stats: Option<otm::StatsSnapshot>,
    /// Combined observability snapshot (service queue gauges + engine
    /// histograms and path counters) rendered as a JSON string; `None`
    /// when the `metrics` feature is disabled or no metrics were captured.
    #[serde(default)]
    pub observability_json: Option<String>,
}

/// The receive pattern lane `i` of a sequence posts under the scenario.
fn pattern_for(scenario: Scenario, i: usize) -> ReceivePattern {
    match scenario {
        Scenario::NoConflict => ReceivePattern::exact(Rank(0), Tag(i as u32)),
        Scenario::WithConflict => ReceivePattern::exact(Rank(0), Tag(0)),
    }
}

/// The envelope of message `i` of a sequence under the scenario.
fn envelope_for(scenario: Scenario, i: usize) -> Envelope {
    match scenario {
        Scenario::NoConflict => Envelope::world(Rank(0), Tag(i as u32)),
        Scenario::WithConflict => Envelope::world(Rank(0), Tag(0)),
    }
}

/// Runs the ping-pong benchmark and returns the measured message rate.
pub fn run_pingpong(mode: MatchMode, cfg: &PingPongConfig) -> PingPongResult {
    assert!(cfg.k > 0 && cfg.repeats > 0);
    let (sender_qp, receiver_qp) = connected_pair();
    let domain = RdmaDomain::new();
    // The CQ/bounce pool must absorb a full sequence burst.
    let nic = RecvNic::new(receiver_qp, BouncePool::new(cfg.k * 2, cfg.payload.max(64)));
    let mut service = match mode {
        MatchMode::OptimisticDpa { fast_path } => {
            let config = MatchConfig::default()
                .with_max_receives(cfg.inflight)
                .with_max_unexpected(cfg.inflight)
                .with_bins(2 * cfg.inflight)
                .with_block_threads(cfg.block_threads)
                .with_fast_path(fast_path);
            let mut budget = DeviceMemory::bluefield3_l3();
            MatchingService::offloaded(nic, domain.clone(), config, &mut budget)
                .expect("prototype configuration fits the DPA budget")
        }
        MatchMode::MpiCpu => MatchingService::mpi_cpu(nic, domain.clone()),
        MatchMode::RdmaCpu => MatchingService::rdma_cpu(nic, domain.clone()),
    };

    let scenario = cfg.scenario;
    let k = cfg.k;
    let repeats = cfg.repeats;
    let payload = vec![0u8; cfg.payload];
    let ack_env = Envelope::world(Rank(1), Tag(u32::MAX));

    let mut elapsed = Duration::ZERO;
    let mut engine_stats = None;
    let mut observability_json = None;
    std::thread::scope(|scope| {
        // Receiver node: post the sequence's receives, signal readiness,
        // match the burst, acknowledge.
        scope.spawn(|| {
            for _ in 0..repeats {
                let mut posted = 0usize;
                if !matches!(mode, MatchMode::RdmaCpu) {
                    for i in 0..k {
                        service
                            .post_recv(pattern_for(scenario, i))
                            .expect("post_recv");
                        posted += 1;
                    }
                }
                let _ = posted;
                // Ready: the sender may fire the sequence.
                service
                    .nic()
                    .qp()
                    .send(eager_packet(ack_env, Vec::new()))
                    .expect("ready");
                let mut done = 0usize;
                while done < k {
                    done += service.progress().expect("progress");
                    if done < k {
                        // Let the sender run: the simulation host may have
                        // far fewer cores than a real two-node setup.
                        std::thread::yield_now();
                    }
                }
                service.take_completed();
                // Acknowledge the completed sequence.
                service
                    .nic()
                    .qp()
                    .send(eager_packet(ack_env, Vec::new()))
                    .expect("ack");
            }
            engine_stats = service.engine_stats();
            observability_json = service.observability_json();
        });

        // Sender node (measuring side).
        for _ in 0..repeats {
            sender_qp.recv().expect("ready"); // receiver is armed
            let start = Instant::now();
            for i in 0..k {
                sender_qp
                    .send(eager_packet(envelope_for(scenario, i), payload.clone()))
                    .expect("send");
            }
            sender_qp.recv().expect("ack");
            elapsed += start.elapsed();
        }
    });

    let total_messages = (k * repeats) as u64;
    PingPongResult {
        label: mode.label(scenario).to_string(),
        msgs_per_sec: total_messages as f64 / elapsed.as_secs_f64(),
        total_messages,
        elapsed,
        engine_stats,
        observability_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scenario: Scenario) -> PingPongConfig {
        PingPongConfig {
            k: 32,
            repeats: 5,
            scenario,
            block_threads: 8,
            ..Default::default()
        }
    }

    #[test]
    fn labels_cover_all_figure_8_series() {
        assert_eq!(
            MatchMode::OptimisticDpa { fast_path: true }.label(Scenario::NoConflict),
            "Optimistic-DPA NC"
        );
        assert_eq!(
            MatchMode::OptimisticDpa { fast_path: true }.label(Scenario::WithConflict),
            "Optimistic-DPA WC-FP"
        );
        assert_eq!(
            MatchMode::OptimisticDpa { fast_path: false }.label(Scenario::WithConflict),
            "Optimistic-DPA WC-SP"
        );
        assert_eq!(MatchMode::MpiCpu.label(Scenario::NoConflict), "MPI-CPU");
        assert_eq!(MatchMode::RdmaCpu.label(Scenario::NoConflict), "RDMA-CPU");
    }

    #[test]
    fn all_modes_complete_a_short_run() {
        for mode in [
            MatchMode::OptimisticDpa { fast_path: true },
            MatchMode::MpiCpu,
            MatchMode::RdmaCpu,
        ] {
            let r = run_pingpong(mode, &quick(Scenario::NoConflict));
            assert_eq!(r.total_messages, 32 * 5);
            assert!(r.msgs_per_sec > 0.0, "{}: rate must be positive", r.label);
        }
    }

    #[test]
    fn wc_runs_complete_with_both_resolution_paths() {
        for fast_path in [true, false] {
            let r = run_pingpong(
                MatchMode::OptimisticDpa { fast_path },
                &quick(Scenario::WithConflict),
            );
            assert_eq!(r.total_messages, 32 * 5);
            let stats = r.engine_stats.expect("offloaded run reports stats");
            assert_eq!(stats.matched, 32 * 5, "every message must match: {stats:?}");
            if !fast_path {
                assert_eq!(stats.fast_path, 0, "WC-SP must never take the fast path");
            }
        }
    }

    #[test]
    fn nc_runs_mostly_avoid_conflicts() {
        let r = run_pingpong(
            MatchMode::OptimisticDpa { fast_path: true },
            &quick(Scenario::NoConflict),
        );
        let stats = r.engine_stats.unwrap();
        assert_eq!(stats.unexpected, 0, "receives are pre-posted: {stats:?}");
        assert_eq!(
            stats.direct_conflicts, 0,
            "distinct (src, tag) receives cannot conflict: {stats:?}"
        );
    }
}
