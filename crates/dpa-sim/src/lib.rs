//! A host-side simulator of an on-path SmartNIC data-path accelerator —
//! the substrate on which the paper deploys Optimistic Tag Matching (§IV).
//!
//! No BlueField-3 hardware or DOCA SDK is available to this reproduction,
//! so the DPA environment is modelled in-process (see DESIGN.md §1 for the
//! substitution argument):
//!
//! * [`rdma`] — an in-process RDMA transport: connected queue pairs carry
//!   send/receive messages, memory regions are registered under rkeys, and
//!   RDMA READ pulls registered bytes (the rendezvous data path);
//! * [`bounce`] — bounce buffers in NIC memory, where incoming messages are
//!   staged before matching decides the user buffer (§IV-A);
//! * [`memory`] — the device-memory budget; allocation failure triggers
//!   fallback to software tag matching (§IV-E);
//! * [`nic`] — the receive-side NIC engine: RDMA receive completions are
//!   staged into bounce buffers and exposed through a completion queue,
//!   with a mode-selected reliability acceptance check (selective repeat
//!   with a bounded out-of-order staging buffer, or go-back-N discards)
//!   for sequenced traffic;
//! * [`fault`] — the deterministic fault-injection layer: a seeded
//!   [`otm_base::FaultPlan`] drops, duplicates, reorders and delays wire
//!   packets and injects transient backend failures and worker stalls;
//! * [`reliable`] — the sender half of the reliability protocol: sequence
//!   numbers, cumulative acks with SACK blocks, selective-repeat or
//!   go-back-N retransmission with an RTT-tracking timeout, adaptive
//!   window, exponential backoff and a bounded retry budget;
//! * [`control`] — the feedback controller: observes registry deltas each
//!   service tick and actuates reliability/drain/packing knobs, every
//!   change recorded as a `knob_changed` span;
//! * [`obs`] — feature-gated observability: queue-depth gauges and
//!   NIC-memory pressure counters for the matching service, plus the
//!   fault/reliability counters and backoff histogram;
//! * [`service`] — the matching service: the offloaded optimistic engine
//!   (blocks of N completions matched in parallel), the on-CPU traditional
//!   matcher (MPI-CPU baseline), or no matching at all (RDMA-CPU ceiling),
//!   each driving the eager/rendezvous protocol handling of §IV-B;
//! * [`pingpong`] — the Fig. 8 message-rate harness: k-message sequences,
//!   acknowledged per sequence, with no-conflict and with-conflict receive
//!   scenarios;
//! * [`matchd`] — the long-lived multi-tenant matching server: tenant
//!   sessions with bounded ingress and explicit admission control, a
//!   deficit-round-robin fair drain over one shared engine, and a
//!   deterministic tick loop with live Prometheus exposition;
//! * [`app_replay`] — the end-to-end application replay driver: a Table II
//!   trace becomes sequenced wire packets over per-source-rank queue pairs,
//!   cross-QP ordered by the NIC's total-order gate, and is matched by the
//!   full service path, with the engine-direct replay as the matched-pairs
//!   oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app_replay;
pub mod bounce;
pub mod cluster;
pub mod collectives;
#[cfg(feature = "metrics")]
pub mod control;
pub mod fault;
pub mod matchd;
pub mod memory;
pub mod nic;
pub mod obs;
pub mod pingpong;
pub mod rdma;
pub mod reliable;
pub mod service;

pub use app_replay::{
    engine_direct_pairs, replay_app, AppReplayConfig, AppReplayOutcome, AppReplayReport,
};
pub use cluster::{Cluster, ClusterBackend, ClusterNode};
#[cfg(feature = "metrics")]
pub use control::{ControllerConfig, ControllerStats, FeedbackController};
pub use fault::{BackendFaultStats, FaultInjectingBackend, WireFaultStats, WireFaults};
pub use matchd::{
    Admission, MatchServer, MatchdConfig, TenantConfig, TenantId, TenantSession, TenantStats,
};
pub use memory::DeviceMemory;
pub use nic::RxStats;
pub use obs::ServiceMetrics;
pub use pingpong::{MatchMode, PingPongConfig, PingPongResult, Scenario};
pub use rdma::SackBlocks;
pub use reliable::{ReliabilityError, ReliabilityStats, ReliableSender};
pub use service::MatchingService;
