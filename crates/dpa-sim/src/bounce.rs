//! Bounce buffers in NIC memory (§IV-A).
//!
//! "Incoming messages are staged into bounce buffers in NIC memory ...
//! necessary because we only know the address of the user-provided receive
//! buffer once the matching is performed." Staging on the NIC also avoids
//! registering user buffers and avoids crossing PCIe twice.
//!
//! The pool has a fixed number of fixed-size buffers, charged against the
//! device-memory budget by the service that creates it.

use otm_base::MatchError;

/// Identifier of a buffer within a [`BouncePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BounceId(pub u32);

/// A fixed pool of staging buffers.
#[derive(Debug)]
pub struct BouncePool {
    buffers: Vec<Vec<u8>>,
    free: Vec<u32>,
    buf_size: usize,
}

impl BouncePool {
    /// Creates a pool of `count` buffers of `buf_size` bytes each.
    pub fn new(count: usize, buf_size: usize) -> Self {
        BouncePool {
            buffers: vec![Vec::new(); count],
            free: (0..count as u32).rev().collect(),
            buf_size,
        }
    }

    /// Total NIC-memory cost of the pool in bytes.
    pub fn footprint(&self) -> u64 {
        (self.buffers.len() * self.buf_size) as u64
    }

    /// Buffers currently in use.
    pub fn in_use(&self) -> usize {
        self.buffers.len() - self.free.len()
    }

    /// Per-buffer capacity in bytes.
    pub fn buf_size(&self) -> usize {
        self.buf_size
    }

    /// Stages `data` into a free buffer.
    ///
    /// Fails with [`MatchError::UnexpectedStoreFull`] when the pool is
    /// exhausted (staging capacity is part of the same NIC-memory resource
    /// class whose exhaustion forces software fallback) and panics if the
    /// payload exceeds the buffer size — the transport must fragment or use
    /// rendezvous before that point.
    pub fn stage(&mut self, data: &[u8]) -> Result<BounceId, MatchError> {
        assert!(
            data.len() <= self.buf_size,
            "payload of {} B exceeds the {} B bounce buffers (use rendezvous)",
            data.len(),
            self.buf_size
        );
        let id = self.free.pop().ok_or(MatchError::UnexpectedStoreFull)?;
        let buf = &mut self.buffers[id as usize];
        buf.clear();
        buf.extend_from_slice(data);
        Ok(BounceId(id))
    }

    /// Reads a staged buffer.
    pub fn data(&self, id: BounceId) -> &[u8] {
        &self.buffers[id.0 as usize]
    }

    /// Releases a buffer back to the pool.
    pub fn release(&mut self, id: BounceId) {
        debug_assert!(
            !self.free.contains(&id.0),
            "double release of bounce buffer {id:?}"
        );
        self.free.push(id.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_read_release_round_trip() {
        let mut p = BouncePool::new(2, 64);
        let id = p.stage(&[1, 2, 3]).unwrap();
        assert_eq!(p.data(id), &[1, 2, 3]);
        assert_eq!(p.in_use(), 1);
        p.release(id);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut p = BouncePool::new(1, 8);
        let _a = p.stage(&[0]).unwrap();
        assert_eq!(p.stage(&[1]), Err(MatchError::UnexpectedStoreFull));
    }

    #[test]
    fn released_buffers_are_reused_with_fresh_contents() {
        let mut p = BouncePool::new(1, 8);
        let a = p.stage(&[9, 9, 9]).unwrap();
        p.release(a);
        let b = p.stage(&[1]).unwrap();
        assert_eq!(p.data(b), &[1]);
    }

    #[test]
    #[should_panic(expected = "use rendezvous")]
    fn oversized_payload_panics() {
        let mut p = BouncePool::new(1, 4);
        let _ = p.stage(&[0u8; 5]);
    }

    #[test]
    fn footprint_is_count_times_size() {
        let p = BouncePool::new(16, 1024);
        assert_eq!(p.footprint(), 16 * 1024);
    }

    #[test]
    fn zero_length_payloads_are_fine() {
        let mut p = BouncePool::new(1, 8);
        let id = p.stage(&[]).unwrap();
        assert!(p.data(id).is_empty());
    }
}
